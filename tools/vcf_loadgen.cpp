// vcf_loadgen — closed- and open-loop load generator for vcfd.
//
// N worker threads each own one VcfClient connection and drive a configurable
// insert/lookup mix with uniform or Zipfian keys (src/workload). Per-request
// round-trip latency goes into per-thread LatencyHistograms (src/metrics),
// merged at the end into p50/p95/p99/p999, and the whole run is emitted as
// one JSON object (--json_out, schema in docs/server.md) so CI can archive
// results/BENCH_server.json baselines.
//
//   # 4 threads, 5 s, 90% lookups in 64-key batches against a local vcfd
//   $ vcf_loadgen --port=4117 --threads=4 --duration_s=5
//         --mode=batch --batch=64 --json_out=results/BENCH_server.json
//
// Modes (--mode):
//   batch     one INSERT_BATCH/LOOKUP_BATCH frame per request (--batch keys)
//             — the throughput path; one latency sample per batch RTT.
//   pipeline  --batch single-key frames written back-to-back, then drained —
//             measures the server's request pipelining; one sample per
//             window RTT.
//   sync      one key per request — the per-op latency path.
//
// Open loop (--rate=R, per thread, requests/s): requests start on a fixed
// schedule and latency is measured from the *intended* start, so a stalled
// server accrues coordinated-omission-free queueing delay instead of
// silently slowing the generator down.
//
// Multi-process mode (--processes=P): the parent prefills once, forks P
// children that each run the full threaded workload (with globally unique
// key streams), and merges their histograms exactly via the binary
// LatencyHistogram Save/Load format through per-child temp files. Use it
// when one process's client threads saturate before the server does.
// --cpu-list pins worker thread i (globally, across processes) to the i-th
// cpu of the list, mirroring vcfd's flag of the same name.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include "client/vcf_client.hpp"
#include "common/timer.hpp"
#include "harness/flags.hpp"
#include "metrics/latency_histogram.hpp"
#include "workload/key_streams.hpp"

namespace {

using vcf::Flags;
using vcf::LatencyHistogram;
using vcf::Stopwatch;
using vcf::client::VcfClient;

struct Config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 4117;
  std::string replica_host;    ///< non-empty: route lookups to this replica
  std::uint16_t replica_port = 0;
  unsigned threads = 4;
  double duration_s = 5.0;
  double warmup_s = 0.5;
  unsigned lookup_pct = 90;
  std::string mode = "batch";  // batch | pipeline | sync
  std::size_t batch = 64;
  std::string dist = "uniform";  // uniform | zipf
  double zipf_s = 1.05;
  std::size_t universe = 1u << 20;
  std::size_t prefill = 1u << 18;
  /// Cold-set scenario (--read-heavy): bulk-preload --prefill keys, then a
  /// lookup-dominated phase whose lookups are Zipf-skewed *over the
  /// prefilled keys* — the tiered filter's frozen-segment sweet spot.
  /// Flips the defaults to lookup_pct=98, dist=zipf, universe=prefill.
  bool read_heavy = false;
  double rate = 0.0;  // requests/s per thread; 0 = closed loop
  unsigned processes = 1;      ///< forked generator processes (>=1)
  std::vector<int> cpu_list;   ///< global worker i -> cpu_list[i % size]
  std::string json_out;
  /// Declared vcfd worker count (--server_threads): lets the
  /// oversubscription check account for the server sharing this host.
  unsigned server_threads = 0;
  /// Refuse (exit 64) instead of warn when the run oversubscribes the host.
  bool strict_cpus = false;
  /// Growth drill (--ramp): insert --ramp_total sequential unique keys,
  /// tagging each batch RTT as "steady" or "resize" by polling STATS for a
  /// non-zero elastic migration backlog, then read every ACKed key back
  /// (any miss is a lost insert / false negative — exit 3). Drives an
  /// elastic vcfd across several growth steps without a restart.
  bool ramp = false;
  std::size_t ramp_total = 6'000'000;
};

/// CPU provenance of one run, recorded in the JSON "config" section so
/// compare_bench.py can annotate unlike-config diffs instead of treating
/// them as perf deltas. A run is oversubscribed when the generator's
/// workers plus the (declared) server workers exceed the host's cpus —
/// throughput then measures scheduler handoff as much as the server.
struct CpuProvenance {
  unsigned host_cpus = 0;       ///< 0 = unknown
  bool oversubscribed = false;
  std::string warning;          ///< empty when the config fits the host
};

CpuProvenance CheckCpuBudget(const Config& cfg) {
  CpuProvenance p;
  p.host_cpus = std::thread::hardware_concurrency();
  if (p.host_cpus == 0) return p;
  const unsigned want =
      cfg.threads * cfg.processes + cfg.server_threads;
  if (want <= p.host_cpus) return p;
  p.oversubscribed = true;
  std::ostringstream msg;
  msg << "oversubscribed: " << cfg.threads << " threads x " << cfg.processes
      << " processes";
  if (cfg.server_threads > 0) {
    msg << " + " << cfg.server_threads << " server workers";
  }
  msg << " = " << want << " runnable threads on " << p.host_cpus
      << " host cpu(s); throughput includes scheduler handoff";
  p.warning = msg.str();
  return p;
}

/// Keys the prefill inserted; lookups that draw indices below `prefill`
/// are guaranteed hits (modulo server-side rejections near capacity).
constexpr std::uint64_t kPrefillStream = 500;

struct ThreadResult {
  LatencyHistogram lookup_hist;
  LatencyHistogram insert_hist;
  std::uint64_t lookup_ops = 0;
  std::uint64_t insert_ops = 0;
  std::uint64_t lookup_requests = 0;
  std::uint64_t insert_requests = 0;
  std::uint64_t errors = 0;
  bool connect_failed = false;
  std::string error;
};

bool ConnectWorker(const Config& cfg, VcfClient& client) {
  if (cfg.replica_host.empty()) return client.Connect(cfg.host, cfg.port);
  // Two-node topology: writes to the primary (endpoint 0), reads routed to
  // the replica (endpoint 1), transparent failover between them.
  VcfClient::Options copts;
  copts.max_attempts = 3;
  copts.connect_timeout_ms = 2000;
  copts.read_timeout_ms = 5000;
  copts.read_endpoint = 1;
  return client.ConnectCluster({{cfg.host, cfg.port},
                                {cfg.replica_host, cfg.replica_port}},
                               copts);
}

void Worker(const Config& cfg, unsigned index, std::atomic<bool>& stop,
            ThreadResult& result) {
  // `index` is global across --processes, so streams, seeds and cpu slots
  // never collide between forked generators.
  if (!cfg.cpu_list.empty()) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cfg.cpu_list[index % cfg.cpu_list.size()], &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
  VcfClient client;
  if (!ConnectWorker(cfg, client)) {
    result.connect_failed = true;
    result.error = client.last_error();
    return;
  }
  vcf::Xoshiro256 rng(0x10ADULL * 2654435761u + index * 1000003u);
  std::unique_ptr<vcf::ZipfGenerator> zipf;
  if (cfg.dist == "zipf") {
    zipf = std::make_unique<vcf::ZipfGenerator>(cfg.universe, cfg.zipf_s,
                                                0x217F + index);
  }
  const std::uint64_t insert_stream = 600 + index;
  std::uint64_t insert_serial = 0;
  std::vector<std::uint64_t> keys(cfg.batch);
  const auto results = std::make_unique<bool[]>(cfg.batch);

  const double interval_ns =
      cfg.rate > 0.0 ? 1e9 / cfg.rate : 0.0;  // per request
  std::uint64_t schedule_index = 0;
  Stopwatch clock;

  while (!stop.load(std::memory_order_relaxed)) {
    const bool is_lookup = rng.Below(100) < cfg.lookup_pct;
    const std::size_t n = cfg.mode == "sync" ? 1 : cfg.batch;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_lookup) {
        if (cfg.read_heavy) {
          // Skewed hits over the cold set: draw a popularity rank and map
          // it into the prefilled key stream, so nearly every lookup lands
          // on a key the preload made resident (frozen, for tiered
          // filters).
          const std::size_t rank =
              zipf != nullptr ? zipf->NextRank() : rng.Below(cfg.prefill);
          keys[i] = vcf::UniformKeyAt(kPrefillStream, rank % cfg.prefill);
        } else if (zipf != nullptr) {
          keys[i] = zipf->Next();
        } else {
          // Uniform over the whole universe: hits where the index falls in
          // the prefilled prefix, misses elsewhere.
          keys[i] = vcf::UniformKeyAt(kPrefillStream, rng.Below(cfg.universe));
        }
      } else {
        keys[i] = vcf::UniformKeyAt(insert_stream, insert_serial++);
      }
    }
    // Open loop: latency is measured from the intended start of this
    // request, which never moves later because the previous one ran long.
    std::uint64_t intended_ns = clock.ElapsedNanos();
    if (interval_ns > 0.0) {
      intended_ns = static_cast<std::uint64_t>(
          static_cast<double>(schedule_index++) * interval_ns);
      while (clock.ElapsedNanos() < intended_ns &&
             !stop.load(std::memory_order_relaxed)) {
        // Spin-with-yield: sleep granularity (~50us+) would distort an
        // open-loop schedule at high rates.
        std::this_thread::yield();
      }
    }
    const std::span<const std::uint64_t> span(keys.data(), n);
    bool ok;
    if (cfg.mode == "batch" && n > 1) {
      if (is_lookup) {
        ok = client.LookupBatch(span, results.get());
      } else {
        bool transport_ok = false;
        client.InsertBatch(span, results.get(), &transport_ok);
        ok = transport_ok;
      }
    } else if (cfg.mode == "pipeline" && n > 1) {
      ok = is_lookup ? client.PipelineLookups(span, results.get(), n)
                     : client.PipelineInserts(span, results.get(), n);
    } else {
      bool transport_ok = false;
      if (is_lookup) {
        client.Lookup(keys[0], &transport_ok);
      } else {
        client.Insert(keys[0], &transport_ok);
      }
      ok = transport_ok;
    }
    const std::uint64_t end_ns = clock.ElapsedNanos();
    if (!ok) {
      ++result.errors;
      result.error = client.last_error();
      if (!client.connected() && !ConnectWorker(cfg, client)) {
        return;  // server gone; report what we have
      }
      continue;
    }
    const std::uint64_t latency =
        end_ns > intended_ns ? end_ns - intended_ns : 0;
    if (is_lookup) {
      result.lookup_hist.Record(latency);
      ++result.lookup_requests;
      result.lookup_ops += n;
    } else {
      result.insert_hist.Record(latency);
      ++result.insert_requests;
      result.insert_ops += n;
    }
  }
}

/// One generator's merged run (a process-worth of threads); Aggregates from
/// forked children merge again in the parent — LatencyHistogram::Merge is
/// exact, so the quantiles are identical to a single-process run.
struct Aggregate {
  LatencyHistogram lookup_hist, insert_hist;
  std::uint64_t lookup_ops = 0, insert_ops = 0;
  std::uint64_t lookup_requests = 0, insert_requests = 0, errors = 0;
  double elapsed_s = 0.0;
  bool ok = false;
  std::string error;
};

/// Warmup + measured phase for cfg.threads workers whose global indices
/// start at `worker_base` (nonzero in forked children).
Aggregate RunWorkers(const Config& cfg, unsigned worker_base) {
  Aggregate agg;
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);

  // Warmup phase: run the full workload, then discard the measurements.
  if (cfg.warmup_s > 0.0) {
    std::vector<ThreadResult> warmup_results(cfg.threads);
    std::atomic<bool> warmup_stop{false};
    for (unsigned i = 0; i < cfg.threads; ++i) {
      threads.emplace_back(Worker, std::cref(cfg), worker_base + i,
                           std::ref(warmup_stop),
                           std::ref(warmup_results[i]));
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(cfg.warmup_s));
    warmup_stop.store(true);
    for (auto& t : threads) t.join();
    threads.clear();
    for (const ThreadResult& r : warmup_results) {
      if (r.connect_failed) {
        agg.error = "worker connect failed: " + r.error;
        return agg;
      }
    }
  }

  std::vector<ThreadResult> results(cfg.threads);
  std::atomic<bool> stop{false};
  Stopwatch run_clock;
  for (unsigned i = 0; i < cfg.threads; ++i) {
    threads.emplace_back(Worker, std::cref(cfg), worker_base + i,
                         std::ref(stop), std::ref(results[i]));
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.duration_s));
  stop.store(true);
  for (auto& t : threads) t.join();
  agg.elapsed_s = run_clock.ElapsedSeconds();

  for (const ThreadResult& r : results) {
    if (r.connect_failed) {
      agg.error = "worker connect failed: " + r.error;
      return agg;
    }
    agg.lookup_hist.Merge(r.lookup_hist);
    agg.insert_hist.Merge(r.insert_hist);
    agg.lookup_ops += r.lookup_ops;
    agg.insert_ops += r.insert_ops;
    agg.lookup_requests += r.lookup_requests;
    agg.insert_requests += r.insert_requests;
    agg.errors += r.errors;
  }
  agg.ok = true;
  return agg;
}

void EmitOpJson(std::ostream& out, const char* name,
                const LatencyHistogram& h, std::uint64_t ops,
                std::uint64_t requests);

// --- Growth drill (--ramp) -------------------------------------------------
//
// The elastic acceptance scenario: one sequential-unique-key insert stream
// per worker, long enough to push an elastic filter through several doubling
// steps. A sampler thread polls STATS and publishes "a migration is in
// flight right now" (elastic_backlog > 0); each batch RTT lands in the
// steady or the resize histogram according to that flag, so the run can
// report how much a concurrent migration costs p99 insert latency. Every
// ACKed key is remembered and read back at the end — a miss means the
// migration dropped an acknowledged insert, which is the one thing the
// elastic design must never do.

/// Key stream base for ramp workers (unique keys; disjoint from the
/// prefill stream and the steady-state insert streams).
constexpr std::uint64_t kRampStream = 700;

struct RampResult {
  LatencyHistogram steady_hist, resize_hist;
  std::vector<std::uint8_t> acked;  ///< acked[i]: serial i was ACKed
  std::uint64_t attempted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t errors = 0;
  bool connect_failed = false;
  std::string error;
};

void RampWorker(const Config& cfg, unsigned index, std::size_t total_keys,
                const std::atomic<bool>& resizing, RampResult& result) {
  if (!cfg.cpu_list.empty()) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cfg.cpu_list[index % cfg.cpu_list.size()], &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
  VcfClient client;
  if (!ConnectWorker(cfg, client)) {
    result.connect_failed = true;
    result.error = client.last_error();
    return;
  }
  const std::uint64_t stream = kRampStream + index;
  result.acked.assign(total_keys, 0);
  std::vector<std::uint64_t> keys(cfg.batch);
  const auto flags = std::make_unique<bool[]>(cfg.batch);
  Stopwatch clock;
  std::size_t serial = 0;
  while (serial < total_keys) {
    const std::size_t n = std::min(cfg.batch, total_keys - serial);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = vcf::UniformKeyAt(stream, serial + i);
    }
    // Sample the migration flag at batch start; a poll-rate race only
    // mis-files a handful of boundary batches between the histograms.
    const bool in_resize = resizing.load(std::memory_order_relaxed);
    const std::uint64_t t0 = clock.ElapsedNanos();
    bool ok = false;
    client.InsertBatch({keys.data(), n}, flags.get(), &ok);
    const std::uint64_t dt = clock.ElapsedNanos() - t0;
    if (!ok) {
      // Retry the same serials after reconnecting: none were recorded as
      // ACKed, and re-inserting an already-landed key cannot lose it.
      ++result.errors;
      result.error = client.last_error();
      if (!client.connected() && !ConnectWorker(cfg, client)) return;
      continue;
    }
    (in_resize ? result.resize_hist : result.steady_hist).Record(dt);
    for (std::size_t i = 0; i < n; ++i) {
      if (flags[i]) {
        result.acked[serial + i] = 1;
        ++result.accepted;
      }
    }
    result.attempted += n;
    serial += n;
  }
}

/// Polls STATS every ~2ms on its own connection and publishes whether an
/// elastic migration is currently in flight, plus how many polls saw one
/// (the run's resize-window coverage).
void RampStatsPoller(const Config& cfg, std::atomic<bool>& stop,
                     std::atomic<bool>& resizing,
                     std::atomic<std::uint64_t>& polls,
                     std::atomic<std::uint64_t>& resize_polls) {
  VcfClient client;
  if (!client.Connect(cfg.host, cfg.port)) return;
  while (!stop.load(std::memory_order_relaxed)) {
    VcfClient::ServerStats s;
    if (client.GetStats(s)) {
      const bool busy = s.elastic_backlog > 0;
      resizing.store(busy, std::memory_order_relaxed);
      polls.fetch_add(1, std::memory_order_relaxed);
      if (busy) resize_polls.fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Reads every ACKed key of one worker stream back through LOOKUP_BATCH and
/// returns how many came back negative (each one is a lost insert).
std::uint64_t VerifyAcked(VcfClient& client, unsigned index,
                          const RampResult& r) {
  constexpr std::size_t kChunk = 4096;
  std::vector<std::uint64_t> keys;
  keys.reserve(kChunk);
  std::vector<std::uint8_t> hit(kChunk);
  std::uint64_t missing = 0;
  const std::uint64_t stream = kRampStream + index;
  for (std::size_t base = 0; base < r.acked.size();) {
    keys.clear();
    while (base < r.acked.size() && keys.size() < kChunk) {
      if (r.acked[base]) keys.push_back(vcf::UniformKeyAt(stream, base));
      ++base;
    }
    if (keys.empty()) continue;
    if (!client.LookupBatch(keys, reinterpret_cast<bool*>(hit.data()))) {
      return r.accepted;  // transport loss: count the whole rest as unverified
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (!hit[i]) ++missing;
    }
  }
  return missing;
}

int RunRamp(const Config& cfg, VcfClient& setup, const CpuProvenance& cpus) {
  VcfClient::ServerStats before;
  const bool have_before = setup.GetStats(before);

  std::atomic<bool> poll_stop{false};
  std::atomic<bool> resizing{false};
  std::atomic<std::uint64_t> polls{0}, resize_polls{0};
  std::thread poller(RampStatsPoller, std::cref(cfg), std::ref(poll_stop),
                     std::ref(resizing), std::ref(polls),
                     std::ref(resize_polls));

  const std::size_t per_worker =
      (cfg.ramp_total + cfg.threads - 1) / cfg.threads;
  std::vector<RampResult> results(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  Stopwatch run_clock;
  for (unsigned i = 0; i < cfg.threads; ++i) {
    threads.emplace_back(RampWorker, std::cref(cfg), i, per_worker,
                         std::cref(resizing), std::ref(results[i]));
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = run_clock.ElapsedSeconds();
  poll_stop.store(true);
  poller.join();

  LatencyHistogram steady, resize;
  std::uint64_t attempted = 0, accepted = 0, errors = 0;
  for (const RampResult& r : results) {
    if (r.connect_failed) {
      std::cerr << "error: ramp worker connect failed: " << r.error << "\n";
      return 1;
    }
    steady.Merge(r.steady_hist);
    resize.Merge(r.resize_hist);
    attempted += r.attempted;
    accepted += r.accepted;
    errors += r.errors;
  }

  // Read-back: every ACKed key must still be a member (the migration may
  // never lose one, and dual-table reads may never miss one mid-flight).
  std::uint64_t false_negatives = 0;
  for (unsigned i = 0; i < cfg.threads; ++i) {
    false_negatives += VerifyAcked(setup, i, results[i]);
  }

  VcfClient::ServerStats after;
  const bool have_after = setup.GetStats(after);
  const double p99_ratio =
      steady.P99() > 0 && resize.Count() > 0
          ? static_cast<double>(resize.P99()) / static_cast<double>(steady.P99())
          : 0.0;

  std::fprintf(stderr,
               "ramp: %" PRIu64 "/%" PRIu64 " keys ACKed in %.2fs "
               "(%u workers, batch=%zu, %" PRIu64 " errors)\n",
               accepted, attempted, elapsed_s, cfg.threads, cfg.batch, errors);
  if (have_before && have_after) {
    std::fprintf(stderr,
                 "  slots %" PRIu64 " -> %" PRIu64 ", resizes=%" PRIu64
                 ", dual_reads=%" PRIu64 ", backlog=%" PRIu64 "\n",
                 before.slots, after.slots, after.elastic_resizes,
                 after.elastic_dual_reads, after.elastic_backlog);
  }
  std::cerr << "  steady insert: " << steady.Summary() << "\n"
            << "  resize insert: " << resize.Summary() << "\n";
  std::fprintf(stderr,
               "  p99 resize/steady = %.2fx, false negatives = %" PRIu64 "\n",
               p99_ratio, false_negatives);

  if (!cfg.json_out.empty()) {
    std::ofstream out(cfg.json_out);
    if (!out) {
      std::cerr << "error: cannot write " << cfg.json_out << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"config\": {\"host\": \"" << cfg.host << "\", \"port\": "
        << cfg.port << ", \"threads\": " << cfg.threads
        << ", \"mode\": \"ramp\", \"batch\": " << cfg.batch
        << ", \"ramp_total\": " << cfg.ramp_total
        << ", \"prefill\": " << cfg.prefill
        << ", \"server_threads\": " << cfg.server_threads
        << ", \"host_cpus\": " << cpus.host_cpus
        << ", \"oversubscribed\": " << (cpus.oversubscribed ? "true" : "false")
        << ", \"cpu_warning\": \"" << cpus.warning << "\"},\n"
        << "  \"server\": {\"name\": \""
        << (have_after ? after.name : "") << "\", \"slots_before\": "
        << (have_before ? before.slots : 0) << ", \"slots_after\": "
        << (have_after ? after.slots : 0) << ", \"items\": "
        << (have_after ? after.items : 0) << ", \"load_factor\": "
        << (have_after ? after.load_factor : 0.0) << ", \"resizes\": "
        << (have_after ? after.elastic_resizes : 0) << ", \"dual_reads\": "
        << (have_after ? after.elastic_dual_reads : 0) << ", \"backlog\": "
        << (have_after ? after.elastic_backlog : 0) << "},\n"
        << "  \"ramp\": {\"attempted\": " << attempted << ", \"acked\": "
        << accepted << ", \"errors\": " << errors
        << ", \"false_negatives\": " << false_negatives
        << ", \"duration_s\": " << elapsed_s << ", \"stats_polls\": "
        << polls.load() << ", \"resize_polls\": " << resize_polls.load()
        << ", \"p99_resize_over_steady\": " << p99_ratio << "},\n";
    EmitOpJson(out, "steady_insert", steady, steady.Count(),
               steady.Count());
    out << ",\n";
    EmitOpJson(out, "resize_insert", resize, resize.Count(),
               resize.Count());
    out << "\n}\n";
    if (!out.good()) {
      std::cerr << "error: short write to " << cfg.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << cfg.json_out << "\n";
  }
  if (false_negatives > 0) return 3;  // an ACKed key went missing
  return errors > attempted / 100 ? 2 : 0;
}

void PutU64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.write(b, 8);
}

bool GetU64(std::istream& in, std::uint64_t& v) {
  char b[8];
  if (!in.read(b, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  }
  return true;
}

/// Child -> parent result file: six LE counters then the two histograms in
/// their own self-validating format.
bool SaveAggregate(const Aggregate& agg, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  PutU64(out, agg.lookup_ops);
  PutU64(out, agg.insert_ops);
  PutU64(out, agg.lookup_requests);
  PutU64(out, agg.insert_requests);
  PutU64(out, agg.errors);
  PutU64(out, static_cast<std::uint64_t>(agg.elapsed_s * 1e9));
  return agg.lookup_hist.Save(out) && agg.insert_hist.Save(out) && out.good();
}

bool LoadAggregate(Aggregate& agg, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint64_t elapsed_ns = 0;
  if (!GetU64(in, agg.lookup_ops) || !GetU64(in, agg.insert_ops) ||
      !GetU64(in, agg.lookup_requests) || !GetU64(in, agg.insert_requests) ||
      !GetU64(in, agg.errors) || !GetU64(in, elapsed_ns)) {
    return false;
  }
  agg.elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  if (!agg.lookup_hist.Load(in) || !agg.insert_hist.Load(in)) return false;
  agg.ok = true;
  return true;
}

/// "0,2,4" -> {0, 2, 4}; false on anything non-numeric (same grammar as
/// vcfd --cpu-list).
bool ParseCpuList(const std::string& s, std::vector<int>* out) {
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      std::size_t pos = 0;
      const int cpu = std::stoi(tok, &pos);
      if (pos != tok.size() || cpu < 0) return false;
      out->push_back(cpu);
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

void EmitOpJson(std::ostream& out, const char* name,
                const LatencyHistogram& h, std::uint64_t ops,
                std::uint64_t requests) {
  out << "  \"" << name << "\": {\"ops\": " << ops
      << ", \"requests\": " << requests << ", \"mean_ns\": " << h.MeanNanos()
      << ", \"p50_ns\": " << h.P50() << ", \"p95_ns\": " << h.P95()
      << ", \"p99_ns\": " << h.P99() << ", \"p999_ns\": " << h.P999()
      << ", \"max_ns\": " << h.MaxNanos() << "}";
}

int Usage(int code) {
  std::cerr
      << "usage: vcf_loadgen [flags]\n"
         "  --host=H --port=N        server address (default 127.0.0.1:4117)\n"
         "  --replica_host=H --replica_port=N  route lookups to a replica\n"
         "                           (writes stay on --host; failover on)\n"
         "  --threads=N              client threads, one connection each "
         "(default 4)\n"
         "  --duration_s=X           measured run length (default 5)\n"
         "  --warmup_s=X             unmeasured warmup (default 0.5)\n"
         "  --lookup_pct=N           lookup share of requests (default 90)\n"
         "  --mode=batch|pipeline|sync  request shape (default batch)\n"
         "  --batch=N                keys per batch / pipeline window "
         "(default 64)\n"
         "  --dist=uniform|zipf --zipf_s=X --universe=N   key distribution\n"
         "  --prefill=N              keys inserted before measuring "
         "(default 2^18)\n"
         "  --read-heavy             cold-set scenario: lookups are Zipf-\n"
         "                           skewed over the prefilled keys; flips\n"
         "                           defaults to --lookup_pct=98 --dist=zipf\n"
         "                           --universe=<prefill> (tiered filters:\n"
         "                           probes the frozen segments)\n"
         "  --ramp                   growth drill: insert --ramp_total "
         "sequential\n"
         "                           unique keys, tag each batch steady/"
         "resize by\n"
         "                           polling STATS for a migration backlog, "
         "then\n"
         "                           read every ACKed key back (a miss exits "
         "3).\n"
         "                           Defaults --prefill=0; reports p99 "
         "resize/steady\n"
         "  --ramp_total=N           keys the ramp inserts (default 6e6)\n"
         "  --rate=R                 open-loop requests/s per thread "
         "(0 = closed loop)\n"
         "  --processes=P            fork P generator processes, each with\n"
         "                           --threads workers; histograms merge "
         "exactly\n"
         "  --cpu-list=L             pin global worker i to the i-th cpu of "
         "the list\n"
         "  --json_out=PATH          write the run as JSON "
         "(docs/server.md schema)\n"
         "  --server_threads=N       declare the server's worker count so "
         "the\n"
         "                           cpu-budget check accounts for it\n"
         "  --strict_cpus            refuse (exit 64) when threads x "
         "processes\n"
         "                           + server_threads exceeds the host's "
         "cpus\n"
         "                           (default: warn and record it in the "
         "JSON)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetBool("help")) return Usage(0);
  Config cfg;
  cfg.host = flags.GetString("host", cfg.host);
  cfg.port = static_cast<std::uint16_t>(flags.GetInt("port", cfg.port));
  cfg.replica_host = flags.GetString("replica_host", "");
  cfg.replica_port =
      static_cast<std::uint16_t>(flags.GetInt("replica_port", 0));
  cfg.threads = static_cast<unsigned>(flags.GetInt("threads", cfg.threads));
  cfg.duration_s = flags.GetDouble("duration_s", cfg.duration_s);
  cfg.warmup_s = flags.GetDouble("warmup_s", cfg.warmup_s);
  cfg.read_heavy = flags.GetBool("read-heavy") || flags.GetBool("read_heavy");
  cfg.lookup_pct = static_cast<unsigned>(
      flags.GetInt("lookup_pct", cfg.read_heavy ? 98 : cfg.lookup_pct));
  cfg.mode = flags.GetString("mode", cfg.mode);
  cfg.batch = static_cast<std::size_t>(flags.GetInt("batch", 64));
  cfg.dist = flags.GetString("dist", cfg.read_heavy ? "zipf" : cfg.dist);
  cfg.zipf_s = flags.GetDouble("zipf_s", cfg.zipf_s);
  cfg.ramp = flags.GetBool("ramp");
  cfg.ramp_total = static_cast<std::size_t>(flags.GetInt(
      "ramp_total",
      flags.GetInt("ramp-total",
                   static_cast<long long>(cfg.ramp_total))));
  // The ramp drill measures growth from (near) empty, so it skips the
  // prefill unless one is asked for explicitly.
  cfg.prefill = static_cast<std::size_t>(
      flags.GetInt("prefill", cfg.ramp ? 0 : 1 << 18));
  // In the cold-set scenario the rank universe IS the prefilled set, so
  // Zipf mass covers exactly the resident keys unless overridden.
  cfg.universe = static_cast<std::size_t>(flags.GetInt(
      "universe", cfg.read_heavy ? static_cast<long long>(cfg.prefill)
                                 : (1 << 20)));
  cfg.rate = flags.GetDouble("rate", 0.0);
  cfg.processes = static_cast<unsigned>(flags.GetInt("processes", 1));
  if (flags.Has("cpu-list") || flags.Has("cpu_list")) {
    const std::string list =
        flags.GetString("cpu-list", flags.GetString("cpu_list", ""));
    if (!ParseCpuList(list, &cfg.cpu_list)) {
      std::cerr << "error: --cpu-list wants comma-separated cpu ids\n";
      return Usage(64);
    }
  }
  cfg.json_out = flags.GetString("json_out", "");
  cfg.server_threads = static_cast<unsigned>(
      flags.GetInt("server_threads", flags.GetInt("server-threads", 0)));
  cfg.strict_cpus =
      flags.GetBool("strict_cpus") || flags.GetBool("strict-cpus");
  if (cfg.threads == 0 || cfg.batch == 0 || cfg.lookup_pct > 100 ||
      cfg.processes == 0 ||
      (cfg.mode != "batch" && cfg.mode != "pipeline" && cfg.mode != "sync")) {
    return Usage(64);
  }
  if (cfg.read_heavy && cfg.prefill == 0) {
    std::cerr << "error: --read-heavy needs a cold set; set --prefill > 0\n";
    return Usage(64);
  }

  const CpuProvenance cpus = CheckCpuBudget(cfg);
  if (cpus.oversubscribed) {
    if (cfg.strict_cpus) {
      std::cerr << "error: " << cpus.warning
                << " (--strict_cpus refuses to run)\n";
      return 64;
    }
    std::cerr << "warning: " << cpus.warning << "\n";
  }

  // Prefill from one connection so lookup hit/miss is deterministic.
  VcfClient setup;
  if (!setup.Connect(cfg.host, cfg.port) || !setup.Ping()) {
    std::cerr << "error: cannot reach vcfd at " << cfg.host << ":" << cfg.port
              << " (" << setup.last_error() << ")\n";
    return 1;
  }
  if (cfg.prefill > 0) {
    const auto keys = vcf::UniformKeys(cfg.prefill, kPrefillStream);
    bool ok = false;
    const std::size_t accepted = setup.InsertBatch(keys, nullptr, &ok);
    if (!ok) {
      std::cerr << "error: prefill failed: " << setup.last_error() << "\n";
      return 1;
    }
    std::cerr << "prefilled " << accepted << "/" << cfg.prefill << " keys\n";
  }

  if (cfg.ramp) return RunRamp(cfg, setup, cpus);

  Aggregate agg;
  if (cfg.processes == 1) {
    agg = RunWorkers(cfg, 0);
    if (!agg.ok) {
      std::cerr << "error: " << agg.error << "\n";
      return 1;
    }
  } else {
    // Close the setup connection so children don't inherit a live fd into
    // the server; the parent reconnects for the final stats poll.
    setup.Close();
    std::vector<std::string> paths(cfg.processes);
    std::vector<pid_t> pids(cfg.processes, -1);
    bool failed = false;
    for (unsigned p = 0; p < cfg.processes && !failed; ++p) {
      char tmpl[] = "/tmp/vcf_loadgen_XXXXXX";
      const int fd = mkstemp(tmpl);
      if (fd < 0) {
        failed = true;
        break;
      }
      close(fd);
      paths[p] = tmpl;
      const pid_t pid = fork();
      if (pid < 0) {
        failed = true;
        break;
      }
      if (pid == 0) {
        // Child: run a process-worth of workers with globally offset
        // indices, serialize the merged result, and report via exit code.
        const Aggregate child = RunWorkers(cfg, p * cfg.threads);
        if (!child.ok) {
          std::cerr << "error (process " << p << "): " << child.error << "\n";
          _exit(1);
        }
        _exit(SaveAggregate(child, paths[p]) ? 0 : 1);
      }
      pids[p] = pid;
    }
    for (unsigned p = 0; p < cfg.processes; ++p) {
      if (pids[p] < 0) continue;
      int status = 0;
      if (waitpid(pids[p], &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        failed = true;
        continue;
      }
      Aggregate child;
      if (!LoadAggregate(child, paths[p])) {
        failed = true;
        continue;
      }
      agg.lookup_hist.Merge(child.lookup_hist);
      agg.insert_hist.Merge(child.insert_hist);
      agg.lookup_ops += child.lookup_ops;
      agg.insert_ops += child.insert_ops;
      agg.lookup_requests += child.lookup_requests;
      agg.insert_requests += child.insert_requests;
      agg.errors += child.errors;
      // Children run concurrently; the slowest one's wall time is the run's.
      if (child.elapsed_s > agg.elapsed_s) agg.elapsed_s = child.elapsed_s;
    }
    for (const std::string& path : paths) {
      if (!path.empty()) unlink(path.c_str());
    }
    if (failed) {
      std::cerr << "error: generator process failed\n";
      return 1;
    }
    setup.Connect(cfg.host, cfg.port);  // stats only; failure tolerated
  }
  const double elapsed_s = agg.elapsed_s;
  const LatencyHistogram& lookup_hist = agg.lookup_hist;
  const LatencyHistogram& insert_hist = agg.insert_hist;
  const std::uint64_t lookup_ops = agg.lookup_ops;
  const std::uint64_t insert_ops = agg.insert_ops;
  const std::uint64_t lookup_requests = agg.lookup_requests;
  const std::uint64_t insert_requests = agg.insert_requests;
  const std::uint64_t errors = agg.errors;
  const std::uint64_t total_ops = lookup_ops + insert_ops;
  const double throughput =
      elapsed_s > 0.0 ? static_cast<double>(total_ops) / elapsed_s : 0.0;

  VcfClient::ServerStats server_stats;
  const bool have_stats = setup.GetStats(server_stats);

  std::fprintf(stderr,
               "%" PRIu64 " ops in %.2fs = %.0f ops/s (%ux%u workers, "
               "mode=%s, batch=%zu, %u%% lookups, %" PRIu64 " errors)\n",
               total_ops, elapsed_s, throughput, cfg.processes, cfg.threads,
               cfg.mode.c_str(), cfg.batch, cfg.lookup_pct, errors);
  std::cerr << "  lookup: " << lookup_hist.Summary() << "\n"
            << "  insert: " << insert_hist.Summary() << "\n";
  if (have_stats) {
    std::cerr << "  server: " << server_stats.name << " items="
              << server_stats.items << " load="
              << server_stats.load_factor * 100.0 << "%\n";
  }

  if (!cfg.json_out.empty()) {
    std::ofstream out(cfg.json_out);
    if (!out) {
      std::cerr << "error: cannot write " << cfg.json_out << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"config\": {\"host\": \"" << cfg.host << "\", \"port\": "
        << cfg.port << ", \"threads\": " << cfg.threads
        << ", \"processes\": " << cfg.processes
        << ", \"duration_s\": " << cfg.duration_s << ", \"lookup_pct\": "
        << cfg.lookup_pct << ", \"mode\": \"" << cfg.mode
        << "\", \"batch\": " << cfg.batch << ", \"dist\": \"" << cfg.dist
        << "\", \"zipf_s\": " << cfg.zipf_s << ", \"universe\": "
        << cfg.universe << ", \"prefill\": " << cfg.prefill
        << ", \"read_heavy\": " << (cfg.read_heavy ? "true" : "false")
        << ", \"rate_per_thread\": " << cfg.rate << ", \"replica_host\": \""
        << cfg.replica_host << "\", \"replica_port\": " << cfg.replica_port
        << ", \"server_threads\": " << cfg.server_threads
        << ", \"host_cpus\": " << cpus.host_cpus
        << ", \"oversubscribed\": " << (cpus.oversubscribed ? "true" : "false")
        << ", \"cpu_warning\": \"" << cpus.warning << "\""
        << "},\n"
        << "  \"server\": {\"name\": \""
        << (have_stats ? server_stats.name : "") << "\", \"slots\": "
        << (have_stats ? server_stats.slots : 0) << ", \"items\": "
        << (have_stats ? server_stats.items : 0) << ", \"load_factor\": "
        << (have_stats ? server_stats.load_factor : 0.0) << "},\n"
        << "  \"totals\": {\"ops\": " << total_ops << ", \"requests\": "
        << (lookup_requests + insert_requests) << ", \"errors\": " << errors
        << ", \"duration_s\": " << elapsed_s << ", \"throughput_ops_s\": "
        << throughput << "},\n";
    EmitOpJson(out, "lookup", lookup_hist, lookup_ops, lookup_requests);
    out << ",\n";
    EmitOpJson(out, "insert", insert_hist, insert_ops, insert_requests);
    out << "\n}\n";
    if (!out.good()) {
      std::cerr << "error: short write to " << cfg.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << cfg.json_out << "\n";
  }
  return errors > total_ops / 100 ? 2 : 0;  // >1% errors: flag the run
}
