// vcfd — the networked membership-query daemon: serves any filter the
// factory can build (--filter accepts every vcf_tool spelling, including
// sharded:<n>:resilient:<kind>) over the length-prefixed binary protocol in
// src/net/proto.hpp. See docs/server.md for the wire format and deployment
// notes.
//
//   # eight locked shards of VCF on port 4117, checkpointing to vcf.state
//   $ vcfd --port=4117 --threads=4 --filter=sharded:8:vcf --state=vcf.state
//
// On SIGTERM/SIGINT the server drains its connections and writes a final
// checkpoint to --state (atomic tmp+rename); restarting with the same flags
// restores it, so no key a client saw ACKed is ever lost across a restart.
// An existing --state file is loaded at startup (a missing file is a clean
// cold start; a corrupt or mismatched one aborts startup unless
// --ignore_bad_state is given).
//
// Replication (docs/server.md#replication):
//
//   # primary: journal mutations into a 64Ki-entry op log for replicas
//   $ vcfd --port=4117 --filter=vcf --oplog=65536 --state=primary.state
//   # replica: read-only, streams the primary's op log, serves LOOKUPs
//   $ vcfd --port=4118 --filter=vcf --replicate-from=127.0.0.1:4117
//         --state=replica.state
//
// A replica persists its stream position in <state>.rseq next to each
// checkpoint; on restart it resumes from there when the sidecar's digest
// matches the checkpoint, and falls back to a fresh snapshot bootstrap
// otherwise. The replica's filter construction flags must match the
// primary's.
//
// Startup handshake for scripts: the line "vcfd listening on 127.0.0.1:<port>"
// goes to stdout (and is flushed) once the socket is bound — the integration
// tests and the load generator's --spawn mode parse it to learn an
// ephemeral port.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/elastic_filter.hpp"
#include "harness/filter_factory.hpp"
#include "harness/flags.hpp"
#include "server/poller.hpp"
#include "server/replication.hpp"
#include "server/server.hpp"

namespace {

vcf::server::VcfServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

/// "--cpu-list=0,2,4" → {0, 2, 4}. Returns false on anything non-numeric.
bool ParseCpuList(const std::string& s, std::vector<int>* out) {
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      std::size_t pos = 0;
      const int cpu = std::stoi(tok, &pos);
      if (pos != tok.size() || cpu < 0) return false;
      out->push_back(cpu);
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

int Usage(int code) {
  std::cerr
      << "usage: vcfd [flags]\n"
         "  --port=N        TCP port on 127.0.0.1 (0 = ephemeral; default "
         "4117)\n"
         "  --threads=N     worker event loops (default 2)\n"
         "  --state=FILE    checkpoint path: loaded at startup when present,\n"
         "                  written on SIGTERM/SIGINT and on SNAPSHOT "
         "requests\n"
         "  --ignore_bad_state  start empty when --state exists but cannot "
         "be loaded\n"
         "  --backend=B     event backend: auto|io_uring|epoll|poll (default "
         "auto;\n"
         "                  VCFD_BACKEND env overrides auto the same way)\n"
         "  --cpu-list=L    pin worker i to the i-th cpu of the "
         "comma-separated list\n"
         "  --pin-shards    core-affine shard ownership: each worker owns\n"
         "                  shard%threads and serves it without shard locks\n"
         "                  (needs --filter=sharded:..., no replication)\n"
         "  --coalesce=0|1  cross-frame batch coalescing (default 1)\n"
         "  --check-backend=B  probe whether backend B works here; exit 0/1\n"
         "  --oplog=N       journal mutations for replicas, retaining N "
         "entries\n"
         "                  (primary mode; 0 disables, default 0)\n"
         "  --replicate-from=HOST:PORT  replica mode: stream the primary's "
         "op log,\n"
         "                  serve lookups, reject writes with READ_ONLY\n"
         "  --auto-grow=0|1 elastic leaves grow themselves past the "
         "watermark\n"
         "                  (default 1; 0 = grow only on RESIZE requests;\n"
         "                  tune with --grow_watermark / --grow_hysteresis /\n"
         "                  --migrate_step below)\n"
         "  filter construction (same flags as vcf_tool):\n"
      << vcf::kFilterFlagsHelp;
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const vcf::Flags flags(argc, argv);
  if (flags.GetBool("help")) return Usage(0);
  // Scripted probe: `vcfd --check-backend=io_uring` answers "can this host
  // run that backend" without starting a server (CI uses it to auto-skip
  // the io_uring legs on kernels without it).
  if (flags.Has("check-backend")) {
    const std::string name = flags.GetString("check-backend", "");
    vcf::server::Poller::Backend b;
    if (!vcf::server::Poller::ParseBackend(name.c_str(), &b)) {
      std::cerr << "error: unknown backend '" << name << "'\n";
      return 64;
    }
    const bool ok = vcf::server::Poller::BackendAvailable(b);
    std::cout << vcf::server::Poller::BackendName(b)
              << (ok ? " available" : " unavailable") << "\n";
    return ok ? 0 : 1;
  }
  vcf::FilterSpec spec;
  try {
    spec = vcf::SpecFromFlags(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return Usage(64);
  }

  // `--replicate-from` and `--replicate_from` are both accepted.
  std::string replicate_from = flags.GetString("replicate-from", "");
  if (replicate_from.empty()) {
    replicate_from = flags.GetString("replicate_from", "");
  }
  const bool is_replica = !replicate_from.empty();
  std::string primary_host;
  std::uint16_t primary_port = 0;
  if (is_replica) {
    const std::size_t colon = replicate_from.rfind(':');
    if (colon == std::string::npos || colon + 1 >= replicate_from.size()) {
      std::cerr << "error: --replicate-from wants HOST:PORT\n";
      return Usage(64);
    }
    primary_host = replicate_from.substr(0, colon);
    primary_port = static_cast<std::uint16_t>(
        std::stoi(replicate_from.substr(colon + 1)));
  }

  vcf::server::VcfServer::Options options;
  options.port = static_cast<std::uint16_t>(flags.GetInt("port", 4117));
  options.threads = static_cast<unsigned>(flags.GetInt("threads", 2));
  options.state_path = flags.GetString("state", "");
  // ShardedFilter carries per-shard locks; everything else needs the
  // server-level lock (docs/server.md#deployment).
  options.filter_internally_locked = spec.shards > 0;
  options.oplog_capacity = is_replica
                               ? 0
                               : static_cast<std::size_t>(
                                     flags.GetInt("oplog", 0));
  options.read_only = is_replica;
  if (flags.Has("backend")) {
    const std::string name = flags.GetString("backend", "auto");
    if (!vcf::server::Poller::ParseBackend(name.c_str(), &options.backend)) {
      std::cerr << "error: unknown --backend '" << name << "'\n";
      return Usage(64);
    }
  }
  if (flags.Has("cpu-list") || flags.Has("cpu_list")) {
    const std::string list = flags.GetString(
        "cpu-list", flags.GetString("cpu_list", ""));
    if (!ParseCpuList(list, &options.cpu_list)) {
      std::cerr << "error: --cpu-list wants comma-separated cpu ids\n";
      return Usage(64);
    }
  }
  options.pin_shards =
      flags.GetBool("pin-shards", flags.GetBool("pin_shards", false));
  options.coalesce = flags.GetBool("coalesce", true);
  if (!options.state_path.empty() &&
      (is_replica || options.oplog_capacity > 0)) {
    options.repl_meta_path = options.state_path + ".rseq";
  }

  auto filter = vcf::MakeFilter(spec);
  // The watermark policy lives in the elastic leaves; apply the flag before
  // the server starts serving (after that, growth toggles go via RESIZE).
  const bool auto_grow =
      flags.GetBool("auto-grow", flags.GetBool("auto_grow", true));
  if (!auto_grow) {
    filter->ForEachLeaf([](vcf::Filter& leaf) {
      if (auto* e = dynamic_cast<vcf::ElasticFilter*>(&leaf)) {
        e->SetAutoGrow(false);
      }
    });
  }
  vcf::server::VcfServer server(std::move(filter), options);

  std::unique_ptr<vcf::server::ReplicaSession> session;
  std::uint64_t resume_seq = 0;
  if (is_replica) {
    vcf::server::ReplicaSession::Options ropts;
    ropts.primary_host = primary_host;
    ropts.primary_port = primary_port;
    session = std::make_unique<vcf::server::ReplicaSession>(server, ropts);
    if (!options.repl_meta_path.empty()) {
      resume_seq = session->LoadResumePoint(options.repl_meta_path,
                                            options.state_path);
    }
  }

  std::string error;
  // A replica only restores its checkpoint when the .rseq sidecar vouches
  // for it; otherwise it starts empty and snapshot-bootstraps, which is
  // always safe.
  if (is_replica && resume_seq == 0) {
    if (!options.state_path.empty()) {
      std::cerr << "replica: no verifiable resume point; bootstrapping via "
                   "snapshot\n";
    }
  } else if (!server.TryRestore(&error)) {
    if (flags.GetBool("ignore_bad_state")) {
      std::cerr << "warning: ignoring unloadable state (" << error
                << "); starting empty\n";
    } else {
      std::cerr << "error: " << error
                << "\n(use --ignore_bad_state to start empty anyway)\n";
      return 1;
    }
  }
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (session != nullptr) session->Start();

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "vcfd listening on 127.0.0.1:" << server.port() << "\n"
            << std::flush;
  std::cerr << "serving " << server.filter().Name() << " ("
            << server.filter().SlotCount() << " slots, "
            << options.threads << " threads, "
            << vcf::server::Poller::BackendName(server.resolved_backend())
            << " backend"
            << (server.pinned() ? ", pinned shards" : "") << ")"
            << (options.state_path.empty()
                    ? std::string(", no checkpointing")
                    : ", state=" + options.state_path)
            << "\n";

  bool checkpoint_ok;
  if (session != nullptr) {
    // Stop pulling from the primary before the final checkpoint so the
    // saved state and its .rseq sidecar agree.
    while (!server.shutting_down()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    session->Stop();
    checkpoint_ok = server.Join();
  } else {
    checkpoint_ok = server.ServeUntilShutdown();
  }
  const auto& c = server.counters();
  std::cerr << "vcfd shut down: " << c.requests.load() << " requests, "
            << c.connections_accepted.load() << " connections, "
            << c.protocol_errors.load() << " protocol errors, "
            << c.checkpoints.load() << " checkpoints\n";
  if (session != nullptr) {
    const auto& rc = session->counters();
    std::cerr << "replica: applied " << rc.entries_applied.load()
              << " entries (through seq " << session->last_applied() << "), "
              << rc.snapshots_installed.load() << " snapshots, "
              << rc.gaps_detected.load() << " gaps, "
              << rc.reconnects.load() << " reconnects\n";
  }
  if (!checkpoint_ok) {
    std::cerr << "error: final checkpoint failed\n";
    return 1;
  }
  return 0;
}
