// vcfd — the networked membership-query daemon: serves any filter the
// factory can build (--filter accepts every vcf_tool spelling, including
// sharded:<n>:resilient:<kind>) over the length-prefixed binary protocol in
// src/net/proto.hpp. See docs/server.md for the wire format and deployment
// notes.
//
//   # eight locked shards of VCF on port 4117, checkpointing to vcf.state
//   $ vcfd --port=4117 --threads=4 --filter=sharded:8:vcf --state=vcf.state
//
// On SIGTERM/SIGINT the server drains its connections and writes a final
// checkpoint to --state (atomic tmp+rename); restarting with the same flags
// restores it, so no key a client saw ACKed is ever lost across a restart.
// An existing --state file is loaded at startup (a missing file is a clean
// cold start; a corrupt or mismatched one aborts startup unless
// --ignore_bad_state is given).
//
// Startup handshake for scripts: the line "vcfd listening on 127.0.0.1:<port>"
// goes to stdout (and is flushed) once the socket is bound — the integration
// tests and the load generator's --spawn mode parse it to learn an
// ephemeral port.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "harness/filter_factory.hpp"
#include "harness/flags.hpp"
#include "server/server.hpp"

namespace {

vcf::server::VcfServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Usage(int code) {
  std::cerr
      << "usage: vcfd [flags]\n"
         "  --port=N        TCP port on 127.0.0.1 (0 = ephemeral; default "
         "4117)\n"
         "  --threads=N     worker event loops (default 2)\n"
         "  --state=FILE    checkpoint path: loaded at startup when present,\n"
         "                  written on SIGTERM/SIGINT and on SNAPSHOT "
         "requests\n"
         "  --ignore_bad_state  start empty when --state exists but cannot "
         "be loaded\n"
         "  filter construction (same flags as vcf_tool):\n"
      << vcf::kFilterFlagsHelp;
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const vcf::Flags flags(argc, argv);
  if (flags.GetBool("help")) return Usage(0);
  vcf::FilterSpec spec;
  try {
    spec = vcf::SpecFromFlags(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return Usage(64);
  }

  vcf::server::VcfServer::Options options;
  options.port = static_cast<std::uint16_t>(flags.GetInt("port", 4117));
  options.threads = static_cast<unsigned>(flags.GetInt("threads", 2));
  options.state_path = flags.GetString("state", "");
  // ShardedFilter carries per-shard locks; everything else needs the
  // server-level lock (docs/server.md#deployment).
  options.filter_internally_locked = spec.shards > 0;

  vcf::server::VcfServer server(vcf::MakeFilter(spec), options);

  std::string error;
  if (!server.TryRestore(&error)) {
    if (flags.GetBool("ignore_bad_state")) {
      std::cerr << "warning: ignoring unloadable state (" << error
                << "); starting empty\n";
    } else {
      std::cerr << "error: " << error
                << "\n(use --ignore_bad_state to start empty anyway)\n";
      return 1;
    }
  }
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "vcfd listening on 127.0.0.1:" << server.port() << "\n"
            << std::flush;
  std::cerr << "serving " << server.filter().Name() << " ("
            << server.filter().SlotCount() << " slots, "
            << options.threads << " threads)"
            << (options.state_path.empty()
                    ? std::string(", no checkpointing")
                    : ", state=" + options.state_path)
            << "\n";

  const bool checkpoint_ok = server.ServeUntilShutdown();
  const auto& c = server.counters();
  std::cerr << "vcfd shut down: " << c.requests.load() << " requests, "
            << c.connections_accepted.load() << " connections, "
            << c.protocol_errors.load() << " protocol errors, "
            << c.checkpoints.load() << " checkpoints\n";
  if (!checkpoint_ok) {
    std::cerr << "error: final checkpoint failed\n";
    return 1;
  }
  return 0;
}
