// vcf_tool — command-line front end for building, checkpointing and querying
// filters. Lets an operator try the library without writing code:
//
//   # build a VCF from newline-separated keys and checkpoint it
//   $ vcf_tool build --filter=ivcf --variant=6 --slots_log2=20
//         --state=members.vcf < members.txt
//
//   # query keys against the checkpoint (same construction flags!)
//   $ vcf_tool query --filter=ivcf --variant=6 --slots_log2=20
//         --state=members.vcf < probes.txt
//
//   # print capacity/occupancy of a checkpoint
//   $ vcf_tool stats --filter=ivcf --variant=6 --slots_log2=20
//         --state=members.vcf
//
// The state blob stores a digest of the construction parameters; loading
// with mismatched flags is rejected rather than silently misinterpreting
// the table. Keys are arbitrary byte strings, one per line.
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "harness/filter_factory.hpp"
#include "harness/flags.hpp"

namespace {

using vcf::Filter;
using vcf::FilterSpec;
using vcf::Flags;

FilterSpec SpecFromFlags(const Flags& flags) {
  FilterSpec spec;
  std::string kind = flags.GetString("filter", "vcf");
  // Wrapper prefixes, outermost first:
  //   "sharded:<n>:<kind>"  — hash-partition across n locked shards
  //                           (core/sharded_filter.hpp, docs/performance.md);
  //   "resilient:<kind>"    — overload/recovery layer (victim stash, degraded
  //                           mode, checkpoint retry — docs/robustness.md).
  // They compose: "sharded:4:resilient:vcf" builds four resilient shards.
  constexpr std::string_view kShardedPrefix = "sharded:";
  constexpr std::string_view kResilientPrefix = "resilient:";
  if (kind.rfind(kShardedPrefix, 0) == 0) {
    kind.erase(0, kShardedPrefix.size());
    const std::size_t colon = kind.find(':');
    std::size_t parsed = 0;
    unsigned n = 0;
    if (colon != std::string::npos) {
      try {
        n = static_cast<unsigned>(std::stoul(kind.substr(0, colon), &parsed));
      } catch (const std::exception&) {
        parsed = 0;
      }
    }
    if (colon == std::string::npos || parsed != colon || n == 0) {
      throw std::invalid_argument(
          "bad --filter: expected sharded:<n>:<kind> with n >= 1");
    }
    spec.shards = n;
    kind.erase(0, colon + 1);
  }
  if (kind.rfind(kResilientPrefix, 0) == 0) {
    spec.resilient = true;
    kind.erase(0, kResilientPrefix.size());
  }
  if (kind == "cf") {
    spec.kind = FilterSpec::Kind::kCF;
  } else if (kind == "vcf") {
    spec.kind = FilterSpec::Kind::kVCF;
  } else if (kind == "ivcf") {
    spec.kind = FilterSpec::Kind::kIVCF;
  } else if (kind == "dvcf") {
    spec.kind = FilterSpec::Kind::kDVCF;
  } else if (kind == "kvcf") {
    spec.kind = FilterSpec::Kind::kKVCF;
  } else if (kind == "dcf") {
    spec.kind = FilterSpec::Kind::kDCF;
  } else if (kind == "bf") {
    spec.kind = FilterSpec::Kind::kBF;
  } else if (kind == "cbf") {
    spec.kind = FilterSpec::Kind::kCBF;
  } else if (kind == "qf") {
    spec.kind = FilterSpec::Kind::kQF;
  } else if (kind == "dlcbf") {
    spec.kind = FilterSpec::Kind::kDlCBF;
  } else if (kind == "vf") {
    spec.kind = FilterSpec::Kind::kVF;
  } else if (kind == "sscf") {
    spec.kind = FilterSpec::Kind::kSsCF;
  } else {
    throw std::invalid_argument(
        "unknown --filter=" + kind +
        " (cf|vcf|ivcf|dvcf|kvcf|dcf|bf|cbf|qf|dlcbf|vf|sscf, optionally "
        "prefixed sharded:<n>: and/or resilient:)");
  }
  spec.variant = static_cast<unsigned>(flags.GetInt("variant", 4));
  spec.params = vcf::CuckooParams::ForSlotsLog2(
      static_cast<unsigned>(flags.GetInt("slots_log2", 16)));
  spec.params.fingerprint_bits =
      static_cast<unsigned>(flags.GetInt("f", 14));
  spec.params.max_kicks = static_cast<unsigned>(flags.GetInt("max_kicks", 500));
  spec.params.hash = vcf::ParseHashKind(flags.GetString("hash", "fnv"));
  spec.params.seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 0x5EEDF00D));
  spec.bits_per_item = flags.GetDouble("bits_per_item", 12.0);
  return spec;
}

int CmdBuild(Filter& filter, const Flags& flags) {
  std::string line;
  std::size_t total = 0;
  std::size_t rejected = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ++total;
    rejected += filter.InsertKey(line) ? 0 : 1;
  }
  std::cerr << "inserted " << (total - rejected) << "/" << total
            << " keys, load factor " << filter.LoadFactor() * 100.0 << "%\n";
  const std::string state = flags.GetString("state", "");
  if (state.empty()) {
    std::cerr << "no --state given; filter discarded\n";
    return rejected == 0 ? 0 : 2;
  }
  std::ofstream out(state, std::ios::binary);
  if (!out || !filter.SaveState(out)) {
    std::cerr << "error: failed to write state to " << state << "\n";
    return 1;
  }
  std::cerr << "state written to " << state << " (" << filter.MemoryBytes()
            << " bytes of table)\n";
  return rejected == 0 ? 0 : 2;
}

bool LoadInto(Filter& filter, const Flags& flags) {
  const std::string state = flags.GetString("state", "");
  if (state.empty()) {
    std::cerr << "error: --state=FILE is required\n";
    return false;
  }
  std::ifstream in(state, std::ios::binary);
  if (!in || !filter.LoadState(in)) {
    std::cerr << "error: cannot load " << state
              << " (missing file, corruption, or mismatched construction "
                 "flags)\n";
    return false;
  }
  return true;
}

int CmdQuery(Filter& filter, const Flags& flags) {
  if (!LoadInto(filter, flags)) return 1;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << (filter.ContainsKey(line) ? "maybe" : "no") << "\t" << line
              << "\n";
  }
  return 0;
}

int CmdStats(Filter& filter, const Flags& flags) {
  if (!LoadInto(filter, flags)) return 1;
  std::cout << "name:         " << filter.Name() << "\n"
            << "slots:        " << filter.SlotCount() << "\n"
            << "items:        " << filter.ItemCount() << "\n"
            << "load_factor:  " << filter.LoadFactor() * 100.0 << "%\n"
            << "table_bytes:  " << filter.MemoryBytes() << "\n"
            << "deletion:     " << (filter.SupportsDeletion() ? "yes" : "no")
            << "\n";
  return 0;
}

int Usage() {
  std::cerr
      << "usage: vcf_tool <build|query|stats> [flags]\n"
         "  common flags: --filter=cf|vcf|ivcf|dvcf|kvcf|dcf|bf|cbf|qf|dlcbf|"
         "vf|sscf\n"
         "                (prefix sharded:<n>: for n locked shards,\n"
         "                 resilient: for the stash/recovery wrapper;\n"
         "                 sharded:<n>:resilient:<kind> composes both)\n"
         "                --variant=N --slots_log2=N --f=N --hash=fnv|murmur|"
         "djb|splitmix\n"
         "                --seed=N --max_kicks=N --state=FILE\n"
         "  build reads keys from stdin (one per line) and writes --state\n"
         "  query reads keys from stdin, prints maybe/no per key\n"
         "  stats prints checkpoint metadata\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv);
  try {
    auto filter = MakeFilter(SpecFromFlags(flags));
    if (cmd == "build") return CmdBuild(*filter, flags);
    if (cmd == "query") return CmdQuery(*filter, flags);
    if (cmd == "stats") return CmdStats(*filter, flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
