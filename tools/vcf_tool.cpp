// vcf_tool — command-line front end for building, checkpointing and querying
// filters. Lets an operator try the library without writing code:
//
//   # build a VCF from newline-separated keys and checkpoint it
//   $ vcf_tool build --filter=ivcf --variant=6 --slots_log2=20
//         --state=members.vcf < members.txt
//
//   # query keys against the checkpoint (same construction flags!)
//   $ vcf_tool query --filter=ivcf --variant=6 --slots_log2=20
//         --state=members.vcf < probes.txt
//
//   # print capacity/occupancy of a checkpoint
//   $ vcf_tool stats --filter=ivcf --variant=6 --slots_log2=20
//         --state=members.vcf
//
//   # serve the same filter over TCP (vcfd in-process; docs/server.md)
//   $ vcf_tool serve --filter=ivcf --variant=6 --port=4117
//
//   # round-trip a protocol ping against a running server
//   $ vcf_tool ping --port=4117
//
// The state blob stores a digest of the construction parameters; loading
// with mismatched flags is rejected rather than silently misinterpreting
// the table. Keys are arbitrary byte strings, one per line.
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "client/vcf_client.hpp"
#include "common/timer.hpp"
#include "core/resilient_filter.hpp"
#include "harness/filter_factory.hpp"
#include "harness/flags.hpp"
#include "server/server.hpp"
#include "tiered/tiered_filter.hpp"

namespace {

using vcf::Filter;
using vcf::FilterSpec;
using vcf::Flags;

int CmdBuild(Filter& filter, const Flags& flags) {
  std::string line;
  std::size_t total = 0;
  std::size_t rejected = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ++total;
    rejected += filter.InsertKey(line) ? 0 : 1;
  }
  std::cerr << "inserted " << (total - rejected) << "/" << total
            << " keys, load factor " << filter.LoadFactor() * 100.0 << "%\n";
  const std::string state = flags.GetString("state", "");
  if (state.empty()) {
    std::cerr << "no --state given; filter discarded\n";
    return rejected == 0 ? 0 : 2;
  }
  std::ofstream out(state, std::ios::binary);
  if (!out || !filter.SaveState(out)) {
    std::cerr << "error: failed to write state to " << state << "\n";
    return 1;
  }
  std::cerr << "state written to " << state << " (" << filter.MemoryBytes()
            << " bytes of table)\n";
  return rejected == 0 ? 0 : 2;
}

bool LoadInto(Filter& filter, const Flags& flags) {
  const std::string state = flags.GetString("state", "");
  if (state.empty()) {
    std::cerr << "error: --state=FILE is required\n";
    return false;
  }
  std::ifstream in(state, std::ios::binary);
  if (!in || !filter.LoadState(in)) {
    std::cerr << "error: cannot load " << state
              << " (missing file, corruption, or mismatched construction "
                 "flags)\n";
    return false;
  }
  return true;
}

int CmdQuery(Filter& filter, const Flags& flags) {
  if (!LoadInto(filter, flags)) return 1;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << (filter.ContainsKey(line) ? "maybe" : "no") << "\t" << line
              << "\n";
  }
  return 0;
}

int CmdStats(Filter& filter, const Flags& flags) {
  if (!LoadInto(filter, flags)) return 1;
  std::cout << "name:         " << filter.Name() << "\n"
            << "slots:        " << filter.SlotCount() << "\n"
            << "items:        " << filter.ItemCount() << "\n"
            << "load_factor:  " << filter.LoadFactor() * 100.0 << "%\n"
            << "table_bytes:  " << filter.MemoryBytes() << "\n"
            << "deletion:     " << (filter.SupportsDeletion() ? "yes" : "no")
            << "\n";
  return 0;
}

// Locates the TieredFilter inside the wrapper stack (--filter=tiered:... or
// resilient:tiered:...). Sharded tiers keep one tier per locked shard and
// are not reachable as a single object; freeze/compact them via the owning
// process instead.
vcf::TieredFilter* FindTiered(Filter& filter) {
  if (auto* tiered = dynamic_cast<vcf::TieredFilter*>(&filter)) return tiered;
  if (auto* resilient = dynamic_cast<vcf::ResilientFilter*>(&filter)) {
    return dynamic_cast<vcf::TieredFilter*>(&resilient->inner());
  }
  return nullptr;
}

// `freeze` / `compact` are offline tier maintenance: load the checkpoint,
// run the lifecycle operation, write the checkpoint back in place.
int CmdTierOp(Filter& filter, const Flags& flags, bool compact) {
  vcf::TieredFilter* tiered = FindTiered(filter);
  if (tiered == nullptr) {
    std::cerr << "error: " << (compact ? "compact" : "freeze")
              << " requires --filter=tiered:... (or resilient:tiered:...)\n";
    return 64;
  }
  if (!LoadInto(filter, flags)) return 1;
  const bool ok = compact ? tiered->Compact() : tiered->Freeze();
  if (!ok) {
    std::cerr << "error: " << (compact ? "compact" : "freeze")
              << " failed (segment build did not converge); state unchanged\n";
    return 1;
  }
  const std::string state = flags.GetString("state", "");
  std::ofstream out(state, std::ios::binary | std::ios::trunc);
  if (!out || !filter.SaveState(out)) {
    std::cerr << "error: failed to write state to " << state << "\n";
    return 1;
  }
  std::cerr << (compact ? "compacted to " : "froze into ")
            << tiered->SegmentCount() << " segment(s), "
            << tiered->ItemCount() << " items, probe bytes "
            << filter.MemoryBytes() << "\n";
  return 0;
}

vcf::server::VcfServer* g_serve_server = nullptr;

void ServeSignal(int /*sig*/) {
  if (g_serve_server != nullptr) g_serve_server->RequestShutdown();
}

// `serve` runs vcfd's serving core in-process — same protocol, same
// checkpoint semantics (SIGTERM writes --state), one binary for operators
// who already have vcf_tool on the box.
int CmdServe(std::unique_ptr<Filter> filter, const FilterSpec& spec,
             const Flags& flags) {
  vcf::server::VcfServer::Options options;
  options.port = static_cast<std::uint16_t>(flags.GetInt("port", 4117));
  options.threads = static_cast<unsigned>(flags.GetInt("threads", 2));
  options.state_path = flags.GetString("state", "");
  options.filter_internally_locked = spec.shards > 0;
  vcf::server::VcfServer server(std::move(filter), options);
  std::string error;
  if (!server.TryRestore(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  g_serve_server = &server;
  std::signal(SIGTERM, ServeSignal);
  std::signal(SIGINT, ServeSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::cout << "vcfd listening on 127.0.0.1:" << server.port() << "\n"
            << std::flush;
  return server.ServeUntilShutdown() ? 0 : 1;
}

int CmdPing(const Flags& flags) {
  vcf::client::VcfClient client;
  const std::string host = flags.GetString("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.GetInt("port", 4117));
  if (!client.Connect(host, port)) {
    std::cerr << "error: " << client.last_error() << "\n";
    return 1;
  }
  const int count = static_cast<int>(flags.GetInt("count", 1));
  for (int i = 0; i < count; ++i) {
    vcf::Stopwatch sw;
    if (!client.Ping()) {
      std::cerr << "error: ping failed: " << client.last_error() << "\n";
      return 1;
    }
    std::cout << "pong from " << host << ":" << port << " in "
              << sw.ElapsedMicros() << " us\n";
  }
  return 0;
}

int Usage() {
  std::cerr
      << "usage: vcf_tool <build|query|stats|freeze|compact|serve|ping> "
         "[flags]\n"
         "  common flags:\n"
      << vcf::kFilterFlagsHelp
      << "                --state=FILE\n"
         "  build reads keys from stdin (one per line) and writes --state\n"
         "  query reads keys from stdin, prints maybe/no per key\n"
         "  stats prints checkpoint metadata\n"
         "  freeze rolls a tiered filter's front into an immutable segment\n"
         "         (requires --filter=tiered:...; rewrites --state)\n"
         "  compact merges a tiered filter's segments, dropping tombstoned\n"
         "         entries (requires --filter=tiered:...; rewrites --state)\n"
         "  serve exposes the filter over TCP (--port=N --threads=N;\n"
         "        loads --state at startup, checkpoints it on SIGTERM —\n"
         "        the vcfd daemon in-process; see docs/server.md)\n"
         "  ping round-trips a protocol ping (--host=H --port=N --count=N)\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv);
  if (flags.GetBool("help")) {
    Usage();
    return 0;
  }
  try {
    if (cmd == "ping") return CmdPing(flags);
    const FilterSpec spec = vcf::SpecFromFlags(flags);
    auto filter = MakeFilter(spec);
    if (cmd == "build") return CmdBuild(*filter, flags);
    if (cmd == "query") return CmdQuery(*filter, flags);
    if (cmd == "stats") return CmdStats(*filter, flags);
    if (cmd == "freeze") return CmdTierOp(*filter, flags, /*compact=*/false);
    if (cmd == "compact") return CmdTierOp(*filter, flags, /*compact=*/true);
    if (cmd == "serve") return CmdServe(std::move(filter), spec, flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
