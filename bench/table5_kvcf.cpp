// Table V — k-VCF with k = 2, 4, 5, ..., 10: load factor and total insert
// time with f = 16 and the relocation threshold MAX = 0 (pure multi-choice
// placement, no evictions). Paper: load factor approaches ~97% by k >= 9,
// at the cost of a longer insertion time.
#include <iostream>

#include "bench_common.hpp"
#include "core/kvcf.hpp"
#include "harness/experiment.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"k", "load_factor(%)", "total_insert_time(s)",
                      "probes/insert"});
  for (unsigned k : {2u, 4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    RunningStat lf;
    RunningStat secs;
    RunningStat probes;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      CuckooParams p = scale.Params(3100 + rep);
      p.fingerprint_bits = 16;  // paper's Table V setting
      p.max_kicks = 0;          // no reallocation at all
      KVcf filter(p, k);
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, p.slot_count(), 0, 3100 + rep * 16 + k, &members,
                  &aliens);
      const FillResult fill = FillAll(filter, members);
      lf.Add(fill.load_factor * 100.0);
      secs.Add(fill.total_seconds);
      probes.Add(static_cast<double>(filter.counters().bucket_probes) /
                 static_cast<double>(fill.attempted));
    }
    table.AddRow({std::to_string(k), TablePrinter::FormatDouble(lf.Mean(), 2),
                  TablePrinter::FormatDouble(secs.Mean(), 4),
                  TablePrinter::FormatDouble(probes.Mean(), 2)});
  }
  Emit(scale, table, "Table V: k-VCF load factor and insert time (MAX = 0, f = 16)");
  std::cout << "\nPaper's shape: load factor rises with k, ~97% by k >= 9; "
               "insert time grows with k\n(every extra candidate is an extra "
               "probe on the miss path).\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
