// Per-operation micro-benchmarks (google-benchmark): insert, positive
// lookup, negative lookup and delete latency for CF, DCF, VCF (IVCF_6),
// DVCF_8 and 8-VCF at a moderate (0.5) and a high (0.95) load factor, plus
// the PR's perf surfaces: SWAR vs scalar bucket probes (table-level and
// through the batched filter pipelines) and multi-writer scaling of the
// sharded wrapper.
//
// These complement the table/figure binaries: google-benchmark's repetition
// machinery gives tight per-op numbers, while the figure binaries follow the
// paper's fill-the-whole-table methodology.
//
// Output: the usual console table, plus a machine-readable JSON array
// written to --json_out=PATH (default BENCH_micro.json in the working
// directory; see docs/performance.md for the schema and how to read it).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hugepage.hpp"
#include "common/random.hpp"
#include "core/concurrent_filter.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/latency_histogram.hpp"
#include "segment/segment.hpp"
#include "table/packed_table.hpp"
#include "workload/key_streams.hpp"

namespace vcf::bench {
namespace {

constexpr unsigned kSlotsLog2 = 16;

FilterSpec SpecFor(int kind_tag) {
  CuckooParams p = CuckooParams::ForSlotsLog2(kSlotsLog2);
  switch (kind_tag) {
    case 0: return {FilterSpec::Kind::kCF, 0, p, 0, 0};
    case 1: return {FilterSpec::Kind::kIVCF, 6, p, 0, 0};
    case 2: return {FilterSpec::Kind::kDVCF, 8, p, 0, 0};
    case 3: return {FilterSpec::Kind::kDCF, 4, p, 0, 0};
    default: return {FilterSpec::Kind::kKVCF, 8, p, 0, 0};
  }
}

std::string TagName(int kind_tag) {
  return SpecFor(kind_tag).DisplayName();
}

/// Fills the filter to `load_pct`% and returns the stored keys.
std::vector<std::uint64_t> Prefill(Filter& filter, int load_pct,
                                   std::uint64_t stream) {
  std::vector<std::uint64_t> stored;
  const std::size_t target = filter.SlotCount() * load_pct / 100;
  for (const auto k : UniformKeys(target, stream)) {
    if (filter.Insert(k)) stored.push_back(k);
  }
  return stored;
}

/// Tail-latency sampling for the single-op families: after the timed
/// benchmark loop (whose mean google-benchmark reports untouched), run a
/// fixed pass of individually clocked ops into a LatencyHistogram and attach
/// the quantiles as counters, so BENCH_micro.json carries p50/p95/p99/p999
/// next to ns_per_op. Individual timing adds two steady_clock reads (~20 ns)
/// of overhead per sample — fine for percentiles, which is why it is kept
/// out of the mean measurement.
template <typename Op>
void AttachPercentiles(benchmark::State& state, Op&& op) {
  constexpr std::uint64_t kSamples = 20000;
  LatencyHistogram hist;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    op(i);
    const auto t1 = std::chrono::steady_clock::now();
    hist.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  state.counters["p50_ns"] = static_cast<double>(hist.P50());
  state.counters["p95_ns"] = static_cast<double>(hist.P95());
  state.counters["p99_ns"] = static_cast<double>(hist.P99());
  state.counters["p999_ns"] = static_cast<double>(hist.P999());
}

void BM_Insert(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  Prefill(*filter, load_pct, 1);
  // Insert/erase in pairs so the load factor stays pinned at the target.
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t key = UniformKeyAt(7, i++);
    benchmark::DoNotOptimize(filter->Insert(key));
    filter->Erase(key);
  }
  AttachPercentiles(state, [&](std::uint64_t s) {
    const std::uint64_t key = UniformKeyAt(7, i + s);
    benchmark::DoNotOptimize(filter->Insert(key));
    filter->Erase(key);
  });
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_InsertBfs(benchmark::State& state) {
  // Same pinned-load insert/erase cycle as BM_Insert, under the kernel's
  // opt-in breadth-first eviction (`bfs:` factory prefix): fewer table
  // writes per insert, paid for with the move-graph search.
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  FilterSpec spec = SpecFor(tag);
  spec.bfs = true;
  auto filter = MakeFilter(spec);
  Prefill(*filter, load_pct, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t key = UniformKeyAt(7, i++);
    benchmark::DoNotOptimize(filter->Insert(key));
    filter->Erase(key);
  }
  AttachPercentiles(state, [&](std::uint64_t s) {
    const std::uint64_t key = UniformKeyAt(7, i + s);
    benchmark::DoNotOptimize(filter->Insert(key));
    filter->Erase(key);
  });
  state.SetLabel(spec.DisplayName() + " @" + std::to_string(load_pct) + "%");
}

void BM_LookupHit(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  const auto stored = Prefill(*filter, load_pct, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Contains(stored[i]));
    i = (i + 1) % stored.size();
  }
  AttachPercentiles(state, [&](std::uint64_t s) {
    benchmark::DoNotOptimize(filter->Contains(stored[s % stored.size()]));
  });
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_LookupMiss(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  Prefill(*filter, load_pct, 3);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Contains(UniformKeyAt(9, i++)));
  }
  AttachPercentiles(state, [&](std::uint64_t s) {
    benchmark::DoNotOptimize(filter->Contains(UniformKeyAt(9, i + s)));
  });
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_Delete(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  const auto stored = Prefill(*filter, load_pct, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    // Erase-and-reinsert keeps the filter at its load point.
    benchmark::DoNotOptimize(filter->Erase(stored[i]));
    filter->Insert(stored[i]);
    i = (i + 1) % stored.size();
  }
  AttachPercentiles(state, [&](std::uint64_t s) {
    const std::uint64_t key = stored[s % stored.size()];
    benchmark::DoNotOptimize(filter->Erase(key));
    filter->Insert(key);
  });
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_LookupBatch(benchmark::State& state) {
  // Batched lookups amortise hash/probe latency via software prefetching
  // (VCF override); compare per-key cost against BM_LookupHit/Miss.
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  const auto stored = Prefill(*filter, load_pct, 5);
  constexpr std::size_t kBatch = 256;
  std::vector<std::uint64_t> queries(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    queries[i] = i % 2 ? stored[i % stored.size()] : UniformKeyAt(11, i);
  }
  const auto results = std::make_unique<bool[]>(kBatch);
  for (auto _ : state) {
    filter->ContainsBatch(queries, results.get());
    benchmark::DoNotOptimize(results.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_ResilientOverhead(benchmark::State& state) {
  // ResilientFilter wrapping overhead on the insert+lookup hot path with
  // all failpoints disarmed: range(0) == 0 runs a bare VCF, 1 runs
  // Resilient(VCF). The target is < 5% — with the stash empty and the load
  // below the watermark, the wrapper adds one virtual dispatch, an empty
  // vector scan and a load-factor compare per op.
  FilterSpec spec = SpecFor(1);  // IVCF_6
  spec.resilient = state.range(0) != 0;
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(spec);
  const auto stored = Prefill(*filter, load_pct, 6);
  std::uint64_t i = 0;
  std::size_t j = 0;
  for (auto _ : state) {
    const std::uint64_t key = UniformKeyAt(13, i++);
    benchmark::DoNotOptimize(filter->Insert(key));
    benchmark::DoNotOptimize(filter->Contains(stored[j]));
    filter->Erase(key);
    j = (j + 1) % stored.size();
  }
  state.SetLabel(spec.DisplayName() + " @" + std::to_string(load_pct) + "%");
}

// --- SWAR vs scalar probes ------------------------------------------------

/// Spec for the SWAR comparison benches: 2^20 slots (so the table outgrows
/// L2 and the prefetch pipeline has real cache misses to hide), b = 4 slots
/// per bucket, f fingerprint bits, SplitMix hashing so the (cheap) hash does
/// not dominate the probe cost being compared.
FilterSpec SwarSpec(int tag, unsigned f) {
  FilterSpec spec = SpecFor(tag);
  spec.params = CuckooParams::ForSlotsLog2(20);
  spec.params.fingerprint_bits = f;
  spec.params.hash = HashKind::kSplitMix;
  return spec;
}

/// Comparison arms for the probe benches. The baseline arm is the pre-SWAR,
/// pre-batching code path: one key at a time through the scalar probe loop.
enum ProbeMode : int {
  kSwarBatch = 0,    ///< batched pipeline + SWAR probes (this PR)
  kScalarBatch = 1,  ///< batched pipeline + scalar probes (isolates SWAR)
  kScalarSeq = 2,    ///< per-key calls + scalar probes (pre-PR baseline)
};

std::string SwarLabel(const FilterSpec& spec, unsigned f, int mode) {
  // "fast" is whatever probe tier the geometry selects: the SWAR word for
  // <= 64-bit buckets, the SIMD wide engine above.
  const char* arm = mode == kSwarBatch    ? " fast+batch"
                    : mode == kScalarBatch ? " scalar+batch"
                                           : " scalar+seq (baseline)";
  return spec.DisplayName() + " f=" + std::to_string(f) + arm;
}

void BM_ContainsBatchProbes(benchmark::State& state) {
  // Whole-pipeline lookup cost at range(3)% load, across the three arms of
  // ProbeMode (range(2)). swar+batch vs scalar+batch isolates the SWAR probe
  // word; swar+batch vs the scalar+seq baseline is the full win of this PR
  // (prefetch pipelining + word-at-a-time probes) over the pre-PR path.
  const int tag = static_cast<int>(state.range(0));
  const unsigned f = static_cast<unsigned>(state.range(1));
  const int mode = static_cast<int>(state.range(2));
  const int load_pct = static_cast<int>(state.range(3));
  const FilterSpec spec = SwarSpec(tag, f);
  PackedTable::ForceScalarProbes(mode != kSwarBatch);
  auto filter = MakeFilter(spec);
  PackedTable::ForceScalarProbes(false);
  const auto stored = Prefill(*filter, load_pct, 21);
  constexpr std::size_t kBatch = 256;
  std::vector<std::uint64_t> queries(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    queries[i] = i % 2 ? stored[i % stored.size()] : UniformKeyAt(23, i);
  }
  const auto results = std::make_unique<bool[]>(kBatch);
  if (mode == kScalarSeq) {
    for (auto _ : state) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        results[i] = filter->Contains(queries[i]);
      }
      benchmark::DoNotOptimize(results.get());
    }
  } else {
    for (auto _ : state) {
      filter->ContainsBatch(queries, results.get());
      benchmark::DoNotOptimize(results.get());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.SetLabel(SwarLabel(spec, f, mode) + " @" + std::to_string(load_pct) +
                 "%");
}

void BM_InsertBatchProbes(benchmark::State& state) {
  // Whole-pipeline insert at a pinned load of range(3)%: each iteration
  // inserts a 256-key batch and erases it again. All arms pay the same
  // (per-key) erase cost, so the deltas isolate the insert paths: batched
  // pipeline vs per-key inserts, SWAR vs scalar probes.
  const int tag = static_cast<int>(state.range(0));
  const unsigned f = static_cast<unsigned>(state.range(1));
  const int mode = static_cast<int>(state.range(2));
  const int load_pct = static_cast<int>(state.range(3));
  const FilterSpec spec = SwarSpec(tag, f);
  PackedTable::ForceScalarProbes(mode != kSwarBatch);
  auto filter = MakeFilter(spec);
  PackedTable::ForceScalarProbes(false);
  Prefill(*filter, load_pct, 27);
  constexpr std::size_t kBatch = 256;
  std::vector<std::uint64_t> keys(kBatch);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      keys[i] = UniformKeyAt(29, serial++);
    }
    if (mode == kScalarSeq) {
      for (const std::uint64_t k : keys) {
        benchmark::DoNotOptimize(filter->Insert(k));
      }
    } else {
      benchmark::DoNotOptimize(filter->InsertBatch(keys));
    }
    for (const std::uint64_t k : keys) filter->Erase(k);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.SetLabel(SwarLabel(spec, f, mode) + " @" + std::to_string(load_pct) +
                 "%");
}

/// The fast-path name for a table: which probe tier its geometry lands on.
std::string ProbePathName(const PackedTable& table) {
  if (table.UsesWideProbes()) return ProbeArmName(table.probe_arm());
  return table.UsesSwarProbes() ? "swar" : "scalar";
}

std::string TableLabel(const PackedTable& table, unsigned spb, unsigned f,
                       bool scalar) {
  return "PackedTable(b=" + std::to_string(spb) + ",f=" + std::to_string(f) +
         (table.layout() == TableLayout::kCacheAligned ? ",aligned) "
                                                       : ") ") +
         (scalar ? "scalar" : ProbePathName(table));
}

void BM_TableProbe(benchmark::State& state) {
  // Pure probe cost, no hashing and no filter logic: ContainsValue on a
  // half-full table via the fast path (SWAR word for <= 64-bit buckets, the
  // SIMD wide engine above) vs the scalar reference loop. range(0) = slots
  // per bucket, range(1) = slot bits, range(2) = scalar?, range(3) = layout.
  const unsigned spb = static_cast<unsigned>(state.range(0));
  const unsigned f = static_cast<unsigned>(state.range(1));
  const bool scalar = state.range(2) != 0;
  const TableLayout layout = state.range(3) != 0 ? TableLayout::kCacheAligned
                                                 : TableLayout::kPacked;
  constexpr std::size_t kBuckets = std::size_t{1} << 14;
  PackedTable table(kBuckets, spb, f, layout);
  Xoshiro256 rng(0xBE7C45ULL + f);
  const std::uint64_t vmask = (std::uint64_t{1} << f) - 1;
  for (std::size_t i = 0; i < table.slot_count() / 2; ++i) {
    table.InsertValue(rng.Below(kBuckets), rng.Below(vmask) + 1);
  }
  constexpr std::size_t kProbes = 1024;
  std::vector<std::uint64_t> buckets(kProbes);
  std::vector<std::uint64_t> values(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) {
    buckets[i] = rng.Below(kBuckets);
    values[i] = rng.Below(vmask) + 1;
  }
  std::size_t i = 0;
  if (scalar) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(table.ContainsValueScalar(buckets[i], values[i]));
      i = (i + 1) % kProbes;
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(table.ContainsValue(buckets[i], values[i]));
      i = (i + 1) % kProbes;
    }
  }
  state.SetLabel(TableLabel(table, spb, f, scalar));
}

void BM_FusedProbe(benchmark::State& state) {
  // The fused multi-candidate lookup the filters' Contains paths use: one
  // ContainsValueAny over four candidate buckets vs four sequential scalar
  // probes. Same arg layout as BM_TableProbe.
  const unsigned spb = static_cast<unsigned>(state.range(0));
  const unsigned f = static_cast<unsigned>(state.range(1));
  const bool scalar = state.range(2) != 0;
  const TableLayout layout = state.range(3) != 0 ? TableLayout::kCacheAligned
                                                 : TableLayout::kPacked;
  constexpr std::size_t kBuckets = std::size_t{1} << 14;
  PackedTable table(kBuckets, spb, f, layout);
  Xoshiro256 rng(0xF05EDULL + f);
  const std::uint64_t vmask = (std::uint64_t{1} << f) - 1;
  for (std::size_t i = 0; i < table.slot_count() / 2; ++i) {
    table.InsertValue(rng.Below(kBuckets), rng.Below(vmask) + 1);
  }
  constexpr std::size_t kProbes = 1024;
  std::vector<std::uint64_t> cand(kProbes * 4);
  std::vector<std::uint64_t> values(kProbes);
  for (std::size_t i = 0; i < kProbes * 4; ++i) cand[i] = rng.Below(kBuckets);
  for (std::size_t i = 0; i < kProbes; ++i) values[i] = rng.Below(vmask) + 1;
  std::size_t i = 0;
  if (scalar) {
    for (auto _ : state) {
      const std::uint64_t* c = cand.data() + i * 4;
      bool hit = false;
      for (unsigned j = 0; j < 4; ++j) {
        hit = hit || table.ContainsValueScalar(c[j], values[i]);
      }
      benchmark::DoNotOptimize(hit);
      i = (i + 1) % kProbes;
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          table.ContainsValueAny(cand.data() + i * 4, 4, values[i]));
      i = (i + 1) % kProbes;
    }
  }
  state.SetLabel(TableLabel(table, spb, f, scalar) + " x4");
}

// --- Immutable segment probes ---------------------------------------------

void BM_SegmentProbe(benchmark::State& state) {
  // Single-probe cost of a frozen segment (three dependent-free loads XORed
  // against the derived fingerprint), next to the mutable filters'
  // BM_LookupHit/Miss at the same 2^16-key scale. range(0) = kind
  // (0 = xor, 1 = binary fuse), range(1) = hit?
  const SegmentKind kind =
      state.range(0) == 0 ? SegmentKind::kXor : SegmentKind::kBinaryFuse;
  const bool hit = state.range(1) != 0;
  SegmentParams params;
  params.kind = kind;
  params.fingerprint_bits = 12;
  std::vector<std::uint64_t> entities;
  constexpr std::size_t kEntities = std::size_t{1} << kSlotsLog2;
  entities.reserve(kEntities);
  for (std::size_t i = 0; i < kEntities; ++i) {
    entities.push_back(UniformKeyAt(33, i));
  }
  const auto seg = ImmutableSegment::Build(entities, params);
  if (!seg.has_value()) {
    state.SkipWithError("segment build failed");
    return;
  }
  std::size_t i = 0;
  if (hit) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(seg->Contains(entities[i]));
      i = (i + 1) % entities.size();
    }
  } else {
    std::uint64_t serial = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(seg->Contains(UniformKeyAt(35, serial++)));
    }
  }
  AttachPercentiles(state, [&](std::uint64_t s) {
    benchmark::DoNotOptimize(
        seg->Contains(hit ? entities[s % entities.size()]
                          : UniformKeyAt(37, s)));
  });
  state.SetLabel(std::string(kind == SegmentKind::kXor ? "SegmentXor"
                                                       : "SegmentBFuse") +
                 "(f=12) " + (hit ? "hit" : "miss"));
}

// --- Concurrent reader scaling (seqlock vs shared_mutex) ------------------

void BM_ConcurrentLookupScaling(benchmark::State& state) {
  // Lock-free optimistic lookups (the per-filter seqlock this PR adds) vs
  // the classic shared_mutex read path, at 1/2/4/8 threads with 0% or 10%
  // of iterations mutating. range(0) != 0 enables the seqlock path,
  // range(1) is the writer percentage; the measured op is a 256-key
  // ContainsBatch (the server's hot lookup shape). NOTE: with more threads
  // than cores the gap mostly measures lock-holder preemption — a reader
  // holding shared_mutex blocks every writer for a whole scheduling
  // quantum when preempted, while seqlock readers block nobody
  // (docs/performance.md#reader-scaling).
  static std::unique_ptr<ConcurrentFilter> shared;
  const bool seqlock = state.range(0) != 0;
  const int writer_pct = static_cast<int>(state.range(1));
  if (state.thread_index() == 0) {
    FilterSpec spec = SpecFor(1);  // IVCF_6
    spec.params.hash = HashKind::kSplitMix;
    shared = std::make_unique<ConcurrentFilter>(MakeFilter(spec));
    shared->SetOptimisticReads(seqlock);
    Prefill(*shared, 50, 41);
  }
  // Query construction must not touch `shared` (only thread 0 may, before
  // the start barrier): derive likely-hits straight from the prefill
  // stream (41) and misses from a disjoint stream.
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kPrefilled = (std::size_t{1} << kSlotsLog2) / 2;
  std::vector<std::uint64_t> queries(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    queries[i] = i % 2 ? UniformKeyAt(41, (i * 7919) % kPrefilled)
                       : UniformKeyAt(43, i);
  }
  const auto results = std::make_unique<bool[]>(kBatch);
  const std::uint64_t stream =
      200 + static_cast<std::uint64_t>(state.thread_index());
  std::uint64_t i = 0;
  std::int64_t batches = 0;
  for (auto _ : state) {
    if (writer_pct != 0 &&
        i % static_cast<std::uint64_t>(100 / writer_pct) == 0) {
      const std::uint64_t key = UniformKeyAt(stream, i);
      shared->Insert(key);
      shared->Erase(key);
    } else {
      shared->ContainsBatch(queries, results.get());
      benchmark::DoNotOptimize(results.get());
      ++batches;
    }
    ++i;
  }
  state.SetItemsProcessed(batches * static_cast<std::int64_t>(kBatch));
  state.SetLabel(std::string("Concurrent(IVCF_6) ") +
                 (seqlock ? "seqlock" : "shared_mutex") +
                 " writers=" + std::to_string(writer_pct) + "%");
  if (state.thread_index() == 0) {
    state.counters["seqlock_retries"] =
        static_cast<double>(shared->seqlock_retries());
    state.counters["seqlock_fallbacks"] =
        static_cast<double>(shared->seqlock_fallbacks());
    shared.reset();
  }
}

// --- TLB-reach probes (hugepage backing) -----------------------------------

void BM_TlbProbe(benchmark::State& state) {
  // TLB-sensitivity probe: a 2^26-slot table (~112 MiB of fingerprints at
  // the default f=14) probed at uniformly random keys, so with 4 KiB pages
  // nearly every probe pays a dTLB miss and page walk on top of the cache
  // miss. range(0) != 0 builds the table with `hugepage:` (THP) backing.
  // The thp_bytes counter reports how much of the table the kernel
  // actually placed on hugepages — 0 means THP is unavailable here and the
  // two arms measure the same thing (CI treats that as a graceful skip).
  const bool huge = state.range(0) != 0;
  FilterSpec spec = SpecFor(1);  // IVCF_6
  spec.params = CuckooParams::ForSlotsLog2(26);
  spec.params.hash = HashKind::kSplitMix;
  spec.hugepages = huge ? 1u : 0u;
  ResetHugepageStatsForTest();
  auto filter = MakeFilter(spec);
  const HugepageStats hp = GetHugepageStats();
  Prefill(*filter, 20, 51);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Contains(UniformKeyAt(53, i++)));
  }
  state.counters["thp_bytes"] = static_cast<double>(hp.thp_bytes);
  state.counters["hugetlb_bytes"] = static_cast<double>(hp.hugetlb_bytes);
  state.SetLabel(std::string("IVCF_6 2^26 slots ") +
                 (huge ? "hugepage" : "4k-pages"));
}

// --- Sharded multi-writer scaling ----------------------------------------

void BM_ShardedInsertMT(benchmark::State& state) {
  // Multi-writer insert+erase throughput through the sharded wrapper:
  // range(0) shards, run at ->Threads(1) and ->Threads(4). With one shard
  // every writer serialises on the same lock; with four, writers mostly
  // land on distinct shards. NOTE: thread scaling needs as many cores as
  // threads — on a single-core host the 4-thread numbers only measure lock
  // handoff (docs/performance.md).
  static std::unique_ptr<Filter> shared;
  if (state.thread_index() == 0) {
    FilterSpec spec = SpecFor(1);  // IVCF_6
    spec.params.hash = HashKind::kSplitMix;
    spec.shards = static_cast<unsigned>(state.range(0));
    shared = MakeFilter(spec);
    Prefill(*shared, 50, 31);
  }
  const std::uint64_t stream = 100 + static_cast<std::uint64_t>(state.thread_index());
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t key = UniformKeyAt(stream, i++);
    benchmark::DoNotOptimize(shared->Insert(key));
    shared->Erase(key);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("Sharded" + std::to_string(state.range(0)) +
                 "(IVCF_6) writers=" + std::to_string(state.threads()));
  if (state.thread_index() == 0) shared.reset();
}

void AllVariants(benchmark::internal::Benchmark* b) {
  for (int tag = 0; tag <= 4; ++tag) {
    b->Args({tag, 50});
    b->Args({tag, 95});
  }
}

void SwarVariants(benchmark::internal::Benchmark* b) {
  // CF and VCF (tags 0 and 1), f in {8, 12, 16}, all three ProbeMode arms,
  // at a moderate (50%) and a high (90%) load. High load is the regime the
  // paper cares about — buckets are mostly full, so every probe scans the
  // whole word and the SWAR win is largest. Tag 4 (8-VCF, slot = f + 3
  // bits) rides the same grid: at f >= 14 its buckets exceed 64 bits, so
  // the fast arm is the SIMD wide engine rather than the SWAR word.
  for (int tag : {0, 1, 4}) {
    for (int f : {8, 12, 16}) {
      for (int load : {50, 90}) {
        b->Args({tag, f, kSwarBatch, load});
        b->Args({tag, f, kScalarBatch, load});
        b->Args({tag, f, kScalarSeq, load});
      }
    }
  }
}

BENCHMARK(BM_Insert)->Apply(AllVariants);
BENCHMARK(BM_InsertBfs)->Apply(AllVariants);
BENCHMARK(BM_LookupHit)->Apply(AllVariants);
BENCHMARK(BM_LookupMiss)->Apply(AllVariants);
BENCHMARK(BM_Delete)->Apply(AllVariants);
BENCHMARK(BM_LookupBatch)->Apply(AllVariants);
BENCHMARK(BM_ResilientOverhead)
    ->Args({0, 50})
    ->Args({1, 50})
    ->Args({0, 90})
    ->Args({1, 90});
BENCHMARK(BM_ContainsBatchProbes)->Apply(SwarVariants);
BENCHMARK(BM_InsertBatchProbes)->Apply(SwarVariants);
BENCHMARK(BM_TableProbe)
    // <= 64-bit buckets: SWAR word path vs scalar.
    ->Args({4, 8, 0, 0})->Args({4, 8, 1, 0})
    ->Args({4, 12, 0, 0})->Args({4, 12, 1, 0})
    ->Args({4, 16, 0, 0})->Args({4, 16, 1, 0})
    // > 64-bit buckets: SIMD wide engine vs scalar.
    ->Args({4, 17, 0, 0})->Args({4, 17, 1, 0})
    ->Args({8, 12, 0, 0})->Args({8, 12, 1, 0})
    ->Args({8, 16, 0, 0})->Args({8, 16, 1, 0})
    ->Args({8, 20, 0, 0})->Args({8, 20, 1, 0})
    // Cache-aligned layout: same probes, power-of-two stride.
    ->Args({4, 17, 0, 1})
    ->Args({8, 16, 0, 1})->Args({8, 16, 1, 1})
    ->Args({8, 20, 0, 1});
BENCHMARK(BM_FusedProbe)
    ->Args({4, 12, 0, 0})->Args({4, 12, 1, 0})
    ->Args({4, 17, 0, 0})->Args({4, 17, 1, 0})
    ->Args({8, 16, 0, 0})->Args({8, 16, 1, 0})
    ->Args({8, 16, 0, 1});
BENCHMARK(BM_SegmentProbe)
    ->Args({0, 1})->Args({0, 0})
    ->Args({1, 1})->Args({1, 0});
BENCHMARK(BM_ShardedInsertMT)
    ->Args({1})->Args({4})
    ->Threads(1)->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_ConcurrentLookupScaling)
    ->Args({0, 0})->Args({1, 0})
    ->Args({0, 10})->Args({1, 10})
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_TlbProbe)->Args({0})->Args({1});

// --- Reporting ------------------------------------------------------------

/// Console output as usual, plus every run collected into a flat record for
/// the BENCH_micro.json side file (schema: docs/performance.md).
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;    ///< full benchmark name, e.g. "BM_Insert/0/50"
    std::string op;      ///< benchmark family, e.g. "Insert"
    std::string filter;  ///< the run's label (filter + configuration)
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
    std::int64_t threads = 1;
    double p50_ns = 0.0;  ///< 0 when the family does not sample percentiles
    double p95_ns = 0.0;
    double p99_ns = 0.0;
    double p999_ns = 0.0;
    double seqlock_retries = 0.0;   ///< ConcurrentLookupScaling seqlock arm
    double seqlock_fallbacks = 0.0;
    double thp_bytes = 0.0;         ///< TlbProbe: THP actually backing the table
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.op = e.name.substr(0, e.name.find('/'));
      if (e.op.rfind("BM_", 0) == 0) e.op.erase(0, 3);
      e.filter = run.report_label;
      // GetAdjustedRealTime is in the run's time unit (ns by default).
      e.ns_per_op = run.GetAdjustedRealTime();
      // google-benchmark only materialises an items_per_second counter for
      // families that call SetItemsProcessed; for the per-op families derive
      // it from the op latency so the JSON never carries a bogus 0.
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end() && it->second > 0.0) {
        e.items_per_second = it->second;
      } else if (e.ns_per_op > 0.0) {
        e.items_per_second = 1e9 / e.ns_per_op;
      }
      const auto counter = [&run](const char* name) {
        const auto c = run.counters.find(name);
        return c != run.counters.end() ? static_cast<double>(c->second) : 0.0;
      };
      e.p50_ns = counter("p50_ns");
      e.p95_ns = counter("p95_ns");
      e.p99_ns = counter("p99_ns");
      e.p999_ns = counter("p999_ns");
      e.seqlock_retries = counter("seqlock_retries");
      e.seqlock_fallbacks = counter("seqlock_fallbacks");
      e.thp_bytes = counter("thp_bytes");
      e.threads = run.threads;
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "  {\"name\": \"" << e.name << "\", \"op\": \"" << e.op
          << "\", \"filter\": \"" << e.filter << "\", \"ns_per_op\": "
          << e.ns_per_op << ", \"items_per_second\": " << e.items_per_second
          << ", \"threads\": " << e.threads;
      if (e.p50_ns > 0.0) {
        out << ", \"p50_ns\": " << e.p50_ns << ", \"p95_ns\": " << e.p95_ns
            << ", \"p99_ns\": " << e.p99_ns << ", \"p999_ns\": " << e.p999_ns;
      }
      if (e.name.rfind("BM_ConcurrentLookupScaling", 0) == 0) {
        out << ", \"seqlock_retries\": " << e.seqlock_retries
            << ", \"seqlock_fallbacks\": " << e.seqlock_fallbacks;
      }
      if (e.name.rfind("BM_TlbProbe", 0) == 0) {
        out << ", \"thp_bytes\": " << e.thp_bytes;
      }
      out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.good();
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  // Peel off our own flag before google-benchmark sees the argv (it rejects
  // flags it does not know).
  std::string json_path = "BENCH_micro.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--json_out=";
    if (arg.rfind(kJsonFlag, 0) == 0) {
      json_path = std::string(arg.substr(kJsonFlag.size()));
    } else {
      args.push_back(argv[i]);
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  vcf::bench::JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (json_path != "none") {
    if (!reporter.WriteJson(json_path)) {
      std::cerr << "error: could not write " << json_path << "\n";
      return 1;
    }
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}
