// Per-operation micro-benchmarks (google-benchmark): insert, positive
// lookup, negative lookup and delete latency for CF, DCF, VCF (IVCF_6),
// DVCF_8 and 8-VCF at a moderate (0.5) and a high (0.95) load factor.
//
// These complement the table/figure binaries: google-benchmark's repetition
// machinery gives tight per-op numbers, while the figure binaries follow the
// paper's fill-the-whole-table methodology.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf::bench {
namespace {

constexpr unsigned kSlotsLog2 = 16;

FilterSpec SpecFor(int kind_tag) {
  CuckooParams p = CuckooParams::ForSlotsLog2(kSlotsLog2);
  switch (kind_tag) {
    case 0: return {FilterSpec::Kind::kCF, 0, p, 0, 0};
    case 1: return {FilterSpec::Kind::kIVCF, 6, p, 0, 0};
    case 2: return {FilterSpec::Kind::kDVCF, 8, p, 0, 0};
    case 3: return {FilterSpec::Kind::kDCF, 4, p, 0, 0};
    default: return {FilterSpec::Kind::kKVCF, 8, p, 0, 0};
  }
}

std::string TagName(int kind_tag) {
  return SpecFor(kind_tag).DisplayName();
}

/// Fills the filter to `load_pct`% and returns the stored keys.
std::vector<std::uint64_t> Prefill(Filter& filter, int load_pct,
                                   std::uint64_t stream) {
  std::vector<std::uint64_t> stored;
  const std::size_t target = filter.SlotCount() * load_pct / 100;
  for (const auto k : UniformKeys(target, stream)) {
    if (filter.Insert(k)) stored.push_back(k);
  }
  return stored;
}

void BM_Insert(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  Prefill(*filter, load_pct, 1);
  // Insert/erase in pairs so the load factor stays pinned at the target.
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t key = UniformKeyAt(7, i++);
    benchmark::DoNotOptimize(filter->Insert(key));
    filter->Erase(key);
  }
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_LookupHit(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  const auto stored = Prefill(*filter, load_pct, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Contains(stored[i]));
    i = (i + 1) % stored.size();
  }
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_LookupMiss(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  Prefill(*filter, load_pct, 3);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Contains(UniformKeyAt(9, i++)));
  }
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_Delete(benchmark::State& state) {
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  const auto stored = Prefill(*filter, load_pct, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    // Erase-and-reinsert keeps the filter at its load point.
    benchmark::DoNotOptimize(filter->Erase(stored[i]));
    filter->Insert(stored[i]);
    i = (i + 1) % stored.size();
  }
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_LookupBatch(benchmark::State& state) {
  // Batched lookups amortise hash/probe latency via software prefetching
  // (VCF override); compare per-key cost against BM_LookupHit/Miss.
  const int tag = static_cast<int>(state.range(0));
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(SpecFor(tag));
  const auto stored = Prefill(*filter, load_pct, 5);
  constexpr std::size_t kBatch = 256;
  std::vector<std::uint64_t> queries(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    queries[i] = i % 2 ? stored[i % stored.size()] : UniformKeyAt(11, i);
  }
  const auto results = std::make_unique<bool[]>(kBatch);
  for (auto _ : state) {
    filter->ContainsBatch(queries, results.get());
    benchmark::DoNotOptimize(results.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.SetLabel(TagName(tag) + " @" + std::to_string(load_pct) + "%");
}

void BM_ResilientOverhead(benchmark::State& state) {
  // ResilientFilter wrapping overhead on the insert+lookup hot path with
  // all failpoints disarmed: range(0) == 0 runs a bare VCF, 1 runs
  // Resilient(VCF). The target is < 5% — with the stash empty and the load
  // below the watermark, the wrapper adds one virtual dispatch, an empty
  // vector scan and a load-factor compare per op.
  FilterSpec spec = SpecFor(1);  // IVCF_6
  spec.resilient = state.range(0) != 0;
  const int load_pct = static_cast<int>(state.range(1));
  auto filter = MakeFilter(spec);
  const auto stored = Prefill(*filter, load_pct, 6);
  std::uint64_t i = 0;
  std::size_t j = 0;
  for (auto _ : state) {
    const std::uint64_t key = UniformKeyAt(13, i++);
    benchmark::DoNotOptimize(filter->Insert(key));
    benchmark::DoNotOptimize(filter->Contains(stored[j]));
    filter->Erase(key);
    j = (j + 1) % stored.size();
  }
  state.SetLabel(spec.DisplayName() + " @" + std::to_string(load_pct) + "%");
}

void AllVariants(benchmark::internal::Benchmark* b) {
  for (int tag = 0; tag <= 4; ++tag) {
    b->Args({tag, 50});
    b->Args({tag, 95});
  }
}

BENCHMARK(BM_Insert)->Apply(AllVariants);
BENCHMARK(BM_LookupHit)->Apply(AllVariants);
BENCHMARK(BM_LookupMiss)->Apply(AllVariants);
BENCHMARK(BM_Delete)->Apply(AllVariants);
BENCHMARK(BM_LookupBatch)->Apply(AllVariants);
BENCHMARK(BM_ResilientOverhead)
    ->Args({0, 50})
    ->Args({1, 50})
    ->Args({0, 90})
    ->Args({1, 90});

}  // namespace
}  // namespace vcf::bench

BENCHMARK_MAIN();
