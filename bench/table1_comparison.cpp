// Table I — "Comparison of Data structures": space, throughput and deletion
// support for BF, CBF, CF, 4-ary CF (DCF) and VCF, normalised to BF.
//
// The paper's column semantics: Space is bits/item relative to a plain BF at
// the same false-positive target; Throughput is insertion throughput
// relative to BF; Deletion is structural. We measure all three empirically:
// each structure is filled from the same key stream, timed, and its
// bits-per-stored-item computed from its real memory footprint.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  // All cuckoo structures: f = 14 (paper default) -> compare BF/CBF at the
  // equivalent bits-per-item budget so FPRs are in the same regime.
  const double bloom_bits_per_item = 14.0;

  std::vector<FilterSpec> specs = {
      {FilterSpec::Kind::kBF, 0, scale.Params(1), bloom_bits_per_item, 0},
      {FilterSpec::Kind::kCBF, 0, scale.Params(2), bloom_bits_per_item, 0},
      {FilterSpec::Kind::kCF, 0, scale.Params(3), 0, 0},
      {FilterSpec::Kind::kDCF, 4, scale.Params(4), 0, 0},
      {FilterSpec::Kind::kIVCF, 6, scale.Params(5), 0, 0},  // the paper's VCF
  };

  struct Row {
    std::string name;
    RunningStat bits_per_item;
    RunningStat insert_mops;
    RunningStat lookup_mops;
    RunningStat fpr;
    bool deletion = false;
  };
  std::vector<Row> rows(specs.size());

  const std::size_t n = scale.slots() * 95 / 100;
  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, n, n, rep, &members, &aliens);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto filter = MakeFilter(specs[i]);
      const FillResult fill = FillAll(*filter, members);
      const double lookup_us = MeasureLookupMicros(*filter, members);
      rows[i].name = filter->Name();
      rows[i].deletion = filter->SupportsDeletion();
      rows[i].bits_per_item.Add(static_cast<double>(filter->MemoryBytes()) * 8.0 /
                                static_cast<double>(fill.stored));
      rows[i].insert_mops.Add(1.0 / fill.avg_insert_micros);
      rows[i].lookup_mops.Add(1.0 / lookup_us);
      rows[i].fpr.Add(MeasureFpr(*filter, aliens));
    }
  }

  const double bf_bits = rows[0].bits_per_item.Mean();
  const double bf_ins = rows[0].insert_mops.Mean();
  const double bf_look = rows[0].lookup_mops.Mean();

  TablePrinter table({"Structure", "Space(bits/item)", "Space(xBF)",
                      "Insert(Mops/s)", "Insert(xBF)", "Lookup(xBF)",
                      "FPR", "Deletion"});
  for (const auto& row : rows) {
    table.AddRow({row.name,
                  TablePrinter::FormatDouble(row.bits_per_item.Mean(), 2),
                  TablePrinter::FormatDouble(row.bits_per_item.Mean() / bf_bits, 2),
                  TablePrinter::FormatDouble(row.insert_mops.Mean(), 3),
                  TablePrinter::FormatDouble(row.insert_mops.Mean() / bf_ins, 2),
                  TablePrinter::FormatDouble(row.lookup_mops.Mean() / bf_look, 2),
                  TablePrinter::FormatDouble(row.fpr.Mean() * 1e3, 3) + "e-3",
                  row.deletion ? "yes" : "no"});
  }
  Emit(scale, table, "Table I: comparison of data structures");
  std::cout << "\nPaper's shape: CF-family ~10x BF insert throughput; VCF the "
               "fastest cuckoo inserter;\nDCF slowest multi-candidate; only "
               "BF lacks deletion; cuckoo space <= 1x BF at equal FPR.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
