#!/usr/bin/env python3
"""Compare a fresh bench JSON against a checked-in baseline.

Two schemas are understood (auto-detected per file):
  - micro_ops side files (docs/performance.md): a JSON array of runs, each
    with at least {"name", "ns_per_op", "items_per_second"}. Runs are
    matched by "name"; lower ns_per_op is better.
  - vcfd/vcf_loadgen server reports (BENCH_server.json): a JSON object with
    "totals"/"lookup"/"insert" sections of scalar metrics. Metrics are
    matched by "<section>.<key>"; throughput-style metrics ("throughput",
    "ops_s", "per_second") are higher-is-better, everything else (latency
    percentiles, counts of failures) lower-is-better.

A run is flagged as a regression when its fresh value is worse than
baseline * (1 + tolerance) in the metric's bad direction.

Designed for CI smoke use where runners are noisy: the default tolerance is
generous and the exit code is 0 even when regressions are found (they are
printed as GitHub ::warning:: annotations). Pass --fail-on-regression to turn
flagged regressions into a non-zero exit for local gating. A missing or
malformed BASELINE (common right after adding new bench rows) warns and
exits 0 — only a broken FRESH file is treated as a tooling failure.

Usage:
  bench/compare_bench.py FRESH BASELINE [--tolerance=0.5]
                         [--fail-on-regression] [--quiet]
"""

import argparse
import json
import sys


def load_runs(path):
    """Returns ({metric_name: value}, {config_key: value}) for either schema.

    The config map is empty for micro_ops arrays (their rows carry the
    configuration in the run name/label); for server reports it flattens
    every "config" section plus the top-level descriptive scalars
    ("host_cpus", "oversubscribed"), so unlike-config comparisons can be
    annotated instead of silently diffed.
    """
    with open(path) as f:
        data = json.load(f)
    out = {}
    config = {}
    if isinstance(data, list):
        # micro_ops schema: array of named runs.
        for run in data:
            if not isinstance(run, dict):
                continue
            name = run.get("name")
            ns = run.get("ns_per_op")
            if name is None or not isinstance(ns, (int, float)) or ns <= 0:
                continue
            out[name] = float(ns)
    elif isinstance(data, dict):
        # Server-report schema: flatten the perf sections recursively, so
        # nested reports ("replicated", the server_scaling.sh "scaling"
        # tree) compare point-by-point. "config"/"server" describe the
        # setup, not the result, and scalars outside any section (e.g.
        # "host_cpus") are descriptive too — both are skipped at any depth.
        def flatten(prefix, node):
            for key, value in node.items():
                if key == "server":
                    continue
                if key == "config" and isinstance(value, dict):
                    for ck, cv in value.items():
                        if isinstance(cv, (str, int, float, bool)):
                            config[f"{prefix}config.{ck}"] = cv
                    continue
                if isinstance(value, dict):
                    flatten(f"{prefix}{key}.", value)
                elif prefix and isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    out[f"{prefix}{key}"] = float(value)
                elif not prefix and isinstance(value, bool):
                    config[key] = value  # e.g. top-level "oversubscribed"
                elif not prefix and isinstance(value, (int, float)):
                    config[key] = value  # e.g. top-level "host_cpus"

        flatten("", data)
        if not out:
            raise ValueError(
                f"{path}: no numeric metric sections found "
                "(expected micro_ops runs or a server report with 'totals')")
    else:
        raise ValueError(
            f"{path}: expected a JSON array of runs or a server report object")
    return out, config


# Config keys whose disagreement makes a metric diff apples-to-oranges.
_LOAD_BEARING_CONFIG = (
    "threads", "processes", "host_cpus", "oversubscribed", "server_threads",
    "mode", "batch", "lookup_pct", "duration_s", "dist", "prefill",
)


def config_mismatches(fresh_cfg, base_cfg):
    """Returns [(key, fresh, base)] for load-bearing config disagreements."""
    out = []
    for key in sorted(set(fresh_cfg) | set(base_cfg)):
        leaf = key.rsplit(".", 1)[-1]
        if leaf not in _LOAD_BEARING_CONFIG:
            continue
        fv, bv = fresh_cfg.get(key), base_cfg.get(key)
        if fv != bv:
            out.append((key, fv, bv))
    return out


def higher_is_better(name):
    return any(tag in name for tag in ("throughput", "ops_s", "per_second"))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_micro.json")
    ap.add_argument("baseline", help="checked-in baseline BENCH_micro.json")
    ap.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional slowdown before a run is flagged "
             "(default 0.5 = 50%%, sized for noisy shared runners)")
    ap.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any run regresses beyond the tolerance")
    ap.add_argument("--quiet", action="store_true",
                    help="only print flagged regressions")
    args = ap.parse_args()

    try:
        fresh, fresh_cfg = load_runs(args.fresh)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        # A missing or malformed FRESH file means the bench itself broke —
        # that stays fatal.
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2
    try:
        base, base_cfg = load_runs(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        # A missing or malformed baseline is expected right after new bench
        # rows or schema changes land: warn, never crash the pipeline.
        print(f"::warning::compare_bench: baseline unusable, skipping "
              f"comparison ({e})")
        return 0

    # Unlike configurations are annotated, never silently diffed: a thread
    # count, CPU budget or workload-shape change moves the numbers for
    # reasons that are not code regressions.
    mismatched = config_mismatches(fresh_cfg, base_cfg)
    for key, fv, bv in mismatched:
        print(f"::warning::compare_bench: config mismatch {key}: "
              f"fresh={fv!r} vs baseline={bv!r} — metric deltas below "
              f"compare unlike runs")
    for side, cfg_map in (("fresh", fresh_cfg), ("baseline", base_cfg)):
        for key, value in sorted(cfg_map.items()):
            if key.endswith("oversubscribed") and value:
                warning = cfg_map.get(
                    key.rsplit("oversubscribed", 1)[0] + "cpu_warning", "")
                print(f"::warning::compare_bench: {side} run was "
                      f"CPU-oversubscribed ({key}"
                      + (f": {warning}" if warning else "") + ")")
                break

    common = sorted(set(fresh) & set(base))
    added = sorted(set(fresh) - set(base))
    removed = sorted(set(base) - set(fresh))

    regressions = []
    for name in common:
        if base[name] <= 0:
            continue  # e.g. totals.errors == 0: no meaningful ratio
        ratio = fresh[name] / base[name]
        if higher_is_better(name):
            flag = ratio < 1.0 / (1.0 + args.tolerance)
        else:
            flag = ratio > 1.0 + args.tolerance
        if flag:
            regressions.append((name, ratio))
        if not args.quiet or flag:
            marker = " <-- REGRESSION" if flag else ""
            print(f"  {name:48s} {base[name]:10.2f} -> {fresh[name]:10.2f} "
                  f"({ratio:5.2f}x){marker}")

    if not args.quiet:
        for name in added:
            print(f"  {name:48s} (new, no baseline)")
        for name in removed:
            print(f"  {name:48s} (baseline only, not run)")
        print(f"compare_bench: {len(common)} compared, {len(added)} new, "
              f"{len(removed)} missing, {len(regressions)} regression(s) "
              f"beyond {args.tolerance:.0%}"
              + (f", {len(mismatched)} config mismatch(es)"
                 if mismatched else ""))

    for name, ratio in regressions:
        # GitHub annotation; inert noise elsewhere.
        print(f"::warning::bench regression {name}: {ratio:.2f}x baseline")

    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
