#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against a checked-in baseline.

Both files use the micro_ops side-file schema (docs/performance.md): a JSON
array of runs, each with at least {"name", "ns_per_op", "items_per_second"}.
Runs are matched by "name"; a run is flagged as a regression when its fresh
ns_per_op exceeds baseline * (1 + tolerance).

Designed for CI smoke use where runners are noisy: the default tolerance is
generous and the exit code is 0 even when regressions are found (they are
printed as GitHub ::warning:: annotations). Pass --fail-on-regression to turn
flagged regressions into a non-zero exit for local gating.

Usage:
  bench/compare_bench.py FRESH BASELINE [--tolerance=0.5]
                         [--fail-on-regression] [--quiet]
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path) as f:
        runs = json.load(f)
    if not isinstance(runs, list):
        raise ValueError(f"{path}: expected a JSON array of runs")
    out = {}
    for run in runs:
        name = run.get("name")
        ns = run.get("ns_per_op")
        if name is None or not isinstance(ns, (int, float)) or ns <= 0:
            continue
        out[name] = float(ns)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_micro.json")
    ap.add_argument("baseline", help="checked-in baseline BENCH_micro.json")
    ap.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional slowdown before a run is flagged "
             "(default 0.5 = 50%%, sized for noisy shared runners)")
    ap.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any run regresses beyond the tolerance")
    ap.add_argument("--quiet", action="store_true",
                    help="only print flagged regressions")
    args = ap.parse_args()

    try:
        fresh = load_runs(args.fresh)
        base = load_runs(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        # A missing or malformed file is a tooling problem, not a perf
        # regression — always fatal.
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2

    common = sorted(set(fresh) & set(base))
    added = sorted(set(fresh) - set(base))
    removed = sorted(set(base) - set(fresh))

    regressions = []
    for name in common:
        ratio = fresh[name] / base[name]
        flag = ratio > 1.0 + args.tolerance
        if flag:
            regressions.append((name, ratio))
        if not args.quiet or flag:
            marker = " <-- REGRESSION" if flag else ""
            print(f"  {name:48s} {base[name]:10.2f} -> {fresh[name]:10.2f} "
                  f"ns/op  ({ratio:5.2f}x){marker}")

    if not args.quiet:
        for name in added:
            print(f"  {name:48s} (new, no baseline)")
        for name in removed:
            print(f"  {name:48s} (baseline only, not run)")
        print(f"compare_bench: {len(common)} compared, {len(added)} new, "
              f"{len(removed)} missing, {len(regressions)} regression(s) "
              f"beyond {args.tolerance:.0%}")

    for name, ratio in regressions:
        # GitHub annotation; inert noise elsewhere.
        print(f"::warning::bench regression {name}: {ratio:.2f}x baseline")

    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
