// elastic_ops — the elastic-capacity headline benchmark: one key set pushed
// through three ways of not knowing your cardinality up front.
//
// Scenario: N = 70% * 2^slots_log2 keys arrive one at a time. The elastic
// arm starts 8x undersized (2^(slots_log2-3) slots) and doubles through
// three watermark-triggered online migrations, paying a bounded migration
// tax on the inserts that ride through them. The dynamic arm is DynamicVcf
// chaining (new subtable per overflow — every probe fans across the chain).
// The static arm is the luxury baseline: a VCF sized at the final capacity
// from the start. The report records per-insert latency percentiles (the
// migration stall shows up in p99/p999, not the median), end-state bits/key
// and scalar/batched probe latency for all three arms, plus elastic/static
// and elastic/dynamic ratios — the elastic pitch is "probe like static,
// grow like dynamic", so the gates the CI diff watches are
// ratios_vs_static.probe_hit_ns (near 1 is good) and
// ratios_vs_dynamic.probe_hit_ns (below 1 is the win).
//
//   $ elastic_ops --slots_log2=20 --reps=5
//         --json_out=results/BENCH_elastic.json
//
// The JSON is the server-report dict schema bench/compare_bench.py
// understands ("config" is descriptive; every other numeric leaf is
// compared, lower-is-better except *_per_second).
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/dynamic_vcf.hpp"
#include "harness/filter_factory.hpp"
#include "harness/flags.hpp"
#include "metrics/latency_histogram.hpp"
#include "workload/key_streams.hpp"

namespace {

using vcf::Filter;
using vcf::FilterSpec;
using vcf::Flags;
using vcf::LatencyHistogram;
using vcf::Stopwatch;

struct ArmNumbers {
  double bits_per_key = 0.0;
  double hit_ns = 0.0;
  double miss_ns = 0.0;
  double batch_ns = 0.0;
  LatencyHistogram insert_hist;  ///< per-insert ns, migration tax included
  std::size_t rejected = 0;
  std::size_t end_slots = 0;
};

/// Sink that keeps the probe loops honest against dead-code elimination.
volatile std::size_t g_probe_sink = 0;

/// One scalar probe pass over `keys`; ns per key.
double ScalarPassNs(const Filter& filter,
                    const std::vector<std::uint64_t>& keys) {
  Stopwatch sw;
  std::size_t hits = 0;
  for (const std::uint64_t k : keys) hits += filter.Contains(k) ? 1 : 0;
  const double ns =
      static_cast<double>(sw.ElapsedNanos()) / static_cast<double>(keys.size());
  g_probe_sink = g_probe_sink + hits;
  return ns;
}

/// One batched probe pass (256-key ContainsBatch windows); ns per key.
double BatchPassNs(Filter& filter, const std::vector<std::uint64_t>& keys) {
  constexpr std::size_t kBatch = 256;
  const auto results = std::make_unique<bool[]>(kBatch);
  Stopwatch sw;
  std::size_t done = 0;
  for (std::size_t at = 0; at + kBatch <= keys.size(); at += kBatch) {
    filter.ContainsBatch({keys.data() + at, kBatch}, results.get());
    done += kBatch;
  }
  if (done == 0) return 0.0;
  return static_cast<double>(sw.ElapsedNanos()) / static_cast<double>(done);
}

void TakeBest(double* best, double pass, unsigned rep) {
  if (rep == 0 || pass < *best) *best = pass;
}

/// Timed one-at-a-time insert phase: the arm's whole growth story happens
/// here, so the histogram's tail IS the migration (or chaining) stall.
void InsertPhase(Filter& filter, const std::vector<std::uint64_t>& keys,
                 ArmNumbers* n) {
  for (const std::uint64_t k : keys) {
    Stopwatch sw;
    const bool ok = filter.Insert(k);
    n->insert_hist.Record(sw.ElapsedNanos());
    n->rejected += ok ? 0 : 1;
  }
  n->end_slots = filter.SlotCount();
  n->bits_per_key = 8.0 * static_cast<double>(filter.MemoryBytes()) /
                    static_cast<double>(filter.ItemCount());
}

/// Best-of-`reps` probe passes, arms interleaved within each rep so host
/// drift lands on every arm alike and the ratios stay robust.
void MeasureProbes(std::vector<std::pair<Filter*, ArmNumbers*>>& arms,
                   const std::vector<std::uint64_t>& members,
                   const std::vector<std::uint64_t>& aliens, unsigned reps) {
  for (unsigned r = 0; r < reps; ++r) {
    for (auto& [f, n] : arms) TakeBest(&n->hit_ns, ScalarPassNs(*f, members), r);
    for (auto& [f, n] : arms) TakeBest(&n->miss_ns, ScalarPassNs(*f, aliens), r);
    for (auto& [f, n] : arms) TakeBest(&n->batch_ns, BatchPassNs(*f, members), r);
  }
}

void EmitArm(std::ostream& out, const char* name, const ArmNumbers& n) {
  const LatencyHistogram& h = n.insert_hist;
  out << "  \"" << name << "\": {\"bits_per_key\": " << n.bits_per_key
      << ", \"probe_hit_ns\": " << n.hit_ns
      << ", \"probe_miss_ns\": " << n.miss_ns
      << ", \"probe_batch_ns\": " << n.batch_ns
      << ", \"insert_p50_ns\": " << h.P50()
      << ", \"insert_p99_ns\": " << h.P99()
      << ", \"insert_p999_ns\": " << h.P999()
      << ", \"insert_max_ns\": " << h.MaxNanos()
      << ", \"end_slots\": " << n.end_slots << "}";
}

int Usage(int code) {
  std::cerr << "usage: elastic_ops [--slots_log2=N (final capacity, default"
               " 20; elastic starts at N-3)]\n"
               "                   [--reps=R (default 5)]\n"
               "                   [--json_out=PATH (default"
               " BENCH_elastic.json, \"none\" to skip)]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetBool("help")) return Usage(0);
  const unsigned slots_log2 =
      static_cast<unsigned>(flags.GetInt("slots_log2", 20));
  const unsigned reps = static_cast<unsigned>(flags.GetInt("reps", 5));
  const std::string json_out =
      flags.GetString("json_out", "BENCH_elastic.json");
  if (slots_log2 < 11 || slots_log2 > 28 || reps == 0) return Usage(64);

  const std::size_t final_slots = std::size_t{1} << slots_log2;
  const std::size_t count = final_slots * 70 / 100;
  const auto members = vcf::UniformKeys(count, 91);
  const auto aliens = vcf::UniformKeys(count, 92);

  // Elastic arm: starts 8x undersized, grows online through 3 doublings.
  FilterSpec elastic_spec;
  vcf::ParseFilterKind("elastic:vcf", elastic_spec);
  elastic_spec.params = vcf::CuckooParams::ForSlotsLog2(slots_log2 - 3);
  auto elastic_arm = MakeFilter(elastic_spec);

  // Dynamic arm: DynamicVcf chaining (DCF-style, one new segment per
  // overflow) from the same undersized start.
  auto dynamic_arm = std::make_unique<vcf::DynamicVcf>(
      vcf::CuckooParams::ForSlotsLog2(slots_log2 - 3));

  // Static arm: a plain VCF already sized for the final population.
  FilterSpec static_spec;
  vcf::ParseFilterKind("vcf", static_spec);
  static_spec.params = vcf::CuckooParams::ForSlotsLog2(slots_log2);
  auto static_arm = MakeFilter(static_spec);

  ArmNumbers elastic, dynamic, fixed;
  InsertPhase(*elastic_arm, members, &elastic);
  InsertPhase(*dynamic_arm, members, &dynamic);
  InsertPhase(*static_arm, members, &fixed);
  for (const auto& [name, n] :
       std::initializer_list<std::pair<const char*, const ArmNumbers*>>{
           {"elastic", &elastic}, {"dynamic", &dynamic}, {"static", &fixed}}) {
    if (n->rejected != 0) {
      std::cerr << "error: the " << name << " arm rejected " << n->rejected
                << " keys; lower the load\n";
      return 1;
    }
  }
  // The elastic arm must have actually migrated — otherwise the insert
  // histogram measures nothing interesting.
  if (elastic.end_slots < final_slots) {
    std::cerr << "error: elastic arm ended at " << elastic.end_slots
              << " slots, expected >= " << final_slots << "\n";
    return 1;
  }
  for (const std::uint64_t k : members) {
    if (!elastic_arm->Contains(k)) {
      std::cerr << "error: elastic arm lost a key during migration\n";
      return 1;
    }
  }

  std::vector<std::pair<Filter*, ArmNumbers*>> arms = {
      {elastic_arm.get(), &elastic},
      {dynamic_arm.get(), &dynamic},
      {static_arm.get(), &fixed}};
  MeasureProbes(arms, members, aliens, reps);

  const auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  std::printf("grow-to-fit: %zu keys, final slots=2^%u, elastic start=2^%u,"
              " reps=%u\n",
              members.size(), slots_log2, slots_log2 - 3, reps);
  std::printf("  %-8s %10s %12s %12s %12s %12s %12s\n", "arm", "bits/key",
              "hit ns", "miss ns", "batch ns", "ins p50", "ins p999");
  const auto row = [](const char* name, const ArmNumbers& n) {
    std::printf("  %-8s %10.2f %12.1f %12.1f %12.1f %12" PRIu64 " %12" PRIu64
                "\n",
                name, n.bits_per_key, n.hit_ns, n.miss_ns, n.batch_ns,
                n.insert_hist.P50(), n.insert_hist.P999());
  };
  row("elastic", elastic);
  row("dynamic", dynamic);
  row("static", fixed);
  std::printf("  elastic/static  probe hit %.2fx, bits/key %.2fx\n",
              ratio(elastic.hit_ns, fixed.hit_ns),
              ratio(elastic.bits_per_key, fixed.bits_per_key));
  std::printf("  elastic/dynamic probe hit %.2fx, bits/key %.2fx\n",
              ratio(elastic.hit_ns, dynamic.hit_ns),
              ratio(elastic.bits_per_key, dynamic.bits_per_key));

  if (json_out != "none") {
    std::ofstream out(json_out);
    if (!out) {
      std::cerr << "error: cannot write " << json_out << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"config\": {\"slots_log2\": " << slots_log2
        << ", \"start_slots_log2\": " << (slots_log2 - 3)
        << ", \"keys\": " << members.size() << ", \"reps\": " << reps
        << "},\n";
    EmitArm(out, "elastic", elastic);
    out << ",\n";
    EmitArm(out, "dynamic", dynamic);
    out << ",\n";
    EmitArm(out, "static", fixed);
    out << ",\n"
        << "  \"ratios_vs_static\": {\"probe_hit_ns\": "
        << ratio(elastic.hit_ns, fixed.hit_ns) << ", \"probe_batch_ns\": "
        << ratio(elastic.batch_ns, fixed.batch_ns) << ", \"bits_per_key\": "
        << ratio(elastic.bits_per_key, fixed.bits_per_key) << "},\n"
        << "  \"ratios_vs_dynamic\": {\"probe_hit_ns\": "
        << ratio(elastic.hit_ns, dynamic.hit_ns) << ", \"probe_batch_ns\": "
        << ratio(elastic.batch_ns, dynamic.batch_ns) << ", \"bits_per_key\": "
        << ratio(elastic.bits_per_key, dynamic.bits_per_key) << "}\n"
        << "}\n";
    if (!out.good()) {
      std::cerr << "error: short write to " << json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << json_out << "\n";
  }
  return 0;
}
