// tiered_ops — the LSM-tier headline benchmark: a cold set frozen into an
// immutable segment vs the same keys held in an equivalent mutable VCF.
//
// Scenario: N = 45% * 2^slots_log2 keys are bulk-loaded, then served
// read-only. The mutable arm keeps them in a VerticalCuckooFilter at 45%
// load (slack slots cost bits; every probe fans over candidate buckets).
// The tiered arm pushes the whole set through TieredFilter, freezes and
// compacts, so lookups probe one binary-fuse/xor segment at ~1.13 cells
// per key. The report records bits/key, scalar hit/miss probe latency and
// batched probe latency for both arms plus tiered/mutable ratios — the
// PR's acceptance gate is ratios.bits_per_key <= 0.5 and
// ratios.probe_hit_ns <= 0.7.
//
//   $ tiered_ops --slots_log2=20 --segment=bfuse --reps=5
//         --json_out=results/BENCH_tiered.json
//
// The JSON is the server-report dict schema bench/compare_bench.py
// understands ("config" is descriptive; every other numeric leaf is
// compared, lower-is-better except *_per_second).
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "harness/filter_factory.hpp"
#include "harness/flags.hpp"
#include "segment/segment.hpp"
#include "tiered/tiered_filter.hpp"
#include "workload/key_streams.hpp"

namespace {

using vcf::Filter;
using vcf::FilterSpec;
using vcf::Flags;
using vcf::Stopwatch;

struct ProbeNumbers {
  double bits_per_key = 0.0;
  double hit_ns = 0.0;
  double miss_ns = 0.0;
  double batch_ns = 0.0;
};

/// Sink that keeps the probe loops honest against dead-code elimination.
volatile std::size_t g_probe_sink = 0;

/// One scalar probe pass over `keys`; ns per key.
double ScalarPassNs(const Filter& filter,
                    const std::vector<std::uint64_t>& keys) {
  Stopwatch sw;
  std::size_t hits = 0;
  for (const std::uint64_t k : keys) hits += filter.Contains(k) ? 1 : 0;
  const double ns =
      static_cast<double>(sw.ElapsedNanos()) / static_cast<double>(keys.size());
  g_probe_sink = g_probe_sink + hits;
  return ns;
}

/// One batched probe pass (256-key ContainsBatch windows); ns per key.
double BatchPassNs(Filter& filter, const std::vector<std::uint64_t>& keys) {
  constexpr std::size_t kBatch = 256;
  const auto results = std::make_unique<bool[]>(kBatch);
  Stopwatch sw;
  std::size_t done = 0;
  for (std::size_t at = 0; at + kBatch <= keys.size(); at += kBatch) {
    filter.ContainsBatch({keys.data() + at, kBatch}, results.get());
    done += kBatch;
  }
  if (done == 0) return 0.0;
  return static_cast<double>(sw.ElapsedNanos()) / static_cast<double>(done);
}

void TakeBest(double* best, double pass, unsigned rep) {
  if (rep == 0 || pass < *best) *best = pass;
}

/// Best-of-`reps` for both arms, with the arms' passes interleaved inside
/// each rep: CPU frequency drift and background load on the host land on
/// both arms of a rep alike, so the tiered/mutable ratios — the numbers the
/// acceptance gate reads — are robust against machine drift in a way two
/// back-to-back per-arm measurements are not.
void MeasureInterleaved(Filter& mutable_arm, Filter& tiered_arm,
                        const std::vector<std::uint64_t>& members,
                        const std::vector<std::uint64_t>& aliens, unsigned reps,
                        ProbeNumbers* mut, ProbeNumbers* tiered) {
  mut->bits_per_key = 8.0 * static_cast<double>(mutable_arm.MemoryBytes()) /
                      static_cast<double>(mutable_arm.ItemCount());
  tiered->bits_per_key = 8.0 * static_cast<double>(tiered_arm.MemoryBytes()) /
                         static_cast<double>(tiered_arm.ItemCount());
  for (unsigned r = 0; r < reps; ++r) {
    TakeBest(&mut->hit_ns, ScalarPassNs(mutable_arm, members), r);
    TakeBest(&tiered->hit_ns, ScalarPassNs(tiered_arm, members), r);
    TakeBest(&mut->miss_ns, ScalarPassNs(mutable_arm, aliens), r);
    TakeBest(&tiered->miss_ns, ScalarPassNs(tiered_arm, aliens), r);
    TakeBest(&mut->batch_ns, BatchPassNs(mutable_arm, members), r);
    TakeBest(&tiered->batch_ns, BatchPassNs(tiered_arm, members), r);
  }
}

void EmitArm(std::ostream& out, const char* name, const ProbeNumbers& n) {
  out << "  \"" << name << "\": {\"bits_per_key\": " << n.bits_per_key
      << ", \"probe_hit_ns\": " << n.hit_ns
      << ", \"probe_miss_ns\": " << n.miss_ns
      << ", \"probe_batch_ns\": " << n.batch_ns << "}";
}

int Usage(int code) {
  std::cerr << "usage: tiered_ops [--slots_log2=N (default 20)]\n"
               "                  [--segment=bfuse|xor (default bfuse)]\n"
               "                  [--reps=R (default 5)]\n"
               "                  [--json_out=PATH (default BENCH_tiered.json,"
               " \"none\" to skip)]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetBool("help")) return Usage(0);
  const unsigned slots_log2 =
      static_cast<unsigned>(flags.GetInt("slots_log2", 20));
  const unsigned reps = static_cast<unsigned>(flags.GetInt("reps", 5));
  const std::string segment = flags.GetString("segment", "bfuse");
  const std::string json_out = flags.GetString("json_out", "BENCH_tiered.json");
  if (slots_log2 < 8 || slots_log2 > 28 || reps == 0 ||
      (segment != "bfuse" && segment != "xor")) {
    return Usage(64);
  }

  const std::size_t slots = std::size_t{1} << slots_log2;
  const std::size_t cold = slots * 45 / 100;
  const auto members = vcf::UniformKeys(cold, 81);
  const auto aliens = vcf::UniformKeys(cold, 82);

  // Mutable arm: the cold set resident in a plain VCF at 45% load.
  FilterSpec mutable_spec;
  vcf::ParseFilterKind("vcf", mutable_spec);
  mutable_spec.params = vcf::CuckooParams::ForSlotsLog2(slots_log2);
  auto mutable_arm = MakeFilter(mutable_spec);
  std::size_t rejected = 0;
  for (const std::uint64_t k : members) {
    rejected += mutable_arm->Insert(k) ? 0 : 1;
  }
  if (rejected != 0) {
    std::cerr << "error: mutable arm rejected " << rejected
              << " cold keys; lower the load\n";
    return 1;
  }
  // Tiered arm: same spec through the tier, then freeze + compact so the
  // whole cold set lives in ONE immutable segment and the front is empty.
  FilterSpec tiered_spec = mutable_spec;
  vcf::ParseFilterKind(segment == "xor" ? "tiered:xor:vcf" : "tiered:vcf",
                       tiered_spec);
  tiered_spec.params = mutable_spec.params;
  auto tiered_arm = MakeFilter(tiered_spec);
  auto* tier = dynamic_cast<vcf::TieredFilter*>(tiered_arm.get());
  if (tier == nullptr) {
    std::cerr << "error: tiered factory did not yield a TieredFilter\n";
    return 1;
  }
  for (const std::uint64_t k : members) tiered_arm->Insert(k);
  if (!tier->Freeze() || !tier->Compact()) {
    std::cerr << "error: freeze/compact failed\n";
    return 1;
  }
  for (const std::uint64_t k : members) {
    if (!tiered_arm->Contains(k)) {
      std::cerr << "error: tier lost a cold key — aborting\n";
      return 1;
    }
  }
  ProbeNumbers mut;
  ProbeNumbers tiered;
  MeasureInterleaved(*mutable_arm, *tiered_arm, members, aliens, reps, &mut,
                     &tiered);

  // Segment build rate, measured directly on the builder (keys as
  // canonical entities): the cost of one freeze per front-full.
  vcf::SegmentParams build_params = tier->options().segment;
  double entities_per_second = 0.0;
  {
    Stopwatch sw;
    const auto seg = vcf::ImmutableSegment::Build(members, build_params);
    const double s = sw.ElapsedSeconds();
    if (!seg.has_value() || s <= 0.0) {
      std::cerr << "error: standalone segment build failed\n";
      return 1;
    }
    entities_per_second = static_cast<double>(members.size()) / s;
  }

  const double r_bits = tiered.bits_per_key / mut.bits_per_key;
  const double r_hit = tiered.hit_ns / mut.hit_ns;
  const double r_miss = tiered.miss_ns / mut.miss_ns;
  const double r_batch = tiered.batch_ns / mut.batch_ns;

  std::printf("cold set: %zu keys, slots=2^%u, segment=%s, reps=%u\n",
              members.size(), slots_log2, segment.c_str(), reps);
  std::printf("  %-8s %12s %14s %14s %15s\n", "arm", "bits/key", "hit ns/key",
              "miss ns/key", "batch ns/key");
  std::printf("  %-8s %12.2f %14.1f %14.1f %15.1f\n", "mutable",
              mut.bits_per_key, mut.hit_ns, mut.miss_ns, mut.batch_ns);
  std::printf("  %-8s %12.2f %14.1f %14.1f %15.1f  (%zu segment(s))\n",
              "tiered", tiered.bits_per_key, tiered.hit_ns, tiered.miss_ns,
              tiered.batch_ns, tier->SegmentCount());
  std::printf("  ratios   %12.2f %14.2f %14.2f %15.2f  (gate: <=0.5 bits,"
              " <=0.7 hit)\n", r_bits, r_hit, r_miss, r_batch);
  std::printf("  segment build: %.0f entities/s; sidecar %zu bytes"
              " (enumeration only, excluded from probe bits)\n",
              entities_per_second, tier->SidecarBytes());

  if (json_out != "none") {
    std::ofstream out(json_out);
    if (!out) {
      std::cerr << "error: cannot write " << json_out << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"config\": {\"slots_log2\": " << slots_log2
        << ", \"cold_keys\": " << members.size() << ", \"segment\": \""
        << segment << "\", \"reps\": " << reps
        << ", \"tiered_segments\": " << tier->SegmentCount()
        << ", \"sidecar_bytes\": " << tier->SidecarBytes() << "},\n";
    EmitArm(out, "mutable", mut);
    out << ",\n";
    EmitArm(out, "tiered", tiered);
    out << ",\n"
        << "  \"ratios\": {\"bits_per_key\": " << r_bits
        << ", \"probe_hit_ns\": " << r_hit << ", \"probe_miss_ns\": " << r_miss
        << ", \"probe_batch_ns\": " << r_batch << "},\n"
        << "  \"build\": {\"segment_entities_per_second\": "
        << entities_per_second << "}\n"
        << "}\n";
    if (!out.good()) {
      std::cerr << "error: short write to " << json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << json_out << "\n";
  }
  return 0;
}
