// Extension bench — §III-C's "one hash function for many sketches"
// methodology, quantified: standard Count-Min / Bloom (d or k independent
// hashes per op) vs their vertical-hashing counterparts (one hash + masks).
// Reports throughput, hash computations and accuracy side by side.
#include <iostream>
#include <map>
#include <memory>

#include "baselines/bloom_filter.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "metrics/stats.hpp"
#include "sketches/count_min.hpp"
#include "sketches/vbloom.hpp"

namespace vcf::bench {
namespace {

void CompareCountMin(const BenchScale& scale, TablePrinter* table) {
  const std::size_t width = 1 << 14;
  const unsigned depth = 4;
  const std::size_t updates = scale.slots();

  for (int variant = 0; variant < 2; ++variant) {
    RunningStat mops;
    RunningStat hashes_per_op;
    RunningStat mean_err;
    std::string name;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      std::unique_ptr<FrequencySketch> sketch;
      if (variant == 0) {
        sketch = std::make_unique<CountMinSketch>(width, depth, scale.hash,
                                                  1000 + rep);
      } else {
        sketch = std::make_unique<VerticalCountMin>(width, depth, scale.hash,
                                                    1000 + rep);
      }
      name = sketch->Name();
      ZipfGenerator zipf(200000, 1.0, 40 + rep);
      std::vector<std::uint64_t> stream(updates);
      for (auto& key : stream) key = zipf.Next();
      std::map<std::uint64_t, std::uint64_t> truth;
      Stopwatch watch;
      for (const auto key : stream) sketch->Update(key, 1);
      const double secs = watch.ElapsedSeconds();
      for (const auto key : stream) ++truth[key];
      double err = 0.0;
      for (const auto& [key, count] : truth) {
        err += static_cast<double>(sketch->Estimate(key) - count);
      }
      mops.Add(static_cast<double>(updates) / secs / 1e6);
      hashes_per_op.Add(static_cast<double>(sketch->counters().hash_computations) /
                        static_cast<double>(updates + truth.size()));
      mean_err.Add(err / static_cast<double>(truth.size()));
    }
    table->AddRow({name, TablePrinter::FormatDouble(mops.Mean(), 2),
                   TablePrinter::FormatDouble(hashes_per_op.Mean(), 2),
                   TablePrinter::FormatDouble(mean_err.Mean(), 3)});
  }
}

void CompareBloom(const BenchScale& scale, TablePrinter* table) {
  const std::size_t n = scale.slots();
  for (int variant = 0; variant < 2; ++variant) {
    RunningStat mops;
    RunningStat hashes_per_op;
    RunningStat fpr;
    std::string name;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      std::unique_ptr<Filter> filter;
      if (variant == 0) {
        filter = std::make_unique<BloomFilter>(n, 12.0, scale.hash, 0,
                                               2000 + rep);
      } else {
        filter = std::make_unique<VerticalBloomFilter>(n, 12.0, scale.hash, 0,
                                                       2000 + rep);
      }
      name = filter->Name();
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, n, 1 << 17, 2100 + rep, &members, &aliens);
      Stopwatch watch;
      for (const auto k : members) filter->Insert(k);
      const double secs = watch.ElapsedSeconds();
      std::size_t fp = 0;
      for (const auto a : aliens) fp += filter->Contains(a) ? 1 : 0;
      mops.Add(static_cast<double>(n) / secs / 1e6);
      hashes_per_op.Add(
          static_cast<double>(filter->counters().hash_computations) /
          static_cast<double>(n + aliens.size()));
      fpr.Add(static_cast<double>(fp) / static_cast<double>(aliens.size()) * 1e3);
    }
    table->AddRow({name, TablePrinter::FormatDouble(mops.Mean(), 2),
                   TablePrinter::FormatDouble(hashes_per_op.Mean(), 2),
                   TablePrinter::FormatDouble(fpr.Mean(), 3) + " (FPR x1e-3)"});
  }
}

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter cm({"sketch", "update Mops/s", "hashes/op",
                   "mean overestimate"});
  CompareCountMin(scale, &cm);
  Emit(scale, cm, "Extension: Count-Min with independent vs vertical hashing");

  TablePrinter bl({"filter", "insert Mops/s", "hashes/op", "accuracy"});
  CompareBloom(scale, &bl);
  Emit(scale, bl, "Extension: Bloom with independent vs vertical hashing");

  std::cout << "\nExpected: vertical variants match accuracy within noise "
               "while computing 1 hash\nper operation instead of d (or k) — "
               "the paper's sect. III-C methodology claim.\nNote: VBF rounds "
               "its bit array up to a power of two, so its FPR can sit "
               "below\nBF's here purely from extra bits; tests/sketches "
               "compares the two at equal geometry.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
