// Related-work comparison (§II of the paper, measured): every AMQ structure
// the paper reviews that this library implements — BF, CBF, dlCBF, QF, CF,
// VF, DCF — against the VCF, at a common slot budget and fingerprint width.
// Columns: sustainable load, bits per stored item, insert/lookup
// throughput, FPR, hash computations per op, deletion support.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const CuckooParams base = scale.Params(31);

  const std::vector<FilterSpec> specs = {
      {FilterSpec::Kind::kBF, 0, base, 14.0, 0},
      {FilterSpec::Kind::kCBF, 0, base, 14.0, 0},
      {FilterSpec::Kind::kDlCBF, 4, base, 0, 0},
      {FilterSpec::Kind::kQF, 0, base, 0, 0},
      {FilterSpec::Kind::kCF, 0, base, 0, 0},
      {FilterSpec::Kind::kSsCF, 0, base, 0, 0},
      {FilterSpec::Kind::kVF, 7, base, 0, 0},
      {FilterSpec::Kind::kMF, 0, base, 0, 0},
      {FilterSpec::Kind::kDCF, 4, base, 0, 0},
      {FilterSpec::Kind::kIVCF, 6, base, 0, 0},
      {FilterSpec::Kind::kDVCF, 8, base, 0, 0},
  };

  TablePrinter table({"structure", "load(%)", "bits/item", "insert(Mops/s)",
                      "lookup(Mops/s)", "FPR(x1e-3)", "hashes/op", "del"});
  for (const auto& spec : specs) {
    RunningStat load, bpi, ins, look, fpr, hashes;
    bool deletion = false;
    std::string name;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      auto filter = MakeFilter(spec);
      name = filter->Name();
      deletion = filter->SupportsDeletion();
      // Offer 95% of the structure's own slot budget — the high-occupancy
      // regime the paper targets.
      const std::size_t n = filter->SlotCount() * 95 / 100;
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, n, 1 << 17, 3200 + rep, &members, &aliens);
      const FillResult fill = FillAll(*filter, members);
      load.Add(fill.load_factor * 100.0);
      bpi.Add(static_cast<double>(filter->MemoryBytes()) * 8.0 /
              static_cast<double>(fill.stored));
      ins.Add(1.0 / fill.avg_insert_micros);
      look.Add(1.0 / MeasureLookupMicros(*filter, members));
      fpr.Add(MeasureFpr(*filter, aliens) * 1e3);
      hashes.Add(static_cast<double>(filter->counters().hash_computations) /
                 static_cast<double>(fill.attempted + members.size() +
                                     aliens.size()));
    }
    table.AddRow({name, TablePrinter::FormatDouble(load.Mean(), 2),
                  TablePrinter::FormatDouble(bpi.Mean(), 2),
                  TablePrinter::FormatDouble(ins.Mean(), 2),
                  TablePrinter::FormatDouble(look.Mean(), 2),
                  TablePrinter::FormatDouble(fpr.Mean(), 3),
                  TablePrinter::FormatDouble(hashes.Mean(), 2),
                  deletion ? "yes" : "no"});
  }
  Emit(scale, table, "Related work: every reviewed AMQ structure, one table");
  std::cout << "\nReading guide (paper's sect. II claims): CBF pays 4x BF "
               "space for deletion; dlCBF\nhalves that; QF is compact but "
               "slows near full (cluster growth); VF matches CF\nwithout "
               "power-of-two table sizes; DCF reaches VCF-grade load but "
               "lookups crawl;\nVCF keeps cuckoo-grade everything with the "
               "cheapest high-load inserts.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
