#!/usr/bin/env bash
# Sweeps vcfd across event backends (epoll / io_uring), cross-frame batch
# coalescing on/off, and pinned-shard ownership, driving each configuration
# with vcf_loadgen in pipeline mode (the frame shape the coalescer fuses)
# and recording every run's JSON under one "scaling" section:
#
#   { "host_cpus": N, "scaling": { "<label>": <loadgen report>, ... } }
#
# io_uring legs self-skip on kernels without it (vcfd --check-backend, the
# same probe CI uses). Labels encode the configuration:
# <mode>_<backend>[_nocoalesce][_pinned]_t<threads>.
#
# Every point passes --server_threads to vcf_loadgen, so when loadgen
# threads + vcfd workers exceed the host's cpus the oversubscription is
# warned about and recorded in each run's JSON ("config.oversubscribed",
# "config.cpu_warning") instead of silently skewing the numbers.
# STRICT_CPUS=1 refuses to run oversubscribed instead of warning.
#
# Usage: bench/server_scaling.sh [OUT.json]
#   BUILD=build          cmake build dir holding tools/vcfd + tools/vcf_loadgen
#   DURATION=3           measured seconds per point
#   THREADS=2            vcfd worker threads (also loadgen threads)
#   FILTER=sharded:8:vcf SLOTS_LOG2=20 PREFILL=100000
#   STRICT_CPUS=0        1 = exit instead of warn when oversubscribed
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
VCFD=$BUILD/tools/vcfd
LOADGEN=$BUILD/tools/vcf_loadgen
OUT=${1:-BENCH_server_scaling.json}
DURATION=${DURATION:-3}
THREADS=${THREADS:-2}
FILTER=${FILTER:-sharded:8:vcf}
SLOTS_LOG2=${SLOTS_LOG2:-20}
PREFILL=${PREFILL:-100000}
STRICT_CPUS=${STRICT_CPUS:-0}

# One generator + one server share this host: warn (or refuse) up front
# when the sweep cannot give every runnable thread its own cpu. The same
# check runs inside vcf_loadgen per point; this is the sweep-level summary.
HOST_CPUS=$(nproc 2>/dev/null || echo 0)
WANT=$((THREADS * 2))
LOADGEN_CPU_FLAGS=(--server_threads="$THREADS")
if [ "$STRICT_CPUS" = 1 ]; then
  LOADGEN_CPU_FLAGS+=(--strict_cpus)
fi
if [ "$HOST_CPUS" -gt 0 ] && [ "$WANT" -gt "$HOST_CPUS" ]; then
  echo "warning: $THREADS loadgen + $THREADS vcfd threads = $WANT runnable"     "threads on $HOST_CPUS cpu(s); numbers include scheduler handoff" >&2
  if [ "$STRICT_CPUS" = 1 ]; then
    echo "error: STRICT_CPUS=1 refuses an oversubscribed sweep" >&2
    exit 64
  fi
fi

for bin in "$VCFD" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $BUILD --target vcfd vcf_loadgen)" >&2
    exit 1
  fi
done

SWEEP_TMP=$(mktemp -d)
trap 'rm -rf "$SWEEP_TMP"' EXIT

# run_one LABEL MODE [extra vcfd flags...]
run_one() {
  local label=$1 mode=$2
  shift 2
  echo "== $label (mode=$mode $*)" >&2
  "$VCFD" --port=0 --threads="$THREADS" --filter="$FILTER" \
    --slots_log2="$SLOTS_LOG2" "$@" \
    >"$SWEEP_TMP/$label.out" 2>"$SWEEP_TMP/$label.err" &
  local pid=$!
  local port=""
  for _ in $(seq 100); do
    port=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' \
      "$SWEEP_TMP/$label.out")
    [ -n "$port" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "error: vcfd never listened for $label:" >&2
    cat "$SWEEP_TMP/$label.err" >&2
    return 1
  fi
  "$LOADGEN" --port="$port" --threads="$THREADS" --duration_s="$DURATION" \
    --warmup_s=0.5 --mode="$mode" --batch=64 --prefill="$PREFILL" \
    "${LOADGEN_CPU_FLAGS[@]}" \
    --json_out="$SWEEP_TMP/$label.json" >&2
  kill -TERM "$pid"
  wait "$pid"
}

# Coalescing ablation on the portable backend, then the io_uring datapath
# and the pinned-shard layout on top of it when the kernel has it.
run_one "pipeline_epoll_nocoalesce_t${THREADS}" pipeline --backend=epoll --coalesce=0
run_one "pipeline_epoll_t${THREADS}" pipeline --backend=epoll
run_one "pipeline_epoll_pinned_t${THREADS}" pipeline --backend=epoll --pin-shards
run_one "batch_epoll_t${THREADS}" batch --backend=epoll
if "$VCFD" --check-backend=io_uring >/dev/null 2>&1; then
  run_one "pipeline_io_uring_t${THREADS}" pipeline --backend=io_uring
  run_one "pipeline_io_uring_pinned_t${THREADS}" pipeline --backend=io_uring --pin-shards
  run_one "batch_io_uring_t${THREADS}" batch --backend=io_uring
else
  echo "== io_uring unavailable on this kernel; skipping its legs" >&2
fi

python3 - "$SWEEP_TMP" "$OUT" <<'EOF'
import json, os, sys
tmp, out_path = sys.argv[1], sys.argv[2]
scaling = {}
for name in sorted(os.listdir(tmp)):
    if not name.endswith(".json"):
        continue
    with open(os.path.join(tmp, name)) as f:
        scaling[name[:-5]] = json.load(f)
oversubscribed = any(
    run.get("config", {}).get("oversubscribed", False)
    for run in scaling.values())
report = {"host_cpus": os.cpu_count(), "oversubscribed": oversubscribed,
          "scaling": scaling}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
best = max(
    (run["totals"]["throughput_ops_s"], label) for label, run in scaling.items()
)
print(f"wrote {out_path}: {len(scaling)} points, "
      f"best {best[1]} at {best[0]:.0f} ops/s")
EOF
