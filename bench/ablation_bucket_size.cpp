// Ablation — slots per bucket (b). §IV of the paper argues for keeping
// b = 4: shrinking buckets to cut false positives sacrifices too much load
// factor ("VCF with buckets of size four cannot improve CF with buckets of
// size two or three under the same table size" — i.e. the knob to turn is r,
// not b). This bench quantifies that trade-off for CF and VCF side by side.
#include <iostream>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"b", "CF LF(%)", "CF FPR(x1e-3)", "VCF LF(%)",
                      "VCF FPR(x1e-3)", "VCF E0"});
  for (unsigned b : {1u, 2u, 4u, 8u}) {
    RunningStat cf_lf, cf_fpr, vcf_lf, vcf_fpr, vcf_e0;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      CuckooParams p = scale.Params(5000 + rep);
      p.slots_per_bucket = b;
      p.bucket_count = scale.slots() / b;  // equal slot budget across b
      const FilterSpec cf_spec{FilterSpec::Kind::kCF, 0, p, 0, 0};
      const FilterSpec vcf_spec{FilterSpec::Kind::kIVCF, 6, p, 0, 0};

      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, p.slot_count(), 1 << 17, 5000 + rep * 8 + b, &members,
                  &aliens);

      auto cf = MakeFilter(cf_spec);
      const FillResult cf_fill = FillAll(*cf, members);
      cf_lf.Add(cf_fill.load_factor * 100.0);
      cf_fpr.Add(MeasureFpr(*cf, aliens) * 1e3);

      auto vcf_filter = MakeFilter(vcf_spec);
      const FillResult vcf_fill = FillAll(*vcf_filter, members);
      vcf_lf.Add(vcf_fill.load_factor * 100.0);
      vcf_fpr.Add(MeasureFpr(*vcf_filter, aliens) * 1e3);
      vcf_e0.Add(vcf_fill.evictions_per_insert);
    }
    table.AddRow({std::to_string(b), TablePrinter::FormatDouble(cf_lf.Mean(), 2),
                  TablePrinter::FormatDouble(cf_fpr.Mean(), 3),
                  TablePrinter::FormatDouble(vcf_lf.Mean(), 2),
                  TablePrinter::FormatDouble(vcf_fpr.Mean(), 3),
                  TablePrinter::FormatDouble(vcf_e0.Mean(), 2)});
  }
  Emit(scale, table, "Ablation: slots per bucket (equal total slots)");
  std::cout << "\nExpected: b = 1 cannot sustain high load for either filter; "
               "FPR grows ~linearly\nwith b; b = 4 is the sweet spot the "
               "paper standardises on (sect. IV).\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
