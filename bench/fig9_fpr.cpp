// Fig. 9 — empirical false positive rate vs r (filter filled from the
// workload, then probed with 2^20 never-inserted keys), for IVCFs, DVCFs and
// the CF / DCF references. The paper reports a near-linear rise with r and
// similar IVCF/DVCF values.
#include <iostream>

#include "analysis/model.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const CuckooParams base = scale.Params(23);

  std::vector<FilterSpec> specs = {{FilterSpec::Kind::kCF, 0, base, 0, 0},
                                   {FilterSpec::Kind::kDCF, 4, base, 0, 0}};
  for (const auto& s : IvcfSweep(base)) specs.push_back(s);
  for (const auto& s : DvcfSweep(base)) specs.push_back(s);

  TablePrinter table({"filter", "r", "FPR(x1e-3)", "Eq.10 bound(x1e-3)"});
  const std::size_t n_aliens = scale.paper ? (1u << 20) : (1u << 18);
  for (const auto& spec : specs) {
    RunningStat fpr;
    RunningStat lf;
    std::string name;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      auto filter = MakeFilter(spec);
      name = filter->Name();
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, filter->SlotCount(), n_aliens, 888 + rep, &members,
                  &aliens);
      FillAll(*filter, members);
      lf.Add(filter->LoadFactor());
      fpr.Add(MeasureFpr(*filter, aliens) * 1e3);
    }
    double r = SpecTheoreticalR(spec);
    if (spec.kind == FilterSpec::Kind::kDCF) {
      r = 1.0;  // DCF always probes 4 buckets; treat as r = 1 for the bound
    }
    const double bound =
        model::FalsePositiveUpperBound(base.fingerprint_bits, r, 4, lf.Mean()) *
        1e3;
    table.AddRow({name,
                  spec.kind == FilterSpec::Kind::kDCF
                      ? "n/a"
                      : TablePrinter::FormatDouble(r, 4),
                  TablePrinter::FormatDouble(fpr.Mean(), 3),
                  TablePrinter::FormatDouble(bound, 3)});
  }
  Emit(scale, table, "Fig. 9: false positive rate vs r");
  std::cout << "\nPaper's shape: FPR rises ~linearly with r; IVCF and DVCF "
               "nearly identical;\nCF lowest (~0.49e-3 at f=14), DCF highest "
               "(~0.97e-3).\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
