// Fig. 5 — load factor for IVCFs (panel a) and DVCFs (panel b) as the filter
// size sweeps over powers of two, plus panel (c): average load factor as a
// function of r with CF (r = 0) and DCF as references.
//
// Paper setup: theta = 10..23 (n = 2^theta slots). The quick default sweeps
// 10..16; --paper extends to 10..20 (beyond that a single sweep point costs
// minutes at 1000 reps; pass --max_log2=23 to go full range).
#include <iostream>

#include "analysis/model.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

double MeanLoadFactor(const FilterSpec& spec, const BenchScale& scale,
                      unsigned slots_log2, std::uint64_t salt) {
  RunningStat lf;
  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    FilterSpec sized = spec;
    sized.params.bucket_count = std::size_t{1} << (slots_log2 - 2);
    auto filter = MakeFilter(sized);
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, filter->SlotCount(), 0, salt * 1000 + rep, &members,
                &aliens);
    lf.Add(FillAll(*filter, members).load_factor * 100.0);
  }
  return lf.Mean();
}

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const unsigned lo = static_cast<unsigned>(flags.GetInt("min_log2", 10));
  const unsigned hi = static_cast<unsigned>(
      flags.GetInt("max_log2", scale.paper ? 20 : 16));

  const CuckooParams base = scale.Params(11);
  FilterSpec cf{FilterSpec::Kind::kCF, 0, base, 0, 0};
  FilterSpec dcf{FilterSpec::Kind::kDCF, 4, base, 0, 0};
  const auto ivcfs = IvcfSweep(base);
  const auto dvcfs = DvcfSweep(base);

  // Panel (a): IVCFs vs CF across sizes.
  {
    std::vector<std::string> headers = {"slots"};
    headers.push_back("CF");
    for (const auto& s : ivcfs) headers.push_back(s.DisplayName());
    TablePrinter table(headers);
    for (unsigned log2 = lo; log2 <= hi; ++log2) {
      std::vector<std::string> row = {"2^" + std::to_string(log2)};
      row.push_back(TablePrinter::FormatDouble(
          MeanLoadFactor(cf, scale, log2, 1), 2));
      for (std::size_t i = 0; i < ivcfs.size(); ++i) {
        row.push_back(TablePrinter::FormatDouble(
            MeanLoadFactor(ivcfs[i], scale, log2, 2 + i), 2));
      }
      table.AddRow(std::move(row));
    }
    Emit(scale, table, "Fig. 5(a): IVCF load factor (%) vs filter size");
  }

  // Panel (b): DVCFs across sizes.
  {
    std::vector<std::string> headers = {"slots", "CF"};
    for (const auto& s : dvcfs) headers.push_back(s.DisplayName());
    TablePrinter table(headers);
    for (unsigned log2 = lo; log2 <= hi; ++log2) {
      std::vector<std::string> row = {"2^" + std::to_string(log2)};
      row.push_back(TablePrinter::FormatDouble(
          MeanLoadFactor(cf, scale, log2, 20), 2));
      for (std::size_t j = 0; j < dvcfs.size(); ++j) {
        row.push_back(TablePrinter::FormatDouble(
            MeanLoadFactor(dvcfs[j], scale, log2, 21 + j), 2));
      }
      table.AddRow(std::move(row));
    }
    Emit(scale, table, "Fig. 5(b): DVCF load factor (%) vs filter size");
  }

  // Panel (c): average load factor vs r at the configured size.
  {
    TablePrinter table({"filter", "r", "avg_load_factor(%)"});
    table.AddRow({"CF", "0.000",
                  TablePrinter::FormatDouble(
                      MeanLoadFactor(cf, scale, scale.slots_log2, 40), 2)});
    table.AddRow({"DCF(d=4)", "n/a",
                  TablePrinter::FormatDouble(
                      MeanLoadFactor(dcf, scale, scale.slots_log2, 41), 2)});
    for (std::size_t i = 0; i < ivcfs.size(); ++i) {
      const double r = SpecTheoreticalR(ivcfs[i]);  // Eq. 8
      table.AddRow({ivcfs[i].DisplayName(), TablePrinter::FormatDouble(r, 4),
                    TablePrinter::FormatDouble(
                        MeanLoadFactor(ivcfs[i], scale, scale.slots_log2,
                                       42 + i), 2)});
    }
    for (std::size_t j = 0; j < dvcfs.size(); ++j) {
      table.AddRow({dvcfs[j].DisplayName(),
                    TablePrinter::FormatDouble(dvcfs[j].variant / 8.0, 4),
                    TablePrinter::FormatDouble(
                        MeanLoadFactor(dvcfs[j], scale, scale.slots_log2,
                                       60 + j), 2)});
    }
    Emit(scale, table, "Fig. 5(c): average load factor vs r");
  }

  std::cout << "\nPaper's shape: load factor rises monotonically with r; IVCF"
               " slightly above DVCF at\nequal r; DVCF degrades at small "
               "filter sizes while IVCF does not; CF lowest.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
