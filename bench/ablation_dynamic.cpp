// Ablation — DynamicVcf segment chaining vs a right-sized single VCF.
//
// The paper dismisses Dynamic-Cuckoo-style chaining because every extra
// segment adds a full probe set to each lookup and stacks false-positive
// mass (§II-B). This bench quantifies that: the same key set goes into
// (a) one VCF sized to fit, and (b) a DynamicVcf built from segments of
// 1/8 that size, then lookup time and FPR are compared.
#include <iostream>

#include "bench_common.hpp"
#include "core/dynamic_vcf.hpp"
#include "core/vcf.hpp"
#include "harness/experiment.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"config", "segments", "LF(%)", "insert(us)",
                      "lookup(us)", "FPR(x1e-3)"});
  RunningStat mono_lf, mono_it, mono_qt, mono_fpr;
  RunningStat dyn_lf, dyn_it, dyn_qt, dyn_fpr, dyn_segs;
  const std::size_t n = scale.slots() * 95 / 100;

  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, n, 1 << 17, 9000 + rep, &members, &aliens);

    CuckooParams mono = scale.Params(9100 + rep);
    VerticalCuckooFilter single(mono);
    const FillResult mono_fill = FillAll(single, members);
    mono_lf.Add(mono_fill.load_factor * 100.0);
    mono_it.Add(mono_fill.avg_insert_micros);
    mono_qt.Add(MeasureLookupMicros(single, members));
    mono_fpr.Add(MeasureFpr(single, aliens) * 1e3);

    CuckooParams segment = mono;
    segment.bucket_count = mono.bucket_count / 8;  // 8 segments to cover n
    DynamicVcf chained(segment);
    const FillResult dyn_fill = FillAll(chained, members);
    dyn_lf.Add(dyn_fill.load_factor * 100.0);
    dyn_it.Add(dyn_fill.avg_insert_micros);
    dyn_qt.Add(MeasureLookupMicros(chained, members));
    dyn_fpr.Add(MeasureFpr(chained, aliens) * 1e3);
    dyn_segs.Add(static_cast<double>(chained.SegmentCount()));
  }

  table.AddRow({"single VCF", "1", TablePrinter::FormatDouble(mono_lf.Mean(), 2),
                TablePrinter::FormatDouble(mono_it.Mean(), 4),
                TablePrinter::FormatDouble(mono_qt.Mean(), 4),
                TablePrinter::FormatDouble(mono_fpr.Mean(), 3)});
  table.AddRow({"DynamicVCF (1/8 segments)",
                TablePrinter::FormatDouble(dyn_segs.Mean(), 1),
                TablePrinter::FormatDouble(dyn_lf.Mean(), 2),
                TablePrinter::FormatDouble(dyn_it.Mean(), 4),
                TablePrinter::FormatDouble(dyn_qt.Mean(), 4),
                TablePrinter::FormatDouble(dyn_fpr.Mean(), 3)});
  Emit(scale, table, "Ablation: segment chaining (DynamicVCF) vs right-sized VCF");
  std::cout << "\nExpected: chaining buys elastic capacity but multiplies "
               "lookup cost and FPR by\nroughly the live segment count — the"
               " paper's argument against DCF-style chains.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
