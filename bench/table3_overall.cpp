// Table III — the paper's headline results table: load factor (LF), average
// insert time (IT), average mixed query time (QT) and false positive rate
// (FPR) for CF, DCF and the full IVCF_1..6 / DVCF_1..8 rosters at f = 14.
#include <iostream>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const auto specs = PaperLineup(scale.Params(7));

  struct Row {
    std::string name;
    RunningStat lf, it, qt, fpr;
  };
  std::vector<Row> rows(specs.size());

  const std::size_t n = scale.slots();
  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, n, n, 50 + rep, &members, &aliens);
    const auto mixed = MixQueries(members, aliens, 0.5, 99 + rep);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto filter = MakeFilter(specs[i]);
      const FillResult fill = FillAll(*filter, members);
      rows[i].name = filter->Name();
      rows[i].lf.Add(fill.load_factor * 100.0);
      rows[i].it.Add(fill.avg_insert_micros);
      rows[i].qt.Add(MeasureLookupMicros(*filter, mixed));
      rows[i].fpr.Add(MeasureFpr(*filter, aliens) * 1e3);
    }
  }

  TablePrinter table({"Filter", "LF(%)", "IT(us)", "QT(us)", "FPR(x1e-3)"});
  for (const auto& row : rows) {
    table.AddRow({row.name, TablePrinter::FormatDouble(row.lf.Mean(), 2),
                  TablePrinter::FormatDouble(row.it.Mean(), 4),
                  TablePrinter::FormatDouble(row.qt.Mean(), 4),
                  TablePrinter::FormatDouble(row.fpr.Mean(), 3)});
  }
  Emit(scale, table, "Table III: LF / insert time / mixed query time / FPR");
  std::cout << "\nPaper's shape (2^20 slots, f=14, FNV): CF 98.16% LF with the"
               " slowest inserts among\ncuckoo variants except DCF; "
               "IVCF/DVCF raise LF to ~99.9% while cutting insert time;\n"
               "DCF has the worst QT and FPR; FPR grows with r.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
