// Fig. 6 — lookup time vs r: (a) 100% existing items, (b) 50/50 mix of
// existing and alien items, for CF, DCF, IVCF_1..6 and DVCF_1..8.
#include <iostream>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const std::string arm = ApplyProbeArmFlag(flags);
  // --b / --f override the lineup geometry: the paper default (b=4, f=14)
  // stays on the single-word SWAR path, while e.g. --b=8 --f=16 produces
  // 128-bit buckets and exercises the wide SIMD engine, which is how the
  // SIMD-on/off fig6 capture in results/ is recorded.
  CuckooParams params = scale.Params(13);
  params.slots_per_bucket =
      static_cast<unsigned>(flags.GetInt("b", params.slots_per_bucket));
  params.fingerprint_bits =
      static_cast<unsigned>(flags.GetInt("f", params.fingerprint_bits));
  const auto specs = PaperLineup(params);

  struct Row {
    std::string name;
    RunningStat positive_us, mixed_us, probes;
  };
  std::vector<Row> rows(specs.size());

  const std::size_t n = scale.slots();
  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, n, n, 300 + rep, &members, &aliens);
    const auto mixed = MixQueries(members, aliens, 0.5, 400 + rep);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto filter = MakeFilter(specs[i]);
      FillAll(*filter, members);
      rows[i].name = filter->Name();
      filter->ResetCounters();
      rows[i].positive_us.Add(MeasureLookupMicros(*filter, members));
      rows[i].mixed_us.Add(MeasureLookupMicros(*filter, mixed));
      rows[i].probes.Add(filter->counters().ProbesPerLookup());
    }
  }

  TablePrinter table({"Filter", "positive(us)", "mixed(us)",
                      "bucket_probes/lookup"});
  for (const auto& row : rows) {
    table.AddRow({row.name,
                  TablePrinter::FormatDouble(row.positive_us.Mean(), 4),
                  TablePrinter::FormatDouble(row.mixed_us.Mean(), 4),
                  TablePrinter::FormatDouble(row.probes.Mean(), 2)});
  }
  Emit(scale, table,
       "Fig. 6: lookup time for existing (a) and mixed (b) items (b=" +
           std::to_string(params.slots_per_bucket) +
           ", f=" + std::to_string(params.fingerprint_bits) +
           ", probe_arm=" + arm + ")");
  std::cout << "\nPaper's shape: IVCF a constant ~6-8% above CF (always probes"
               " 4 buckets); DVCF\ngrows with r and exceeds IVCF past r ~ 0.8;"
               " DCF slowest (base-d index conversion);\nnegative/mixed "
               "lookups cost more than positive ones.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
