// Fig. 7 — per-item insertion time for IVCFs (a) and DVCFs (b) across filter
// sizes, plus panel (c): average insertion time vs r, with CF and DCF as
// references. The paper's claim: VCF nearly halves CF's insertion time and
// DCF doubles VCF's.
#include <iostream>

#include "analysis/model.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

double MeanInsertMicros(const FilterSpec& spec, const BenchScale& scale,
                        unsigned slots_log2, std::uint64_t salt,
                        bool batched = false) {
  RunningStat it;
  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    FilterSpec sized = spec;
    sized.params.bucket_count = std::size_t{1} << (slots_log2 - 2);
    auto filter = MakeFilter(sized);
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, filter->SlotCount(), 0, salt * 1000 + rep, &members,
                &aliens);
    it.Add((batched ? FillAllBatched(*filter, members) : FillAll(*filter, members))
               .avg_insert_micros);
  }
  return it.Mean();
}

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const unsigned lo = static_cast<unsigned>(flags.GetInt("min_log2", 10));
  const unsigned hi = static_cast<unsigned>(
      flags.GetInt("max_log2", scale.paper ? 20 : 16));

  const CuckooParams base = scale.Params(17);
  FilterSpec cf{FilterSpec::Kind::kCF, 0, base, 0, 0};
  FilterSpec dcf{FilterSpec::Kind::kDCF, 4, base, 0, 0};
  const auto ivcfs = IvcfSweep(base);
  const auto dvcfs = DvcfSweep(base);

  {
    std::vector<std::string> headers = {"slots", "CF"};
    for (const auto& s : ivcfs) headers.push_back(s.DisplayName());
    TablePrinter table(headers);
    for (unsigned log2 = lo; log2 <= hi; ++log2) {
      std::vector<std::string> row = {"2^" + std::to_string(log2)};
      row.push_back(
          TablePrinter::FormatDouble(MeanInsertMicros(cf, scale, log2, 1), 4));
      for (std::size_t i = 0; i < ivcfs.size(); ++i) {
        row.push_back(TablePrinter::FormatDouble(
            MeanInsertMicros(ivcfs[i], scale, log2, 2 + i), 4));
      }
      table.AddRow(std::move(row));
    }
    Emit(scale, table, "Fig. 7(a): IVCF insert time (us/item) vs filter size");
  }
  {
    std::vector<std::string> headers = {"slots", "CF"};
    for (const auto& s : dvcfs) headers.push_back(s.DisplayName());
    TablePrinter table(headers);
    for (unsigned log2 = lo; log2 <= hi; ++log2) {
      std::vector<std::string> row = {"2^" + std::to_string(log2)};
      row.push_back(
          TablePrinter::FormatDouble(MeanInsertMicros(cf, scale, log2, 20), 4));
      for (std::size_t j = 0; j < dvcfs.size(); ++j) {
        row.push_back(TablePrinter::FormatDouble(
            MeanInsertMicros(dvcfs[j], scale, log2, 21 + j), 4));
      }
      table.AddRow(std::move(row));
    }
    Emit(scale, table, "Fig. 7(b): DVCF insert time (us/item) vs filter size");
  }
  {
    TablePrinter table({"filter", "r", "insert(us/item)"});
    table.AddRow({"CF", "0.000",
                  TablePrinter::FormatDouble(
                      MeanInsertMicros(cf, scale, scale.slots_log2, 40), 4)});
    table.AddRow({"DCF(d=4)", "n/a",
                  TablePrinter::FormatDouble(
                      MeanInsertMicros(dcf, scale, scale.slots_log2, 41), 4)});
    for (std::size_t i = 0; i < ivcfs.size(); ++i) {
      const double r = SpecTheoreticalR(ivcfs[i]);  // Eq. 8
      table.AddRow({ivcfs[i].DisplayName(), TablePrinter::FormatDouble(r, 4),
                    TablePrinter::FormatDouble(
                        MeanInsertMicros(ivcfs[i], scale, scale.slots_log2,
                                         42 + i), 4)});
    }
    for (std::size_t j = 0; j < dvcfs.size(); ++j) {
      table.AddRow({dvcfs[j].DisplayName(),
                    TablePrinter::FormatDouble(dvcfs[j].variant / 8.0, 4),
                    TablePrinter::FormatDouble(
                        MeanInsertMicros(dvcfs[j], scale, scale.slots_log2,
                                         60 + j), 4)});
    }
    Emit(scale, table, "Fig. 7(c): average insert time vs r");
  }
  {
    // Extra panel (not in the paper): the batched-insert pipeline
    // (Filter::InsertBatch, docs/performance.md) against one-at-a-time
    // inserts. Same keys, same end state — only the feeding discipline
    // differs, so the delta isolates the prefetch-pipeline win.
    FilterSpec vcf{FilterSpec::Kind::kVCF, 0, base, 0, 0};
    TablePrinter table(
        {"filter", "sequential(us/item)", "batched(us/item)", "speedup"});
    const FilterSpec* lineup[] = {&cf, &vcf};
    std::uint64_t salt = 80;
    for (const FilterSpec* s : lineup) {
      // Same salt for both runs: identical key stream, so the delta is
      // purely the feeding discipline.
      const double seq = MeanInsertMicros(*s, scale, scale.slots_log2, salt);
      const double bat =
          MeanInsertMicros(*s, scale, scale.slots_log2, salt, true);
      ++salt;
      table.AddRow({s->DisplayName(), TablePrinter::FormatDouble(seq, 4),
                    TablePrinter::FormatDouble(bat, 4),
                    TablePrinter::FormatDouble(bat > 0 ? seq / bat : 0.0, 2)});
    }
    Emit(scale, table, "Extra: batched-insert pipeline vs sequential inserts");
  }
  std::cout << "\nPaper's shape: insert time falls as r grows; VCF (max r) "
               "~half of CF; IVCF ~10%\nfaster than DVCF past r ~ 0.8; DCF "
               "~2x VCF despite fewer evictions.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
