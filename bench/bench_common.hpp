// Shared plumbing for the per-table/per-figure benchmark binaries.
//
// Every binary accepts:
//   --slots_log2=N   table size (total slots = 2^N); default 16
//   --reps=R         repetitions averaged per data point; default 3
//   --paper          paper-scale run: 2^20 slots, more reps (overrides both)
//   --workload=X     "higgs" (default; synthetic HIGGS, §VI-A) or "uniform"
//   --hash=X         fnv (default) | murmur | djb | splitmix
//   --csv=PATH       additionally dump the table as CSV
//
// Benches that probe tables also accept (via ApplyProbeArmFlag):
//   --probe_arm=X    auto (default) | scalar | swar | sse2 | avx2 | neon
//                    selects the wide-bucket dispatch arm; "off" disables
//                    the SWAR and wide engines entirely (the pre-SIMD
//                    per-slot loop), for SIMD-on/off comparisons
//
// The quick defaults keep `for b in build/bench/*; do $b; done` in the
// seconds range; --paper reproduces the paper's 2^20-slot scale.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/cuckoo_params.hpp"
#include "harness/flags.hpp"
#include "metrics/table_printer.hpp"
#include "table/packed_table.hpp"
#include "workload/key_streams.hpp"
#include "workload/synthetic_higgs.hpp"

namespace vcf::bench {

struct BenchScale {
  unsigned slots_log2 = 16;
  unsigned reps = 3;
  bool paper = false;
  std::string workload = "higgs";
  HashKind hash = HashKind::kFnv1a;
  std::string csv_path;

  std::size_t slots() const noexcept { return std::size_t{1} << slots_log2; }

  CuckooParams Params(std::uint64_t seed) const noexcept {
    CuckooParams p = CuckooParams::ForSlotsLog2(slots_log2);
    p.hash = hash;
    p.seed = seed;
    return p;
  }
};

inline BenchScale ScaleFromFlags(const Flags& flags) {
  BenchScale s;
  s.paper = flags.GetBool("paper");
  s.slots_log2 = static_cast<unsigned>(
      flags.GetInt("slots_log2", s.paper ? 20 : 16));
  s.reps = static_cast<unsigned>(flags.GetInt("reps", s.paper ? 10 : 3));
  s.workload = flags.GetString("workload", "higgs");
  s.hash = ParseHashKind(flags.GetString("hash", "fnv"));
  s.csv_path = flags.GetString("csv", "");
  return s;
}

/// Two disjoint key sets (members to insert, aliens to query) drawn from the
/// configured workload. `salt` decorrelates repetitions.
inline void MakeKeySets(const BenchScale& scale, std::size_t n_members,
                        std::size_t n_aliens, std::uint64_t salt,
                        std::vector<std::uint64_t>* members,
                        std::vector<std::uint64_t>* aliens) {
  if (scale.workload == "uniform") {
    *members = UniformKeys(n_members, 2 * salt + 1);
    *aliens = n_aliens ? UniformKeys(n_aliens, 2 * salt + 2)
                       : std::vector<std::uint64_t>{};
    return;
  }
  SyntheticHiggs gen(0x48494747ULL + salt);
  gen.DisjointKeySets(n_members, n_aliens, members, aliens);
}

/// Honours --probe_arm (see the header comment): picks the wide-engine
/// dispatch arm for tables constructed afterwards, or "off" to force the
/// scalar per-slot loop everywhere. Returns the label to print so runs are
/// self-describing. Unsupported arms warn and keep the startup default.
inline std::string ApplyProbeArmFlag(const Flags& flags) {
  const std::string arm = flags.GetString("probe_arm", "auto");
  if (arm == "off") {
    PackedTable::ForceScalarProbes(true);
    return "off";
  }
  ProbeArm parsed;
  if (ParseProbeArm(arm.c_str(), &parsed) && SetWideProbeArm(parsed)) {
    return ProbeArmName(ActiveProbeArm());
  }
  std::cerr << "warning: --probe_arm=" << arm << " unsupported here; using "
            << ProbeArmName(ActiveProbeArm()) << "\n";
  return ProbeArmName(ActiveProbeArm());
}

/// Prints the table and honours --csv.
inline void Emit(const BenchScale& scale, const TablePrinter& table,
                 const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << "(slots=2^" << scale.slots_log2 << ", reps=" << scale.reps
            << ", workload=" << scale.workload
            << ", hash=" << HashKindName(scale.hash)
            << (scale.paper ? ", PAPER SCALE" : ", quick scale")
            << "; pass --paper for the paper's 2^20-slot setup)\n\n";
  table.Print(std::cout);
  if (!scale.csv_path.empty()) {
    if (table.WriteCsv(scale.csv_path)) {
      std::cout << "\nCSV written to " << scale.csv_path << "\n";
    } else {
      std::cerr << "failed to write CSV to " << scale.csv_path << "\n";
    }
  }
}

}  // namespace vcf::bench
