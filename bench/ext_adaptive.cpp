// Extension bench — the Adaptive Cuckoo Filter ([10], cited in §I as the
// false-positive-rate line of CF improvements): a FIXED negative query set
// is probed round after round. The plain CF repeats the same false
// positives forever; the ACF adapts each detected one away, so its
// per-round false-positive count decays toward zero.
#include <iostream>
#include <vector>

#include "baselines/adaptive_cuckoo_filter.hpp"
#include "baselines/cuckoo_filter.hpp"
#include "bench_common.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  CuckooParams p = scale.Params(41);
  p.fingerprint_bits = 10;  // short fingerprints: visible FP population

  const std::size_t n = p.slot_count() * 90 / 100;
  const std::size_t n_aliens = 1 << 15;
  const unsigned rounds = 8;

  TablePrinter table({"round", "CF FPs", "ACF FPs", "ACF adaptations(total)"});
  std::vector<RunningStat> cf_fps(rounds), acf_fps(rounds), adaptations(rounds);

  for (unsigned rep = 0; rep < scale.reps; ++rep) {
    std::vector<std::uint64_t> members;
    std::vector<std::uint64_t> aliens;
    MakeKeySets(scale, n, n_aliens, 4100 + rep, &members, &aliens);
    CuckooFilter cf(p);
    AdaptiveCuckooFilter acf(p);
    for (const auto k : members) {
      cf.Insert(k);
      acf.Insert(k);
    }
    for (unsigned round = 0; round < rounds; ++round) {
      std::size_t cf_count = 0;
      std::size_t acf_count = 0;
      for (const auto a : aliens) {
        cf_count += cf.Contains(a) ? 1 : 0;
        if (acf.Contains(a)) {
          ++acf_count;
          acf.AdaptFalsePositive(a);  // backing store disproves; adapt
        }
      }
      cf_fps[round].Add(static_cast<double>(cf_count));
      acf_fps[round].Add(static_cast<double>(acf_count));
      adaptations[round].Add(static_cast<double>(acf.adaptations()));
    }
  }

  for (unsigned round = 0; round < rounds; ++round) {
    table.AddRow({std::to_string(round + 1),
                  TablePrinter::FormatDouble(cf_fps[round].Mean(), 1),
                  TablePrinter::FormatDouble(acf_fps[round].Mean(), 1),
                  TablePrinter::FormatDouble(adaptations[round].Mean(), 1)});
  }
  Emit(scale, table,
       "Extension: Adaptive CF vs CF on a recurring negative workload (f = 10)");
  std::cout << "\nExpected: CF repeats ~the same FP count every round; ACF's "
               "count collapses after\nthe first pass and stays near zero.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
