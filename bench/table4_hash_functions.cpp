// Table IV — total insertion time of CF, IVCF (max r) and DVCF (max r)
// under three hash functions: FNV, MurmurHash3 and DJB2. The paper reports
// VCF roughly halving CF's total insertion time for FNV/DJB, with a smaller
// advantage under Murmur (whose per-call cost dominates).
#include <iostream>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"hash", "CF(s)", "IVCF(s)", "DVCF(s)",
                      "IVCF/CF", "DVCF/CF"});
  for (HashKind hash : {HashKind::kFnv1a, HashKind::kMurmur3, HashKind::kDjb2}) {
    CuckooParams p = scale.Params(29);
    p.hash = hash;
    const std::vector<FilterSpec> specs = {
        {FilterSpec::Kind::kCF, 0, p, 0, 0},
        {FilterSpec::Kind::kIVCF, 6, p, 0, 0},   // max-r IVCF (paper's VCF)
        {FilterSpec::Kind::kDVCF, 8, p, 0, 0}};  // max-r DVCF
    RunningStat secs[3];
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, scale.slots(), 0, 1700 + rep, &members, &aliens);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        auto filter = MakeFilter(specs[i]);
        secs[i].Add(FillAll(*filter, members).total_seconds);
      }
    }
    table.AddRow({std::string(HashKindName(hash)),
                  TablePrinter::FormatDouble(secs[0].Mean(), 4),
                  TablePrinter::FormatDouble(secs[1].Mean(), 4),
                  TablePrinter::FormatDouble(secs[2].Mean(), 4),
                  TablePrinter::FormatDouble(secs[1].Mean() / secs[0].Mean(), 3),
                  TablePrinter::FormatDouble(secs[2].Mean() / secs[0].Mean(), 3)});
  }
  Emit(scale, table, "Table IV: total insertion time by hash function");
  std::cout << "\nPaper's shape (absolute seconds scale with their 1000-rep "
               "methodology; ratios are\nthe comparable signal): VCF ~0.5-0.6x"
               " CF for FNV/DJB, weaker advantage for Murmur.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
