// Fig. 4 — load factor achieved by VCF as the fingerprint length varies
// (paper: f = 7..18 in a table with 2^20 slots; short fingerprints collide
// and cap the occupancy, f = 18 reaches ~100%).
#include <iostream>

#include "bench_common.hpp"
#include "core/vcf.hpp"
#include "harness/experiment.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"f(bits)", "load_factor(%)", "failures", "E0"});
  for (unsigned f_bits = 7; f_bits <= 18; ++f_bits) {
    RunningStat lf;
    RunningStat failures;
    RunningStat evictions;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      CuckooParams p = scale.Params(1000 + rep);
      p.fingerprint_bits = f_bits;
      VerticalCuckooFilter filter(p);  // balanced masks: the paper's VCF
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, p.slot_count(), 0, rep * 100 + f_bits, &members,
                  &aliens);
      const FillResult fill = FillAll(filter, members);
      lf.Add(fill.load_factor * 100.0);
      failures.Add(static_cast<double>(fill.failures));
      evictions.Add(fill.evictions_per_insert);
    }
    table.AddRow({std::to_string(f_bits),
                  TablePrinter::FormatDouble(lf.Mean(), 2),
                  TablePrinter::FormatDouble(failures.Mean(), 1),
                  TablePrinter::FormatDouble(evictions.Mean(), 2)});
  }
  Emit(scale, table, "Fig. 4: VCF load factor vs fingerprint length");
  std::cout << "\nPaper's shape: ~98% at f = 7 rising to ~100% by f = 18 "
               "(2^20 slots).\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
