// Ablation — offset width. The paper derives candidate offsets from an
// f-bit hash(eta) (Fig. 1), which confines every item's candidates to one
// aligned block of 2^f buckets and makes the achievable load factor depend
// on the fingerprint length (Fig. 4). An implementation free to deviate
// could widen hash(eta) to the full index width and decouple the two. This
// bench measures both designs so the cost of paper-faithfulness is explicit:
// it is the Fig. 4 effect itself.
#include <iostream>

#include "bench_common.hpp"
#include "core/vcf.hpp"
#include "core/vertical_hashing.hpp"
#include "harness/experiment.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"f(bits)", "paper f-bit offsets LF(%)",
                      "full-width offsets LF(%)"});
  for (unsigned f_bits = 7; f_bits <= 16; ++f_bits) {
    RunningStat paper_lf;
    RunningStat wide_lf;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      CuckooParams p = scale.Params(7000 + rep);
      p.fingerprint_bits = f_bits;
      const unsigned w = p.index_bits();
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, p.slot_count(), 0, 7000 + rep * 32 + f_bits, &members,
                  &aliens);

      VerticalCuckooFilter paper_vcf(p);  // balanced masks over f bits
      paper_lf.Add(FillAll(paper_vcf, members).load_factor * 100.0);

      // Same filter, but offsets drawn from the full index width: candidates
      // can land anywhere in the table regardless of f.
      VerticalCuckooFilter wide_vcf(
          p, VerticalHasher::Balanced(w, w), "VCF-wide");
      wide_lf.Add(FillAll(wide_vcf, members).load_factor * 100.0);
    }
    table.AddRow({std::to_string(f_bits),
                  TablePrinter::FormatDouble(paper_lf.Mean(), 2),
                  TablePrinter::FormatDouble(wide_lf.Mean(), 2)});
  }
  Emit(scale, table, "Ablation: f-bit (paper) vs full-width candidate offsets");
  std::cout << "\nExpected: the full-width variant holds ~100% load at every "
               "f; the paper's f-bit\noffsets reproduce Fig. 4's climb from "
               "~98% toward 100% as f grows.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
