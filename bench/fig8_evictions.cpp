// Fig. 8 — E0, the average number of eviction (kick-out) operations per
// inserted item, as a function of r, with the Eq. 14/15 analytical
// prediction printed alongside the measurement. Paper's anchors: CF ~ 12.8,
// VCF ~ 1.27 at full fill of a 2^20-slot table.
#include <algorithm>
#include <iostream>

#include "analysis/model.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);
  const CuckooParams base = scale.Params(19);

  std::vector<FilterSpec> specs = {{FilterSpec::Kind::kCF, 0, base, 0, 0}};
  for (const auto& s : IvcfSweep(base)) specs.push_back(s);
  for (const auto& s : DvcfSweep(base)) specs.push_back(s);

  TablePrinter table({"filter", "r", "E0(measured)", "E0(Eq.14/15)",
                      "load_factor(%)"});
  for (const auto& spec : specs) {
    RunningStat e0;
    RunningStat lf;
    RunningStat lambda_ratio;
    double r = 0.0;
    std::string name;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      auto filter = MakeFilter(spec);
      name = filter->Name();
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, filter->SlotCount(), 0, 777 + rep, &members, &aliens);
      const FillResult fill = FillAll(*filter, members);
      e0.Add(fill.evictions_per_insert);
      lf.Add(fill.load_factor * 100.0);
      lambda_ratio.Add(static_cast<double>(fill.stored) /
                       static_cast<double>(fill.attempted));
    }
    r = std::max(0.0, SpecTheoreticalR(spec));
    const double predicted =
        model::E0(lambda_ratio.Mean(),
                  model::AverageInsertionCost(lf.Mean() / 100.0, r, 4));
    table.AddRow({name, TablePrinter::FormatDouble(r, 4),
                  TablePrinter::FormatDouble(e0.Mean(), 3),
                  TablePrinter::FormatDouble(predicted, 3),
                  TablePrinter::FormatDouble(lf.Mean(), 2)});
  }
  Emit(scale, table, "Fig. 8: average evictions per insert (E0) vs r");
  std::cout << "\nPaper's shape: E0 drops sharply as r grows (CF ~12.8 -> VCF"
               " ~1.27 at 2^20 slots);\nDVCF slightly above IVCF at equal r."
               "\n";

  // BFS-vs-random-walk eviction comparison: the same fill, once with the
  // default random walk and once with the kernel's breadth-first eviction
  // (`bfs:` factory prefix), across the whole kernel-ported family. BFS
  // finds the SHORTEST relocation chain, so its E0 bounds the random walk's
  // from below; the us/insert column shows what the search costs.
  const std::vector<FilterSpec> family = {
      {FilterSpec::Kind::kCF, 0, base, 0, 0},
      {FilterSpec::Kind::kVCF, 0, base, 0, 0},
      {FilterSpec::Kind::kIVCF, 3, base, 0, 0},
      {FilterSpec::Kind::kDVCF, 8, base, 0, 0},
      {FilterSpec::Kind::kKVCF, 4, base, 0, 0},
      {FilterSpec::Kind::kDCF, 4, base, 0, 0},
      {FilterSpec::Kind::kVF, 0, base, 0, 0},
      {FilterSpec::Kind::kSsCF, 0, base, 0, 0},
  };
  TablePrinter mode_table({"filter", "eviction", "E0", "fail(%)",
                           "load_factor(%)", "us/insert"});
  for (const auto& bare : family) {
    for (const bool bfs : {false, true}) {
      FilterSpec spec = bare;
      spec.bfs = bfs;
      RunningStat e0;
      RunningStat lf;
      RunningStat fail_pct;
      RunningStat us;
      for (unsigned rep = 0; rep < scale.reps; ++rep) {
        auto filter = MakeFilter(spec);
        std::vector<std::uint64_t> members;
        std::vector<std::uint64_t> aliens;
        MakeKeySets(scale, filter->SlotCount(), 0, 777 + rep, &members,
                    &aliens);
        const FillResult fill = FillAll(*filter, members);
        e0.Add(fill.evictions_per_insert);
        lf.Add(fill.load_factor * 100.0);
        fail_pct.Add(100.0 * static_cast<double>(fill.failures) /
                     static_cast<double>(fill.attempted));
        us.Add(fill.avg_insert_micros);
      }
      mode_table.AddRow({bare.DisplayName(), bfs ? "bfs" : "random-walk",
                         TablePrinter::FormatDouble(e0.Mean(), 3),
                         TablePrinter::FormatDouble(fail_pct.Mean(), 3),
                         TablePrinter::FormatDouble(lf.Mean(), 2),
                         TablePrinter::FormatDouble(us.Mean(), 3)});
    }
  }
  std::cout << "\n== Fig. 8 addendum: BFS vs random-walk eviction (kernel "
               "family) ==\n\n";
  mode_table.Print(std::cout);
  std::cout << "\nBFS applies the shortest relocation chain it finds, so its "
               "E0 lower-bounds the\nrandom walk's at equal load; the price "
               "is the per-insert search time.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
