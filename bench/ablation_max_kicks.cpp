// Ablation — the relocation threshold MAX. The paper fixes MAX = 500 (§VI-A)
// and sets MAX = 0 for Table V; this bench sweeps the full range to show
// (a) how much load factor each extra kick budget buys for CF vs VCF, and
// (b) that VCF's advantage is precisely needing far fewer kicks: its curve
// saturates almost immediately while CF keeps paying.
#include <iostream>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "harness/filter_factory.hpp"
#include "metrics/stats.hpp"

namespace vcf::bench {
namespace {

int Run(const Flags& flags) {
  const BenchScale scale = ScaleFromFlags(flags);

  TablePrinter table({"MAX", "CF LF(%)", "CF IT(us)", "VCF LF(%)",
                      "VCF IT(us)"});
  for (unsigned max_kicks : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 500u}) {
    RunningStat cf_lf, cf_it, vcf_lf, vcf_it;
    for (unsigned rep = 0; rep < scale.reps; ++rep) {
      CuckooParams p = scale.Params(6000 + rep);
      p.max_kicks = max_kicks;
      std::vector<std::uint64_t> members;
      std::vector<std::uint64_t> aliens;
      MakeKeySets(scale, p.slot_count(), 0, 6000 + rep * 16 + max_kicks,
                  &members, &aliens);

      auto cf = MakeFilter({FilterSpec::Kind::kCF, 0, p, 0, 0});
      const FillResult cf_fill = FillAll(*cf, members);
      cf_lf.Add(cf_fill.load_factor * 100.0);
      cf_it.Add(cf_fill.avg_insert_micros);

      auto vcf_filter = MakeFilter({FilterSpec::Kind::kIVCF, 6, p, 0, 0});
      const FillResult vcf_fill = FillAll(*vcf_filter, members);
      vcf_lf.Add(vcf_fill.load_factor * 100.0);
      vcf_it.Add(vcf_fill.avg_insert_micros);
    }
    table.AddRow({std::to_string(max_kicks),
                  TablePrinter::FormatDouble(cf_lf.Mean(), 2),
                  TablePrinter::FormatDouble(cf_it.Mean(), 4),
                  TablePrinter::FormatDouble(vcf_lf.Mean(), 2),
                  TablePrinter::FormatDouble(vcf_it.Mean(), 4)});
  }
  Emit(scale, table, "Ablation: relocation threshold MAX");
  std::cout << "\nExpected: VCF reaches ~99% load with single-digit MAX; CF "
               "needs orders of\nmagnitude more kick budget to approach its "
               "~98% ceiling.\n";
  return 0;
}

}  // namespace
}  // namespace vcf::bench

int main(int argc, char** argv) {
  return vcf::bench::Run(vcf::Flags(argc, argv));
}
