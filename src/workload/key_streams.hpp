// Fast synthetic key streams: uniform-unique, stream-disjoint and Zipfian.
//
// Uniform keys are produced by pushing a (stream-id, counter) pair through
// the bijective SplitMix64 finalizer: bijectivity makes every key distinct
// within a stream and across streams with different ids, without any
// dedup bookkeeping. Zipf keys drive the cache-admission example.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace vcf {

/// `n` distinct uniform 64-bit keys; streams with different `stream_id`s are
/// pairwise disjoint. Requires n < 2^40 (counter width).
std::vector<std::uint64_t> UniformKeys(std::size_t n, std::uint64_t stream_id);

/// The i-th key of a stream without materialising the vector.
constexpr std::uint64_t UniformKeyAt(std::uint64_t stream_id,
                                     std::uint64_t i) noexcept {
  return Mix64((stream_id << 40) | i);
}

/// Zipf(s) sampler over the universe {0, ..., universe-1}, with item ranks
/// mapped through Mix64 so popular keys are scattered across the key space.
/// Uses Gray-Wormald rejection-free inversion on the Zipf CDF approximation
/// (exact for our purposes; statistical tests in tests/workload).
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t universe, double exponent, std::uint64_t seed);

  std::uint64_t Next();

  /// One Zipf draw as a bare popularity rank (rank 0 = hottest), for
  /// callers that map ranks onto their own key space — e.g. vcf_loadgen
  /// --read-heavy skews lookups over the prefilled cold set instead of the
  /// KeyForRank stream.
  std::size_t NextRank() { return SampleRank(); }

  /// The key for a given popularity rank (rank 0 = hottest).
  std::uint64_t KeyForRank(std::size_t rank) const noexcept {
    return Mix64(0x21F0AA5ULL ^ rank);
  }

  std::size_t universe() const noexcept { return universe_; }
  double exponent() const noexcept { return exponent_; }

 private:
  std::size_t SampleRank();

  std::size_t universe_;
  double exponent_;
  Xoshiro256 rng_;
  // Inverse-CDF sampling over precomputed cumulative weights; O(log U) per
  // draw, built once.
  std::vector<double> cdf_;
};

}  // namespace vcf
