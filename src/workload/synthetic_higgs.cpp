#include "workload/synthetic_higgs.hpp"

#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/random.hpp"
#include "hash/hash64.hpp"

namespace vcf {

SyntheticHiggs::SyntheticHiggs(std::uint64_t seed) : state_(seed) {}

HiggsRecord SyntheticHiggs::NextRecord() {
  // Feature shapes mirror the published HIGGS schema: the 21 low-level
  // features are lepton/jet pT (exponential-ish), eta (Gaussian), phi
  // (uniform in [-pi, pi]) and b-tags; the 7 high-level features are
  // invariant masses derived from the low-level ones. The precise physics
  // is irrelevant to the filters — only record distinctness matters — but
  // keeping realistic marginals keeps the serialised bytes representative.
  Xoshiro256 rng(Mix64(state_++));
  HiggsRecord rec;
  for (std::size_t i = 0; i < 21; ++i) {
    switch (i % 3) {
      case 0:  // transverse momentum: exponential, mean ~1 (standardised)
        rec.features[i] = -std::log(1.0 - rng.NextDouble() + 1e-12);
        break;
      case 1:  // pseudorapidity: standard Gaussian
        rec.features[i] = rng.NextGaussian();
        break;
      default:  // azimuthal angle: uniform in [-pi, pi]
        rec.features[i] = (rng.NextDouble() * 2.0 - 1.0) * M_PI;
        break;
    }
  }
  // High-level features: smooth combinations of low-level ones plus noise,
  // like the derived invariant-mass columns of the real dataset.
  for (std::size_t i = 21; i < 28; ++i) {
    const double a = rec.features[(i * 3) % 21];
    const double b = rec.features[(i * 5 + 1) % 21];
    rec.features[i] = std::sqrt(a * a + b * b) + 0.05 * rng.NextGaussian();
  }
  return rec;
}

std::uint64_t SyntheticHiggs::RecordKey(const HiggsRecord& record) {
  // Paper preprocessing: merge the third and fourth features, then hash the
  // remaining 27-feature record.
  std::array<double, 27> merged;
  merged[0] = record.features[0];
  merged[1] = record.features[1];
  merged[2] = record.features[2] + record.features[3];  // the merge
  for (std::size_t i = 4; i < 28; ++i) merged[i - 1] = record.features[i];

  std::uint8_t bytes[sizeof(merged)];
  std::memcpy(bytes, merged.data(), sizeof(merged));
  return SplitMixHash64(bytes, sizeof(bytes), /*seed=*/0x48494747ULL);
}

std::vector<std::uint64_t> SyntheticHiggs::UniqueKeys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(n * 2);
  while (keys.size() < n) {
    const std::uint64_t key = RecordKey(NextRecord());
    if (seen.insert(key).second) keys.push_back(key);
  }
  return keys;
}

void SyntheticHiggs::DisjointKeySets(std::size_t n_members, std::size_t n_aliens,
                                     std::vector<std::uint64_t>* members,
                                     std::vector<std::uint64_t>* aliens) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve((n_members + n_aliens) * 2);
  members->clear();
  members->reserve(n_members);
  aliens->clear();
  aliens->reserve(n_aliens);
  while (members->size() < n_members || aliens->size() < n_aliens) {
    const std::uint64_t key = RecordKey(NextRecord());
    if (!seen.insert(key).second) continue;
    if (members->size() < n_members) {
      members->push_back(key);
    } else {
      aliens->push_back(key);
    }
  }
}

}  // namespace vcf
