// Synthetic stand-in for the UCI HIGGS dataset (the paper's input, §VI-A).
//
// The paper feeds the filters deduplicated records from HIGGS: 28 kinematic
// features per event, with the third and fourth features merged before
// hashing. The real 2.6 GB dataset is not redistributable inside this
// repository and the build environment is offline, so this module
// synthesises records with the same *shape*: 21 low-level detector-style
// features (Gaussian momenta, exponential energies, uniform angles) plus 7
// derived high-level features, merges features 3 and 4 exactly as the paper
// describes, serialises each record and hashes it to a 64-bit key,
// deduplicating the stream.
//
// Why this substitution preserves the evaluation: every filter under test
// consumes only the 64-bit hash of a record — the filters never see feature
// semantics — so any deduplicated stream of well-mixed keys exercises
// identical code paths and produces identical collision statistics.
// DESIGN.md §3 records this substitution.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vcf {

/// One synthetic HIGGS-like event: 28 features, as in the UCI schema
/// (1 class label is irrelevant to the filters and omitted).
struct HiggsRecord {
  std::array<double, 28> features;
};

class SyntheticHiggs {
 public:
  explicit SyntheticHiggs(std::uint64_t seed = 0x48494747ULL);  // "HIGG"

  /// Draws one synthetic event.
  HiggsRecord NextRecord();

  /// Applies the paper's preprocessing to a record: merge features 3 and 4
  /// (1-based; indices 2 and 3), then hash the serialised 27-feature record
  /// to a 64-bit key.
  static std::uint64_t RecordKey(const HiggsRecord& record);

  /// Produces exactly `n` deduplicated keys (the paper deduplicates the
  /// preprocessed dataset before use).
  std::vector<std::uint64_t> UniqueKeys(std::size_t n);

  /// Produces two disjoint deduplicated key sets of sizes `n_members` and
  /// `n_aliens`: the first is inserted, the second drives false-positive
  /// measurements ("items that have never been stored", §VI-B3).
  void DisjointKeySets(std::size_t n_members, std::size_t n_aliens,
                       std::vector<std::uint64_t>* members,
                       std::vector<std::uint64_t>* aliens);

 private:
  std::uint64_t state_;
};

}  // namespace vcf
