#include "workload/key_streams.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vcf {

std::vector<std::uint64_t> UniformKeys(std::size_t n, std::uint64_t stream_id) {
  if (n >= (std::uint64_t{1} << 40)) {
    throw std::invalid_argument("UniformKeys: n must be < 2^40");
  }
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = UniformKeyAt(stream_id, i);
  }
  return keys;
}

ZipfGenerator::ZipfGenerator(std::size_t universe, double exponent,
                             std::uint64_t seed)
    : universe_(universe), exponent_(exponent), rng_(seed) {
  if (universe == 0) {
    throw std::invalid_argument("ZipfGenerator: universe must be non-empty");
  }
  cdf_.resize(universe);
  double acc = 0.0;
  for (std::size_t r = 0; r < universe; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfGenerator::SampleRank() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

std::uint64_t ZipfGenerator::Next() { return KeyForRank(SampleRank()); }

}  // namespace vcf
