// Online-churn trace generation — the "insertion-intensive online
// application" workload the paper motivates VCF with (items join and leave
// frequently).
//
// A trace is a sequence of insert/erase/lookup operations over a live set
// kept near a target working-set size: the generator warms the set up to
// the target, then interleaves departures and (fresh) arrivals so the
// filter sustains a high load factor while continuously churning. Examples
// and failure-injection tests replay these traces against any Filter.
#pragma once

#include <cstdint>
#include <vector>

namespace vcf {

struct ChurnOp {
  enum class Kind : std::uint8_t { kInsert, kErase, kLookup };
  Kind kind;
  std::uint64_t key;
  bool expect_present;  ///< for lookups: whether the key is currently live
};

struct ChurnTraceConfig {
  std::size_t working_set = 1 << 16;  ///< live keys after warm-up
  std::size_t operations = 1 << 18;   ///< ops after warm-up
  double lookup_fraction = 0.5;       ///< share of post-warm-up ops that are lookups
  double alien_lookup_fraction = 0.5; ///< share of lookups probing non-members
  std::uint64_t seed = 0xC4124EULL;
};

/// Builds a warm-up prefix (pure inserts up to `working_set`) followed by
/// `operations` churn operations. Erases always target currently-live keys;
/// each erase is eventually balanced by a fresh-key insert, keeping the live
/// count near the working-set target.
std::vector<ChurnOp> GenerateChurnTrace(const ChurnTraceConfig& config);

}  // namespace vcf
