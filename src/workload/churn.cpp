#include "workload/churn.hpp"

#include "common/random.hpp"
#include "workload/key_streams.hpp"

namespace vcf {

std::vector<ChurnOp> GenerateChurnTrace(const ChurnTraceConfig& config) {
  std::vector<ChurnOp> trace;
  trace.reserve(config.working_set + config.operations);

  Xoshiro256 rng(config.seed);
  // Live keys come from stream 1, alien lookups from stream 2: the streams
  // are disjoint by construction (bijective key mapping), so
  // `expect_present` is exact without a shadow hash set for aliens.
  std::uint64_t next_fresh = 0;
  std::vector<std::uint64_t> live;
  live.reserve(config.working_set * 2);

  auto push_insert = [&] {
    const std::uint64_t key = UniformKeyAt(/*stream_id=*/1, next_fresh++);
    live.push_back(key);
    trace.push_back({ChurnOp::Kind::kInsert, key, true});
  };

  for (std::size_t i = 0; i < config.working_set; ++i) push_insert();

  std::uint64_t next_alien = 0;
  std::size_t pending_refills = 0;
  for (std::size_t i = 0; i < config.operations; ++i) {
    const double roll = rng.NextDouble();
    if (roll < config.lookup_fraction) {
      if (rng.NextDouble() < config.alien_lookup_fraction || live.empty()) {
        trace.push_back({ChurnOp::Kind::kLookup,
                         UniformKeyAt(/*stream_id=*/2, next_alien++), false});
      } else {
        const std::size_t idx = static_cast<std::size_t>(rng.Below(live.size()));
        trace.push_back({ChurnOp::Kind::kLookup, live[idx], true});
      }
    } else if ((pending_refills > 0 || live.size() >= config.working_set) &&
               !live.empty() && rng.NextDouble() < 0.5 &&
               live.size() > config.working_set / 2) {
      // Departure: erase a random live key (swap-remove keeps O(1)).
      const std::size_t idx = static_cast<std::size_t>(rng.Below(live.size()));
      const std::uint64_t key = live[idx];
      live[idx] = live.back();
      live.pop_back();
      trace.push_back({ChurnOp::Kind::kErase, key, true});
      ++pending_refills;
    } else {
      push_insert();
      if (pending_refills > 0) --pending_refills;
    }
  }
  return trace;
}

}  // namespace vcf
