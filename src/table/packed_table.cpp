#include "table/packed_table.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"

namespace vcf {

namespace {
// Test/bench override consulted once per construction (see header).
bool g_force_scalar_probes = false;
}  // namespace

void PackedTable::ForceScalarProbes(bool force) noexcept {
  g_force_scalar_probes = force;
}

PackedTable::PackedTable(std::size_t bucket_count, unsigned slots_per_bucket,
                         unsigned slot_bits)
    : bucket_count_(bucket_count),
      slots_per_bucket_(slots_per_bucket),
      slot_bits_(slot_bits),
      occupied_(0) {
  if (bucket_count == 0) {
    throw std::invalid_argument("PackedTable: bucket_count must be >= 1");
  }
  if (slots_per_bucket == 0) {
    throw std::invalid_argument("PackedTable: slots_per_bucket must be >= 1");
  }
  if (slot_bits == 0 || slot_bits > 57) {
    throw std::invalid_argument("PackedTable: slot_bits must be in [1, 57]");
  }
  bucket_bits_ = slots_per_bucket_ * slot_bits_;
  // SWAR pays off once there are at least two slots to compare at a time;
  // a one-slot bucket's scalar probe is already a single ReadBits.
  swar_ = bucket_bits_ <= 64 && slots_per_bucket_ >= 2 && !g_force_scalar_probes;
  two_load_ = bucket_bits_ > 57;  // +7 intra-byte shift can exceed one load
  bucket_mask_ = LowMask(bucket_bits_);
  lane_ones_ = swar_ ? SwarOnes(slot_bits_, slots_per_bucket_) : 0;
  lane_highs_ = lane_ones_ << (slot_bits_ - 1);
  lane_lows_ = lane_highs_ - lane_ones_;
  const std::size_t total_bits = bucket_count * slots_per_bucket * slot_bits;
  // +8 bytes of slack so ReadBits/WriteBits/ReadBucketWord may always touch
  // a full 8-byte window (plus one carry byte) past the last live bit.
  bits_.assign((total_bits + 7) / 8 + 8, 0);
}

std::uint64_t PackedTable::ReadBucketWord(std::size_t bucket) const noexcept {
  const std::size_t off = BitOffset(bucket, 0);
  const std::size_t byte = off >> 3;
  const unsigned shift = static_cast<unsigned>(off & 7);
  std::uint64_t word;
  std::memcpy(&word, bits_.data() + byte, sizeof(word));
  word >>= shift;
  if (two_load_ && shift != 0) {
    // Bits 58..64 of the bucket live in the 9th byte.
    word |= static_cast<std::uint64_t>(bits_[byte + 8]) << (64u - shift);
  }
  return word & bucket_mask_;
}

std::uint64_t PackedTable::Get(std::size_t bucket, unsigned slot) const noexcept {
  return ReadBits(bits_.data(), BitOffset(bucket, slot), slot_bits_);
}

void PackedTable::Set(std::size_t bucket, unsigned slot,
                      std::uint64_t value) noexcept {
  const std::uint64_t old = Get(bucket, slot);
  occupied_ += (value != 0) - (old != 0);
  WriteBits(bits_.data(), BitOffset(bucket, slot), slot_bits_, value);
}

int PackedTable::FindEmptySlotScalar(std::size_t bucket) const noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == 0) return static_cast<int>(s);
  }
  return -1;
}

int PackedTable::FindEmptySlot(std::size_t bucket) const noexcept {
  if (!swar_) return FindEmptySlotScalar(bucket);
  const std::uint64_t zeros =
      SwarZeroLanes(ReadBucketWord(bucket), lane_lows_, lane_highs_);
  if (zeros == 0) return -1;
  return static_cast<int>(static_cast<unsigned>(std::countr_zero(zeros)) /
                          slot_bits_);
}

bool PackedTable::InsertValue(std::size_t bucket, std::uint64_t value) noexcept {
  const int slot = FindEmptySlot(bucket);
  if (slot < 0) return false;
  Set(bucket, static_cast<unsigned>(slot), value);
  return true;
}

bool PackedTable::ContainsValueScalar(std::size_t bucket,
                                      std::uint64_t value) const noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == value) return true;
  }
  return false;
}

bool PackedTable::ContainsValue(std::size_t bucket,
                                std::uint64_t value) const noexcept {
  if (!swar_) return ContainsValueScalar(bucket, value);
  // Lanes equal to `value` become zero after the broadcast-XOR; value == 0
  // degenerates to "any empty slot", matching the scalar loop.
  const std::uint64_t x = ReadBucketWord(bucket) ^ (lane_ones_ * value);
  return SwarZeroLanes(x, lane_lows_, lane_highs_) != 0;
}

bool PackedTable::ContainsMaskedScalar(std::size_t bucket, std::uint64_t value,
                                       std::uint64_t mask) const noexcept {
  const std::uint64_t want = value & mask;
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    const std::uint64_t v = Get(bucket, s);
    if (v != 0 && (v & mask) == want) return true;
  }
  return false;
}

bool PackedTable::ContainsMasked(std::size_t bucket, std::uint64_t value,
                                 std::uint64_t mask) const noexcept {
  if (!swar_) return ContainsMaskedScalar(bucket, value, mask);
  const std::uint64_t word = ReadBucketWord(bucket);
  const std::uint64_t want = value & mask;
  const std::uint64_t x = (word ^ (lane_ones_ * want)) & (lane_ones_ * mask);
  // A masked match must also be a non-empty slot (relevant when want == 0:
  // an empty lane trivially matches the masked pattern but holds nothing).
  const std::uint64_t matches = SwarZeroLanes(x, lane_lows_, lane_highs_) &
                                ~SwarZeroLanes(word, lane_lows_, lane_highs_);
  return matches != 0;
}

bool PackedTable::EraseValueScalar(std::size_t bucket,
                                   std::uint64_t value) noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == value) {
      Set(bucket, s, 0);
      return true;
    }
  }
  return false;
}

bool PackedTable::EraseValue(std::size_t bucket, std::uint64_t value) noexcept {
  if (!swar_) return EraseValueScalar(bucket, value);
  const std::uint64_t x = ReadBucketWord(bucket) ^ (lane_ones_ * value);
  const std::uint64_t matches = SwarZeroLanes(x, lane_lows_, lane_highs_);
  if (matches == 0) return false;
  const unsigned slot =
      static_cast<unsigned>(std::countr_zero(matches)) / slot_bits_;
  Set(bucket, slot, 0);
  return true;
}

std::uint64_t PackedTable::EraseMaskedScalar(std::size_t bucket,
                                             std::uint64_t value,
                                             std::uint64_t mask) noexcept {
  const std::uint64_t want = value & mask;
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    const std::uint64_t v = Get(bucket, s);
    if (v != 0 && (v & mask) == want) {
      Set(bucket, s, 0);
      return v;
    }
  }
  return 0;
}

std::uint64_t PackedTable::EraseMasked(std::size_t bucket, std::uint64_t value,
                                       std::uint64_t mask) noexcept {
  if (!swar_) return EraseMaskedScalar(bucket, value, mask);
  const std::uint64_t word = ReadBucketWord(bucket);
  const std::uint64_t want = value & mask;
  const std::uint64_t x = (word ^ (lane_ones_ * want)) & (lane_ones_ * mask);
  const std::uint64_t matches = SwarZeroLanes(x, lane_lows_, lane_highs_) &
                                ~SwarZeroLanes(word, lane_lows_, lane_highs_);
  if (matches == 0) return 0;
  const unsigned slot =
      static_cast<unsigned>(std::countr_zero(matches)) / slot_bits_;
  const std::uint64_t v =
      (word >> (slot * slot_bits_)) & LowMask(slot_bits_);
  Set(bucket, slot, 0);
  return v;
}

void PackedTable::Clear() noexcept {
  std::fill(bits_.begin(), bits_.end(), std::uint8_t{0});
  occupied_ = 0;
}

bool PackedTable::operator==(const PackedTable& other) const noexcept {
  return bucket_count_ == other.bucket_count_ &&
         slots_per_bucket_ == other.slots_per_bucket_ &&
         slot_bits_ == other.slot_bits_ && occupied_ == other.occupied_ &&
         bits_ == other.bits_;
}

}  // namespace vcf
