#include "table/packed_table.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"

namespace vcf {

namespace {

// Test/bench override consulted once per construction (see header).
bool g_force_scalar_probes = false;

/// Geometry predicate for the wide engine, independent of the scalar
/// override — used for storage slack so forced-scalar tables stay
/// byte-layout-identical to their wide twins.
constexpr bool WideCapable(unsigned slots, unsigned bucket_bits) noexcept {
  return bucket_bits > 64 && bucket_bits <= kWideMaxBits && slots >= 2 &&
         slots <= kWideMaxSlots;
}

/// Aligned-layout stride: the smallest power of two >= bucket_bits (rounded
/// up to whole cache lines past 512 bits). A power-of-two stride <= 512
/// divides the 64-byte line, so no bucket straddles one.
unsigned AlignedStrideBits(unsigned bucket_bits) noexcept {
  if (bucket_bits > 512) return ((bucket_bits + 511u) / 512u) * 512u;
  return static_cast<unsigned>(NextPowerOfTwo(bucket_bits));
}

}  // namespace

void PackedTable::ForceScalarProbes(bool force) noexcept {
  g_force_scalar_probes = force;
}

PackedTable::PackedTable(std::size_t bucket_count, unsigned slots_per_bucket,
                         unsigned slot_bits, TableLayout layout,
                         PageHint pages)
    : bucket_count_(bucket_count),
      slots_per_bucket_(slots_per_bucket),
      slot_bits_(slot_bits),
      layout_(layout),
      occupied_(0) {
  if (bucket_count == 0) {
    throw std::invalid_argument("PackedTable: bucket_count must be >= 1");
  }
  if (slots_per_bucket == 0) {
    throw std::invalid_argument("PackedTable: slots_per_bucket must be >= 1");
  }
  if (slot_bits == 0 || slot_bits > 57) {
    throw std::invalid_argument("PackedTable: slot_bits must be in [1, 57]");
  }
  bucket_bits_ = slots_per_bucket_ * slot_bits_;
  stride_bits_ = layout_ == TableLayout::kCacheAligned
                     ? AlignedStrideBits(bucket_bits_)
                     : bucket_bits_;
  // SWAR pays off once there are at least two slots to compare at a time;
  // a one-slot bucket's scalar probe is already a single ReadBits.
  swar_ = bucket_bits_ <= 64 && slots_per_bucket_ >= 2 && !g_force_scalar_probes;
  // Under TSan the wide kernels are withheld: their SIMD/memcpy image loads
  // are plain reads that would race the byte-atomic writes of the seqlock
  // write side and be reported. Auto-dispatch falls through to SWAR/scalar,
  // whose loads go through the relaxed helpers in common/bitops.hpp. The
  // non-TSan build keeps the wide path — torn reads there are discarded by
  // sequence validation.
  wide_ = WideCapable(slots_per_bucket_, bucket_bits_) &&
          !g_force_scalar_probes && !VCF_TSAN;
  two_load_ = bucket_bits_ > 57;  // +7 intra-byte shift can exceed one load
  bucket_mask_ = LowMask(bucket_bits_ < 64 ? bucket_bits_ : 64);
  lane_ones_ = swar_ ? SwarOnes(slot_bits_, slots_per_bucket_) : 0;
  lane_highs_ = lane_ones_ << (slot_bits_ - 1);
  lane_lows_ = lane_highs_ - lane_ones_;
  if (wide_) {
    BuildWideGeometry(slots_per_bucket_, slot_bits_, &wide_geom_);
    wide_arm_ = ActiveProbeArm();
    wide_ops_ = &ResolveWideOps(wide_arm_);
  }
  const std::size_t total_bits = bucket_count * stride_bits_;
  // Slack past the last live bit: 8 bytes so ReadBits/WriteBits/
  // ReadBucketWord may always touch a full 8-byte window (plus one carry
  // byte); wide-capable geometries get the wide kernels' whole read window
  // (kWideImageWords words from a bucket's byte base). Slack depends only
  // on geometry — a forced-scalar table is byte-identical to its wide twin.
  const std::size_t slack =
      WideCapable(slots_per_bucket_, bucket_bits_) ? kWideImageWords * 8 : 8;
  bits_.Reset((total_bits + 7) / 8 + slack, pages);
}

PackedTable::PackedTable(const PackedTable& other)
    : PackedTable(other.bucket_count_, other.slots_per_bucket_,
                  other.slot_bits_, other.layout_, other.bits_.hint()) {
  std::memcpy(bits_.data(), other.bits_.data(), bits_.size());
  occupied_ = other.occupied_;
}

PackedTable& PackedTable::operator=(const PackedTable& other) {
  if (this != &other) *this = PackedTable(other);
  return *this;
}

std::uint64_t PackedTable::ReadBucketWord(std::size_t bucket) const noexcept {
  const std::size_t off = BitOffset(bucket, 0);
  const std::size_t byte = off >> 3;
  const unsigned shift = static_cast<unsigned>(off & 7);
  std::uint64_t word = LoadWordRelaxed(bits_.data() + byte);
  word >>= shift;
  if (two_load_ && shift != 0) {
    // Bits 58..64 of the bucket live in the 9th byte.
    word |= static_cast<std::uint64_t>(LoadByteRelaxed(bits_.data() + byte + 8))
            << (64u - shift);
  }
  return word & bucket_mask_;
}

std::uint64_t PackedTable::Get(std::size_t bucket, unsigned slot) const noexcept {
  return ReadBits(bits_.data(), BitOffset(bucket, slot), slot_bits_);
}

void PackedTable::Set(std::size_t bucket, unsigned slot,
                      std::uint64_t value) noexcept {
  const std::uint64_t old = Get(bucket, slot);
  occupied_ += (value != 0) - (old != 0);
  WriteBits(bits_.data(), BitOffset(bucket, slot), slot_bits_, value);
}

int PackedTable::FindEmptySlotScalar(std::size_t bucket) const noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == 0) return static_cast<int>(s);
  }
  return -1;
}

int PackedTable::FindEmptySlot(std::size_t bucket) const noexcept {
  if (wide_) {
    const std::uint32_t empty = WideEmptyMask(bucket);
    if (empty == 0) return -1;
    return std::countr_zero(empty);
  }
  if (!swar_) return FindEmptySlotScalar(bucket);
  const std::uint64_t zeros =
      SwarZeroLanes(ReadBucketWord(bucket), lane_lows_, lane_highs_);
  if (zeros == 0) return -1;
  return static_cast<int>(static_cast<unsigned>(std::countr_zero(zeros)) /
                          slot_bits_);
}

bool PackedTable::InsertValue(std::size_t bucket, std::uint64_t value) noexcept {
  const int slot = FindEmptySlot(bucket);
  if (slot < 0) return false;
  Set(bucket, static_cast<unsigned>(slot), value);
  return true;
}

bool PackedTable::ContainsValueScalar(std::size_t bucket,
                                      std::uint64_t value) const noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == value) return true;
  }
  return false;
}

bool PackedTable::ContainsValue(std::size_t bucket,
                                std::uint64_t value) const noexcept {
  if (wide_) {
    // value == 0 degenerates to "any empty slot", matching the scalar loop.
    const std::size_t bit = BitOffset(bucket, 0);
    const std::uint8_t* base = bits_.data() + (bit >> 3);
    const std::uint8_t ph = static_cast<std::uint8_t>(bit & 7);
    return wide_ops_->any(&base, &ph, 1, wide_geom_, value,
                          wide_geom_.slot_mask, /*masked=*/false);
  }
  if (!swar_) return ContainsValueScalar(bucket, value);
  // Lanes equal to `value` become zero after the broadcast-XOR; value == 0
  // degenerates to "any empty slot", matching the scalar loop.
  const std::uint64_t x = ReadBucketWord(bucket) ^ (lane_ones_ * value);
  return SwarZeroLanes(x, lane_lows_, lane_highs_) != 0;
}

bool PackedTable::ContainsValueAny(const std::uint64_t* buckets, std::size_t n,
                                   std::uint64_t value) const noexcept {
  if (wide_) {
    // One fused kernel call: the broadcasts are hoisted across all
    // candidates and the kernel exits on the first hit.
    constexpr std::size_t kChunk = 16;
    const std::uint8_t* bases[kChunk];
    std::uint8_t phases[kChunk];
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t c = std::min(kChunk, n - i);
      for (std::size_t j = 0; j < c; ++j) {
        const std::size_t bit = BitOffset(buckets[i + j], 0);
        bases[j] = bits_.data() + (bit >> 3);
        phases[j] = static_cast<std::uint8_t>(bit & 7);
      }
      if (wide_ops_->any(bases, phases, c, wide_geom_, value,
                         wide_geom_.slot_mask, /*masked=*/false)) {
        return true;
      }
    }
    return false;
  }
  if (swar_) {
    // Branchless accumulation: the broadcast is hoisted and the candidate
    // loads pipeline without a compare-and-branch between them.
    const std::uint64_t bv = lane_ones_ * value;
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      hits |= SwarZeroLanes(ReadBucketWord(buckets[i]) ^ bv, lane_lows_,
                            lane_highs_);
    }
    return hits != 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (ContainsValueScalar(buckets[i], value)) return true;
  }
  return false;
}

bool PackedTable::ContainsMaskedScalar(std::size_t bucket, std::uint64_t value,
                                       std::uint64_t mask) const noexcept {
  const std::uint64_t want = value & mask;
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    const std::uint64_t v = Get(bucket, s);
    if (v != 0 && (v & mask) == want) return true;
  }
  return false;
}

bool PackedTable::ContainsMasked(std::size_t bucket, std::uint64_t value,
                                 std::uint64_t mask) const noexcept {
  if (wide_) {
    const std::uint64_t want = value & mask;
    if ((want & ~wide_geom_.slot_mask) != 0) return false;  // unsatisfiable
    // masked = true: a masked match must also be a non-empty slot (relevant
    // when want == 0 — an empty lane trivially matches the masked pattern
    // but holds nothing).
    const std::size_t bit = BitOffset(bucket, 0);
    const std::uint8_t* base = bits_.data() + (bit >> 3);
    const std::uint8_t ph = static_cast<std::uint8_t>(bit & 7);
    return wide_ops_->any(&base, &ph, 1, wide_geom_, want,
                          mask & wide_geom_.slot_mask, /*masked=*/true);
  }
  if (!swar_) return ContainsMaskedScalar(bucket, value, mask);
  const std::uint64_t word = ReadBucketWord(bucket);
  const std::uint64_t want = value & mask;
  const std::uint64_t x = (word ^ (lane_ones_ * want)) & (lane_ones_ * mask);
  // A masked match must also be a non-empty slot (relevant when want == 0:
  // an empty lane trivially matches the masked pattern but holds nothing).
  const std::uint64_t matches = SwarZeroLanes(x, lane_lows_, lane_highs_) &
                                ~SwarZeroLanes(word, lane_lows_, lane_highs_);
  return matches != 0;
}

bool PackedTable::ContainsMaskedAny(const std::uint64_t* buckets,
                                    std::size_t n, std::uint64_t value,
                                    std::uint64_t mask) const noexcept {
  if (wide_) {
    const std::uint64_t want = value & mask;
    if ((want & ~wide_geom_.slot_mask) != 0) return false;
    constexpr std::size_t kChunk = 16;
    const std::uint8_t* bases[kChunk];
    std::uint8_t phases[kChunk];
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t c = std::min(kChunk, n - i);
      for (std::size_t j = 0; j < c; ++j) {
        const std::size_t bit = BitOffset(buckets[i + j], 0);
        bases[j] = bits_.data() + (bit >> 3);
        phases[j] = static_cast<std::uint8_t>(bit & 7);
      }
      if (wide_ops_->any(bases, phases, c, wide_geom_, want,
                         mask & wide_geom_.slot_mask, /*masked=*/true)) {
        return true;
      }
    }
    return false;
  }
  if (swar_) {
    const std::uint64_t want = value & mask;
    const std::uint64_t bw = lane_ones_ * want;
    const std::uint64_t bm = lane_ones_ * mask;
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t word = ReadBucketWord(buckets[i]);
      hits |= SwarZeroLanes((word ^ bw) & bm, lane_lows_, lane_highs_) &
              ~SwarZeroLanes(word, lane_lows_, lane_highs_);
    }
    return hits != 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (ContainsMaskedScalar(buckets[i], value, mask)) return true;
  }
  return false;
}

bool PackedTable::EraseValueScalar(std::size_t bucket,
                                   std::uint64_t value) noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == value) {
      Set(bucket, s, 0);
      return true;
    }
  }
  return false;
}

bool PackedTable::EraseValue(std::size_t bucket, std::uint64_t value) noexcept {
  if (wide_) {
    const std::uint32_t matches =
        WideMatch(bucket, value, wide_geom_.slot_mask);
    if (matches == 0) return false;
    Set(bucket, static_cast<unsigned>(std::countr_zero(matches)), 0);
    return true;
  }
  if (!swar_) return EraseValueScalar(bucket, value);
  const std::uint64_t x = ReadBucketWord(bucket) ^ (lane_ones_ * value);
  const std::uint64_t matches = SwarZeroLanes(x, lane_lows_, lane_highs_);
  if (matches == 0) return false;
  const unsigned slot =
      static_cast<unsigned>(std::countr_zero(matches)) / slot_bits_;
  Set(bucket, slot, 0);
  return true;
}

std::uint64_t PackedTable::EraseMaskedScalar(std::size_t bucket,
                                             std::uint64_t value,
                                             std::uint64_t mask) noexcept {
  const std::uint64_t want = value & mask;
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    const std::uint64_t v = Get(bucket, s);
    if (v != 0 && (v & mask) == want) {
      Set(bucket, s, 0);
      return v;
    }
  }
  return 0;
}

std::uint64_t PackedTable::EraseMasked(std::size_t bucket, std::uint64_t value,
                                       std::uint64_t mask) noexcept {
  if (wide_) {
    const std::uint64_t want = value & mask;
    if ((want & ~wide_geom_.slot_mask) != 0) return 0;
    const std::uint32_t matches =
        WideMatch(bucket, want, mask & wide_geom_.slot_mask) &
        ~WideEmptyMask(bucket);
    if (matches == 0) return 0;
    const unsigned slot = static_cast<unsigned>(std::countr_zero(matches));
    const std::uint64_t v = Get(bucket, slot);
    Set(bucket, slot, 0);
    return v;
  }
  if (!swar_) return EraseMaskedScalar(bucket, value, mask);
  const std::uint64_t word = ReadBucketWord(bucket);
  const std::uint64_t want = value & mask;
  const std::uint64_t x = (word ^ (lane_ones_ * want)) & (lane_ones_ * mask);
  const std::uint64_t matches = SwarZeroLanes(x, lane_lows_, lane_highs_) &
                                ~SwarZeroLanes(word, lane_lows_, lane_highs_);
  if (matches == 0) return 0;
  const unsigned slot =
      static_cast<unsigned>(std::countr_zero(matches)) / slot_bits_;
  const std::uint64_t v =
      (word >> (slot * slot_bits_)) & LowMask(slot_bits_);
  Set(bucket, slot, 0);
  return v;
}

void PackedTable::Clear() noexcept {
#if VCF_TSAN
  // Word-wise relaxed stores so a racing (seqlock-discarded) reader probe
  // is an atomic race, not a report. Buffers are always >= 8 bytes (slack).
  const std::size_t n = bits_.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) StoreWordRelaxed(bits_.data() + i, 0);
  if (i < n) StoreWordRelaxed(bits_.data() + n - 8, 0);
#else
  bits_.Fill(0);
#endif
  occupied_ = 0;
}

void PackedTable::AdoptContents(const PackedTable& other) noexcept {
  if (stride_bits_ == other.stride_bits_ && bits_.size() == other.bits_.size()) {
    const std::size_t n = bits_.size();
#if VCF_TSAN
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      StoreWordRelaxed(bits_.data() + i, LoadWordRelaxed(other.bits_.data() + i));
    }
    if (i < n) {
      StoreWordRelaxed(bits_.data() + n - 8,
                       LoadWordRelaxed(other.bits_.data() + n - 8));
    }
#else
    std::memcpy(bits_.data(), other.bits_.data(), n);
#endif
    occupied_ = other.occupied_;
    return;
  }
  // Cross-layout restore: re-spread slot by slot. Set() keeps occupied_
  // consistent as it goes.
  for (std::size_t b = 0; b < bucket_count_; ++b) {
    for (unsigned s = 0; s < slots_per_bucket_; ++s) {
      Set(b, s, other.Get(b, s));
    }
  }
}

bool PackedTable::operator==(const PackedTable& other) const noexcept {
  if (bucket_count_ != other.bucket_count_ ||
      slots_per_bucket_ != other.slots_per_bucket_ ||
      slot_bits_ != other.slot_bits_ || occupied_ != other.occupied_) {
    return false;
  }
  if (stride_bits_ == other.stride_bits_) {
    // Same addressing — compare the live bytes directly (bits past the last
    // live bit are zero in both by construction, and the slack length is a
    // pure function of geometry, so the vectors line up).
    return bits_ == other.bits_;
  }
  // Cross-layout: compare slot values.
  for (std::size_t b = 0; b < bucket_count_; ++b) {
    for (unsigned s = 0; s < slots_per_bucket_; ++s) {
      if (Get(b, s) != other.Get(b, s)) return false;
    }
  }
  return true;
}

}  // namespace vcf
