#include "table/packed_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hpp"

namespace vcf {

PackedTable::PackedTable(std::size_t bucket_count, unsigned slots_per_bucket,
                         unsigned slot_bits)
    : bucket_count_(bucket_count),
      slots_per_bucket_(slots_per_bucket),
      slot_bits_(slot_bits),
      occupied_(0) {
  if (bucket_count == 0) {
    throw std::invalid_argument("PackedTable: bucket_count must be >= 1");
  }
  if (slots_per_bucket == 0) {
    throw std::invalid_argument("PackedTable: slots_per_bucket must be >= 1");
  }
  if (slot_bits == 0 || slot_bits > 57) {
    throw std::invalid_argument("PackedTable: slot_bits must be in [1, 57]");
  }
  const std::size_t total_bits = bucket_count * slots_per_bucket * slot_bits;
  // +8 bytes of slack so ReadBits/WriteBits may always touch a full 8-byte
  // window past the last live bit.
  bits_.assign((total_bits + 7) / 8 + 8, 0);
}

std::uint64_t PackedTable::Get(std::size_t bucket, unsigned slot) const noexcept {
  return ReadBits(bits_.data(), BitOffset(bucket, slot), slot_bits_);
}

void PackedTable::Set(std::size_t bucket, unsigned slot,
                      std::uint64_t value) noexcept {
  const std::uint64_t old = Get(bucket, slot);
  occupied_ += (value != 0) - (old != 0);
  WriteBits(bits_.data(), BitOffset(bucket, slot), slot_bits_, value);
}

int PackedTable::FindEmptySlot(std::size_t bucket) const noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == 0) return static_cast<int>(s);
  }
  return -1;
}

bool PackedTable::InsertValue(std::size_t bucket, std::uint64_t value) noexcept {
  const int slot = FindEmptySlot(bucket);
  if (slot < 0) return false;
  Set(bucket, static_cast<unsigned>(slot), value);
  return true;
}

bool PackedTable::ContainsValue(std::size_t bucket,
                                std::uint64_t value) const noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == value) return true;
  }
  return false;
}

bool PackedTable::ContainsMasked(std::size_t bucket, std::uint64_t value,
                                 std::uint64_t mask) const noexcept {
  const std::uint64_t want = value & mask;
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    const std::uint64_t v = Get(bucket, s);
    if (v != 0 && (v & mask) == want) return true;
  }
  return false;
}

bool PackedTable::EraseValue(std::size_t bucket, std::uint64_t value) noexcept {
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    if (Get(bucket, s) == value) {
      Set(bucket, s, 0);
      return true;
    }
  }
  return false;
}

std::uint64_t PackedTable::EraseMasked(std::size_t bucket, std::uint64_t value,
                                       std::uint64_t mask) noexcept {
  const std::uint64_t want = value & mask;
  for (unsigned s = 0; s < slots_per_bucket_; ++s) {
    const std::uint64_t v = Get(bucket, s);
    if (v != 0 && (v & mask) == want) {
      Set(bucket, s, 0);
      return v;
    }
  }
  return 0;
}

void PackedTable::Clear() noexcept {
  std::fill(bits_.begin(), bits_.end(), std::uint8_t{0});
  occupied_ = 0;
}

bool PackedTable::operator==(const PackedTable& other) const noexcept {
  return bucket_count_ == other.bucket_count_ &&
         slots_per_bucket_ == other.slots_per_bucket_ &&
         slot_bits_ == other.slot_bits_ && occupied_ == other.occupied_ &&
         bits_ == other.bits_;
}

}  // namespace vcf
