// Stream (de)serialization for PackedTable — lets long-lived online services
// checkpoint a filter and restore it after restart without replaying the
// insertion stream.
//
// Format (little-endian):
//   magic "VCFT" | u32 version | u64 bucket_count | u32 slots | u32 slot_bits
//   | u64 occupied | u64 payload_bytes | payload | u64 checksum(SplitMix over payload)
#pragma once

#include <iosfwd>
#include <optional>

#include "table/packed_table.hpp"

namespace vcf {

class TableCodec {
 public:
  /// Writes `table` to `out`; returns false on stream failure.
  static bool Save(const PackedTable& table, std::ostream& out);

  /// Reads a table; std::nullopt on malformed input, version mismatch or
  /// checksum failure (the stream is not trusted).
  static std::optional<PackedTable> Load(std::istream& in);
};

}  // namespace vcf
