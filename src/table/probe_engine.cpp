#include "table/probe_engine.hpp"

#include <cstdlib>
#include <cstring>
#include <initializer_list>

#include "common/bitops.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace vcf {

namespace {

inline std::uint64_t Load64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Slot extraction straight from the raw bytes: one unaligned load, one
/// shift, one mask. slot_bits <= 57 guarantees the slot's bits fit the
/// 64-bit window loaded at its byte offset for any sub-byte shift.
inline std::uint64_t ExtractSlot(const std::uint8_t* base, const WidePhase& p,
                                 std::uint64_t slot_mask,
                                 unsigned i) noexcept {
  return (Load64(base + p.ext_byte[i]) >> p.ext_shift[i]) & slot_mask;
}

// --- Portable arms --------------------------------------------------------

std::uint32_t MatchScalar(const std::uint8_t* base, const WideGeometry& g,
                          const WidePhase& p, std::uint64_t want,
                          std::uint64_t mask) noexcept {
  std::uint32_t m = 0;
  for (unsigned i = 0; i < g.slots; ++i) {
    const std::uint64_t v = ExtractSlot(base, p, g.slot_mask, i);
    m |= static_cast<std::uint32_t>((v & mask) == want) << i;
  }
  return m;
}

bool AnyScalar(const std::uint8_t* const* bases, const std::uint8_t* phases,
               std::size_t n, const WideGeometry& g, std::uint64_t want,
               std::uint64_t mask, bool masked) noexcept {
  for (std::size_t b = 0; b < n; ++b) {
    const WidePhase& p = g.phase[phases[b]];
    for (unsigned i = 0; i < g.slots; ++i) {
      const std::uint64_t v = ExtractSlot(bases[b], p, g.slot_mask, i);
      if ((v & mask) == want && (!masked || v != 0)) return true;
    }
  }
  return false;
}

/// Multi-word SWAR: every raw word carries a run of consecutive whole lanes
/// (evenly spaced, starting at an arbitrary bit offset). SwarZeroLanes is
/// exact for such lane sets — the add's carries stay inside each lane and
/// non-lane bits are masked out of the result — so each word answers all
/// its whole lanes in a handful of ALU ops. The zero-lane indicator bits
/// (one per lane, at the lane's top bit) are compressed to a dense bitmask
/// with one multiply: lane j's indicator, shifted to bit j*L, lands on bit
/// (n-1)*(L-1) + j of the product with sum_i 2^(i*(L-1)). All partial-
/// product bit positions (L-1)*(i+j) + j are pairwise distinct because
/// |dj| <= n-1 < L-1 (wide geometry guarantees L >= 9 and n <= 7), so the
/// multiply is carry-free and the window is exact. Slots straddling a word
/// boundary (at most one per boundary) are extracted and tested directly.
std::uint32_t MatchSwar(const std::uint8_t* base, const WideGeometry& g,
                        const WidePhase& p, std::uint64_t want,
                        std::uint64_t mask) noexcept {
  std::uint32_t m = 0;
  for (unsigned w = 0; w < p.words; ++w) {
    const std::uint64_t ones = p.ones[w];
    if (ones == 0) continue;  // word holds no whole lanes
    const std::uint64_t lanes = Load64(base + 8 * w) & (ones * g.slot_mask);
    const std::uint64_t mz = SwarZeroLanes(
        (lanes & (ones * mask)) ^ (ones * want), p.lows[w], p.highs[w]);
    m |= static_cast<std::uint32_t>(
             (((mz >> p.compress_shift[w]) * p.compress_mul[w]) >>
              p.collect_shift[w]) &
             LowMask(p.lane_count[w]))
         << p.first_slot[w];
  }
  for (std::uint32_t s = p.straddlers; s != 0; s &= s - 1) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(s));
    const std::uint64_t v = ExtractSlot(base, p, g.slot_mask, i);
    m |= static_cast<std::uint32_t>((v & mask) == want) << i;
  }
  return m;
}

/// The SWAR `any` works in lane space: a zero-lane indicator bit anywhere
/// means a hit, so the dense-bitmask compression (the multiply in MatchSwar)
/// is skipped entirely, and the masked rule ANDs the match indicators with
/// the complement of the empty indicators at the same lane positions.
bool AnySwar(const std::uint8_t* const* bases, const std::uint8_t* phases,
             std::size_t n, const WideGeometry& g, std::uint64_t want,
             std::uint64_t mask, bool masked) noexcept {
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint8_t* base = bases[b];
    const WidePhase& p = g.phase[phases[b]];
    for (unsigned w = 0; w < p.words; ++w) {
      const std::uint64_t ones = p.ones[w];
      if (ones == 0) continue;  // word holds no whole lanes
      const std::uint64_t lanes = Load64(base + 8 * w) & (ones * g.slot_mask);
      std::uint64_t z = SwarZeroLanes(
          (lanes & (ones * mask)) ^ (ones * want), p.lows[w], p.highs[w]);
      if (masked) {
        z &= ~SwarZeroLanes(lanes, p.lows[w], p.highs[w]);
      }
      if (z != 0) return true;
    }
    for (std::uint32_t s = p.straddlers; s != 0; s &= s - 1) {
      const unsigned i = static_cast<unsigned>(std::countr_zero(s));
      const std::uint64_t v = ExtractSlot(base, p, g.slot_mask, i);
      if ((v & mask) == want && (!masked || v != 0)) return true;
    }
  }
  return false;
}

// --- x86 arms -------------------------------------------------------------

#if defined(__x86_64__) || defined(__i386__)

/// SSE2 (x86-64 baseline): slots are extracted scalar (load + shift; the
/// slot_mask AND folds into the vector mask AND) and packed into xmm
/// registers via set_epi64x — never through the stack, which would stall on
/// store-to-load forwarding. SSE2 has no 64-bit compare, so equality is a
/// 32-bit compare ANDed with its pair-swapped self; movemask_pd reads one
/// bit per 64-bit lane. Lanes past the slot count hold garbage and are
/// masked off with g.valid.
inline __m128i Sse2Pair(const std::uint8_t* base, const WidePhase& p,
                        unsigned i) noexcept {
  return _mm_set_epi64x(
      static_cast<long long>(Load64(base + p.ext_byte[i + 1]) >>
                             p.ext_shift[i + 1]),
      static_cast<long long>(Load64(base + p.ext_byte[i]) >> p.ext_shift[i]));
}

inline std::uint32_t Sse2EqMask(__m128i v, __m128i vm, __m128i vw) noexcept {
  __m128i eq = _mm_cmpeq_epi32(_mm_and_si128(v, vm), vw);
  eq = _mm_and_si128(eq, _mm_shuffle_epi32(eq, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(eq)));
}

std::uint32_t MatchSse2(const std::uint8_t* base, const WideGeometry& g,
                        const WidePhase& p, std::uint64_t want,
                        std::uint64_t mask) noexcept {
  const __m128i vw = _mm_set1_epi64x(static_cast<long long>(want));
  const __m128i vm = _mm_set1_epi64x(static_cast<long long>(mask));
  std::uint32_t m = 0;
  for (unsigned i = 0; i < g.slots; i += 2) {
    m |= Sse2EqMask(Sse2Pair(base, p, i), vm, vw) << i;
  }
  return m & g.valid;
}

bool AnySse2(const std::uint8_t* const* bases, const std::uint8_t* phases,
             std::size_t n, const WideGeometry& g, std::uint64_t want,
             std::uint64_t mask, bool masked) noexcept {
  const __m128i vw = _mm_set1_epi64x(static_cast<long long>(want));
  const __m128i vm = _mm_set1_epi64x(static_cast<long long>(mask));
  const __m128i vz = _mm_setzero_si128();
  const __m128i vsm = _mm_set1_epi64x(static_cast<long long>(g.slot_mask));
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint8_t* base = bases[b];
    const WidePhase& p = g.phase[phases[b]];
    std::uint32_t m = 0;
    std::uint32_t nonempty = ~0u;
    for (unsigned i = 0; i < g.slots; i += 2) {
      const __m128i v = Sse2Pair(base, p, i);
      m |= Sse2EqMask(v, vm, vw) << i;
      if (masked) {
        nonempty &= ~(Sse2EqMask(v, vsm, vz) << i);
      }
    }
    if ((m & nonempty & g.valid) != 0) return true;
  }
  return false;
}

/// AVX2 (runtime-detected): four raw 8-byte loads go straight into a ymm
/// register, a per-lane variable shift (vpsrlvq, the phase's precomputed
/// shift vector) aligns all four slots at once, and one 64-bit compare
/// answers them. Compiled with per-function target attributes so the rest
/// of the build stays baseline.
__attribute__((target("avx2"))) inline __m256i Avx2Quad(
    const std::uint8_t* base, const WidePhase& p, unsigned i) noexcept {
  const __m256i raw = _mm256_set_epi64x(
      static_cast<long long>(Load64(base + p.ext_byte[i + 3])),
      static_cast<long long>(Load64(base + p.ext_byte[i + 2])),
      static_cast<long long>(Load64(base + p.ext_byte[i + 1])),
      static_cast<long long>(Load64(base + p.ext_byte[i])));
  const __m256i sh = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(p.shifts + i));
  return _mm256_srlv_epi64(raw, sh);
}

__attribute__((target("avx2"))) inline std::uint32_t Avx2EqMask(
    __m256i v, __m256i vm, __m256i vw) noexcept {
  const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, vm), vw);
  return static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

__attribute__((target("avx2"))) std::uint32_t MatchAvx2(
    const std::uint8_t* base, const WideGeometry& g, const WidePhase& p,
    std::uint64_t want, std::uint64_t mask) noexcept {
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(want));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::uint32_t m = 0;
  for (unsigned i = 0; i < g.slots; i += 4) {
    m |= Avx2EqMask(Avx2Quad(base, p, i), vm, vw) << i;
  }
  return m & g.valid;
}

__attribute__((target("avx2"))) bool AnyAvx2(
    const std::uint8_t* const* bases, const std::uint8_t* phases,
    std::size_t n, const WideGeometry& g, std::uint64_t want,
    std::uint64_t mask, bool masked) noexcept {
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(want));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vz = _mm256_setzero_si256();
  const __m256i vsm = _mm256_set1_epi64x(static_cast<long long>(g.slot_mask));
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint8_t* base = bases[b];
    const WidePhase& p = g.phase[phases[b]];
    std::uint32_t m = 0;
    std::uint32_t nonempty = ~0u;
    for (unsigned i = 0; i < g.slots; i += 4) {
      const __m256i v = Avx2Quad(base, p, i);
      m |= Avx2EqMask(v, vm, vw) << i;
      if (masked) {
        nonempty &= ~(Avx2EqMask(v, vsm, vz) << i);
      }
    }
    if ((m & nonempty & g.valid) != 0) return true;
  }
  return false;
}

#endif  // x86

// --- aarch64 arm ----------------------------------------------------------

#if defined(__aarch64__)

/// NEON (aarch64 baseline): slots are extracted scalar (load + shift; the
/// slot_mask AND folds into the vector mask AND) and paired into q
/// registers without touching the stack; vceqq_u64 answers two slots at
/// once. Garbage lanes past the slot count are masked off with g.valid.
inline uint64x2_t NeonPair(const std::uint8_t* base, const WidePhase& p,
                           unsigned i) noexcept {
  return vcombine_u64(
      vcreate_u64(Load64(base + p.ext_byte[i]) >> p.ext_shift[i]),
      vcreate_u64(Load64(base + p.ext_byte[i + 1]) >> p.ext_shift[i + 1]));
}

inline std::uint32_t NeonEqMask(uint64x2_t v, uint64x2_t vm,
                                uint64x2_t vw) noexcept {
  const uint64x2_t eq = vceqq_u64(vandq_u64(v, vm), vw);
  return static_cast<std::uint32_t>(vgetq_lane_u64(eq, 0) & 1) |
         (static_cast<std::uint32_t>(vgetq_lane_u64(eq, 1) & 1) << 1);
}

std::uint32_t MatchNeon(const std::uint8_t* base, const WideGeometry& g,
                        const WidePhase& p, std::uint64_t want,
                        std::uint64_t mask) noexcept {
  const uint64x2_t vw = vdupq_n_u64(want);
  const uint64x2_t vm = vdupq_n_u64(mask);
  std::uint32_t m = 0;
  for (unsigned i = 0; i < g.slots; i += 2) {
    m |= NeonEqMask(NeonPair(base, p, i), vm, vw) << i;
  }
  return m & g.valid;
}

bool AnyNeon(const std::uint8_t* const* bases, const std::uint8_t* phases,
             std::size_t n, const WideGeometry& g, std::uint64_t want,
             std::uint64_t mask, bool masked) noexcept {
  const uint64x2_t vw = vdupq_n_u64(want);
  const uint64x2_t vm = vdupq_n_u64(mask);
  const uint64x2_t vz = vdupq_n_u64(0);
  const uint64x2_t vsm = vdupq_n_u64(g.slot_mask);
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint8_t* base = bases[b];
    const WidePhase& p = g.phase[phases[b]];
    std::uint32_t m = 0;
    std::uint32_t nonempty = ~0u;
    for (unsigned i = 0; i < g.slots; i += 2) {
      const uint64x2_t v = NeonPair(base, p, i);
      m |= NeonEqMask(v, vm, vw) << i;
      if (masked) {
        nonempty &= ~(NeonEqMask(v, vsm, vz) << i);
      }
    }
    if ((m & nonempty & g.valid) != 0) return true;
  }
  return false;
}

#endif  // aarch64

constexpr WideOps kScalarOps = {&MatchScalar, &AnyScalar};
constexpr WideOps kSwarOps = {&MatchSwar, &AnySwar};
#if defined(__x86_64__) || defined(__i386__)
constexpr WideOps kSse2Ops = {&MatchSse2, &AnySse2};
constexpr WideOps kAvx2Ops = {&MatchAvx2, &AnyAvx2};
#endif
#if defined(__aarch64__)
constexpr WideOps kNeonOps = {&MatchNeon, &AnyNeon};
#endif

ProbeArm DetectBestArm() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return ProbeArm::kAvx2;
  if (__builtin_cpu_supports("sse2")) return ProbeArm::kSse2;
  return ProbeArm::kSwar;
#elif defined(__aarch64__)
  return ProbeArm::kNeon;
#else
  return ProbeArm::kSwar;
#endif
}

/// Startup resolution: CMake force > environment > CPU detection. Invalid
/// or unsupported requests silently fall back to detection — a binary built
/// with a forced arm must still run on machines without that ISA.
ProbeArm ResolveStartupArm() noexcept {
#ifdef VCF_FORCE_PROBE_ARM
  {
    ProbeArm a;
    if (ParseProbeArm(VCF_FORCE_PROBE_ARM, &a) && ProbeArmSupported(a)) {
      return a;
    }
  }
#endif
  if (const char* env = std::getenv("VCF_PROBE_ARM")) {
    ProbeArm a;
    if (ParseProbeArm(env, &a) && ProbeArmSupported(a)) return a;
  }
  return DetectBestArm();
}

ProbeArm g_active_arm = ResolveStartupArm();

}  // namespace

void BuildWideGeometry(unsigned slots, unsigned slot_bits, WideGeometry* g) {
  *g = WideGeometry{};
  g->slots = slots;
  g->slot_bits = slot_bits;
  g->slot_mask = LowMask(slot_bits);
  g->valid = (1u << slots) - 1;
  for (unsigned ph = 0; ph < 8; ++ph) {
    WidePhase& p = g->phase[ph];
    p.words = static_cast<std::uint8_t>((ph + slots * slot_bits + 63u) / 64u);
    for (unsigned i = 0; i < slots; ++i) {
      const unsigned q = ph + i * slot_bits;  // slot's low bit, from base
      p.ext_byte[i] = static_cast<std::uint16_t>(q >> 3);
      p.ext_shift[i] = static_cast<std::uint8_t>(q & 7u);
      p.shifts[i] = q & 7u;
      if ((q >> 6) != ((q + slot_bits - 1) >> 6)) {
        p.straddlers |= 1u << i;
      }
    }
    for (unsigned w = 0; w < p.words; ++w) {
      unsigned first = 0;
      unsigned count = 0;
      unsigned start = 0;  // bit offset of the first whole lane within word w
      for (unsigned i = 0; i < slots; ++i) {
        const unsigned q = ph + i * slot_bits;
        if ((q >> 6) != w || (p.straddlers >> i) & 1u) continue;
        if (count == 0) {
          first = i;
          start = q & 63u;
        }
        const unsigned lane = q & 63u;
        p.ones[w] |= std::uint64_t{1} << lane;
        p.highs[w] |= std::uint64_t{1} << (lane + slot_bits - 1);
        ++count;
      }
      p.lows[w] = p.highs[w] - p.ones[w];
      p.first_slot[w] = static_cast<std::uint8_t>(first);
      p.lane_count[w] = static_cast<std::uint8_t>(count);
      if (count > 0) {
        p.compress_shift[w] = static_cast<std::uint8_t>(start + slot_bits - 1);
        p.collect_shift[w] =
            static_cast<std::uint8_t>((count - 1) * (slot_bits - 1));
        for (unsigned i = 0; i < count; ++i) {
          p.compress_mul[w] |= std::uint64_t{1} << (i * (slot_bits - 1));
        }
      }
    }
  }
}

bool ProbeArmSupported(ProbeArm arm) noexcept {
  switch (arm) {
    case ProbeArm::kScalar:
    case ProbeArm::kSwar:
      return true;
    case ProbeArm::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case ProbeArm::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case ProbeArm::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

ProbeArm ActiveProbeArm() noexcept { return g_active_arm; }

bool SetWideProbeArm(ProbeArm arm) noexcept {
  if (!ProbeArmSupported(arm)) return false;
  g_active_arm = arm;
  return true;
}

const WideOps& ResolveWideOps(ProbeArm arm) noexcept {
  switch (arm) {
    case ProbeArm::kScalar:
      return kScalarOps;
    case ProbeArm::kSwar:
      return kSwarOps;
#if defined(__x86_64__) || defined(__i386__)
    case ProbeArm::kSse2:
      return kSse2Ops;
    case ProbeArm::kAvx2:
      return kAvx2Ops;
#endif
#if defined(__aarch64__)
    case ProbeArm::kNeon:
      return kNeonOps;
#endif
    default:
      return kScalarOps;
  }
}

const char* ProbeArmName(ProbeArm arm) noexcept {
  switch (arm) {
    case ProbeArm::kScalar: return "scalar";
    case ProbeArm::kSwar: return "swar";
    case ProbeArm::kSse2: return "sse2";
    case ProbeArm::kAvx2: return "avx2";
    case ProbeArm::kNeon: return "neon";
  }
  return "?";
}

bool ParseProbeArm(const char* name, ProbeArm* arm) noexcept {
  if (name == nullptr) return false;
  if (std::strcmp(name, "auto") == 0) {
    *arm = DetectBestArm();
    return true;
  }
  for (ProbeArm a : {ProbeArm::kScalar, ProbeArm::kSwar, ProbeArm::kSse2,
                     ProbeArm::kAvx2, ProbeArm::kNeon}) {
    if (std::strcmp(name, ProbeArmName(a)) == 0) {
      *arm = a;
      return true;
    }
  }
  return false;
}

}  // namespace vcf
