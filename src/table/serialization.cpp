#include "table/serialization.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <new>
#include <ostream>
#include <vector>

#include "common/bitops.hpp"
#include "common/failpoint.hpp"
#include "common/random.hpp"

namespace vcf {

namespace {

constexpr char kMagic[4] = {'V', 'C', 'F', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Take(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

std::uint64_t Checksum(const std::uint8_t* bytes, std::size_t size) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  std::size_t i = 0;
  while (i + 8 <= size) {
    std::uint64_t w;
    std::memcpy(&w, bytes + i, 8);
    h = Mix64(h ^ w);
    i += 8;
  }
  std::uint64_t tail = 0;
  if (i < size) {
    std::memcpy(&tail, bytes + i, size - i);
    h = Mix64(h ^ tail);
  }
  return Mix64(h ^ size);
}

}  // namespace

bool TableCodec::Save(const PackedTable& table, std::ostream& out) {
  // Failure seam: an injected fault presents as a stream write error.
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kTableSave)) {
    out.setstate(std::ios::failbit);
    return false;
  }
  // The payload is CANONICAL: packed-layout slot bytes plus 8 zero slack
  // bytes, independent of the table's in-memory layout (cache-aligned
  // padding) and probe-path slack. Checkpoints are therefore byte-identical
  // across layouts and probe arms, and the format is unchanged from the
  // pre-wide-engine one.
  const std::uint64_t total_bits =
      static_cast<std::uint64_t>(table.bucket_count_) *
      table.slots_per_bucket_ * table.slot_bits_;
  const std::uint64_t payload = (total_bits + 7) / 8 + 8;
  out.write(kMagic, sizeof(kMagic));
  Put(out, kVersion);
  Put(out, static_cast<std::uint64_t>(table.bucket_count_));
  Put(out, static_cast<std::uint32_t>(table.slots_per_bucket_));
  Put(out, static_cast<std::uint32_t>(table.slot_bits_));
  Put(out, static_cast<std::uint64_t>(table.occupied_));
  Put(out, payload);
  if (table.stride_bits_ == table.bucket_bits_) {
    // Packed in-memory layout: the live prefix of bits_ IS the canonical
    // payload (slot bytes + zero slack).
    out.write(reinterpret_cast<const char*>(table.bits_.data()),
              static_cast<std::streamsize>(payload));
    Put(out, Checksum(table.bits_.data(),
                      static_cast<std::size_t>(payload)));
  } else {
    // Aligned in-memory layout: re-pack the slots densely.
    std::vector<std::uint8_t> canon(static_cast<std::size_t>(payload), 0);
    std::size_t off = 0;
    for (std::size_t b = 0; b < table.bucket_count_; ++b) {
      for (unsigned s = 0; s < table.slots_per_bucket_; ++s) {
        WriteBits(canon.data(), off, table.slot_bits_, table.Get(b, s));
        off += table.slot_bits_;
      }
    }
    out.write(reinterpret_cast<const char*>(canon.data()),
              static_cast<std::streamsize>(canon.size()));
    Put(out, Checksum(canon.data(), canon.size()));
  }
  return static_cast<bool>(out);
}

std::optional<PackedTable> TableCodec::Load(std::istream& in) {
  // Failure seam: an injected fault presents as a stream read error.
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kTableLoad)) {
    in.setstate(std::ios::failbit);
    return std::nullopt;
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return std::nullopt;

  std::uint32_t version = 0;
  std::uint64_t bucket_count = 0;
  std::uint32_t slots = 0;
  std::uint32_t slot_bits = 0;
  std::uint64_t occupied = 0;
  std::uint64_t payload = 0;
  if (!Take(in, version) || version != kVersion) return std::nullopt;
  if (!Take(in, bucket_count) || !Take(in, slots) || !Take(in, slot_bits) ||
      !Take(in, occupied) || !Take(in, payload)) {
    return std::nullopt;
  }
  if (bucket_count == 0 || slots == 0 || slot_bits == 0 || slot_bits > 57) {
    return std::nullopt;
  }
  // The geometry fields are untrusted: a corrupt blob can declare counts
  // whose product wraps 64 bits and would otherwise slip past the payload
  // cross-check below (and then index far outside the allocation). All
  // derived sizes are computed with explicit overflow detection.
  std::uint64_t slots_total = 0;
  std::uint64_t total_bits = 0;
  if (__builtin_mul_overflow(bucket_count, static_cast<std::uint64_t>(slots),
                             &slots_total) ||
      __builtin_mul_overflow(slots_total, static_cast<std::uint64_t>(slot_bits),
                             &total_bits) ||
      total_bits > std::uint64_t{1} << 50) {  // 128 TiB of slots: nonsense
    return std::nullopt;
  }
  const std::uint64_t expected_payload = (total_bits + 7) / 8 + 8;
  if (payload != expected_payload ||
      bucket_count > std::numeric_limits<std::size_t>::max() ||
      occupied > slots_total) {
    return std::nullopt;
  }

  // Declared geometry can still demand more memory than the host has; a
  // checkpoint restore must degrade to a clean failure, not a crash.
  std::optional<PackedTable> table;
  try {
    table.emplace(static_cast<std::size_t>(bucket_count), slots, slot_bits);
  } catch (const std::bad_alloc&) {
    return std::nullopt;
  }
  // bits_ may carry extra probe-engine slack beyond the canonical payload
  // (wide-capable geometries); the payload fills the live prefix and the
  // slack stays zero, exactly as construction left it.
  in.read(reinterpret_cast<char*>(table->bits_.data()),
          static_cast<std::streamsize>(payload));
  std::uint64_t checksum = 0;
  if (!in || !Take(in, checksum) ||
      checksum != Checksum(table->bits_.data(),
                           static_cast<std::size_t>(payload))) {
    return std::nullopt;
  }
  table->occupied_ = static_cast<std::size_t>(occupied);
  return table;
}

}  // namespace vcf
