// Bit-packed bucketed slot table — the storage substrate shared by every
// cuckoo-family filter in this library (CF, DCF, VCF, IVCF, DVCF, k-VCF).
//
// A table is m buckets × b slots; each slot holds a `slot_bits`-wide value.
// Fig. 4 of the paper sweeps fingerprint lengths 7..18 bits and k-VCF appends
// mark bits to the fingerprint, so slots must be packed at bit granularity:
// a byte-aligned layout would distort the space-cost comparisons (Eq. 12).
//
// Value 0 is reserved to mean "empty slot"; filters map fingerprints into
// [1, 2^f - 1] before storing them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vcf {

class PackedTable {
 public:
  /// Creates a zeroed table. `slot_bits` must be in [1, 57]; violations
  /// throw std::invalid_argument — construction is cold path. Any positive
  /// bucket count is accepted (the Vacuum filter uses non-power-of-two
  /// tables); filters whose indexing needs a power of two enforce that
  /// themselves.
  PackedTable(std::size_t bucket_count, unsigned slots_per_bucket,
              unsigned slot_bits);

  std::size_t bucket_count() const noexcept { return bucket_count_; }
  unsigned slots_per_bucket() const noexcept { return slots_per_bucket_; }
  unsigned slot_bits() const noexcept { return slot_bits_; }
  std::size_t slot_count() const noexcept {
    return bucket_count_ * slots_per_bucket_;
  }
  /// Bytes of fingerprint storage (the quantity Eq. 12 prices), excluding
  /// the object header.
  std::size_t StorageBytes() const noexcept { return bits_.size(); }

  /// Number of non-empty slots across the table.
  std::size_t OccupiedSlots() const noexcept { return occupied_; }
  double LoadFactor() const noexcept {
    return slot_count() == 0
               ? 0.0
               : static_cast<double>(occupied_) / static_cast<double>(slot_count());
  }

  /// Hints the cache that `bucket`'s slots are about to be probed (batch
  /// lookup pipelines). A bucket spans at most ~29 bytes, i.e. one or two
  /// cache lines from its start.
  void PrefetchBucket(std::size_t bucket) const noexcept {
    const std::size_t byte = BitOffset(bucket, 0) >> 3;
    __builtin_prefetch(bits_.data() + byte, /*rw=*/0, /*locality=*/1);
  }

  /// Raw slot access. `value` 0 means empty.
  std::uint64_t Get(std::size_t bucket, unsigned slot) const noexcept;
  void Set(std::size_t bucket, unsigned slot, std::uint64_t value) noexcept;

  /// Index of the first empty slot in `bucket`, or -1 if the bucket is full.
  int FindEmptySlot(std::size_t bucket) const noexcept;

  /// Stores `value` in the first empty slot; false if the bucket is full.
  bool InsertValue(std::size_t bucket, std::uint64_t value) noexcept;

  /// True iff some slot of `bucket` equals `value` exactly.
  bool ContainsValue(std::size_t bucket, std::uint64_t value) const noexcept;

  /// True iff some slot matches `value` on the bits selected by `mask`
  /// (k-VCF matches on the fingerprint field, ignoring mark bits).
  bool ContainsMasked(std::size_t bucket, std::uint64_t value,
                      std::uint64_t mask) const noexcept;

  /// Clears the first slot equal to `value`; false if absent.
  bool EraseValue(std::size_t bucket, std::uint64_t value) noexcept;

  /// Clears the first slot matching `value & mask`; returns the full stored
  /// slot word (mark bits included) or 0 if absent.
  std::uint64_t EraseMasked(std::size_t bucket, std::uint64_t value,
                            std::uint64_t mask) noexcept;

  /// Resets every slot to empty.
  void Clear() noexcept;

  bool operator==(const PackedTable& other) const noexcept;

 private:
  friend class TableCodec;

  std::size_t BitOffset(std::size_t bucket, unsigned slot) const noexcept {
    return (bucket * slots_per_bucket_ + slot) * slot_bits_;
  }

  std::size_t bucket_count_;
  unsigned slots_per_bucket_;
  unsigned slot_bits_;
  std::size_t occupied_;
  std::vector<std::uint8_t> bits_;
};

}  // namespace vcf
