// Bit-packed bucketed slot table — the storage substrate shared by every
// cuckoo-family filter in this library (CF, DCF, VCF, IVCF, DVCF, k-VCF).
//
// A table is m buckets × b slots; each slot holds a `slot_bits`-wide value.
// Fig. 4 of the paper sweeps fingerprint lengths 7..18 bits and k-VCF appends
// mark bits to the fingerprint, so slots must be packed at bit granularity:
// a byte-aligned layout would distort the space-cost comparisons (Eq. 12).
//
// Value 0 is reserved to mean "empty slot"; filters map fingerprints into
// [1, 2^f - 1] before storing them.
//
// Probing strategy, by bucket width:
//   - b * slot_bits <= 64, b >= 2: the bucket is loaded in one or two
//     unaligned 64-bit loads and all slots resolve at once with SWAR lane
//     tricks (broadcast-XOR + exact zero-lane detection; common/bitops.hpp).
//   - 64 < b * slot_bits <= 256, b in [2, 8]: the bucket is materialized as
//     a multi-word image and probed by the wide engine
//     (table/probe_engine.hpp) through the dispatch arm resolved at startup
//     (AVX2/SSE2 on x86, NEON on aarch64, multi-word SWAR anywhere).
//   - everything else: the per-slot scalar loop, which is also kept as the
//     reference implementation (the *Scalar methods) for differential
//     testing and as the baseline the micro benches compare against
//     (docs/performance.md).
//
// Bucket layout: by default buckets are packed back-to-back at bit
// granularity (TableLayout::kPacked — the space the paper prices). The
// opt-in TableLayout::kCacheAligned pads the bucket *stride* to a power of
// two bits, so every bucket lives inside one 64-byte cache line (any
// power-of-two stride <= 512 divides the line) and bucket loads are always
// byte-aligned single-segment reads. Slot contents and probe results are
// identical across layouts; only addressing and memory footprint differ,
// and serialization is canonical (TableCodec always emits packed-layout
// bytes), so checkpoints are layout-portable and blob-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/bitops.hpp"
#include "common/hugepage.hpp"
#include "table/probe_engine.hpp"

namespace vcf {

/// In-memory bucket addressing scheme. Serialized state is always written
/// in kPacked order regardless of the in-memory layout.
enum class TableLayout : std::uint8_t {
  kPacked,        ///< buckets back-to-back at bit granularity (default)
  kCacheAligned,  ///< bucket stride padded to a power of two bits
};

class PackedTable {
 public:
  /// Creates a zeroed table. `slot_bits` must be in [1, 57]; violations
  /// throw std::invalid_argument — construction is cold path. Any positive
  /// bucket count is accepted (the Vacuum filter uses non-power-of-two
  /// tables); filters whose indexing needs a power of two enforce that
  /// themselves. `pages` picks the backing-page placement (hugepage.hpp);
  /// it affects neither slot semantics nor serialization.
  PackedTable(std::size_t bucket_count, unsigned slots_per_bucket,
              unsigned slot_bits, TableLayout layout = TableLayout::kPacked,
              PageHint pages = PageHint::kNormal);

  // Copies clone geometry, page hint, and contents into a fresh buffer
  // (PagedBytes itself is move-only); moves transfer the buffer.
  PackedTable(const PackedTable& other);
  PackedTable& operator=(const PackedTable& other);
  PackedTable(PackedTable&&) noexcept = default;
  PackedTable& operator=(PackedTable&&) noexcept = default;

  std::size_t bucket_count() const noexcept { return bucket_count_; }
  unsigned slots_per_bucket() const noexcept { return slots_per_bucket_; }
  unsigned slot_bits() const noexcept { return slot_bits_; }
  TableLayout layout() const noexcept { return layout_; }
  /// Backing-page placement requested at construction (hugepage.hpp).
  PageHint page_hint() const noexcept { return bits_.hint(); }
  /// Distance in bits between consecutive buckets' first slots. Equals
  /// bucket_bits for kPacked; a power of two >= bucket_bits for
  /// kCacheAligned.
  unsigned stride_bits() const noexcept { return stride_bits_; }
  std::size_t slot_count() const noexcept {
    return bucket_count_ * slots_per_bucket_;
  }
  /// Bytes of fingerprint storage (the quantity Eq. 12 prices), excluding
  /// the object header. Includes alignment padding under kCacheAligned —
  /// that padding is exactly the layout's space cost.
  std::size_t StorageBytes() const noexcept { return bits_.size(); }

  /// Number of non-empty slots across the table.
  std::size_t OccupiedSlots() const noexcept { return occupied_; }
  double LoadFactor() const noexcept {
    return slot_count() == 0
               ? 0.0
               : static_cast<double>(occupied_) / static_cast<double>(slot_count());
  }

  /// Hints the cache that `bucket`'s slots are about to be probed (batch
  /// lookup/insert pipelines). A packed bucket's bit-span may straddle a
  /// 64-byte cache-line boundary, in which case both lines are hinted; an
  /// aligned bucket never straddles, so one hint suffices.
  void PrefetchBucket(std::size_t bucket) const noexcept {
    const std::size_t first_byte = BitOffset(bucket, 0) >> 3;
    __builtin_prefetch(bits_.data() + first_byte, /*rw=*/0, /*locality=*/1);
    if (layout_ == TableLayout::kPacked) {
      const std::size_t last_byte =
          (BitOffset(bucket, 0) + bucket_bits_ - 1) >> 3;
      if ((first_byte >> 6) != (last_byte >> 6)) {
        __builtin_prefetch(bits_.data() + last_byte, /*rw=*/0, /*locality=*/1);
      }
    }
  }

  /// Raw slot access. `value` 0 means empty.
  std::uint64_t Get(std::size_t bucket, unsigned slot) const noexcept;
  void Set(std::size_t bucket, unsigned slot, std::uint64_t value) noexcept;

  /// Same result as Get(), as a single inline unaligned 64-bit load. Valid
  /// for every constructible geometry: slot_bits <= 57 keeps the slot inside
  /// an 8-byte window at any intra-byte phase, and `bits_` always carries 8
  /// bytes of slack past the last live bit. This is the segment probe
  /// kernel's accessor — three of these per ImmutableSegment::Contains.
  std::uint64_t GetFast(std::size_t bucket, unsigned slot) const noexcept {
    const std::size_t off = BitOffset(bucket, slot);
    const std::uint64_t word = LoadWordRelaxed(bits_.data() + (off >> 3));
    return (word >> (off & 7)) & LowMask(slot_bits_);
  }

  /// Index of the first empty slot in `bucket`, or -1 if the bucket is full.
  int FindEmptySlot(std::size_t bucket) const noexcept;

  /// Stores `value` in the first empty slot; false if the bucket is full.
  bool InsertValue(std::size_t bucket, std::uint64_t value) noexcept;

  /// True iff some slot of `bucket` equals `value` exactly. `value` must fit
  /// in `slot_bits` (all stored values do by construction).
  bool ContainsValue(std::size_t bucket, std::uint64_t value) const noexcept;

  /// True iff some slot matches `value` on the bits selected by `mask`
  /// (k-VCF matches on the fingerprint field, ignoring mark bits).
  bool ContainsMasked(std::size_t bucket, std::uint64_t value,
                      std::uint64_t mask) const noexcept;

  /// Fused multi-candidate membership: true iff ContainsValue holds for any
  /// of `buckets[0..n)`. The hot path of VCF/DVCF Contains — all candidate
  /// buckets stream through one probe kernel with the broadcast constants
  /// hoisted, instead of n sequential early-exit probes.
  bool ContainsValueAny(const std::uint64_t* buckets, std::size_t n,
                        std::uint64_t value) const noexcept;

  /// Fused multi-candidate masked membership (k-VCF / DVCF variants).
  bool ContainsMaskedAny(const std::uint64_t* buckets, std::size_t n,
                         std::uint64_t value,
                         std::uint64_t mask) const noexcept;

  /// Clears the first slot equal to `value`; false if absent.
  bool EraseValue(std::size_t bucket, std::uint64_t value) noexcept;

  /// Clears the first slot matching `value & mask`; returns the full stored
  /// slot word (mark bits included) or 0 if absent.
  std::uint64_t EraseMasked(std::size_t bucket, std::uint64_t value,
                            std::uint64_t mask) noexcept;

  /// Resets every slot to empty.
  void Clear() noexcept;

  /// Copies `other`'s slot contents into this table in place — same
  /// geometry (bucket_count, slots_per_bucket, slot_bits) required, layout
  /// and page backing may differ. Unlike move-assignment this never
  /// replaces the backing buffer, so data() stays stable for concurrent
  /// optimistic readers (the restore path bumps the seqlock around it).
  void AdoptContents(const PackedTable& other) noexcept;

  /// Content equality: same geometry, same slot values. Layout-agnostic —
  /// a packed and an aligned table holding the same slots compare equal.
  bool operator==(const PackedTable& other) const noexcept;

  /// True when this table's probes take the word-at-a-time SWAR path
  /// (bucket fits a 64-bit word and has >= 2 slots, and the scalar override
  /// is off).
  bool UsesSwarProbes() const noexcept { return swar_; }

  /// True when this table's probes take the wide multi-word engine
  /// (64 < bucket bits <= 256, 2..8 slots, scalar override off).
  bool UsesWideProbes() const noexcept { return wide_; }

  /// The dispatch arm this table's probes run on: the wide engine's arm for
  /// wide tables, kSwar for single-word SWAR tables, kScalar otherwise.
  ProbeArm probe_arm() const noexcept {
    if (wide_) return wide_arm_;
    return swar_ ? ProbeArm::kSwar : ProbeArm::kScalar;
  }

  // Scalar reference implementations of the probe operations. These are the
  // pre-SWAR per-slot loops, kept public so differential tests and the
  // micro-bench baseline can pin them regardless of geometry. The SWAR and
  // wide paths must agree with them bit-for-bit on every input.
  int FindEmptySlotScalar(std::size_t bucket) const noexcept;
  bool ContainsValueScalar(std::size_t bucket, std::uint64_t value) const noexcept;
  bool ContainsMaskedScalar(std::size_t bucket, std::uint64_t value,
                            std::uint64_t mask) const noexcept;
  bool EraseValueScalar(std::size_t bucket, std::uint64_t value) noexcept;
  std::uint64_t EraseMaskedScalar(std::size_t bucket, std::uint64_t value,
                                  std::uint64_t mask) noexcept;

  /// Test/bench hook: when set, tables constructed afterwards use the scalar
  /// probe loop even where SWAR or the wide engine applies. Captured at
  /// construction so a table's behaviour never changes mid-life. Not
  /// thread-safe; flip only in single-threaded setup code.
  static void ForceScalarProbes(bool force) noexcept;

 private:
  friend class TableCodec;

  std::size_t BitOffset(std::size_t bucket, unsigned slot) const noexcept {
    return bucket * stride_bits_ +
           static_cast<std::size_t>(slot) * slot_bits_;
  }

  /// Loads the whole bucket as one little-endian word, low slot in the low
  /// bits, masked to `bucket_bits_`. Only meaningful when bucket_bits_ <= 64.
  std::uint64_t ReadBucketWord(std::size_t bucket) const noexcept;

  /// Runs the wide-engine match kernel in place over the bucket's raw
  /// bytes: the bucket bit offset splits into a byte base and a sub-byte
  /// phase, and the phase indexes the precomputed extraction/lane tables.
  /// Only meaningful when wide probing applies (bits_ carries enough
  /// trailing slack for the kernel's read window).
  std::uint32_t WideMatch(std::size_t bucket, std::uint64_t want,
                          std::uint64_t mask) const noexcept {
    const std::size_t bit = BitOffset(bucket, 0);
    return wide_ops_->match(bits_.data() + (bit >> 3), wide_geom_,
                            wide_geom_.phase[bit & 7], want, mask);
  }

  /// Empty-slot mask via the match kernel (a slot is empty iff its value,
  /// i.e. all slot_bits of it, equals 0).
  std::uint32_t WideEmptyMask(std::size_t bucket) const noexcept {
    return WideMatch(bucket, 0, wide_geom_.slot_mask);
  }

  std::size_t bucket_count_;
  unsigned slots_per_bucket_;
  unsigned slot_bits_;
  TableLayout layout_;
  std::size_t occupied_;

  // Derived probe geometry (construction-time constants).
  unsigned bucket_bits_;      ///< slots_per_bucket * slot_bits
  unsigned stride_bits_;      ///< bucket-to-bucket distance (>= bucket_bits)
  bool swar_;                 ///< probes use the single-word SWAR path
  bool wide_;                 ///< probes use the wide multi-word engine
  bool two_load_;             ///< bucket word needs a 9th byte (bucket_bits > 57)
  std::uint64_t bucket_mask_; ///< low bucket_bits_ bits
  std::uint64_t lane_ones_;   ///< 1 broadcast into every slot lane
  std::uint64_t lane_highs_;  ///< lane high bits (ones << (slot_bits-1))
  std::uint64_t lane_lows_;   ///< low slot_bits-1 bits of every lane

  // Wide-engine state (meaningful only when wide_).
  ProbeArm wide_arm_ = ProbeArm::kScalar;
  const WideOps* wide_ops_ = nullptr;
  WideGeometry wide_geom_;

  PagedBytes bits_;
};

}  // namespace vcf
