// Bit-packed bucketed slot table — the storage substrate shared by every
// cuckoo-family filter in this library (CF, DCF, VCF, IVCF, DVCF, k-VCF).
//
// A table is m buckets × b slots; each slot holds a `slot_bits`-wide value.
// Fig. 4 of the paper sweeps fingerprint lengths 7..18 bits and k-VCF appends
// mark bits to the fingerprint, so slots must be packed at bit granularity:
// a byte-aligned layout would distort the space-cost comparisons (Eq. 12).
//
// Value 0 is reserved to mean "empty slot"; filters map fingerprints into
// [1, 2^f - 1] before storing them.
//
// Probing strategy: when a whole bucket fits in a 64-bit word (b * slot_bits
// <= 64) and has at least two slots, the membership/erase/find-empty probes
// load the bucket in one or two unaligned 64-bit loads and resolve all slots
// at once with SWAR lane tricks (broadcast-XOR + exact zero-lane detection;
// see common/bitops.hpp). Wider buckets fall back to the per-slot scalar
// loop, which is also kept as a reference implementation (the *Scalar
// methods) for differential testing and as the baseline the micro benches
// compare against (docs/performance.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vcf {

class PackedTable {
 public:
  /// Creates a zeroed table. `slot_bits` must be in [1, 57]; violations
  /// throw std::invalid_argument — construction is cold path. Any positive
  /// bucket count is accepted (the Vacuum filter uses non-power-of-two
  /// tables); filters whose indexing needs a power of two enforce that
  /// themselves.
  PackedTable(std::size_t bucket_count, unsigned slots_per_bucket,
              unsigned slot_bits);

  std::size_t bucket_count() const noexcept { return bucket_count_; }
  unsigned slots_per_bucket() const noexcept { return slots_per_bucket_; }
  unsigned slot_bits() const noexcept { return slot_bits_; }
  std::size_t slot_count() const noexcept {
    return bucket_count_ * slots_per_bucket_;
  }
  /// Bytes of fingerprint storage (the quantity Eq. 12 prices), excluding
  /// the object header.
  std::size_t StorageBytes() const noexcept { return bits_.size(); }

  /// Number of non-empty slots across the table.
  std::size_t OccupiedSlots() const noexcept { return occupied_; }
  double LoadFactor() const noexcept {
    return slot_count() == 0
               ? 0.0
               : static_cast<double>(occupied_) / static_cast<double>(slot_count());
  }

  /// Hints the cache that `bucket`'s slots are about to be probed (batch
  /// lookup/insert pipelines). A bucket's bit-span may straddle a 64-byte
  /// cache-line boundary, in which case both lines are hinted.
  void PrefetchBucket(std::size_t bucket) const noexcept {
    const std::size_t first_byte = BitOffset(bucket, 0) >> 3;
    const std::size_t last_byte = (BitOffset(bucket, 0) + bucket_bits_ - 1) >> 3;
    __builtin_prefetch(bits_.data() + first_byte, /*rw=*/0, /*locality=*/1);
    if ((first_byte >> 6) != (last_byte >> 6)) {
      __builtin_prefetch(bits_.data() + last_byte, /*rw=*/0, /*locality=*/1);
    }
  }

  /// Raw slot access. `value` 0 means empty.
  std::uint64_t Get(std::size_t bucket, unsigned slot) const noexcept;
  void Set(std::size_t bucket, unsigned slot, std::uint64_t value) noexcept;

  /// Index of the first empty slot in `bucket`, or -1 if the bucket is full.
  int FindEmptySlot(std::size_t bucket) const noexcept;

  /// Stores `value` in the first empty slot; false if the bucket is full.
  bool InsertValue(std::size_t bucket, std::uint64_t value) noexcept;

  /// True iff some slot of `bucket` equals `value` exactly. `value` must fit
  /// in `slot_bits` (all stored values do by construction).
  bool ContainsValue(std::size_t bucket, std::uint64_t value) const noexcept;

  /// True iff some slot matches `value` on the bits selected by `mask`
  /// (k-VCF matches on the fingerprint field, ignoring mark bits).
  bool ContainsMasked(std::size_t bucket, std::uint64_t value,
                      std::uint64_t mask) const noexcept;

  /// Clears the first slot equal to `value`; false if absent.
  bool EraseValue(std::size_t bucket, std::uint64_t value) noexcept;

  /// Clears the first slot matching `value & mask`; returns the full stored
  /// slot word (mark bits included) or 0 if absent.
  std::uint64_t EraseMasked(std::size_t bucket, std::uint64_t value,
                            std::uint64_t mask) noexcept;

  /// Resets every slot to empty.
  void Clear() noexcept;

  bool operator==(const PackedTable& other) const noexcept;

  /// True when this table's probes take the word-at-a-time SWAR path
  /// (bucket fits a 64-bit word and has >= 2 slots, and the scalar override
  /// is off).
  bool UsesSwarProbes() const noexcept { return swar_; }

  // Scalar reference implementations of the probe operations. These are the
  // pre-SWAR per-slot loops, kept public so differential tests and the
  // micro-bench baseline can pin them regardless of geometry. The SWAR path
  // must agree with them bit-for-bit on every input.
  int FindEmptySlotScalar(std::size_t bucket) const noexcept;
  bool ContainsValueScalar(std::size_t bucket, std::uint64_t value) const noexcept;
  bool ContainsMaskedScalar(std::size_t bucket, std::uint64_t value,
                            std::uint64_t mask) const noexcept;
  bool EraseValueScalar(std::size_t bucket, std::uint64_t value) noexcept;
  std::uint64_t EraseMaskedScalar(std::size_t bucket, std::uint64_t value,
                                  std::uint64_t mask) noexcept;

  /// Test/bench hook: when set, tables constructed afterwards use the scalar
  /// probe loop even where SWAR applies. Captured at construction so a
  /// table's behaviour never changes mid-life. Not thread-safe; flip only in
  /// single-threaded setup code.
  static void ForceScalarProbes(bool force) noexcept;

 private:
  friend class TableCodec;

  std::size_t BitOffset(std::size_t bucket, unsigned slot) const noexcept {
    return (bucket * slots_per_bucket_ + slot) * slot_bits_;
  }

  /// Loads the whole bucket as one little-endian word, low slot in the low
  /// bits, masked to `bucket_bits_`. Only meaningful when bucket_bits_ <= 64.
  std::uint64_t ReadBucketWord(std::size_t bucket) const noexcept;

  std::size_t bucket_count_;
  unsigned slots_per_bucket_;
  unsigned slot_bits_;
  std::size_t occupied_;

  // Derived probe geometry (construction-time constants).
  unsigned bucket_bits_;      ///< slots_per_bucket * slot_bits
  bool swar_;                 ///< probes use the SWAR path
  bool two_load_;             ///< bucket word needs a 9th byte (bucket_bits > 57)
  std::uint64_t bucket_mask_; ///< low bucket_bits_ bits
  std::uint64_t lane_ones_;   ///< 1 broadcast into every slot lane
  std::uint64_t lane_highs_;  ///< lane high bits (ones << (slot_bits-1))
  std::uint64_t lane_lows_;   ///< low slot_bits-1 bits of every lane

  std::vector<std::uint8_t> bits_;
};

}  // namespace vcf
