// Wide-bucket probe engine: vectorized membership probes for buckets wider
// than one 64-bit word (65..256 bits), the regime the single-word SWAR path
// in PackedTable cannot reach. The paper's Fig. 4/6 sweep (f = 7..18)
// combined with b = 8 slots, and every k-VCF config whose slot carries mark
// bits, lands here — previously these fell back to the per-slot scalar loop.
//
// Design: kernels read the bucket's raw bytes in place — no intermediate
// bucket image is materialized. A bucket's bit offset is split into a byte
// base and a sub-byte phase (0..7); for each of the eight phases the
// geometry precomputes per-slot extraction tables (byte offset + shift, so
// extracting slot i is one unaligned load, one shift and one mask) and
// per-word SWAR lane constants over the byte-aligned words covering the
// bucket. Each arm provides two kernels:
//
//   match(bucket)  ->  bit i set iff (slot_i & mask) == want
//   any(buckets[]) ->  does any slot of any candidate bucket match?
//
// The match mask is the engine's universal primitive: probing want == 0,
// mask == slot_mask yields the empty-slot mask (find-empty), and
// `match(want, mask) & ~match(0, slot_mask)` is the masked-probe rule that
// refuses to treat empty slots as matches. The fused `any` kernel is the
// lookup hot path — it hoists per-call setup (vector broadcasts) across all
// candidate buckets of a Contains and exits on the first hit. Kernels may
// read up to kWideImageWords * 8 bytes from each bucket's byte base; the
// table's trailing slack guarantees those reads stay in bounds.
//
// Kernels (the dispatch "arms"):
//   kScalar  - branch-free extract-and-compare loop (portable reference)
//   kSwar    - multi-word SWAR: zero-lane detection run per raw word over
//              the lanes wholly inside it, straddling slots handled by
//              extraction (portable, the fallback on unknown ISAs)
//   kSse2    - register-built 2-lane vector equality (x86-64 baseline)
//   kAvx2    - 4-lane variable-shift extraction (vpsrlvq) + 64-bit vector
//              equality (runtime-detected)
//   kNeon    - register-built 2-lane vector equality (aarch64 baseline)
//
// The arm is chosen once at startup: VCF_FORCE_PROBE_ARM (CMake compile
// definition) > VCF_PROBE_ARM (environment) > best ISA the CPU reports.
// Tests may override per-construction via SetWideProbeArm (not thread-safe;
// single-threaded setup only), which is how the differential suite runs
// every arm against the scalar oracle on one host.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vcf {

/// Dispatch arms for the wide-bucket probe kernel.
enum class ProbeArm : std::uint8_t { kScalar, kSwar, kSse2, kAvx2, kNeon };

/// Kernel read window in u64 words from the bucket's byte base: 7 phase bits
/// plus 256 bucket bits span at most ceil(263 / 64) = 5 byte-aligned words.
/// Wide tables carry this much trailing slack.
inline constexpr unsigned kWideImageWords = 5;

/// Widest bucket the engine accepts; wider buckets stay on the scalar loop.
inline constexpr unsigned kWideMaxBits = 256;

/// Most slots the engine accepts (b = 8 is the paper's widest geometry; the
/// per-word SWAR compress multiply is proven carry-free for b <= 8).
inline constexpr unsigned kWideMaxSlots = 8;

/// Phase-specific constants: everything a kernel needs for buckets whose bit
/// offset is congruent to this phase mod 8.
struct WidePhase {
  // Per-slot extraction: slot i is
  //   (Load64(base + ext_byte[i]) >> ext_shift[i]) & slot_mask
  // (unaligned 8-byte load; slot_bits <= 57 guarantees the slot fits the
  // loaded window for any shift in 0..7).
  std::uint16_t ext_byte[kWideMaxSlots] = {};
  std::uint8_t ext_shift[kWideMaxSlots] = {};
  // ext_shift widened to one u64 per slot, in extraction order — loadable
  // directly as vector shift counts (AVX2 vpsrlvq).
  std::uint64_t shifts[kWideMaxSlots] = {};

  // Per-word SWAR lane sets over the raw byte-aligned words
  // Load64(base + 8w), w < words. The slots wholly contained in word w form
  // consecutive lanes starting at slot first_slot[w]; `ones/lows/highs` are
  // the SwarZeroLanes masks for those (arbitrarily offset, evenly spaced)
  // lanes — bits belonging to neighbouring buckets or straddlers are simply
  // not covered by the masks. compress_shift/compress_mul/collect_shift map
  // the zero-lane indicator bits to a dense low-order bitmask (see
  // probe_engine.cpp).
  std::uint64_t ones[kWideImageWords] = {};
  std::uint64_t lows[kWideImageWords] = {};
  std::uint64_t highs[kWideImageWords] = {};
  std::uint64_t compress_mul[kWideImageWords] = {};
  std::uint8_t compress_shift[kWideImageWords] = {};
  std::uint8_t collect_shift[kWideImageWords] = {};
  std::uint8_t first_slot[kWideImageWords] = {};
  std::uint8_t lane_count[kWideImageWords] = {};

  std::uint32_t straddlers = 0;  ///< slots crossing a raw-word boundary
  std::uint8_t words = 0;        ///< raw words spanning phase + bucket bits
};

/// Construction-time constants describing one bucket geometry, precomputed
/// once per PackedTable so the kernels are straight-line code.
struct WideGeometry {
  unsigned slots = 0;           ///< slots per bucket (2..kWideMaxSlots)
  unsigned slot_bits = 0;       ///< bits per slot (1..57)
  std::uint64_t slot_mask = 0;  ///< low slot_bits bits
  std::uint32_t valid = 0;      ///< low `slots` bits (masks padding lanes)
  WidePhase phase[8];           ///< indexed by the bucket bit offset mod 8
};

/// Match-mask kernel: bit i set iff (slot_i & mask) == want. `base` is the
/// bucket's byte base (bit offset >> 3); `p` must be `g.phase[offset & 7]`.
/// Probing want == 0, mask == slot_mask yields the empty-slot mask.
using WideMatchFn = std::uint32_t (*)(const std::uint8_t* base,
                                      const WideGeometry& g,
                                      const WidePhase& p, std::uint64_t want,
                                      std::uint64_t mask) noexcept;

/// Fused multi-candidate kernel: true iff any slot of any of the n buckets
/// (byte base `bases[i]`, phase `phases[i]`) satisfies the match rule. When
/// `masked`, empty slots never count as matches (the masked-probe rule —
/// relevant when want == 0 under the mask). `want` must be pre-masked
/// (`want == want & mask`, `mask` within slot_mask).
using WideAnyFn = bool (*)(const std::uint8_t* const* bases,
                           const std::uint8_t* phases, std::size_t n,
                           const WideGeometry& g, std::uint64_t want,
                           std::uint64_t mask, bool masked) noexcept;

/// One dispatch arm's kernel set.
struct WideOps {
  WideMatchFn match;
  WideAnyFn any;
};

/// Fills `g` for a (slots, slot_bits) geometry. Preconditions: slots in
/// [2, kWideMaxSlots], slots * slot_bits in (64, kWideMaxBits].
void BuildWideGeometry(unsigned slots, unsigned slot_bits, WideGeometry* g);

/// True when this build/CPU can run `arm` (kScalar/kSwar are always
/// runnable; ISA arms require both compile-time support and CPU features).
bool ProbeArmSupported(ProbeArm arm) noexcept;

/// The arm the process resolved at startup: the VCF_FORCE_PROBE_ARM compile
/// definition, else the VCF_PROBE_ARM environment variable, else the best
/// ISA the CPU supports. Unsupported or unparsable requests fall back to
/// auto-detection.
ProbeArm ActiveProbeArm() noexcept;

/// Overrides the active arm for tables constructed afterwards. Returns
/// false (and changes nothing) if the arm is unsupported here. Test/bench
/// hook; not thread-safe — flip only in single-threaded setup code.
bool SetWideProbeArm(ProbeArm arm) noexcept;

/// Kernel set for `arm`; the arm must be supported. The reference outlives
/// every table (it names a static table of function pointers).
const WideOps& ResolveWideOps(ProbeArm arm) noexcept;

/// Lower-case arm name ("avx2", "swar", ...), for labels and logs.
const char* ProbeArmName(ProbeArm arm) noexcept;

/// Parses an arm name as spelled by ProbeArmName, plus "auto" which yields
/// the detected best arm. Returns false on unknown names.
bool ParseProbeArm(const char* name, ProbeArm* arm) noexcept;

}  // namespace vcf
