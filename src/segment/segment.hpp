// Immutable probe segments: xor filters (Graf & Lemire, "Xor Filters:
// Faster and Smaller Than Bloom and Cuckoo Filters") and 3-ary binary fuse
// filters ("Binary Fuse Filters: Fast and Smaller Than Xor Filters"),
// compiled from the canonical fingerprint entities a live cuckoo-family
// filter enumerates through Filter::ForEachFingerprint.
//
// Both structures store one g-bit fingerprint per array cell and answer a
// query with exactly three loads:  fp(e) == B[p0(e)] ^ B[p1(e)] ^ B[p2(e)].
// Construction peels the 3-uniform hypergraph of entity -> cell edges; a
// peelable ordering exists with high probability at the over-provisioned
// array size (~1.23n cells for xor, ~1.13n for binary fuse), and when an
// unlucky seed leaves a 2-core the builder re-derives a fresh seed and
// retries. The fingerprint array reuses PackedTable (one slot per bucket)
// so storage is bit-packed — byte alignment would forfeit the bits/key win
// the tier exists for.
//
// A segment also retains its sorted entity list as a delta-varint sidecar:
// xor structures are not enumerable, and TieredFilter::Compact() and the
// checkpoint round-trip both need the exact entity set back. The sidecar is
// cold data (decoded only on compact/save) and is reported separately from
// the probe bytes — MemoryBytes-style accounting covers the approximate
// representation, the sidecar is priced honestly next to it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "table/packed_table.hpp"

namespace vcf {

enum class SegmentKind : std::uint8_t {
  kXor = 0,        ///< 3-block xor filter, ~1.23n cells
  kBinaryFuse = 1, ///< 3-ary binary fuse, consecutive-segment hashing, ~1.13n
};

struct SegmentParams {
  SegmentKind kind = SegmentKind::kBinaryFuse;

  /// Stored fingerprint width g in [1, 25]; the segment's false-positive
  /// rate is 2^-g. TieredFilter sizes g for parity with its front table.
  unsigned fingerprint_bits = 10;

  /// Base seed; build attempt i peels with Mix64-derived seed i, and the
  /// succeeding attempt index is recorded in the blob.
  std::uint64_t seed = 0x5EEDF00D;

  /// Peeling retries before Build gives up (each is ~O(n); failure at the
  /// sized over-provisioning is already <1% per attempt).
  unsigned max_build_attempts = 64;

  /// Backing-page placement for the probe array (common/hugepage.hpp).
  /// Not part of the serialized identity; blobs are page-independent.
  PageHint pages = PageHint::kNormal;
};

class ImmutableSegment {
 public:
  /// Compiles `entities` (deduplicated internally; duplicate edges are
  /// never peelable) into a frozen probe structure. Returns nullopt only
  /// when every seed attempt leaves a non-empty 2-core.
  static std::optional<ImmutableSegment> Build(
      std::vector<std::uint64_t> entities, const SegmentParams& params);

  /// Three loads + xor. May false-positive at 2^-fingerprint_bits; never
  /// false-negative for a built entity. Defined inline (below) so
  /// TieredFilter's lookup fan-out compiles down to the bare probe kernel.
  bool Contains(std::uint64_t entity) const noexcept;

  /// Batched membership. Hashes, positions and cache hints are pipelined a
  /// window ahead of the resolving loads, so a batch keeps ~3x window
  /// independent loads in flight instead of one probe's three — the win
  /// grows with the array's distance from L2 (docs/performance.md).
  void ContainsBatch(std::span<const std::uint64_t> entities,
                     bool* results) const noexcept;

  SegmentKind kind() const noexcept { return kind_; }
  unsigned fingerprint_bits() const noexcept { return fingerprint_bits_; }
  std::uint64_t base_seed() const noexcept { return base_seed_; }
  std::uint32_t build_attempt() const noexcept { return attempt_; }
  std::size_t EntityCount() const noexcept {
    return static_cast<std::size_t>(entity_count_);
  }
  std::size_t CellCount() const noexcept { return table_.bucket_count(); }

  /// Bytes of the bit-packed fingerprint array (the probe structure).
  std::size_t ProbeBytes() const noexcept { return table_.StorageBytes(); }
  /// Bytes of the retained entity sidecar.
  std::size_t SidecarBytes() const noexcept { return sidecar_.size(); }

  /// Decodes the sidecar back into the sorted, deduplicated entity list
  /// (compact/merge path; cold).
  std::vector<std::uint64_t> Entities() const;

  /// The header digest a segment built with `params` carries; loads verify
  /// it before touching the payload.
  static std::uint64_t ConfigDigestFor(const SegmentParams& params) noexcept;

  /// Canonical versioned blob through the state_io envelope: header
  /// ("Segment" + config digest), checksummed meta + sidecar frame, then
  /// the TableCodec fingerprint array. Save-load-save is byte-identical.
  bool SaveState(std::ostream& out) const;

  /// All-or-nothing restore: any corrupt byte (header, meta checksum,
  /// geometry, sidecar ordering, codec checksum, or a sidecar entity the
  /// array does not answer) rejects the whole blob. `params` must match
  /// the saved configuration.
  static std::optional<ImmutableSegment> LoadState(std::istream& in,
                                                   const SegmentParams& params);

  bool operator==(const ImmutableSegment& other) const noexcept;

 private:
  ImmutableSegment(const SegmentParams& params, std::uint32_t attempt,
                   std::uint64_t entity_count, std::uint64_t geom0,
                   std::uint64_t geom1, std::uint64_t array_length);

  static std::uint64_t Rotl(std::uint64_t x, unsigned r) noexcept {
    return (x << r) | (x >> (64 - r));
  }

  /// Lemire multiply-shift reduction of a 64-bit hash onto [0, n).
  static std::uint64_t ReduceTo(std::uint64_t x, std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * n) >> 64);
  }

  /// The three cell positions for the entity hash `h` (kind-dispatched).
  void Positions(std::uint64_t h, std::uint64_t pos[3]) const noexcept {
    if (kind_ == SegmentKind::kXor) {
      // One cell per block; the three rotations decorrelate the block
      // offsets.
      pos[0] = ReduceTo(h, block_length_);
      pos[1] = block_length_ + ReduceTo(Rotl(h, 21), block_length_);
      pos[2] = 2 * block_length_ + ReduceTo(Rotl(h, 42), block_length_);
    } else {
      // Three consecutive power-of-two windows starting at a reduced
      // segment index — the locality that makes fuse probes cheaper than
      // xor's.
      const std::uint64_t m = segment_length_ - 1;
      const std::uint64_t hi = ReduceTo(h, segment_count_);
      pos[0] = hi * segment_length_ + (h & m);
      pos[1] = (hi + 1) * segment_length_ + ((h >> 18) & m);
      pos[2] = (hi + 2) * segment_length_ + ((h >> 36) & m);
    }
  }

  std::uint64_t EntityHash(std::uint64_t entity) const noexcept {
    return Mix64(entity ^ effective_seed_);
  }

  std::uint64_t FingerprintOf(std::uint64_t h) const noexcept {
    return Mix64(h ^ 0xF0E1D2C3B4A59687ULL) & LowMask(fingerprint_bits_);
  }

  SegmentKind kind_;
  unsigned fingerprint_bits_;
  std::uint64_t base_seed_;
  std::uint32_t attempt_;
  std::uint64_t effective_seed_;
  std::uint64_t entity_count_;
  std::uint64_t block_length_;    ///< xor: cells per block (array = 3 blocks)
  std::uint64_t segment_length_;  ///< binary fuse: power-of-two window
  std::uint64_t segment_count_;   ///< binary fuse: starting-window count
  PackedTable table_;             ///< array_length x 1 slot x g bits
  std::vector<std::uint8_t> sidecar_;
};

inline bool ImmutableSegment::Contains(std::uint64_t entity) const noexcept {
  if (entity_count_ == 0) return false;
  const std::uint64_t h = EntityHash(entity);
  std::uint64_t pos[3];
  Positions(h, pos);
  // The three loads are independent; GetFast keeps each one a single
  // unaligned read so they overlap in flight.
  const std::uint64_t stored = table_.GetFast(pos[0], 0) ^
                               table_.GetFast(pos[1], 0) ^
                               table_.GetFast(pos[2], 0);
  return stored == FingerprintOf(h);
}

}  // namespace vcf
