#include "segment/segment.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "core/state_io.hpp"
#include "table/serialization.hpp"

namespace vcf {

namespace {

constexpr char kBlobName[] = "Segment";
constexpr unsigned kArity = 3;
constexpr std::uint64_t kMaxMetaBytes = std::uint64_t{1} << 32;
// Largest plausible fingerprint array: guards the load path against a
// corrupt geometry field demanding an absurd allocation.
constexpr std::uint64_t kMaxArrayLength = std::uint64_t{1} << 36;
constexpr std::uint64_t kMaxSegmentLength = std::uint64_t{1} << 18;

std::uint64_t DeriveSeed(std::uint64_t base, std::uint32_t attempt) noexcept {
  return Mix64(base ^ (0x9E3779B97F4A7C15ULL * (attempt + 1)));
}

/// Mix64-chain checksum (same construction as the state_io byte payloads).
std::uint64_t BufferChecksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0x5E6D3A75C0DEULL;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = Mix64(h ^ w);
  }
  std::uint64_t tail = 0;
  if (i < size) {
    std::memcpy(&tail, data + i, size - i);
    h = Mix64(h ^ tail);
  }
  return Mix64(h ^ size);
}

void PutRaw64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t TakeRaw64(const std::uint8_t* data, std::size_t* pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, data + *pos, 8);
  *pos += 8;
  return v;
}

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool TakeVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                std::uint64_t* v) {
  std::uint64_t out = 0;
  for (unsigned shift = 0; shift < 64 && *pos < size; shift += 7) {
    const std::uint8_t b = data[(*pos)++];
    out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = out;
      return true;
    }
  }
  return false;
}

/// Decodes a delta-varint sidecar into the sorted entity list; rejects
/// non-increasing deltas, overflow and trailing bytes.
bool DecodeSidecar(const std::vector<std::uint8_t>& sidecar,
                   std::uint64_t count, std::vector<std::uint64_t>* out) {
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!TakeVarint(sidecar.data(), sidecar.size(), &pos, &delta)) return false;
    if (i > 0 && delta == 0) return false;  // not strictly increasing
    const std::uint64_t e = i == 0 ? delta : prev + delta;
    if (i > 0 && e < prev) return false;  // wrapped
    out->push_back(e);
    prev = e;
  }
  return pos == sidecar.size();
}

struct XorGeometry {
  std::uint64_t block_length;
  std::uint64_t array_length;
};

XorGeometry XorGeometryFor(std::uint64_t n) {
  // Graf & Lemire's sizing: c = 1.23n + 32 cells, split into three blocks.
  const std::uint64_t capacity = 32 + (123 * n + 99) / 100;
  const std::uint64_t bl = (capacity + kArity - 1) / kArity;
  return {bl, bl * kArity};
}

struct FuseGeometry {
  std::uint64_t segment_length;
  std::uint64_t segment_count;
  std::uint64_t array_length;
};

FuseGeometry FuseGeometryFor(std::uint64_t n) {
  // Binary fuse sizing (3-ary): power-of-two windows whose length grows as
  // n^(1/log 3.33), with an over-provisioning factor shrinking toward 1.125.
  std::uint64_t sl = 4;
  if (n >= 2) {
    const double k =
        std::floor(std::log(static_cast<double>(n)) / std::log(3.33) + 2.25);
    const unsigned log2_sl = k < 2 ? 2u : (k > 18 ? 18u : static_cast<unsigned>(k));
    sl = std::uint64_t{1} << log2_sl;
  }
  const double sf = std::max(
      1.125, 0.875 + 0.25 * std::log(1000000.0) /
                         std::log(static_cast<double>(n < 2 ? 2 : n)));
  std::uint64_t capacity =
      static_cast<std::uint64_t>(std::llround(static_cast<double>(n) * sf));
  if (capacity < n + 16) capacity = n + 16;  // floor for tiny builds
  std::uint64_t sc = (capacity + sl - 1) / sl;
  sc = sc > (kArity - 1) ? sc - (kArity - 1) : 1;
  return {sl, sc, (sc + kArity - 1) * sl};
}

}  // namespace

ImmutableSegment::ImmutableSegment(const SegmentParams& params,
                                   std::uint32_t attempt,
                                   std::uint64_t entity_count,
                                   std::uint64_t geom0, std::uint64_t geom1,
                                   std::uint64_t array_length)
    : kind_(params.kind),
      fingerprint_bits_(params.fingerprint_bits),
      base_seed_(params.seed),
      attempt_(attempt),
      effective_seed_(DeriveSeed(params.seed, attempt)),
      entity_count_(entity_count),
      block_length_(params.kind == SegmentKind::kXor ? geom0 : 0),
      segment_length_(params.kind == SegmentKind::kBinaryFuse ? geom0 : 0),
      segment_count_(params.kind == SegmentKind::kBinaryFuse ? geom1 : 0),
      table_(static_cast<std::size_t>(array_length), 1, params.fingerprint_bits,
             TableLayout::kPacked, params.pages) {}

std::optional<ImmutableSegment> ImmutableSegment::Build(
    std::vector<std::uint64_t> entities, const SegmentParams& params) {
  if (params.fingerprint_bits == 0 || params.fingerprint_bits > 25) {
    throw std::invalid_argument(
        "ImmutableSegment: fingerprint_bits must be in [1, 25]");
  }
  std::sort(entities.begin(), entities.end());
  entities.erase(std::unique(entities.begin(), entities.end()),
                 entities.end());
  const std::uint64_t n = entities.size();
  if (n > 0xFFFFFFFFULL) {
    throw std::invalid_argument("ImmutableSegment: too many entities");
  }

  std::uint64_t geom0 = 0;
  std::uint64_t geom1 = 0;
  std::uint64_t array_length = 0;
  if (params.kind == SegmentKind::kXor) {
    const XorGeometry g = XorGeometryFor(n);
    geom0 = g.block_length;
    array_length = g.array_length;
  } else {
    const FuseGeometry g = FuseGeometryFor(n);
    geom0 = g.segment_length;
    geom1 = g.segment_count;
    array_length = g.array_length;
  }

  const unsigned attempts =
      params.max_build_attempts == 0 ? 1 : params.max_build_attempts;
  std::vector<std::uint64_t> hashes(static_cast<std::size_t>(n));
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    ImmutableSegment seg(params, attempt, n, geom0, geom1, array_length);
    for (std::size_t i = 0; i < n; ++i) {
      hashes[i] = seg.EntityHash(entities[i]);
    }

    // Peel the 3-uniform hypergraph: each cell keeps (edge count, xor of
    // incident item indices); a count-1 cell names its item outright.
    std::vector<std::uint32_t> count(array_length, 0);
    std::vector<std::uint32_t> cell_xor(array_length, 0);
    std::uint64_t pos[3];
    for (std::size_t i = 0; i < n; ++i) {
      seg.Positions(hashes[i], pos);
      for (unsigned j = 0; j < kArity; ++j) {
        ++count[pos[j]];
        cell_xor[pos[j]] ^= static_cast<std::uint32_t>(i);
      }
    }
    std::vector<std::uint64_t> queue;
    for (std::uint64_t c = 0; c < array_length; ++c) {
      if (count[c] == 1) queue.push_back(c);
    }
    std::vector<std::uint32_t> stack_item;
    std::vector<std::uint64_t> stack_cell;
    stack_item.reserve(static_cast<std::size_t>(n));
    stack_cell.reserve(static_cast<std::size_t>(n));
    while (!queue.empty()) {
      const std::uint64_t c = queue.back();
      queue.pop_back();
      if (count[c] != 1) continue;
      const std::uint32_t i = cell_xor[c];
      stack_item.push_back(i);
      stack_cell.push_back(c);
      seg.Positions(hashes[i], pos);
      for (unsigned j = 0; j < kArity; ++j) {
        --count[pos[j]];
        cell_xor[pos[j]] ^= i;
        if (count[pos[j]] == 1) queue.push_back(pos[j]);
      }
    }
    if (stack_item.size() != n) continue;  // 2-core left: reseed and retry

    // Assign in reverse peel order: each item's cell is untouched by later
    // (= earlier-peeled) assignments, so fp == xor of its three cells holds
    // for every item once the sweep finishes.
    for (std::size_t idx = stack_item.size(); idx-- > 0;) {
      const std::uint32_t i = stack_item[idx];
      const std::uint64_t c = stack_cell[idx];
      seg.Positions(hashes[i], pos);
      std::uint64_t v = seg.FingerprintOf(hashes[i]);
      for (unsigned j = 0; j < kArity; ++j) v ^= seg.table_.Get(pos[j], 0);
      seg.table_.Set(c, 0, v);
    }

    std::vector<std::uint8_t> sidecar;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      PutVarint(sidecar, i == 0 ? entities[i] : entities[i] - prev);
      prev = entities[i];
    }
    seg.sidecar_ = std::move(sidecar);
    return seg;
  }
  return std::nullopt;
}

void ImmutableSegment::ContainsBatch(std::span<const std::uint64_t> entities,
                                     bool* results) const noexcept {
  if (entity_count_ == 0) {
    std::fill_n(results, entities.size(), false);
    return;
  }
  constexpr std::size_t kWindow = 16;
  std::uint64_t hash[kWindow];
  std::uint64_t pos[kWindow][3];
  const std::size_t n = entities.size();
  for (std::size_t at = 0; at < n; at += kWindow) {
    const std::size_t w = std::min(kWindow, n - at);
    for (std::size_t i = 0; i < w; ++i) {
      hash[i] = EntityHash(entities[at + i]);
      Positions(hash[i], pos[i]);
      table_.PrefetchBucket(pos[i][0]);
      table_.PrefetchBucket(pos[i][1]);
      table_.PrefetchBucket(pos[i][2]);
    }
    for (std::size_t i = 0; i < w; ++i) {
      const std::uint64_t stored = table_.GetFast(pos[i][0], 0) ^
                                   table_.GetFast(pos[i][1], 0) ^
                                   table_.GetFast(pos[i][2], 0);
      results[at + i] = stored == FingerprintOf(hash[i]);
    }
  }
}

std::vector<std::uint64_t> ImmutableSegment::Entities() const {
  std::vector<std::uint64_t> out;
  // The sidecar was validated at build/load time; decode cannot fail here.
  DecodeSidecar(sidecar_, entity_count_, &out);
  return out;
}

std::uint64_t ImmutableSegment::ConfigDigestFor(
    const SegmentParams& params) noexcept {
  return detail::ConfigDigest(params.seed,
                              static_cast<unsigned>(params.kind) + 0x5E60,
                              params.fingerprint_bits, 0);
}

bool ImmutableSegment::SaveState(std::ostream& out) const {
  std::vector<std::uint8_t> meta;
  meta.reserve(2 + 7 * 8 + sidecar_.size() + 8);
  meta.push_back(static_cast<std::uint8_t>(kind_));
  meta.push_back(static_cast<std::uint8_t>(fingerprint_bits_));
  PutRaw64(meta, attempt_);
  PutRaw64(meta, entity_count_);
  PutRaw64(meta, block_length_);
  PutRaw64(meta, segment_length_);
  PutRaw64(meta, segment_count_);
  PutRaw64(meta, table_.bucket_count());
  PutRaw64(meta, sidecar_.size());
  meta.insert(meta.end(), sidecar_.begin(), sidecar_.end());
  PutRaw64(meta, BufferChecksum(meta.data(), meta.size()));

  SegmentParams params;
  params.kind = kind_;
  params.fingerprint_bits = fingerprint_bits_;
  params.seed = base_seed_;
  if (!detail::WriteStateHeader(out, kBlobName, ConfigDigestFor(params))) {
    return false;
  }
  if (!detail::WriteFramedBlob(
          out, std::string_view(reinterpret_cast<const char*>(meta.data()),
                                meta.size()))) {
    return false;
  }
  return TableCodec::Save(table_, out);
}

std::optional<ImmutableSegment> ImmutableSegment::LoadState(
    std::istream& in, const SegmentParams& params) {
  if (params.fingerprint_bits == 0 || params.fingerprint_bits > 25) {
    return std::nullopt;
  }
  if (!detail::ReadStateHeader(in, kBlobName, ConfigDigestFor(params))) {
    return std::nullopt;
  }
  std::string frame;
  if (!detail::ReadFramedBlob(in, &frame, kMaxMetaBytes)) return std::nullopt;
  const auto* data = reinterpret_cast<const std::uint8_t*>(frame.data());
  const std::size_t size = frame.size();
  constexpr std::size_t kFixedBytes = 2 + 7 * 8;
  if (size < kFixedBytes + 8) return std::nullopt;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, data + size - 8, 8);
  if (stored_sum != BufferChecksum(data, size - 8)) return std::nullopt;

  std::size_t pos = 0;
  const std::uint8_t kind_raw = data[pos++];
  const std::uint8_t fp_bits = data[pos++];
  const std::uint64_t attempt = TakeRaw64(data, &pos);
  const std::uint64_t entity_count = TakeRaw64(data, &pos);
  const std::uint64_t block_length = TakeRaw64(data, &pos);
  const std::uint64_t segment_length = TakeRaw64(data, &pos);
  const std::uint64_t segment_count = TakeRaw64(data, &pos);
  const std::uint64_t array_length = TakeRaw64(data, &pos);
  const std::uint64_t sidecar_len = TakeRaw64(data, &pos);

  if (kind_raw != static_cast<std::uint8_t>(params.kind) ||
      fp_bits != params.fingerprint_bits || attempt > 0xFFFFFFFFULL ||
      array_length == 0 || array_length > kMaxArrayLength ||
      entity_count > array_length || sidecar_len != size - 8 - kFixedBytes) {
    return std::nullopt;
  }
  std::uint64_t geom0 = 0;
  std::uint64_t geom1 = 0;
  if (params.kind == SegmentKind::kXor) {
    if (segment_length != 0 || segment_count != 0 || block_length == 0 ||
        array_length != kArity * block_length) {
      return std::nullopt;
    }
    geom0 = block_length;
  } else {
    if (block_length != 0 || segment_length == 0 ||
        !IsPowerOfTwo(segment_length) || segment_length > kMaxSegmentLength ||
        segment_count == 0 ||
        array_length != (segment_count + kArity - 1) * segment_length) {
      return std::nullopt;
    }
    geom0 = segment_length;
    geom1 = segment_count;
  }

  auto table = TableCodec::Load(in);
  if (!table.has_value() || table->bucket_count() != array_length ||
      table->slots_per_bucket() != 1 ||
      table->slot_bits() != params.fingerprint_bits) {
    return std::nullopt;
  }

  ImmutableSegment seg(params, static_cast<std::uint32_t>(attempt),
                       entity_count, geom0, geom1, /*array_length=*/1);
  seg.table_ = std::move(*table);
  seg.sidecar_.assign(data + kFixedBytes, data + kFixedBytes + sidecar_len);

  // Cross-validate the two payload halves: the sidecar must decode to a
  // strictly sorted list the probe array answers in full. A blob that
  // passes both checksums but mixes halves of two segments still dies here.
  std::vector<std::uint64_t> entities;
  if (!DecodeSidecar(seg.sidecar_, entity_count, &entities)) {
    return std::nullopt;
  }
  for (std::uint64_t e : entities) {
    if (!seg.Contains(e)) return std::nullopt;
  }
  return seg;
}

bool ImmutableSegment::operator==(const ImmutableSegment& other) const noexcept {
  return kind_ == other.kind_ && fingerprint_bits_ == other.fingerprint_bits_ &&
         base_seed_ == other.base_seed_ && attempt_ == other.attempt_ &&
         entity_count_ == other.entity_count_ &&
         block_length_ == other.block_length_ &&
         segment_length_ == other.segment_length_ &&
         segment_count_ == other.segment_count_ && table_ == other.table_ &&
         sidecar_ == other.sidecar_;
}

}  // namespace vcf
