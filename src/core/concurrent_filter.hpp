// Thread-safety wrapper for any Filter.
//
// §III-C of the paper remarks that concurrent cuckoo hash tables struggle
// with eviction loops; a fully lock-free multi-writer cuckoo filter is a
// research problem of its own (the eviction chain touches an unbounded
// bucket set). This wrapper provides the honest, commonly deployed
// compromise: a reader-writer lock — lookups run fully concurrently,
// mutations serialize. For read-mostly online workloads (the usual AMQ
// deployment) this recovers almost all available parallelism.
//
// All observers — ItemCount, LoadFactor, SlotCount, MemoryBytes — take the
// shared lock, so they are safe against concurrent mutation (a growing
// DynamicVcf changes SlotCount/MemoryBytes mid-insert). OpCounters need no
// lock: every field is a relaxed atomic (see metrics/op_counters.hpp).
//
// Lookups additionally get the same optimistic seqlock fast path as
// ShardedFilter when the inner filter is OptimisticReadSafe(): probe with
// no lock, validate the sequence the mutation paths bump, retry a bounded
// number of times, then fall back to the shared lock. For inner filters
// that may reallocate under mutation (DynamicVcf) the wrapper quietly
// stays on the pure lock protocol.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/seqlock.hpp"
#include "core/filter.hpp"
#include "metrics/op_counters.hpp"

namespace vcf {

class ConcurrentFilter : public Filter {
 public:
  explicit ConcurrentFilter(std::unique_ptr<Filter> inner);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override {
    return inner_->SupportsDeletion();
  }
  std::string Name() const override { return "Concurrent(" + inner_->Name() + ")"; }
  std::size_t ItemCount() const noexcept override;
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// The wrapped filter; caller must ensure quiescence before poking it.
  Filter& inner() noexcept { return *inner_; }

  /// Leaf discovery recurses into the wrapped filter under this wrapper's
  /// write lock (sequence bumped), so the visitor may mutate the leaves.
  void ForEachLeaf(const std::function<void(Filter&)>& fn) override {
    std::unique_lock lock(mutex_);
    SeqLockWriteGuard seq(seq_);
    inner_->ForEachLeaf(fn);
  }

  /// Enables/disables the lock-free read path (default on; see
  /// ShardedFilter::SetOptimisticReads for semantics).
  void SetOptimisticReads(bool on) noexcept {
    optimistic_.store(on, std::memory_order_relaxed);
  }
  std::uint64_t seqlock_retries() const noexcept {
    return seq_retries_.Value();
  }
  std::uint64_t seqlock_fallbacks() const noexcept {
    return seq_fallbacks_.Value();
  }

  /// Aggregated view: the inner filter's counters plus this wrapper's
  /// seqlock retry/fallback totals (snapshot; each call re-sums).
  const OpCounters& counters() const noexcept override;
  void ResetCounters() noexcept override;

 private:
  std::unique_ptr<Filter> inner_;
  mutable std::shared_mutex mutex_;
  SeqLock seq_;
  bool optimistic_safe_ = false;
  std::atomic<bool> optimistic_{true};
  mutable RelaxedCounter seq_retries_;
  mutable RelaxedCounter seq_fallbacks_;
};

}  // namespace vcf
