// Thread-safety wrapper for any Filter.
//
// §III-C of the paper remarks that concurrent cuckoo hash tables struggle
// with eviction loops; a fully lock-free multi-writer cuckoo filter is a
// research problem of its own (the eviction chain touches an unbounded
// bucket set). This wrapper provides the honest, commonly deployed
// compromise: a reader-writer lock — lookups run fully concurrently,
// mutations serialize. For read-mostly online workloads (the usual AMQ
// deployment) this recovers almost all available parallelism.
//
// All observers — ItemCount, LoadFactor, SlotCount, MemoryBytes — take the
// shared lock, so they are safe against concurrent mutation (a growing
// DynamicVcf changes SlotCount/MemoryBytes mid-insert). OpCounters need no
// lock: every field is a relaxed atomic (see metrics/op_counters.hpp).
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>

#include "core/filter.hpp"

namespace vcf {

class ConcurrentFilter : public Filter {
 public:
  explicit ConcurrentFilter(std::unique_ptr<Filter> inner);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override {
    return inner_->SupportsDeletion();
  }
  std::string Name() const override { return "Concurrent(" + inner_->Name() + ")"; }
  std::size_t ItemCount() const noexcept override;
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// The wrapped filter; caller must ensure quiescence before poking it.
  Filter& inner() noexcept { return *inner_; }

 private:
  std::unique_ptr<Filter> inner_;
  mutable std::shared_mutex mutex_;
};

}  // namespace vcf
