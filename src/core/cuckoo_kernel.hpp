// The shared cuckoo engine: one eviction loop, one batch pipeline, one
// breadth-first fallback — parameterized by a CandidatePolicy.
//
// Every filter in the family (CF, D-ary, vacuum, semi-sorted, VCF, IVCF,
// DVCF, k-VCF) is the same machine with a different candidate-derivation
// rule. The paper's comparison rests on exactly that: §III-§IV vary only
// how candidate buckets follow from (bucket, fingerprint), while insertion
// (Algorithm 1), lookup (Algorithm 2) and relocation share one skeleton.
// This header is that skeleton. A filter implements the small policy
// surface below — hash, direct placement, probe, and the per-step kick /
// relocate pair that encodes its exact legacy semantics (including RNG
// draw order) — and the kernel supplies:
//
//   - InsertOne / RandomWalkInsert: the random-walk eviction chain with
//     path tracking, rollback on exhaustion (atomic-insert guarantee),
//     eviction counters and the core/evict_exhausted failpoint seam.
//   - InsertBatch / ContainsBatch: the 16-key two-phase prefetch pipeline
//     (phase 1 hashes and prefetches a window, phase 2 places/probes), with
//     end state and results provably identical to sequential calls.
//   - BfsInsert: the opt-in breadth-first eviction engine
//     (EvictionMode::kBfs): search the victim-move graph without mutating
//     the table, then apply the found chain far-end first. Failed inserts
//     are naturally atomic — nothing was written.
//
// Bit-identity contract: with EvictionMode::kRandomWalk every kernel path
// consumes the policy's RNG in exactly the per-filter legacy order and
// charges the same counter totals, so fixed-seed workloads reproduce the
// pre-kernel eviction paths and serialized blobs byte-for-byte
// (tests/core/blob_golden_test.cpp enforces this).
//
// Policy surface (duck-typed; see CandidatePolicy below):
//   Hashed    — per-key derived state: fingerprint, primary bucket, and
//               whatever candidate material the filter reuses across phases.
//   WalkState — the random walk's in-hand state (bucket + fingerprint,
//               plus the mark for k-VCF).
//   WalkUndo  — one kick's undo record (slot swap, or ssCF's whole word).
// Hooks: HashKey, PrefetchCandidates, TryPlaceDirect, ProbeCandidates,
// StartWalk, KickVictim, RelocateVictim, UndoKick, MaxKicks,
// KernelCounters; BFS adds AppendCandidates, RootValue, ReadSlot,
// WriteSlot, FreeSlot, BucketArity, ForEachVictimMove, NotePlaced,
// eviction_mode.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/failpoint.hpp"
#include "core/cuckoo_params.hpp"
#include "metrics/op_counters.hpp"

namespace vcf::kernel {

/// The compile-time contract a filter must satisfy to run on the kernel.
/// Exercised by seven policies: vertical-bitmask (VCF/IVCF), threshold-
/// judged (DVCF), k-candidate-with-mark-bits (k-VCF), partial-key XOR
/// (CF, semi-sorted), d-ary digit addition, and vacuum chunk-confined XOR.
template <typename P>
concept CandidatePolicy = requires(P& p, const P& cp, std::uint64_t key,
                                   const typename P::Hashed& h,
                                   typename P::WalkState& walk,
                                   const typename P::WalkUndo& undo) {
  typename P::Hashed;
  typename P::WalkState;
  typename P::WalkUndo;
  { cp.HashKey(key) } -> std::same_as<typename P::Hashed>;
  { cp.PrefetchCandidates(h) };
  { p.TryPlaceDirect(h) } -> std::same_as<bool>;
  { cp.ProbeCandidates(h) } -> std::same_as<bool>;
  { p.StartWalk(h) } -> std::same_as<typename P::WalkState>;
  { p.KickVictim(walk) } -> std::same_as<typename P::WalkUndo>;
  { p.RelocateVictim(walk) } -> std::same_as<bool>;
  { p.UndoKick(undo) };
  { cp.MaxKicks() } -> std::convertible_to<unsigned>;
  { cp.KernelCounters() } -> std::same_as<OpCounters&>;
  { cp.eviction_mode() } -> std::same_as<EvictionMode>;
};

/// The BFS-specific policy surface (separate so the concept reads in
/// layers; every kernel filter satisfies both).
template <typename P>
concept BfsCandidatePolicy = requires(P& p, const P& cp,
                                      const typename P::Hashed& h,
                                      std::vector<std::uint64_t>& buckets,
                                      std::uint64_t bucket,
                                      std::uint64_t value, unsigned slot) {
  { cp.AppendCandidates(h, buckets) };
  { cp.RootValue(h, slot) } -> std::same_as<std::uint64_t>;
  { cp.ReadSlot(bucket, slot) } -> std::same_as<std::uint64_t>;
  { p.WriteSlot(bucket, slot, value) };
  { cp.FreeSlot(bucket) } -> std::same_as<int>;
  { cp.BucketArity() } -> std::convertible_to<unsigned>;
  { p.NotePlaced() };
};

/// CRTP mixin hosting the policy-surface members that are identical in
/// every filter whose table is a slot-addressed PackedTable and whose walk
/// state is (bucket, fingerprint): the slot-swap kick/undo pair, the
/// free-slot scan, raw slot access, the two-candidate (b1/b2) direct-hit
/// hooks, and the trivial accessors. A filter derives from
/// SlotWalkPolicy<Self>, befriends it, and supplies only the hooks specific
/// to its candidate-derivation scheme; any default whose semantics differ
/// (k-VCF's marked kick, ssCF's whole-word undo and codec slot access) is
/// redeclared in the filter, hiding the mixin's version. Bodies are the
/// legacy per-filter definitions verbatim — same member access, same RNG
/// draw order — so inheriting them is behaviour-preserving.
template <typename Derived>
class SlotWalkPolicy {
 public:
  struct WalkState {
    std::uint64_t bucket;
    std::uint64_t fp;
  };
  struct WalkUndo {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t displaced;
  };
  WalkUndo KickVictim(WalkState& walk) {
    Derived& d = self();
    const unsigned slot =
        static_cast<unsigned>(d.rng_.Below(d.params_.slots_per_bucket));
    const std::uint64_t victim = d.table_.Get(walk.bucket, slot);
    d.table_.Set(walk.bucket, slot, walk.fp);
    const WalkUndo undo{walk.bucket, slot, victim};
    walk.fp = victim;
    return undo;
  }
  void UndoKick(const WalkUndo& u) noexcept {
    self().table_.Set(u.bucket, u.slot, u.displaced);
  }
  unsigned MaxKicks() const noexcept { return self().params_.max_kicks; }
  OpCounters& KernelCounters() const noexcept { return self().counters_; }
  EvictionMode eviction_mode() const noexcept {
    return self().params_.eviction;
  }

  // Two-candidate direct-hit surface (hidden by multi-candidate filters).
  template <typename H>
  void PrefetchCandidates(const H& h) const noexcept {
    self().table_.PrefetchBucket(h.b1);
    self().table_.PrefetchBucket(h.b2);
  }
  template <typename H>
  bool ProbeCandidates(const H& h) const noexcept {
    self().counters_.bucket_probes += 2;
    const std::uint64_t cand[2] = {h.b1, h.b2};
    return self().table_.ContainsValueAny(cand, 2, h.fp);
  }
  template <typename H>
  WalkState StartWalk(const H& h) {
    return {self().rng_.Next() & 1 ? h.b2 : h.b1, h.fp};
  }

  // BFS surface defaults.
  template <typename H>
  void AppendCandidates(const H& h, std::vector<std::uint64_t>& out) const {
    out.push_back(h.b1);
    out.push_back(h.b2);
  }
  template <typename H>
  std::uint64_t RootValue(const H& h, unsigned) const noexcept {
    return h.fp;
  }
  std::uint64_t ReadSlot(std::uint64_t bucket, unsigned slot) const noexcept {
    return self().table_.Get(bucket, slot);
  }
  void WriteSlot(std::uint64_t bucket, unsigned slot, std::uint64_t v) noexcept {
    self().table_.Set(bucket, slot, v);
  }
  int FreeSlot(std::uint64_t bucket) const noexcept {
    for (unsigned s = 0; s < self().params_.slots_per_bucket; ++s) {
      if (self().table_.Get(bucket, s) == 0) return static_cast<int>(s);
    }
    return -1;
  }
  unsigned BucketArity() const noexcept {
    return self().params_.slots_per_bucket;
  }
  void NotePlaced() noexcept { ++self().items_; }

  /// Bucket-major walk over every occupied slot, handing (bucket, raw slot
  /// value) to `fn`. This is the iteration surface
  /// Filter::ForEachFingerprint rides on: a segment builder enumerates any
  /// slot-table filter through the same accessors the BFS eviction search
  /// uses, and the filter supplies only the slot → canonical-entity mapping.
  template <typename Fn>
  void ForEachOccupiedSlot(Fn&& fn) const {
    const std::size_t buckets = self().table_.bucket_count();
    const unsigned arity = BucketArity();
    for (std::size_t b = 0; b < buckets; ++b) {
      for (unsigned s = 0; s < arity; ++s) {
        const std::uint64_t v = self().ReadSlot(b, s);
        if (v != 0) fn(static_cast<std::uint64_t>(b), v);
      }
    }
  }

 protected:
  Derived& self() noexcept { return static_cast<Derived&>(*this); }
  const Derived& self() const noexcept {
    return static_cast<const Derived&>(*this);
  }
};

/// Algorithm 1 lines 11-21 (and its DVCF/k-VCF/baseline analogues): the
/// random-walk eviction chain. Every swap is recorded so a failed chain
/// rolls back completely — a failed Insert leaves the filter untouched.
/// The policy's StartWalk/KickVictim/RelocateVictim hooks own the exact
/// legacy RNG draw order; the kernel owns path tracking, the kick budget,
/// eviction counting, rollback and the failure accounting.
template <CandidatePolicy P>
bool RandomWalkInsert(P& p, const typename P::Hashed& h) {
  OpCounters& c = p.KernelCounters();
  std::vector<typename P::WalkUndo> path;
  path.reserve(p.MaxKicks());

  typename P::WalkState walk = p.StartWalk(h);
  for (unsigned s = 0; s < p.MaxKicks(); ++s) {
    path.push_back(p.KickVictim(walk));
    ++c.evictions;
    if (p.RelocateVictim(walk)) return true;
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) p.UndoKick(*it);
  ++c.insert_failures;
  return false;
}

/// Breadth-first eviction (EvictionMode::kBfs): explore the victim-move
/// graph from the key's candidate buckets outward until some reachable
/// bucket has a free slot, WITHOUT touching the table; then apply the
/// relocation chain from the free slot backward. Bounded by MaxKicks()
/// bucket expansions — the same work budget the random walk gets, spent on
/// search instead of speculative displacement. Each applied move counts as
/// one eviction, so Fig. 8's E0 metric compares across modes directly.
template <typename P>
  requires CandidatePolicy<P> && BfsCandidatePolicy<P>
bool BfsInsert(P& p, const typename P::Hashed& h) {
  OpCounters& c = p.KernelCounters();

  // One search node per reached bucket: how we got here (parent node and
  // the parent-bucket slot whose occupant moves) and the re-encoded value
  // that occupant stores once moved here (identical to the fingerprint for
  // every filter except k-VCF, which re-marks).
  struct Node {
    std::uint64_t bucket;
    std::uint64_t value;  // value written into `bucket` when the chain runs
    std::int32_t parent;  // index into nodes; -1 for a root
    std::uint16_t slot;   // slot in the PARENT bucket the value came from
  };
  std::vector<Node> nodes;
  std::unordered_set<std::uint64_t> visited;

  std::vector<std::uint64_t> roots;
  p.AppendCandidates(h, roots);
  nodes.reserve(roots.size() + p.MaxKicks() * p.BucketArity());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (visited.insert(roots[i]).second) {
      nodes.push_back({roots[i], p.RootValue(h, static_cast<unsigned>(i)),
                       -1, 0});
    }
  }

  const unsigned arity = p.BucketArity();
  std::size_t head = 0;
  unsigned expanded = 0;
  std::int32_t goal = -1;
  while (head < nodes.size() && expanded < p.MaxKicks()) {
    const std::size_t cur = head++;
    // Reads only — candidate derivation, like the table, is immutable
    // during the search, so values computed here stay valid at apply time.
    ++c.bucket_probes;
    if (p.FreeSlot(nodes[cur].bucket) >= 0) {
      goal = static_cast<std::int32_t>(cur);
      break;
    }
    ++expanded;
    for (unsigned s = 0; s < arity; ++s) {
      const std::uint64_t occupant = p.ReadSlot(nodes[cur].bucket, s);
      if (occupant == 0) continue;  // raced free slots cannot occur; safety
      p.ForEachVictimMove(
          nodes[cur].bucket, occupant,
          [&](std::uint64_t to, std::uint64_t moved_value) {
            if (visited.insert(to).second) {
              nodes.push_back({to, moved_value,
                               static_cast<std::int32_t>(cur),
                               static_cast<std::uint16_t>(s)});
            }
          });
    }
  }

  if (goal < 0) {
    // Budget exhausted with no free bucket reachable: nothing was written,
    // so failure is atomic by construction.
    ++c.insert_failures;
    return false;
  }

  // Reconstruct root -> goal, then apply far-end first: each bucket on the
  // chain receives exactly one write, and a write lands before the slot it
  // vacates is overwritten. (Slot indices stay valid because the table was
  // not mutated during the search and chain buckets are distinct — the
  // visited set admits each bucket once.)
  std::vector<std::int32_t> chain;
  for (std::int32_t i = goal; i >= 0; i = nodes[i].parent) chain.push_back(i);
  std::reverse(chain.begin(), chain.end());

  int dest = p.FreeSlot(nodes[chain.back()].bucket);
  for (std::size_t i = chain.size(); i-- > 1;) {
    const Node& n = nodes[chain[i]];
    p.WriteSlot(n.bucket, static_cast<unsigned>(dest), n.value);
    ++c.evictions;
    dest = n.slot;
  }
  p.WriteSlot(nodes[chain.front()].bucket, static_cast<unsigned>(dest),
              nodes[chain.front()].value);
  p.NotePlaced();
  return true;
}

/// The eviction tail shared by Insert and InsertBatch: the fault-injection
/// seam (injected exhaustion presents exactly like a saturated table, and
/// fires before any RNG draw so disarmed behaviour is bit-identical), then
/// the configured engine.
template <CandidatePolicy P>
bool EvictInsert(P& p, const typename P::Hashed& h) {
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kEvictionExhausted)) {
    ++p.KernelCounters().insert_failures;
    return false;
  }
  if constexpr (BfsCandidatePolicy<P>) {
    if (p.eviction_mode() == EvictionMode::kBfs) return BfsInsert(p, h);
  }
  return RandomWalkInsert(p, h);
}

/// Algorithm 1: direct placement into a candidate bucket, else evict.
template <CandidatePolicy P>
bool InsertOne(P& p, std::uint64_t key) {
  ++p.KernelCounters().inserts;
  const typename P::Hashed h = p.HashKey(key);
  if (p.TryPlaceDirect(h)) return true;
  return EvictInsert(p, h);
}

/// Algorithm 2: membership via the policy's fused candidate probe.
template <CandidatePolicy P>
bool ContainsOne(const P& p, std::uint64_t key) {
  ++p.KernelCounters().lookups;
  return p.ProbeCandidates(p.HashKey(key));
}

// Width of the two-phase pipelines: enough in-flight buckets to cover the
// L1 miss queue without spilling the hashed-window state out of registers
// and L1 (16 keys x up to 4 candidate lines).
inline constexpr std::size_t kBatchWindow = 16;

/// Batched lookup: phase 1 hashes a window of keys and prefetches every
/// candidate bucket, phase 2 probes. results[i] == Contains(keys[i]).
template <CandidatePolicy P>
void ContainsBatch(const P& p, std::span<const std::uint64_t> keys,
                   bool* results) {
  OpCounters& c = p.KernelCounters();
  typename P::Hashed window[kBatchWindow];

  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kBatchWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++c.lookups;
      window[i] = p.HashKey(keys[done + i]);
      p.PrefetchCandidates(window[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      results[done + i] = p.ProbeCandidates(window[i]);
    }
    done += n;
  }
}

/// Batched insert, mirroring ContainsBatch. Phase 2 runs in key order and
/// candidate derivation never depends on table contents, so results and
/// end state are identical to sequential Insert calls — placements within
/// the window only consume slots, they never move a later key's
/// candidates. Eviction chains (and their RNG draws) run per key in key
/// order, preserving the sequential draw sequence exactly.
template <CandidatePolicy P>
std::size_t InsertBatch(P& p, std::span<const std::uint64_t> keys,
                        bool* results) {
  OpCounters& c = p.KernelCounters();
  typename P::Hashed window[kBatchWindow];

  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kBatchWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++c.inserts;
      window[i] = p.HashKey(keys[done + i]);
      p.PrefetchCandidates(window[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      bool ok = p.TryPlaceDirect(window[i]);
      if (!ok) ok = EvictInsert(p, window[i]);
      accepted += ok ? 1 : 0;
      if (results != nullptr) results[done + i] = ok;
    }
    done += n;
  }
  return accepted;
}

/// Display name for tools and benches ("random-walk" / "bfs").
const char* EvictionModeName(EvictionMode mode) noexcept;

}  // namespace vcf::kernel
