#include "core/cuckoo_kernel.hpp"

namespace vcf::kernel {

const char* EvictionModeName(EvictionMode mode) noexcept {
  switch (mode) {
    case EvictionMode::kRandomWalk: return "random-walk";
    case EvictionMode::kBfs: return "bfs";
  }
  return "?";
}

}  // namespace vcf::kernel
