#include "core/concurrent_filter.hpp"

#include <mutex>
#include <stdexcept>

namespace vcf {

ConcurrentFilter::ConcurrentFilter(std::unique_ptr<Filter> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("ConcurrentFilter: inner filter must not be null");
  }
}

bool ConcurrentFilter::Insert(std::uint64_t key) {
  std::unique_lock lock(mutex_);
  return inner_->Insert(key);
}

bool ConcurrentFilter::Contains(std::uint64_t key) const {
  std::shared_lock lock(mutex_);
  return inner_->Contains(key);
}

void ConcurrentFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                     bool* results) const {
  // One lock acquisition for the whole batch, not one per key.
  std::shared_lock lock(mutex_);
  inner_->ContainsBatch(keys, results);
}

std::size_t ConcurrentFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                          bool* results) {
  // One lock acquisition for the whole batch, not one per key.
  std::unique_lock lock(mutex_);
  return inner_->InsertBatch(keys, results);
}

bool ConcurrentFilter::Erase(std::uint64_t key) {
  std::unique_lock lock(mutex_);
  return inner_->Erase(key);
}

std::size_t ConcurrentFilter::ItemCount() const noexcept {
  std::shared_lock lock(mutex_);
  return inner_->ItemCount();
}

std::size_t ConcurrentFilter::SlotCount() const noexcept {
  // Not constant for every inner filter: DynamicVcf grows segments under
  // Insert's exclusive lock, so even "static" geometry reads synchronize.
  std::shared_lock lock(mutex_);
  return inner_->SlotCount();
}

double ConcurrentFilter::LoadFactor() const noexcept {
  std::shared_lock lock(mutex_);
  return inner_->LoadFactor();
}

std::size_t ConcurrentFilter::MemoryBytes() const noexcept {
  std::shared_lock lock(mutex_);
  return inner_->MemoryBytes();
}

void ConcurrentFilter::Clear() {
  std::unique_lock lock(mutex_);
  inner_->Clear();
}

bool ConcurrentFilter::SaveState(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  return inner_->SaveState(out);
}

bool ConcurrentFilter::LoadState(std::istream& in) {
  std::unique_lock lock(mutex_);
  return inner_->LoadState(in);
}

}  // namespace vcf
