#include "core/concurrent_filter.hpp"

#include <mutex>
#include <stdexcept>

namespace vcf {

namespace {

// Matches ShardedFilter's budget; see the rationale there.
constexpr int kOptimisticRetries = 8;

}  // namespace

ConcurrentFilter::ConcurrentFilter(std::unique_ptr<Filter> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("ConcurrentFilter: inner filter must not be null");
  }
  optimistic_safe_ = inner_->OptimisticReadSafe();
}

bool ConcurrentFilter::Insert(std::uint64_t key) {
  std::unique_lock lock(mutex_);
  SeqLockWriteGuard seq(seq_);
  return inner_->Insert(key);
}

bool ConcurrentFilter::Contains(std::uint64_t key) const {
  if (optimistic_safe_ && optimistic_.load(std::memory_order_relaxed)) {
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
      const std::uint64_t token = seq_.ReadBegin();
      if ((token & 1) == 0) {
        const bool r = inner_->Contains(key);
        if (seq_.ReadValidate(token)) return r;
      }
      ++seq_retries_;
      CpuRelax();
    }
    ++seq_fallbacks_;
  }
  std::shared_lock lock(mutex_);
  return inner_->Contains(key);
}

void ConcurrentFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                     bool* results) const {
  if (optimistic_safe_ && optimistic_.load(std::memory_order_relaxed)) {
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
      const std::uint64_t token = seq_.ReadBegin();
      if ((token & 1) == 0) {
        inner_->ContainsBatch(keys, results);
        if (seq_.ReadValidate(token)) return;
      }
      ++seq_retries_;
      CpuRelax();
    }
    ++seq_fallbacks_;
  }
  // One lock acquisition for the whole batch, not one per key.
  std::shared_lock lock(mutex_);
  inner_->ContainsBatch(keys, results);
}

std::size_t ConcurrentFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                          bool* results) {
  // One lock acquisition for the whole batch, not one per key.
  std::unique_lock lock(mutex_);
  SeqLockWriteGuard seq(seq_);
  return inner_->InsertBatch(keys, results);
}

bool ConcurrentFilter::Erase(std::uint64_t key) {
  std::unique_lock lock(mutex_);
  SeqLockWriteGuard seq(seq_);
  return inner_->Erase(key);
}

std::size_t ConcurrentFilter::ItemCount() const noexcept {
  std::shared_lock lock(mutex_);
  return inner_->ItemCount();
}

std::size_t ConcurrentFilter::SlotCount() const noexcept {
  // Not constant for every inner filter: DynamicVcf grows segments under
  // Insert's exclusive lock, so even "static" geometry reads synchronize.
  std::shared_lock lock(mutex_);
  return inner_->SlotCount();
}

double ConcurrentFilter::LoadFactor() const noexcept {
  std::shared_lock lock(mutex_);
  return inner_->LoadFactor();
}

std::size_t ConcurrentFilter::MemoryBytes() const noexcept {
  std::shared_lock lock(mutex_);
  return inner_->MemoryBytes();
}

void ConcurrentFilter::Clear() {
  std::unique_lock lock(mutex_);
  SeqLockWriteGuard seq(seq_);
  inner_->Clear();
}

bool ConcurrentFilter::SaveState(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  return inner_->SaveState(out);
}

bool ConcurrentFilter::LoadState(std::istream& in) {
  std::unique_lock lock(mutex_);
  SeqLockWriteGuard seq(seq_);
  return inner_->LoadState(in);
}

const OpCounters& ConcurrentFilter::counters() const noexcept {
  counters_.Reset();
  counters_ += inner_->counters();
  counters_.seqlock_retries += seq_retries_.Value();
  counters_.seqlock_fallbacks += seq_fallbacks_.Value();
  return counters_;
}

void ConcurrentFilter::ResetCounters() noexcept {
  counters_.Reset();
  seq_retries_ = 0;
  seq_fallbacks_ = 0;
  inner_->ResetCounters();
}

}  // namespace vcf
