// Construction parameters shared by every cuckoo-family filter (CF, DCF and
// the VCF family), so experiments configure all filters identically —
// matching the paper's "same experimental settings" methodology (§VI-A:
// b = 4, f = 14, MAX = 500, FNV hash).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bitops.hpp"
#include "hash/hash64.hpp"
#include "table/packed_table.hpp"

namespace vcf {

/// How a cuckoo-family filter resolves a full candidate set on insert.
/// Candidate derivation is the policy's business (core/cuckoo_kernel.hpp);
/// the eviction engine is shared, so every filter supports both modes.
enum class EvictionMode : std::uint8_t {
  /// The paper's Algorithm 1: displace a random victim and walk until a
  /// free slot appears or MAX kicks are spent, then roll back. The default,
  /// and the mode every measured figure uses unless stated otherwise.
  kRandomWalk,
  /// Breadth-first search over victim-move graphs: no slot is written until
  /// a complete relocation path to a free slot is found, so failed inserts
  /// touch nothing (no rollback) and successful chains are shortest-possible.
  /// Expansion budget = max_kicks buckets. Opt-in via the `bfs:` factory
  /// prefix; compared against the random walk in bench/fig8_evictions.
  kBfs,
};

struct CuckooParams {
  /// Number of buckets; must be a power of two (partial-key and vertical
  /// hashing XOR bucket indices).
  std::size_t bucket_count = std::size_t{1} << 16;

  /// Slots per bucket (the paper fixes b = 4 for all VCF variants, §IV).
  unsigned slots_per_bucket = 4;

  /// Fingerprint length f in bits (paper default 14).
  unsigned fingerprint_bits = 14;

  /// Hash function applied to keys and to fingerprints.
  HashKind hash = HashKind::kFnv1a;

  /// Eviction-chain bound MAX (paper uses 500; Table V uses 0).
  unsigned max_kicks = 500;

  /// Seed for the hash functions and the eviction RNG.
  std::uint64_t seed = 0x5EEDF00DULL;

  /// In-memory bucket layout for the backing PackedTable. Not part of the
  /// filter's logical identity: results, FPR and serialized state are
  /// layout-independent (checkpoints restore across layouts).
  TableLayout layout = TableLayout::kPacked;

  /// Insertion eviction engine. kRandomWalk reproduces the paper bit-for-
  /// bit; kBfs is the opt-in breadth-first engine. Like `layout`, not part
  /// of the serialized identity: blobs restore across modes.
  EvictionMode eviction = EvictionMode::kRandomWalk;

  /// Backing-page placement for the table (common/hugepage.hpp). Like
  /// `layout`, not part of the serialized identity: blobs are bit-identical
  /// with hugepages on or off.
  PageHint pages = PageHint::kNormal;

  unsigned index_bits() const noexcept { return FloorLog2(bucket_count); }
  std::size_t slot_count() const noexcept {
    return bucket_count * slots_per_bucket;
  }

  /// Convenience: parameters for a table with 2^log2_slots slots total.
  static CuckooParams ForSlotsLog2(unsigned log2_slots) noexcept {
    CuckooParams p;
    p.bucket_count = std::size_t{1} << (log2_slots >= 2 ? log2_slots - 2 : 0);
    return p;
  }
};

}  // namespace vcf
