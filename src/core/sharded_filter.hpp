// Hash-partitioned concurrency wrapper: N inner filters, each behind its
// own reader-writer lock.
//
// ConcurrentFilter (core/concurrent_filter.hpp) serializes all mutations on
// one lock, which caps multi-writer insert throughput at a single core.
// ShardedFilter routes every key to one of N independent inner filters by a
// salted hash of the key, so writers touching different shards proceed in
// parallel and the cuckoo eviction chain — the reason a shared-table
// concurrent cuckoo filter is hard — stays confined to one shard's table
// under that shard's exclusive lock.
//
// The price is approximation granularity: each shard is an independent
// filter over ~1/N of the key space, so the aggregate false-positive rate
// and per-shard load factor match a single filter of the same total slot
// count only in expectation. Routing uses Mix64(key ^ salt), independent of
// every inner filter's bucket hash, so shard choice does not bias bucket
// placement within a shard.
//
// Composition rules (see docs/performance.md): `sharded:` is the outermost
// wrapper; `resilient:` composes per shard (each shard gets its own stash
// and degraded-mode state). Wrapping a ShardedFilter in ConcurrentFilter is
// pointless — the shards already carry their own locks.
//
// Read path: lookups are OPTIMISTIC by default. Each shard carries a
// cache-line-padded seqlock (common/seqlock.hpp) next to its reader-writer
// lock; writers bump it to odd around every mutation (while also holding
// the shard's unique_lock, in unpinned mode), and Contains/ContainsBatch
// probe without any lock, validating the sequence afterwards. A failed
// validation re-probes up to a bounded retry budget, then falls back to
// the shared_lock path — so writer-heavy shards cannot livelock readers,
// and inner filters that are not OptimisticReadSafe() (growing tables)
// always take the lock. See DESIGN.md "Concurrency model".
//
// Live topology: routing goes through a copy-on-write DIRECTORY — an
// immutable vector of shard pointers behind one atomic pointer — over an
// append-only pool of shard objects. SplitShard/MergeShards publish a new
// directory without stopping readers or writers: a split clones a hot
// shard (checkpoint-blob copy) and hands the clone half of the parent's
// directory entries (an extendible-hashing-style alias-class split, so
// power-of-two directory growth keeps `hash % size` routing compatible);
// a merge unions two sibling classes into a freshly built shard. Writers
// re-check the directory after taking their shard lock and re-route if
// their entry moved; readers never need to — a retired shard keeps its
// fingerprints, so a stale route can only cost a false positive, never a
// false negative. Superseded directories and unmapped shard objects are
// retired, not freed (the optimistic-read lifetime contract).
//
// A split COPIES fingerprints (an approximate filter cannot attribute a
// stored fingerprint to a routing key), so both sides briefly answer for
// the whole parent key set: false-positive pressure for the affected
// entries is ~2x until churn (erase + reinsert) washes the duplicates out.
// Split is therefore a LOCK-GRANULARITY tool — aggregate capacity growth
// belongs to the elastic layer (compose `sharded:N:elastic:...`).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/seqlock.hpp"
#include "core/filter.hpp"

namespace vcf {

class ShardedFilter : public Filter {
 public:
  static constexpr std::uint64_t kDefaultSalt = 0x5Aa7edC0FFEE1234ULL;

  /// Directory entries never exceed this (a split past the cap is refused).
  static constexpr std::size_t kMaxDirectoryEntries = std::size_t{1} << 16;

  /// Builds a shard of seed lineage `family`. Families 0..N-1 are the
  /// construction shards; a split clone inherits its parent's family so its
  /// checkpoint blobs (and thus fingerprints) stay compatible. The factory
  /// installs this via SetShardBuilder; split/merge and the ShardedV2
  /// LoadState path refuse to run without it.
  using ShardBuilder =
      std::function<std::unique_ptr<Filter>(std::uint32_t family)>;

  /// Takes ownership of `shards` (one lock each). All shards should be
  /// built from the same spec, differing only in seed; `salt` feeds the
  /// routing hash and must match across SaveState/LoadState pairs.
  explicit ShardedFilter(std::vector<std::unique_ptr<Filter>> shards,
                         std::uint64_t salt = kDefaultSalt);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Batched ops group keys by shard first, then run each shard's batch
  /// pipeline under a single lock acquisition. Keys that land in the same
  /// shard are applied in their original relative order, so the end state
  /// is identical to the sequential calls (shards are independent tables).
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override;
  std::string Name() const override;
  std::size_t ItemCount() const noexcept override;
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;

  /// Checkpoint layout. With the construction topology (no live splits in
  /// effect) this writes the exact legacy format — common header (digest
  /// covers salt and shard count) followed by every shard's own framed
  /// SaveState blob — byte-identical to pre-split builds, so golden blobs
  /// stay valid. A split/merged topology writes the "ShardedV2" envelope:
  /// the directory (entry -> object ordinal) plus each object's family and
  /// framed blob.
  bool SaveState(std::ostream& out) const override;
  /// Restores either format (legacy is tried first; ShardedV2 needs the
  /// shard builder). Deviation from the base contract: on a mid-stream
  /// failure the already-restored prefix cannot be rolled back, so ALL
  /// shards are cleared and false is returned — the filter is empty, not
  /// unchanged.
  bool LoadState(std::istream& in) override;

  /// Aggregated view across shards (snapshot; each call re-sums).
  const OpCounters& counters() const noexcept override;
  void ResetCounters() noexcept override;

  /// Leaf discovery recurses into every distinct live shard, holding that
  /// shard's write lock (and bumping its sequence) around the visit — the
  /// visitor may therefore mutate the leaves it is handed.
  void ForEachLeaf(const std::function<void(Filter&)>& fn) override;

  /// Current directory size (doubles on an entry's first split). Equals the
  /// construction shard count until a split runs.
  std::size_t shard_count() const noexcept { return CurrentDir().map.size(); }
  /// Construction shard count (the directory never shrinks below this).
  std::size_t base_shard_count() const noexcept { return base_count_; }
  /// Distinct shard objects currently routed to.
  std::size_t live_shard_count() const noexcept;
  std::uint64_t salt() const noexcept { return salt_; }
  /// The directory entry a key routes to — exposed for tests and load
  /// inspection.
  static std::size_t ShardIndex(std::uint64_t key, std::uint64_t salt,
                                std::size_t shard_count) noexcept;
  std::size_t ShardFor(std::uint64_t key) const noexcept {
    const Directory& d = CurrentDir();
    return ShardIndex(key, salt_, d.map.size());
  }
  /// Shard access by directory entry, for tests and the pinned-mode server
  /// executor; callers must ensure quiescence (or exclusive core-affine
  /// ownership).
  Filter& shard(std::size_t i) noexcept { return *CurrentDir().map[i]->filter; }
  const Filter& shard(std::size_t i) const noexcept {
    return *CurrentDir().map[i]->filter;
  }

  // --- Live topology (split / merge) --------------------------------------

  void SetShardBuilder(ShardBuilder builder) { builder_ = std::move(builder); }
  bool has_shard_builder() const noexcept { return builder_ != nullptr; }

  /// Splits the shard behind directory entry `entry`: clones it (checkpoint
  /// copy, same family/seed) and re-points half of its alias class — the
  /// odd residues of the doubled stride — at the clone. When the class has
  /// a single entry the directory doubles first (routing-compatible, see
  /// header). Online: runs under the parent's write lock only. Returns
  /// false with *error set on refusal (no builder, checkpoint-less inner
  /// filter, directory cap).
  bool SplitShard(std::size_t entry, std::string* error = nullptr);

  /// Merges the alias class of `entry` with its sibling class (the class
  /// that a split peeled off, at the same stride) into a freshly built
  /// shard holding the deduplicated union of both fingerprint sets. Both
  /// classes' entries then route to the new shard, and the directory halves
  /// whenever its two halves alias completely. Refused when the sibling
  /// belongs to a different family (different seed lineage — fingerprints
  /// are not transferable), is split finer than `entry`'s class, or the
  /// union does not fit; on refusal nothing changes.
  bool MergeShards(std::size_t entry, std::string* error = nullptr);

  // --- Optimistic (seqlock) read path -------------------------------------

  /// Per-shard writer sequence (by directory entry). The pinned-mode server
  /// executor, which mutates shards without their locks, must bump this
  /// around every mutation (SeqLockWriteGuard) so foreign workers'
  /// lock-free lookups stay sound. Unpinned-mode callers never need it: the
  /// wrapper's own mutation paths bump it internally.
  SeqLock& shard_seq(std::size_t i) const noexcept {
    return *CurrentDir().map[i]->seq;
  }

  /// Enables/disables the lock-free read path (default on). Benchmarks use
  /// this to pin the shared_mutex arm; not meant to be flipped while
  /// readers are in flight (the switch itself is atomic, but mixed-mode
  /// measurement would be meaningless).
  void SetOptimisticReads(bool on) noexcept {
    optimistic_.store(on, std::memory_order_relaxed);
  }
  bool optimistic_reads() const noexcept {
    return optimistic_.load(std::memory_order_relaxed);
  }

  /// Single lock-free lookup attempt loop against directory entry `i`:
  /// probes without the shard lock, validating the shard's sequence,
  /// retrying up to the internal budget. Returns false — with *result
  /// untouched — when the budget is exhausted or the shard's inner filter
  /// is not OptimisticReadSafe(); the caller picks the fallback (the shard
  /// lock, or pinned-mode task forwarding). Never takes a lock itself.
  bool TryContainsOptimistic(std::size_t i, std::uint64_t key,
                             bool* result) const noexcept;

  /// Batch counterpart over keys already routed to entry `i`.
  bool TryContainsBatchOptimistic(std::size_t i,
                                  std::span<const std::uint64_t> keys,
                                  bool* results) const noexcept;

  /// Lifetime totals of the optimistic read path (also folded into
  /// counters() as seqlock_retries / seqlock_fallbacks).
  std::uint64_t seqlock_retries() const noexcept {
    return seq_retries_.Value();
  }
  std::uint64_t seqlock_fallbacks() const noexcept {
    return seq_fallbacks_.Value();
  }

  // --- Pinned-executor support (server/server.cpp) ------------------------
  // vcfd's core-affine mode gives each worker thread exclusive ownership of
  // a shard subset and accesses those shards without their locks (splits
  // are refused in pinned mode, so directory entries are stable there).
  // These helpers let that executor stage checkpoints and stats
  // shard-by-shard on the owning threads: `locked` = true takes the shard's
  // lock (the normal path, used for shards whose owner has exited); owners
  // pass false.

  /// Stages entry i's SaveState bytes into *blob.
  bool SaveShardState(std::size_t i, std::string* blob, bool locked) const;

  /// Writes a complete SaveState stream from per-shard blobs staged by
  /// SaveShardState; blobs.size() must equal shard_count() and the
  /// construction topology must be in effect (pinned mode guarantees both).
  /// The result is byte-identical to SaveState() over the same shard states.
  bool SaveStateEnvelope(std::ostream& out,
                         std::span<const std::string> blobs) const;

  /// Size counters of one entry's shard, for cross-worker STATS aggregation.
  struct ShardStats {
    std::size_t items = 0;
    std::size_t slots = 0;
    std::size_t memory = 0;
  };
  ShardStats ShardStatsSnapshot(std::size_t i, bool locked) const;

 private:
  struct Shard {
    std::unique_ptr<Filter> filter;
    // unique_ptr: shared_mutex is immovable and shards move into the pool.
    std::unique_ptr<std::shared_mutex> mutex;
    // unique_ptr keeps each shard's sequence on its own heap cache line
    // (SeqLock is alignas(64)), away from the neighbours' counters.
    std::unique_ptr<SeqLock> seq;
    // Cached filter->OptimisticReadSafe(): a static property, hoisted out
    // of the per-lookup path.
    bool optimistic_safe = false;
    // Seed lineage (construction shard index). Clones share their parent's
    // family; merges require equal families.
    std::uint32_t family = 0;
  };

  /// One immutable routing snapshot: directory entry -> shard object.
  struct Directory {
    std::vector<Shard*> map;
  };

  const Directory& CurrentDir() const noexcept {
    return *dir_.load(std::memory_order_acquire);
  }
  /// Retire-then-publish; superseded directories live until destruction.
  void PublishDir(std::vector<Shard*> map);
  /// Appends a shard object to the pool (stable address) and returns it.
  Shard* AppendShard(std::unique_ptr<Filter> filter, std::uint32_t family);

  /// Distinct shards of `d.map`, first-appearance order.
  static std::vector<Shard*> UniqueShards(const Directory& d);
  /// Sorted directory entries currently mapped to `target`.
  static std::vector<std::size_t> AliasClass(const Directory& d,
                                             const Shard* target);

  bool TryContainsOptimisticShard(const Shard& s, std::uint64_t key,
                                  bool* result) const noexcept;

  /// Clear() body; callers hold admin_mutex_ (LoadState failure paths reuse
  /// it without re-locking).
  void ClearLocked();

  /// True when the construction topology is in effect (legacy blob format).
  bool IdentityDirectory(const Directory& d) const noexcept;
  std::uint64_t LegacyDigest() const noexcept;
  bool SaveStateV2(std::ostream& out, const Directory& d) const;
  bool LoadStateLegacy(std::istream& in);
  bool LoadStateV2(std::istream& in);

  /// Shard objects, append-only for the wrapper's lifetime: stable
  /// addresses for lock-free readers holding stale directories.
  std::deque<Shard> pool_;
  std::size_t base_count_ = 0;
  std::uint64_t salt_;
  ShardBuilder builder_;

  std::atomic<const Directory*> dir_{nullptr};
  std::vector<std::unique_ptr<const Directory>> dir_history_;
  /// Serializes topology/checkpoint admin ops (split, merge, save, load,
  /// clear) against each other; the per-op hot paths never take it.
  mutable std::mutex admin_mutex_;

  std::atomic<bool> optimistic_{true};
  mutable RelaxedCounter seq_retries_;
  mutable RelaxedCounter seq_fallbacks_;
  RelaxedCounter splits_;
  RelaxedCounter merges_;

 public:
  /// Completed topology changes (STATS surface).
  std::uint64_t split_count() const noexcept { return splits_.Value(); }
  std::uint64_t merge_count() const noexcept { return merges_.Value(); }
};

}  // namespace vcf
