// Hash-partitioned concurrency wrapper: N inner filters, each behind its
// own reader-writer lock.
//
// ConcurrentFilter (core/concurrent_filter.hpp) serializes all mutations on
// one lock, which caps multi-writer insert throughput at a single core.
// ShardedFilter routes every key to one of N independent inner filters by a
// salted hash of the key, so writers touching different shards proceed in
// parallel and the cuckoo eviction chain — the reason a shared-table
// concurrent cuckoo filter is hard — stays confined to one shard's table
// under that shard's exclusive lock.
//
// The price is approximation granularity: each shard is an independent
// filter over ~1/N of the key space, so the aggregate false-positive rate
// and per-shard load factor match a single filter of the same total slot
// count only in expectation. Routing uses Mix64(key ^ salt), independent of
// every inner filter's bucket hash, so shard choice does not bias bucket
// placement within a shard.
//
// Composition rules (see docs/performance.md): `sharded:` is the outermost
// wrapper; `resilient:` composes per shard (each shard gets its own stash
// and degraded-mode state). Wrapping a ShardedFilter in ConcurrentFilter is
// pointless — the shards already carry their own locks.
// Read path: lookups are OPTIMISTIC by default. Each shard carries a
// cache-line-padded seqlock (common/seqlock.hpp) next to its reader-writer
// lock; writers bump it to odd around every mutation (while also holding
// the shard's unique_lock, in unpinned mode), and Contains/ContainsBatch
// probe without any lock, validating the sequence afterwards. A failed
// validation re-probes up to a bounded retry budget, then falls back to
// the shared_lock path — so writer-heavy shards cannot livelock readers,
// and inner filters that are not OptimisticReadSafe() (growing tables)
// always take the lock. See DESIGN.md "Concurrency model".
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/seqlock.hpp"
#include "core/filter.hpp"

namespace vcf {

class ShardedFilter : public Filter {
 public:
  static constexpr std::uint64_t kDefaultSalt = 0x5Aa7edC0FFEE1234ULL;

  /// Takes ownership of `shards` (one lock each). All shards should be
  /// built from the same spec, differing only in seed; `salt` feeds the
  /// routing hash and must match across SaveState/LoadState pairs.
  explicit ShardedFilter(std::vector<std::unique_ptr<Filter>> shards,
                         std::uint64_t salt = kDefaultSalt);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Batched ops group keys by shard first, then run each shard's batch
  /// pipeline under a single lock acquisition. Keys that land in the same
  /// shard are applied in their original relative order, so the end state
  /// is identical to the sequential calls (shards are independent tables).
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override;
  std::string Name() const override;
  std::size_t ItemCount() const noexcept override;
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;

  /// Checkpoint layout: common header (digest covers salt and shard count)
  /// followed by every shard's own SaveState blob in shard order, each
  /// prefixed with its u64 byte length. The framing lets LoadState hand
  /// every shard exactly its own bytes, which matters for inner filters
  /// whose LoadState reads greedily (ResilientFilter slurps its stream).
  bool SaveState(std::ostream& out) const override;
  /// Restores a SaveState stream. Deviation from the base contract: on a
  /// mid-stream failure the already-restored prefix cannot be rolled back,
  /// so ALL shards are cleared and false is returned — the filter is
  /// empty, not unchanged.
  bool LoadState(std::istream& in) override;

  /// Aggregated view across shards (snapshot; each call re-sums).
  const OpCounters& counters() const noexcept override;
  void ResetCounters() noexcept override;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::uint64_t salt() const noexcept { return salt_; }
  /// The shard a key routes to — exposed for tests and load inspection.
  static std::size_t ShardIndex(std::uint64_t key, std::uint64_t salt,
                                std::size_t shard_count) noexcept;
  std::size_t ShardFor(std::uint64_t key) const noexcept {
    return ShardIndex(key, salt_, shards_.size());
  }
  /// Shard access for tests and the pinned-mode server executor; callers
  /// must ensure quiescence (or exclusive core-affine ownership).
  Filter& shard(std::size_t i) noexcept { return *shards_[i].filter; }
  const Filter& shard(std::size_t i) const noexcept {
    return *shards_[i].filter;
  }

  // --- Optimistic (seqlock) read path -------------------------------------

  /// Per-shard writer sequence. The pinned-mode server executor, which
  /// mutates shards without their locks, must bump this around every
  /// mutation (SeqLockWriteGuard) so foreign workers' lock-free lookups
  /// stay sound. Unpinned-mode callers never need it: the wrapper's own
  /// mutation paths bump it internally.
  SeqLock& shard_seq(std::size_t i) const noexcept { return *shards_[i].seq; }

  /// Enables/disables the lock-free read path (default on). Benchmarks use
  /// this to pin the shared_mutex arm; not meant to be flipped while
  /// readers are in flight (the switch itself is atomic, but mixed-mode
  /// measurement would be meaningless).
  void SetOptimisticReads(bool on) noexcept {
    optimistic_.store(on, std::memory_order_relaxed);
  }
  bool optimistic_reads() const noexcept {
    return optimistic_.load(std::memory_order_relaxed);
  }

  /// Single lock-free lookup attempt loop against shard `i`: probes without
  /// the shard lock, validating the shard's sequence, retrying up to the
  /// internal budget. Returns false — with *result untouched — when the
  /// budget is exhausted or the shard's inner filter is not
  /// OptimisticReadSafe(); the caller picks the fallback (the shard lock,
  /// or pinned-mode task forwarding). Never takes a lock itself.
  bool TryContainsOptimistic(std::size_t i, std::uint64_t key,
                             bool* result) const noexcept;

  /// Batch counterpart over keys already routed to shard `i`.
  bool TryContainsBatchOptimistic(std::size_t i,
                                  std::span<const std::uint64_t> keys,
                                  bool* results) const noexcept;

  /// Lifetime totals of the optimistic read path (also folded into
  /// counters() as seqlock_retries / seqlock_fallbacks).
  std::uint64_t seqlock_retries() const noexcept {
    return seq_retries_.Value();
  }
  std::uint64_t seqlock_fallbacks() const noexcept {
    return seq_fallbacks_.Value();
  }

  // --- Pinned-executor support (server/server.cpp) ------------------------
  // vcfd's core-affine mode gives each worker thread exclusive ownership of
  // a shard subset and accesses those shards without their locks. These
  // helpers let that executor stage checkpoints and stats shard-by-shard on
  // the owning threads: `locked` = true takes the shard's lock (the normal
  // path, used for shards whose owner has exited); owners pass false.

  /// Stages shard i's SaveState bytes into *blob.
  bool SaveShardState(std::size_t i, std::string* blob, bool locked) const;

  /// Writes a complete SaveState stream from per-shard blobs staged by
  /// SaveShardState; blobs.size() must equal shard_count(). The result is
  /// byte-identical to SaveState() over the same shard states.
  bool SaveStateEnvelope(std::ostream& out,
                         std::span<const std::string> blobs) const;

  /// Size counters of one shard, for cross-worker STATS aggregation.
  struct ShardStats {
    std::size_t items = 0;
    std::size_t slots = 0;
    std::size_t memory = 0;
  };
  ShardStats ShardStatsSnapshot(std::size_t i, bool locked) const;

 private:
  struct Shard {
    std::unique_ptr<Filter> filter;
    // unique_ptr: shared_mutex is immovable and shards live in a vector.
    std::unique_ptr<std::shared_mutex> mutex;
    // unique_ptr keeps each shard's sequence on its own heap cache line
    // (SeqLock is alignas(64)), away from the neighbours' counters.
    std::unique_ptr<SeqLock> seq;
    // Cached filter->OptimisticReadSafe(): a static property, hoisted out
    // of the per-lookup path.
    bool optimistic_safe = false;
  };

  std::vector<Shard> shards_;
  std::uint64_t salt_;
  std::atomic<bool> optimistic_{true};
  mutable RelaxedCounter seq_retries_;
  mutable RelaxedCounter seq_fallbacks_;
};

}  // namespace vcf
