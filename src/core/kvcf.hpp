// The generalized k-VCF (§III-C): k >= 2 candidate buckets per item via
// generalized vertical hashing (Eq. 6).
//
// Unlike the 4-candidate VCF, the mask family {masks[0..k-1]} is not closed
// under masked-XOR composition, so a stored fingerprint alone does not
// reveal which candidate bucket it currently occupies. Each slot therefore
// carries ceil(log2(k)) mark bits recording the candidate index e; during a
// relocation the victim's remaining candidates are derived with Eq. 7 from
// (current bucket, fingerprint, mark) — still without re-hashing the item.
//
// k = 2 degenerates to a standard CF (masks {0, full}); Table V sweeps
// k = 2..10 with MAX = 0 to isolate the pure multi-choice placement effect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "core/vertical_hashing.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class KVcf : public Filter, public kernel::SlotWalkPolicy<KVcf> {
 public:
  KVcf(const CuckooParams& params, unsigned k);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Kernel-pipelined batch ops (core/cuckoo_kernel.hpp); candidates are
  /// rederived from (b1, fh) in the probe phase — the candidate formula is
  /// mask arithmetic, the expensive parts are the two hashes and the bucket
  /// loads, which the pipeline hides.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  bool OptimisticReadSafe() const noexcept override { return true; }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Canonical-entity enumeration for the immutable segment tier. The mark
  /// bits recover the primary bucket from any stored copy (Eq. 7 with
  /// e = 0, since masks[0] = 0), so the canonical bucket is simply B1 and
  /// the entity drops the location-metadata mark.
  bool ForEachFingerprint(
      const std::function<void(std::uint64_t)>& fn) const override;
  bool KeyEntity(std::uint64_t key, std::uint64_t* entity) const override;

  unsigned k() const noexcept { return hasher_.k(); }
  unsigned mark_bits() const noexcept { return mark_bits_; }
  const GeneralizedVerticalHasher& hasher() const noexcept { return hasher_; }

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // shared slot-table hooks come from kernel::SlotWalkPolicy; the marked
  // walk state and kick hide the mixin defaults) ---------------------------
  struct Hashed {
    std::uint64_t b1;
    std::uint64_t fh;
    std::uint64_t fp;
  };
  /// The walk's in-hand state: the bucket about to receive `fp`, that
  /// bucket's candidate index for it (the mark to encode), and — between a
  /// kick and its relocation — the displaced victim's own mark.
  struct WalkState {
    std::uint64_t bucket;
    std::uint64_t fp;
    unsigned mark;
    unsigned victim_mark;
  };
  Hashed HashKey(std::uint64_t key) const noexcept;
  void PrefetchCandidates(const Hashed& h) const noexcept {
    for (unsigned e = 0; e < hasher_.k(); ++e) {
      table_.PrefetchBucket(hasher_.Candidate(h.b1, h.fh, e));
    }
  }
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool ProbeCandidates(const Hashed& h) const noexcept;
  WalkState StartWalk(const Hashed& h) {
    const unsigned mark = static_cast<unsigned>(rng_.Below(hasher_.k()));
    return {hasher_.Candidate(h.b1, h.fh, mark), h.fp, mark, 0};
  }
  WalkUndo KickVictim(WalkState& walk);
  bool RelocateVictim(WalkState& walk);

  // BFS surface. Slot values are full encoded slots (mark | fingerprint),
  // so a move re-marks: the moved value records its destination's candidate
  // index, keeping Eq. 7 derivable after the chain runs.
  void AppendCandidates(const Hashed& h, std::vector<std::uint64_t>& out) const {
    for (unsigned e = 0; e < hasher_.k(); ++e) {
      out.push_back(hasher_.Candidate(h.b1, h.fh, e));
    }
  }
  std::uint64_t RootValue(const Hashed& h, unsigned idx) const noexcept {
    return EncodeSlot(h.fp, idx);
  }
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    const std::uint64_t fp = SlotFingerprint(occupant);
    const unsigned vm = SlotMark(occupant);
    const std::uint64_t fh = FingerprintHash(fp);
    for (unsigned e = 0; e < hasher_.k(); ++e) {
      if (e == vm) continue;
      fn(hasher_.FromSibling(bucket, fh, vm, e), EncodeSlot(fp, e));
    }
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<KVcf>;

  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  std::uint64_t Digest() const noexcept;

  std::uint64_t EncodeSlot(std::uint64_t fp, unsigned mark) const noexcept {
    return (static_cast<std::uint64_t>(mark) << params_.fingerprint_bits) | fp;
  }
  std::uint64_t SlotFingerprint(std::uint64_t slot) const noexcept {
    return slot & fp_mask_;
  }
  unsigned SlotMark(std::uint64_t slot) const noexcept {
    return static_cast<unsigned>(slot >> params_.fingerprint_bits);
  }

  CuckooParams params_;
  GeneralizedVerticalHasher hasher_;
  unsigned mark_bits_;
  std::uint64_t fp_mask_;
  PackedTable table_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
  std::string name_;
};

}  // namespace vcf
