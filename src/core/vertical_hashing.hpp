// Vertical hashing (§III-A of the paper) — the indexing scheme that derives
// four (or, generalized, k) candidate buckets for an item from nothing but
// its fingerprint hash and fixed bitmasks, such that the candidates index
// each other without re-hashing the item:
//
//   B1 = hash(x) mod m
//   B2 = B1 xor (hash(eta) and bm1)          (Eq. 3)
//   B3 = B1 xor (hash(eta) and bm2)
//   B4 = B1 xor  hash(eta)
//
// Theorem 1: with bm2 = not bm1 the mask set {0, bm1, bm2, full} is closed
// under masked-XOR composition, so from ANY of the four buckets the same
// three formulas (Eq. 4) reproduce exactly the other three — no mark bits
// needed. The generalized k-candidate form (Eq. 6/7) loses that closure and
// requires per-slot mark bits; see GeneralizedVerticalHasher.
//
// Widths: following the paper (Fig. 1: an f-bit fingerprint yields an f-bit
// hash value; "bitmasks with the same size as the hash value"), hash(eta)
// and the bitmasks are `offset_bits` = f wide, while bucket indices live in
// a `index_bits`-wide space (m = 2^index_bits buckets). When f < index_bits
// the candidates of an item therefore all fall inside one aligned block of
// 2^f buckets — the source of Fig. 4's load-factor dependence on f. All
// results are reduced modulo m.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitops.hpp"

namespace vcf {

/// The four candidate buckets of Eq. 3. Entries may coincide: when
/// hash(eta) and bm1 == 0 (or and bm2 == 0) the item degenerates to two
/// distinct candidates (§III-A, Eq. 5); the paper keeps the duplicates in
/// lookup, and so do we.
struct Candidates4 {
  std::array<std::uint64_t, 4> bucket;
};

class VerticalHasher {
 public:
  /// `index_bits` = log2(bucket count); `offset_bits` = width of hash(eta)
  /// and of the bitmasks (the fingerprint length f). `bm1` is truncated to
  /// offset width and bm2 = ~bm1 within that width (Theorem 1's
  /// requirement).
  VerticalHasher(unsigned index_bits, unsigned offset_bits,
                 std::uint64_t bm1) noexcept;

  /// Balanced default: bm1 = low half of the offset bits, which maximises
  /// the probability of four distinct candidates (Eq. 8 with l = f/2).
  static VerticalHasher Balanced(unsigned index_bits,
                                 unsigned offset_bits) noexcept;

  /// IVCF_i mask: exactly `ones` one-bits (the low ones). §IV-A.
  static VerticalHasher WithOnes(unsigned index_bits, unsigned offset_bits,
                                 unsigned ones) noexcept;

  unsigned index_bits() const noexcept { return index_bits_; }
  unsigned offset_bits() const noexcept { return offset_bits_; }
  std::uint64_t index_mask() const noexcept { return index_mask_; }
  std::uint64_t offset_mask() const noexcept { return offset_mask_; }
  std::uint64_t bm1() const noexcept { return bm1_; }
  std::uint64_t bm2() const noexcept { return bm2_; }

  /// Eq. 3: candidates from the primary bucket `b1` and the fingerprint hash
  /// `fp_hash` (any 64-bit value; reduced to the offset width internally).
  Candidates4 Candidates(std::uint64_t b1, std::uint64_t fp_hash) const noexcept {
    const std::uint64_t h = fp_hash & offset_mask_;
    const std::uint64_t base = b1 & index_mask_;
    return {{base, (base ^ (h & bm1_)) & index_mask_,
             (base ^ (h & bm2_)) & index_mask_, (base ^ h) & index_mask_}};
  }

  /// Eq. 4: the other three candidates as seen from `current` (any member of
  /// the candidate set). By Theorem 1 this is the same set regardless of
  /// which member `current` is.
  std::array<std::uint64_t, 3> Alternates(std::uint64_t current,
                                          std::uint64_t fp_hash) const noexcept {
    const std::uint64_t h = fp_hash & offset_mask_;
    const std::uint64_t cur = current & index_mask_;
    return {(cur ^ (h & bm1_)) & index_mask_, (cur ^ (h & bm2_)) & index_mask_,
            (cur ^ h) & index_mask_};
  }

  /// True iff `fp_hash` yields four pairwise-distinct candidates, i.e.
  /// neither *index-effective* masked fragment is zero.
  bool YieldsFourDistinct(std::uint64_t fp_hash) const noexcept {
    const std::uint64_t h = fp_hash & offset_mask_ & index_mask_;
    return (h & bm1_) != 0 && (h & bm2_) != 0;
  }

  /// Eq. 8 for this mask shape (0 when the mask is degenerate, i.e. CF),
  /// accounting for truncation when the table is smaller than 2^f buckets.
  double TheoreticalR() const noexcept;

 private:
  unsigned index_bits_;
  unsigned offset_bits_;
  std::uint64_t index_mask_;
  std::uint64_t offset_mask_;
  std::uint64_t bm1_;
  std::uint64_t bm2_;
};

/// Generalized vertical hashing (Eq. 6/7) for k >= 2 candidates.
/// masks[0] = 0 (the primary bucket), masks[k-1] = all ones of the offset
/// width (the full-XOR bucket), masks[1..k-2] = distinct random masks
/// derived from `seed`.
class GeneralizedVerticalHasher {
 public:
  GeneralizedVerticalHasher(unsigned index_bits, unsigned offset_bits,
                            unsigned k, std::uint64_t seed);

  unsigned index_bits() const noexcept { return index_bits_; }
  unsigned offset_bits() const noexcept { return offset_bits_; }
  unsigned k() const noexcept { return static_cast<unsigned>(masks_.size()); }
  std::uint64_t index_mask() const noexcept { return index_mask_; }
  std::uint64_t mask(unsigned e) const noexcept { return masks_[e]; }

  /// Eq. 6: candidate e (0-based) from the primary bucket.
  std::uint64_t Candidate(std::uint64_t b1, std::uint64_t fp_hash,
                          unsigned e) const noexcept {
    return ((b1 & index_mask_) ^ (fp_hash & masks_[e])) & index_mask_;
  }

  /// Eq. 7: candidate e derived from sibling candidate g.
  std::uint64_t FromSibling(std::uint64_t bg, std::uint64_t fp_hash, unsigned g,
                            unsigned e) const noexcept {
    return ((bg & index_mask_) ^ (fp_hash & masks_[g]) ^ (fp_hash & masks_[e])) &
           index_mask_;
  }

 private:
  unsigned index_bits_;
  unsigned offset_bits_;
  std::uint64_t index_mask_;
  std::vector<std::uint64_t> masks_;
};

}  // namespace vcf
