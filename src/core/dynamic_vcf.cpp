#include "core/dynamic_vcf.hpp"

#include "common/failpoint.hpp"
#include "common/random.hpp"

namespace vcf {

DynamicVcf::DynamicVcf(const CuckooParams& segment_params, unsigned mask_ones,
                       std::size_t max_segments)
    : segment_params_(segment_params),
      mask_ones_(mask_ones),
      max_segments_(max_segments) {
  segments_.push_back(MakeSegment(0));
}

std::unique_ptr<VerticalCuckooFilter> DynamicVcf::MakeSegment(
    std::size_t index) const {
  CuckooParams p = segment_params_;
  // Independent hashing per segment: a key that is pathological in one
  // segment (fingerprint collisions, saturated candidate set) gets a fresh
  // layout in the next.
  p.seed = Mix64(segment_params_.seed + 0x9E3779B97F4A7C15ULL * (index + 1));
  if (mask_ones_ == 0) {
    return std::make_unique<VerticalCuckooFilter>(p);
  }
  return std::make_unique<VerticalCuckooFilter>(p, mask_ones_);
}

bool DynamicVcf::Insert(std::uint64_t key) {
  ++counters_.inserts;
  // Two-phase placement keeps inserts cheap even with many full segments:
  // first a direct (no-eviction) probe of each segment front-to-back — four
  // bucket reads per segment — then one full eviction-budget attempt in the
  // newest segment, and only then growth. Early segments stay dense, and a
  // full segment costs probes, not a 500-kick chain.
  for (auto& segment : segments_) {
    if (segment->InsertDirect(key)) return true;
  }
  if (segments_.back()->Insert(key)) return true;
  if (max_segments_ != 0 && segments_.size() >= max_segments_) {
    ++counters_.insert_failures;
    return false;
  }
  // Failure seam: injected segment-allocation failure — the filter behaves
  // as if growth were capped, rejecting the insert without growing.
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kSegmentAlloc)) {
    ++counters_.insert_failures;
    return false;
  }
  segments_.push_back(MakeSegment(segments_.size()));
  if (segments_.back()->Insert(key)) return true;
  ++counters_.insert_failures;  // fresh segment rejecting a key: pathological
  return false;
}

bool DynamicVcf::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  for (const auto& segment : segments_) {
    if (segment->Contains(key)) return true;
  }
  return false;
}

bool DynamicVcf::Erase(std::uint64_t key) {
  ++counters_.deletions;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i]->Erase(key)) {
      // Compact: drop an emptied trailing segment (never the first) so churn
      // does not leave a long chain of hollow segments behind.
      while (segments_.size() > 1 && segments_.back()->ItemCount() == 0) {
        segments_.pop_back();
      }
      return true;
    }
  }
  return false;
}

std::size_t DynamicVcf::ItemCount() const noexcept {
  std::size_t total = 0;
  for (const auto& segment : segments_) total += segment->ItemCount();
  return total;
}

std::size_t DynamicVcf::SlotCount() const noexcept {
  return segment_params_.slot_count() * segments_.size();
}

double DynamicVcf::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) / static_cast<double>(slots);
}

std::size_t DynamicVcf::MemoryBytes() const noexcept {
  std::size_t total = 0;
  for (const auto& segment : segments_) total += segment->MemoryBytes();
  return total;
}

void DynamicVcf::Clear() {
  segments_.clear();
  segments_.push_back(MakeSegment(0));
}

}  // namespace vcf
