// Capacity planning: turn an (expected item count, target false-positive
// rate) requirement into concrete CuckooParams, using the paper's §V-B
// space model (Eqs. 10-12). This is the API a deployer actually wants —
// "I have 10M flows and need FPR < 0.1%" — instead of hand-picking table
// geometry.
#pragma once

#include <cstddef>

#include "core/cuckoo_params.hpp"

namespace vcf {

struct SizingRequest {
  /// Expected number of simultaneously stored items.
  std::size_t expected_items = 1 << 20;

  /// Target false-positive rate at the operating load.
  double target_fpr = 1e-3;

  /// r the deployment will run with (Eq. 8/9): ~0.98 for a max-r IVCF,
  /// 0 for a plain CF. Affects both the FPR bound and the load factor the
  /// table can be driven to.
  double r = 0.98;

  /// Safety margin on top of the load factor the model predicts reachable
  /// (headroom for churn spikes). 0.04 means "size for 4% spare slots".
  double headroom = 0.04;

  /// In-memory bucket layout for the planned table. kCacheAligned trades
  /// space (stride padded to a power of two bits) for probe speed; the
  /// reported bits_per_item includes that padding so the trade-off is
  /// visible at planning time.
  TableLayout layout = TableLayout::kPacked;
};

struct SizingResult {
  CuckooParams params;      ///< ready to construct a filter with
  double design_load;       ///< expected_items / slot_count
  double predicted_fpr;     ///< Eq. 10 at the design load
  double bits_per_item;     ///< table bits / expected_items
};

/// Computes the smallest power-of-two table and fingerprint width meeting
/// `request`. Throws std::invalid_argument for unsatisfiable requests
/// (fpr so low the fingerprint exceeds the supported 25 bits, zero items).
SizingResult PlanCapacity(const SizingRequest& request);

/// The cuckoo-family index-width ceiling: every table in the library
/// addresses buckets with at most 32 bits.
inline constexpr std::size_t kMaxBucketCount = std::size_t{1} << 32;

/// Rounds a bucket budget up to the smallest legal power-of-two bucket
/// count — at least one bucket, at most 2^32 (the index-width cap shared by
/// every cuckoo-family geometry). This is the one rounding rule for
/// partitioning a slot budget across shards and for sizing growth steps;
/// throws std::invalid_argument past the cap.
std::size_t CeilBucketCount(std::size_t min_buckets);

/// One elastic growth step: the same geometry with the bucket count
/// doubled (fingerprint width, slots per bucket, hash, seed and layout
/// unchanged, so stored fingerprints stay compatible). Throws
/// std::invalid_argument when `current` is already at the 2^32-bucket cap.
CuckooParams NextCapacity(const CuckooParams& current);

}  // namespace vcf
