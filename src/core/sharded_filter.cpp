#include "core/sharded_filter.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

ShardedFilter::ShardedFilter(std::vector<std::unique_ptr<Filter>> shards,
                             std::uint64_t salt)
    : salt_(salt) {
  if (shards.empty()) {
    throw std::invalid_argument("ShardedFilter: need at least one shard");
  }
  shards_.reserve(shards.size());
  for (auto& f : shards) {
    if (!f) {
      throw std::invalid_argument("ShardedFilter: shard must not be null");
    }
    shards_.push_back({std::move(f), std::make_unique<std::shared_mutex>()});
  }
}

std::size_t ShardedFilter::ShardIndex(std::uint64_t key, std::uint64_t salt,
                                      std::size_t shard_count) noexcept {
  // Mix64 is independent of every filter's bucket hash (those consume the
  // key through Hash64 with the filter seed), so routing does not correlate
  // with in-shard placement.
  return static_cast<std::size_t>(Mix64(key ^ salt) % shard_count);
}

bool ShardedFilter::Insert(std::uint64_t key) {
  Shard& s = shards_[ShardFor(key)];
  std::unique_lock lock(*s.mutex);
  return s.filter->Insert(key);
}

bool ShardedFilter::Contains(std::uint64_t key) const {
  const Shard& s = shards_[ShardFor(key)];
  std::shared_lock lock(*s.mutex);
  return s.filter->Contains(key);
}

bool ShardedFilter::Erase(std::uint64_t key) {
  Shard& s = shards_[ShardFor(key)];
  std::unique_lock lock(*s.mutex);
  return s.filter->Erase(key);
}

void ShardedFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                  bool* results) const {
  const std::size_t n_shards = shards_.size();
  std::vector<std::vector<std::uint64_t>> shard_keys(n_shards);
  std::vector<std::vector<std::size_t>> shard_pos(n_shards);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t s = ShardFor(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_pos[s].push_back(i);
  }
  std::vector<bool>::size_type max_run = 0;
  for (const auto& v : shard_keys) max_run = std::max(max_run, v.size());
  std::unique_ptr<bool[]> tmp(new bool[std::max<std::size_t>(max_run, 1)]);
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (shard_keys[s].empty()) continue;
    std::shared_lock lock(*shards_[s].mutex);
    shards_[s].filter->ContainsBatch(shard_keys[s], tmp.get());
    lock.unlock();
    for (std::size_t j = 0; j < shard_pos[s].size(); ++j) {
      results[shard_pos[s][j]] = tmp[j];
    }
  }
}

std::size_t ShardedFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                       bool* results) {
  const std::size_t n_shards = shards_.size();
  std::vector<std::vector<std::uint64_t>> shard_keys(n_shards);
  std::vector<std::vector<std::size_t>> shard_pos(n_shards);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t s = ShardFor(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_pos[s].push_back(i);
  }
  std::size_t max_run = 0;
  for (const auto& v : shard_keys) max_run = std::max(max_run, v.size());
  std::unique_ptr<bool[]> tmp(new bool[std::max<std::size_t>(max_run, 1)]);
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (shard_keys[s].empty()) continue;
    std::unique_lock lock(*shards_[s].mutex);
    accepted += shards_[s].filter->InsertBatch(shard_keys[s], tmp.get());
    lock.unlock();
    if (results != nullptr) {
      for (std::size_t j = 0; j < shard_pos[s].size(); ++j) {
        results[shard_pos[s][j]] = tmp[j];
      }
    }
  }
  return accepted;
}

bool ShardedFilter::SupportsDeletion() const noexcept {
  return std::all_of(shards_.begin(), shards_.end(), [](const Shard& s) {
    return s.filter->SupportsDeletion();
  });
}

std::string ShardedFilter::Name() const {
  return "Sharded" + std::to_string(shards_.size()) + "(" +
         shards_[0].filter->Name() + ")";
}

std::size_t ShardedFilter::ItemCount() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(*s.mutex);
    total += s.filter->ItemCount();
  }
  return total;
}

std::size_t ShardedFilter::SlotCount() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(*s.mutex);
    total += s.filter->SlotCount();
  }
  return total;
}

double ShardedFilter::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t ShardedFilter::MemoryBytes() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(*s.mutex);
    total += s.filter->MemoryBytes();
  }
  return total;
}

void ShardedFilter::Clear() {
  for (Shard& s : shards_) {
    std::unique_lock lock(*s.mutex);
    s.filter->Clear();
  }
}

bool ShardedFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      salt_, static_cast<unsigned>(shards_.size()), 0, 0);
  if (!detail::WriteStateHeader(out, Name(), digest)) return false;
  for (const Shard& s : shards_) {
    // Stage the shard blob to learn its length, then write it framed.
    std::ostringstream staged;
    {
      std::shared_lock lock(*s.mutex);
      if (!s.filter->SaveState(staged)) return false;
    }
    if (!detail::WriteFramedBlob(out, staged.str())) return false;
  }
  return true;
}

bool ShardedFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      salt_, static_cast<unsigned>(shards_.size()), 0, 0);
  if (!detail::ReadStateHeader(in, Name(), digest)) return false;
  for (Shard& s : shards_) {
    // No shard blob legitimately approaches the frame cap (a 2^30-slot
    // table is ~8 GiB of *slots* already).
    constexpr std::uint64_t kMaxShardBlobBytes = std::uint64_t{1} << 32;
    std::string blob;
    if (!detail::ReadFramedBlob(in, &blob, kMaxShardBlobBytes)) {
      Clear();
      return false;
    }
    std::istringstream shard_in(blob);
    std::unique_lock lock(*s.mutex);
    if (!s.filter->LoadState(shard_in)) {
      lock.unlock();
      Clear();  // cannot roll back already-restored shards; see header
      return false;
    }
  }
  return true;
}

const OpCounters& ShardedFilter::counters() const noexcept {
  counters_.Reset();
  for (const Shard& s : shards_) counters_ += s.filter->counters();
  return counters_;
}

void ShardedFilter::ResetCounters() noexcept {
  counters_.Reset();
  for (Shard& s : shards_) s.filter->ResetCounters();
}

}  // namespace vcf
