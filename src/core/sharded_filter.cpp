#include "core/sharded_filter.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {

// Optimistic re-probe budget before a reader gives up and takes the shard
// lock (or, in pinned mode, forwards to the owner). A probe is tens of ns
// and writer critical sections are short, so nearly every retry succeeds
// on the first re-probe; the budget exists for pathological writer storms
// (and the fallback counter makes hitting it observable).
constexpr int kOptimisticRetries = 8;

}  // namespace

ShardedFilter::ShardedFilter(std::vector<std::unique_ptr<Filter>> shards,
                             std::uint64_t salt)
    : salt_(salt) {
  if (shards.empty()) {
    throw std::invalid_argument("ShardedFilter: need at least one shard");
  }
  shards_.reserve(shards.size());
  for (auto& f : shards) {
    if (!f) {
      throw std::invalid_argument("ShardedFilter: shard must not be null");
    }
    const bool safe = f->OptimisticReadSafe();
    shards_.push_back({std::move(f), std::make_unique<std::shared_mutex>(),
                       std::make_unique<SeqLock>(), safe});
  }
}

std::size_t ShardedFilter::ShardIndex(std::uint64_t key, std::uint64_t salt,
                                      std::size_t shard_count) noexcept {
  // Mix64 is independent of every filter's bucket hash (those consume the
  // key through Hash64 with the filter seed), so routing does not correlate
  // with in-shard placement.
  return static_cast<std::size_t>(Mix64(key ^ salt) % shard_count);
}

bool ShardedFilter::Insert(std::uint64_t key) {
  Shard& s = shards_[ShardFor(key)];
  std::unique_lock lock(*s.mutex);
  SeqLockWriteGuard seq(*s.seq);
  return s.filter->Insert(key);
}

bool ShardedFilter::TryContainsOptimistic(std::size_t i, std::uint64_t key,
                                          bool* result) const noexcept {
  const Shard& s = shards_[i];
  if (!s.optimistic_safe || !optimistic_reads()) return false;
  for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
    const std::uint64_t token = s.seq->ReadBegin();
    if ((token & 1) == 0) {
      const bool r = s.filter->Contains(key);
      if (s.seq->ReadValidate(token)) {
        *result = r;
        return true;
      }
    }
    ++seq_retries_;
    CpuRelax();
  }
  return false;
}

bool ShardedFilter::TryContainsBatchOptimistic(
    std::size_t i, std::span<const std::uint64_t> keys,
    bool* results) const noexcept {
  const Shard& s = shards_[i];
  if (!s.optimistic_safe || !optimistic_reads()) return false;
  for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
    const std::uint64_t token = s.seq->ReadBegin();
    if ((token & 1) == 0) {
      s.filter->ContainsBatch(keys, results);
      if (s.seq->ReadValidate(token)) return true;
    }
    ++seq_retries_;
    CpuRelax();
  }
  return false;
}

bool ShardedFilter::Contains(std::uint64_t key) const {
  const std::size_t i = ShardFor(key);
  bool result = false;
  if (TryContainsOptimistic(i, key, &result)) return result;
  const Shard& s = shards_[i];
  if (s.optimistic_safe && optimistic_reads()) ++seq_fallbacks_;
  std::shared_lock lock(*s.mutex);
  return s.filter->Contains(key);
}

bool ShardedFilter::Erase(std::uint64_t key) {
  Shard& s = shards_[ShardFor(key)];
  std::unique_lock lock(*s.mutex);
  SeqLockWriteGuard seq(*s.seq);
  return s.filter->Erase(key);
}

// The batch partition is a hot path: the server runs it once per coalesced
// run. A counting sort into thread_local scratch replaces the former
// vector-of-vectors (~2 heap allocations per shard per call) with zero
// steady-state allocations; thread_local keeps the const ContainsBatch safe
// to call concurrently from many server workers.
void ShardedFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                  bool* results) const {
  const std::size_t n_shards = shards_.size();
  thread_local std::vector<std::uint32_t> shard_of;
  thread_local std::vector<std::uint32_t> offset, cursor, pos;
  thread_local std::vector<std::uint64_t> grouped;
  thread_local std::vector<std::uint8_t> tmp;  // bool results per shard run

  const std::size_t n = keys.size();
  shard_of.resize(n);
  offset.assign(n_shards + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = ShardFor(keys[i]);
    shard_of[i] = static_cast<std::uint32_t>(s);
    ++offset[s + 1];
  }
  for (std::size_t s = 0; s < n_shards; ++s) offset[s + 1] += offset[s];
  cursor.assign(offset.begin(), offset.end() - 1);
  grouped.resize(n);
  pos.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t at = cursor[shard_of[i]]++;
    grouped[at] = keys[i];
    pos[at] = static_cast<std::uint32_t>(i);
  }
  tmp.resize(std::max<std::size_t>(n, 1));
  bool* tmp_bools = reinterpret_cast<bool*>(tmp.data());
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t lo = offset[s], hi = offset[s + 1];
    if (lo == hi) continue;
    const std::span sub(grouped.data() + lo, hi - lo);
    // Lock-free first: the whole per-shard partition probes under one
    // sequence read/validate pair (the counting sort above already grouped
    // the keys, so validation is per shard, not per key).
    if (TryContainsBatchOptimistic(s, sub, tmp_bools + lo)) continue;
    if (shards_[s].optimistic_safe && optimistic_reads()) ++seq_fallbacks_;
    std::shared_lock lock(*shards_[s].mutex);
    shards_[s].filter->ContainsBatch(sub, tmp_bools + lo);
    lock.unlock();
  }
  for (std::size_t i = 0; i < n; ++i) results[pos[i]] = tmp_bools[i];
}

std::size_t ShardedFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                       bool* results) {
  const std::size_t n_shards = shards_.size();
  thread_local std::vector<std::uint32_t> shard_of;
  thread_local std::vector<std::uint32_t> offset, cursor, pos;
  thread_local std::vector<std::uint64_t> grouped;
  thread_local std::vector<std::uint8_t> tmp;

  const std::size_t n = keys.size();
  shard_of.resize(n);
  offset.assign(n_shards + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = ShardFor(keys[i]);
    shard_of[i] = static_cast<std::uint32_t>(s);
    ++offset[s + 1];
  }
  for (std::size_t s = 0; s < n_shards; ++s) offset[s + 1] += offset[s];
  cursor.assign(offset.begin(), offset.end() - 1);
  grouped.resize(n);
  pos.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t at = cursor[shard_of[i]]++;
    grouped[at] = keys[i];
    pos[at] = static_cast<std::uint32_t>(i);
  }
  tmp.resize(std::max<std::size_t>(n, 1));
  bool* tmp_bools = reinterpret_cast<bool*>(tmp.data());
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t lo = offset[s], hi = offset[s + 1];
    if (lo == hi) continue;
    std::unique_lock lock(*shards_[s].mutex);
    {
      SeqLockWriteGuard seq(*shards_[s].seq);
      accepted += shards_[s].filter->InsertBatch(
          std::span(grouped.data() + lo, hi - lo), tmp_bools + lo);
    }
    lock.unlock();
  }
  if (results != nullptr) {
    for (std::size_t i = 0; i < n; ++i) results[pos[i]] = tmp_bools[i];
  }
  return accepted;
}

bool ShardedFilter::SupportsDeletion() const noexcept {
  return std::all_of(shards_.begin(), shards_.end(), [](const Shard& s) {
    return s.filter->SupportsDeletion();
  });
}

std::string ShardedFilter::Name() const {
  return "Sharded" + std::to_string(shards_.size()) + "(" +
         shards_[0].filter->Name() + ")";
}

std::size_t ShardedFilter::ItemCount() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(*s.mutex);
    total += s.filter->ItemCount();
  }
  return total;
}

std::size_t ShardedFilter::SlotCount() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(*s.mutex);
    total += s.filter->SlotCount();
  }
  return total;
}

double ShardedFilter::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t ShardedFilter::MemoryBytes() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    std::shared_lock lock(*s.mutex);
    total += s.filter->MemoryBytes();
  }
  return total;
}

void ShardedFilter::Clear() {
  for (Shard& s : shards_) {
    std::unique_lock lock(*s.mutex);
    SeqLockWriteGuard seq(*s.seq);
    s.filter->Clear();
  }
}

bool ShardedFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      salt_, static_cast<unsigned>(shards_.size()), 0, 0);
  if (!detail::WriteStateHeader(out, Name(), digest)) return false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // Stage the shard blob to learn its length, then write it framed.
    std::string staged;
    if (!SaveShardState(i, &staged, /*locked=*/true)) return false;
    if (!detail::WriteFramedBlob(out, staged)) return false;
  }
  return true;
}

bool ShardedFilter::SaveShardState(std::size_t i, std::string* blob,
                                   bool locked) const {
  const Shard& s = shards_[i];
  std::ostringstream staged;
  bool ok;
  if (locked) {
    std::shared_lock lock(*s.mutex);
    ok = s.filter->SaveState(staged);
  } else {
    ok = s.filter->SaveState(staged);
  }
  if (!ok) return false;
  *blob = std::move(staged).str();
  return true;
}

bool ShardedFilter::SaveStateEnvelope(std::ostream& out,
                                      std::span<const std::string> blobs) const {
  if (blobs.size() != shards_.size()) return false;
  const std::uint64_t digest = detail::ConfigDigest(
      salt_, static_cast<unsigned>(shards_.size()), 0, 0);
  if (!detail::WriteStateHeader(out, Name(), digest)) return false;
  for (const std::string& blob : blobs) {
    if (!detail::WriteFramedBlob(out, blob)) return false;
  }
  return true;
}

ShardedFilter::ShardStats ShardedFilter::ShardStatsSnapshot(std::size_t i,
                                                            bool locked) const {
  const Shard& s = shards_[i];
  ShardStats st;
  if (locked) {
    std::shared_lock lock(*s.mutex);
    st.items = s.filter->ItemCount();
    st.slots = s.filter->SlotCount();
    st.memory = s.filter->MemoryBytes();
  } else {
    st.items = s.filter->ItemCount();
    st.slots = s.filter->SlotCount();
    st.memory = s.filter->MemoryBytes();
  }
  return st;
}

bool ShardedFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      salt_, static_cast<unsigned>(shards_.size()), 0, 0);
  if (!detail::ReadStateHeader(in, Name(), digest)) return false;
  for (Shard& s : shards_) {
    // No shard blob legitimately approaches the frame cap (a 2^30-slot
    // table is ~8 GiB of *slots* already).
    constexpr std::uint64_t kMaxShardBlobBytes = std::uint64_t{1} << 32;
    std::string blob;
    if (!detail::ReadFramedBlob(in, &blob, kMaxShardBlobBytes)) {
      Clear();
      return false;
    }
    std::istringstream shard_in(blob);
    bool ok;
    {
      std::unique_lock lock(*s.mutex);
      SeqLockWriteGuard seq(*s.seq);
      ok = s.filter->LoadState(shard_in);
    }
    if (!ok) {
      Clear();  // cannot roll back already-restored shards; see header
      return false;
    }
  }
  return true;
}

const OpCounters& ShardedFilter::counters() const noexcept {
  counters_.Reset();
  for (const Shard& s : shards_) counters_ += s.filter->counters();
  // The optimistic read path's counters live on the wrapper (retries are a
  // property of the wrapper's protocol, not of any inner filter).
  counters_.seqlock_retries += seq_retries_.Value();
  counters_.seqlock_fallbacks += seq_fallbacks_.Value();
  return counters_;
}

void ShardedFilter::ResetCounters() noexcept {
  counters_.Reset();
  seq_retries_ = 0;
  seq_fallbacks_ = 0;
  for (Shard& s : shards_) s.filter->ResetCounters();
}

}  // namespace vcf
