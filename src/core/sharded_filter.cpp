#include "core/sharded_filter.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {

// Optimistic re-probe budget before a reader gives up and takes the shard
// lock (or, in pinned mode, forwards to the owner). A probe is tens of ns
// and writer critical sections are short, so nearly every retry succeeds
// on the first re-probe; the budget exists for pathological writer storms
// (and the fallback counter makes hitting it observable).
constexpr int kOptimisticRetries = 8;

// No shard blob legitimately approaches the frame cap (a 2^30-slot table
// is ~8 GiB of *slots* already).
constexpr std::uint64_t kMaxShardBlobBytes = std::uint64_t{1} << 32;

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Take(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

}  // namespace

ShardedFilter::ShardedFilter(std::vector<std::unique_ptr<Filter>> shards,
                             std::uint64_t salt)
    : salt_(salt) {
  if (shards.empty()) {
    throw std::invalid_argument("ShardedFilter: need at least one shard");
  }
  base_count_ = shards.size();
  std::vector<Shard*> map;
  map.reserve(base_count_);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!shards[i]) {
      throw std::invalid_argument("ShardedFilter: shard must not be null");
    }
    map.push_back(
        AppendShard(std::move(shards[i]), static_cast<std::uint32_t>(i)));
  }
  PublishDir(std::move(map));
}

ShardedFilter::Shard* ShardedFilter::AppendShard(std::unique_ptr<Filter> filter,
                                                 std::uint32_t family) {
  const bool safe = filter->OptimisticReadSafe();
  pool_.push_back({std::move(filter), std::make_unique<std::shared_mutex>(),
                   std::make_unique<SeqLock>(), safe, family});
  return &pool_.back();
}

void ShardedFilter::PublishDir(std::vector<Shard*> map) {
  auto next = std::make_unique<Directory>();
  next->map = std::move(map);
  // Retire-then-publish: superseded directories stay alive for readers
  // that loaded the pointer before the swap.
  dir_history_.push_back(std::move(next));
  dir_.store(dir_history_.back().get(), std::memory_order_release);
}

std::vector<ShardedFilter::Shard*> ShardedFilter::UniqueShards(
    const Directory& d) {
  std::vector<Shard*> unique;
  unique.reserve(d.map.size());
  for (Shard* s : d.map) {
    if (std::find(unique.begin(), unique.end(), s) == unique.end()) {
      unique.push_back(s);
    }
  }
  return unique;
}

std::vector<std::size_t> ShardedFilter::AliasClass(const Directory& d,
                                                   const Shard* target) {
  std::vector<std::size_t> entries;
  for (std::size_t i = 0; i < d.map.size(); ++i) {
    if (d.map[i] == target) entries.push_back(i);
  }
  return entries;
}

std::size_t ShardedFilter::ShardIndex(std::uint64_t key, std::uint64_t salt,
                                      std::size_t shard_count) noexcept {
  // Mix64 is independent of every filter's bucket hash (those consume the
  // key through Hash64 with the filter seed), so routing does not correlate
  // with in-shard placement. Directory growth is always by doubling, and
  // (x mod 2N) mod N == x mod N, so a key's entry after a split maps to
  // either its old shard or that shard's clone — never somewhere new.
  return static_cast<std::size_t>(Mix64(key ^ salt) % shard_count);
}

bool ShardedFilter::Insert(std::uint64_t key) {
  for (;;) {
    const Directory& d = CurrentDir();
    Shard& s = *d.map[ShardIndex(key, salt_, d.map.size())];
    std::unique_lock lock(*s.mutex);
    // A split may have re-pointed this key's entry while we waited for the
    // lock (the split holds it throughout). Re-route if so.
    const Directory& now = CurrentDir();
    if (&now != &d &&
        now.map[ShardIndex(key, salt_, now.map.size())] != &s) {
      continue;
    }
    SeqLockWriteGuard seq(*s.seq);
    return s.filter->Insert(key);
  }
}

bool ShardedFilter::Erase(std::uint64_t key) {
  for (;;) {
    const Directory& d = CurrentDir();
    Shard& s = *d.map[ShardIndex(key, salt_, d.map.size())];
    std::unique_lock lock(*s.mutex);
    const Directory& now = CurrentDir();
    if (&now != &d &&
        now.map[ShardIndex(key, salt_, now.map.size())] != &s) {
      continue;
    }
    SeqLockWriteGuard seq(*s.seq);
    return s.filter->Erase(key);
  }
}

bool ShardedFilter::TryContainsOptimisticShard(const Shard& s,
                                               std::uint64_t key,
                                               bool* result) const noexcept {
  if (!s.optimistic_safe || !optimistic_reads()) return false;
  for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
    const std::uint64_t token = s.seq->ReadBegin();
    if ((token & 1) == 0) {
      const bool r = s.filter->Contains(key);
      if (s.seq->ReadValidate(token)) {
        *result = r;
        return true;
      }
    }
    ++seq_retries_;
    CpuRelax();
  }
  return false;
}

bool ShardedFilter::TryContainsOptimistic(std::size_t i, std::uint64_t key,
                                          bool* result) const noexcept {
  return TryContainsOptimisticShard(*CurrentDir().map[i], key, result);
}

bool ShardedFilter::TryContainsBatchOptimistic(
    std::size_t i, std::span<const std::uint64_t> keys,
    bool* results) const noexcept {
  const Shard& s = *CurrentDir().map[i];
  if (!s.optimistic_safe || !optimistic_reads()) return false;
  for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
    const std::uint64_t token = s.seq->ReadBegin();
    if ((token & 1) == 0) {
      s.filter->ContainsBatch(keys, results);
      if (s.seq->ReadValidate(token)) return true;
    }
    ++seq_retries_;
    CpuRelax();
  }
  return false;
}

bool ShardedFilter::Contains(std::uint64_t key) const {
  // Reads never re-route: a retired entry's shard keeps its fingerprints,
  // so a stale directory can only cost a false positive, never a false
  // negative — stale routing is linearizable for an AMQ.
  const Directory& d = CurrentDir();
  const Shard& s = *d.map[ShardIndex(key, salt_, d.map.size())];
  bool result = false;
  if (TryContainsOptimisticShard(s, key, &result)) return result;
  if (s.optimistic_safe && optimistic_reads()) ++seq_fallbacks_;
  std::shared_lock lock(*s.mutex);
  return s.filter->Contains(key);
}

// The batch partition is a hot path: the server runs it once per coalesced
// run. A counting sort into thread_local scratch replaces the former
// vector-of-vectors (~2 heap allocations per shard per call) with zero
// steady-state allocations; thread_local keeps the const ContainsBatch safe
// to call concurrently from many server workers. The whole partition works
// off ONE directory snapshot, so a concurrent split cannot skew groups.
void ShardedFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                  bool* results) const {
  const Directory& d = CurrentDir();
  const std::size_t n_shards = d.map.size();
  thread_local std::vector<std::uint32_t> shard_of;
  thread_local std::vector<std::uint32_t> offset, cursor, pos;
  thread_local std::vector<std::uint64_t> grouped;
  thread_local std::vector<std::uint8_t> tmp;  // bool results per shard run

  const std::size_t n = keys.size();
  shard_of.resize(n);
  offset.assign(n_shards + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = ShardIndex(keys[i], salt_, n_shards);
    shard_of[i] = static_cast<std::uint32_t>(s);
    ++offset[s + 1];
  }
  for (std::size_t s = 0; s < n_shards; ++s) offset[s + 1] += offset[s];
  cursor.assign(offset.begin(), offset.end() - 1);
  grouped.resize(n);
  pos.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t at = cursor[shard_of[i]]++;
    grouped[at] = keys[i];
    pos[at] = static_cast<std::uint32_t>(i);
  }
  tmp.resize(std::max<std::size_t>(n, 1));
  bool* tmp_bools = reinterpret_cast<bool*>(tmp.data());
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t lo = offset[s], hi = offset[s + 1];
    if (lo == hi) continue;
    const Shard& sh = *d.map[s];
    const std::span sub(grouped.data() + lo, hi - lo);
    // Lock-free first: the whole per-shard partition probes under one
    // sequence read/validate pair (the counting sort above already grouped
    // the keys, so validation is per shard, not per key).
    bool served = false;
    if (sh.optimistic_safe && optimistic_reads()) {
      for (int attempt = 0; attempt < kOptimisticRetries && !served;
           ++attempt) {
        const std::uint64_t token = sh.seq->ReadBegin();
        if ((token & 1) == 0) {
          sh.filter->ContainsBatch(sub, tmp_bools + lo);
          if (sh.seq->ReadValidate(token)) {
            served = true;
            break;
          }
        }
        ++seq_retries_;
        CpuRelax();
      }
      if (!served) ++seq_fallbacks_;
    }
    if (!served) {
      std::shared_lock lock(*sh.mutex);
      sh.filter->ContainsBatch(sub, tmp_bools + lo);
    }
  }
  for (std::size_t i = 0; i < n; ++i) results[pos[i]] = tmp_bools[i];
}

std::size_t ShardedFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                       bool* results) {
  const Directory& d = CurrentDir();
  const std::size_t n_shards = d.map.size();
  thread_local std::vector<std::uint32_t> shard_of;
  thread_local std::vector<std::uint32_t> offset, cursor, pos;
  thread_local std::vector<std::uint64_t> grouped;
  thread_local std::vector<std::uint8_t> tmp;

  const std::size_t n = keys.size();
  shard_of.resize(n);
  offset.assign(n_shards + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = ShardIndex(keys[i], salt_, n_shards);
    shard_of[i] = static_cast<std::uint32_t>(s);
    ++offset[s + 1];
  }
  for (std::size_t s = 0; s < n_shards; ++s) offset[s + 1] += offset[s];
  cursor.assign(offset.begin(), offset.end() - 1);
  grouped.resize(n);
  pos.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t at = cursor[shard_of[i]]++;
    grouped[at] = keys[i];
    pos[at] = static_cast<std::uint32_t>(i);
  }
  tmp.resize(std::max<std::size_t>(n, 1));
  bool* tmp_bools = reinterpret_cast<bool*>(tmp.data());
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t lo = offset[s], hi = offset[s + 1];
    if (lo == hi) continue;
    Shard& sh = *d.map[s];
    std::unique_lock lock(*sh.mutex);
    if (&CurrentDir() != &d) {
      // A split moved the topology under this batch; the group's routing
      // may be stale, so fall back to per-key inserts (which re-route).
      lock.unlock();
      for (std::size_t i = lo; i < hi; ++i) {
        const bool ok = Insert(grouped[i]);
        tmp_bools[i] = ok;
        accepted += ok ? 1 : 0;
      }
      continue;
    }
    {
      SeqLockWriteGuard seq(*sh.seq);
      accepted += sh.filter->InsertBatch(
          std::span(grouped.data() + lo, hi - lo), tmp_bools + lo);
    }
    lock.unlock();
  }
  if (results != nullptr) {
    for (std::size_t i = 0; i < n; ++i) results[pos[i]] = tmp_bools[i];
  }
  return accepted;
}

bool ShardedFilter::SupportsDeletion() const noexcept {
  const Directory& d = CurrentDir();
  return std::all_of(d.map.begin(), d.map.end(), [](const Shard* s) {
    return s->filter->SupportsDeletion();
  });
}

std::string ShardedFilter::Name() const {
  const Directory& d = CurrentDir();
  return "Sharded" + std::to_string(d.map.size()) + "(" +
         pool_.front().filter->Name() + ")";
}

std::size_t ShardedFilter::live_shard_count() const noexcept {
  return UniqueShards(CurrentDir()).size();
}

std::size_t ShardedFilter::ItemCount() const noexcept {
  // Distinct shards only: after a split both halves of an alias class point
  // at different objects, but a merged/retired object must not be counted
  // through multiple entries.
  std::size_t total = 0;
  for (const Shard* s : UniqueShards(CurrentDir())) {
    std::shared_lock lock(*s->mutex);
    total += s->filter->ItemCount();
  }
  return total;
}

std::size_t ShardedFilter::SlotCount() const noexcept {
  std::size_t total = 0;
  for (const Shard* s : UniqueShards(CurrentDir())) {
    std::shared_lock lock(*s->mutex);
    total += s->filter->SlotCount();
  }
  return total;
}

double ShardedFilter::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t ShardedFilter::MemoryBytes() const noexcept {
  std::size_t total = 0;
  for (const Shard* s : UniqueShards(CurrentDir())) {
    std::shared_lock lock(*s->mutex);
    total += s->filter->MemoryBytes();
  }
  return total;
}

void ShardedFilter::ForEachLeaf(const std::function<void(Filter&)>& fn) {
  // Visitation holds each shard's write lock (and bumps its sequence), so
  // the visitor may mutate the leaf it is handed — the admin RESIZE path
  // relies on this to start elastic growth inside live shards.
  for (Shard* s : UniqueShards(CurrentDir())) {
    std::unique_lock lock(*s->mutex);
    SeqLockWriteGuard seq(*s->seq);
    s->filter->ForEachLeaf(fn);
  }
}

void ShardedFilter::Clear() {
  std::lock_guard admin(admin_mutex_);
  ClearLocked();
}

void ShardedFilter::ClearLocked() {
  // Every pool object — mapped or retired — is emptied, and the directory
  // reverts to the construction topology.
  for (Shard& s : pool_) {
    std::unique_lock lock(*s.mutex);
    SeqLockWriteGuard seq(*s.seq);
    s.filter->Clear();
  }
  std::vector<Shard*> map;
  map.reserve(base_count_);
  for (std::size_t i = 0; i < base_count_; ++i) map.push_back(&pool_[i]);
  PublishDir(std::move(map));
}

// --- split / merge ---------------------------------------------------------

bool ShardedFilter::SplitShard(std::size_t entry, std::string* error) {
  std::lock_guard admin(admin_mutex_);
  const Directory& d = CurrentDir();
  if (entry >= d.map.size()) {
    SetError(error, "directory entry out of range");
    return false;
  }
  if (!builder_) {
    SetError(error, "no shard builder configured");
    return false;
  }
  Shard* target = d.map[entry];
  std::vector<Shard*> map = d.map;
  std::vector<std::size_t> cls = AliasClass(d, target);
  if (cls.size() == 1) {
    // Single-entry class: double the directory first. Doubling by
    // concatenation keeps `hash % size` routing compatible (see
    // ShardIndex), and turns the class into {entry, entry + old_size}.
    if (map.size() * 2 > kMaxDirectoryEntries) {
      SetError(error, "directory at its size cap");
      return false;
    }
    map.insert(map.end(), map.begin(), map.end());
    cls.push_back(cls[0] + d.map.size());
  }
  const std::size_t stride = cls.size() > 1 ? cls[1] - cls[0] : map.size();
  for (std::size_t t = 0; t < cls.size(); ++t) {
    if (cls[t] != cls[0] + t * stride) {
      SetError(error, "alias class is not a residue class (internal)");
      return false;
    }
  }

  // Clone under the parent's write lock, held through directory publish so
  // no mutation can slip between the copy and the re-pointing. Writers
  // blocked on this lock re-check the directory once they get it.
  std::unique_lock lock(*target->mutex);
  std::ostringstream blob;
  if (!target->filter->SaveState(blob)) {
    SetError(error, "inner filter does not support checkpointing");
    return false;
  }
  std::unique_ptr<Filter> clone_filter = builder_(target->family);
  if (!clone_filter) {
    SetError(error, "shard builder returned null");
    return false;
  }
  std::istringstream blob_in(blob.str());
  if (!clone_filter->LoadState(blob_in)) {
    SetError(error, "clone restore failed (builder/parent mismatch?)");
    return false;
  }
  Shard* clone = AppendShard(std::move(clone_filter), target->family);
  // Odd residues of the doubled stride route to the clone; evens stay.
  for (std::size_t t = 1; t < cls.size(); t += 2) map[cls[t]] = clone;
  PublishDir(std::move(map));
  ++splits_;
  return true;
}

bool ShardedFilter::MergeShards(std::size_t entry, std::string* error) {
  std::lock_guard admin(admin_mutex_);
  const Directory& d = CurrentDir();
  if (entry >= d.map.size()) {
    SetError(error, "directory entry out of range");
    return false;
  }
  if (!builder_) {
    SetError(error, "no shard builder configured");
    return false;
  }
  Shard* a = d.map[entry];
  const std::vector<std::size_t> cls_a = AliasClass(d, a);
  const std::size_t stride =
      cls_a.size() > 1 ? cls_a[1] - cls_a[0] : d.map.size();
  if (stride < 2 || stride % 2 != 0) {
    SetError(error, "shard has no sibling class to merge with");
    return false;
  }
  const std::size_t partner_entry = cls_a[0] ^ (stride / 2);
  Shard* b = d.map[partner_entry];
  if (b == a) {
    SetError(error, "entry and sibling already share one shard");
    return false;
  }
  const std::vector<std::size_t> cls_b = AliasClass(d, b);
  if (cls_b.size() != cls_a.size() || cls_b[0] != partner_entry ||
      (cls_b.size() > 1 && cls_b[1] - cls_b[0] != stride)) {
    SetError(error, "sibling class is split finer; merge it first");
    return false;
  }
  if (a->family != b->family) {
    // Different construction seeds: fingerprints are hash images of the
    // shard's own seed, so a cross-family union would manufacture false
    // negatives. Base shards are deliberately distinct families — the
    // directory never shrinks below the construction count.
    SetError(error, "sibling belongs to a different seed lineage");
    return false;
  }

  std::scoped_lock locks(*a->mutex, *b->mutex);
  std::ostringstream blob;
  if (!a->filter->SaveState(blob)) {
    SetError(error, "inner filter does not support checkpointing");
    return false;
  }
  std::unique_ptr<Filter> merged = builder_(a->family);
  if (!merged) {
    SetError(error, "shard builder returned null");
    return false;
  }
  if (merged->MigrationBuckets() == 0) {
    SetError(error, "inner filter lacks the entity-transport surface");
    return false;
  }
  std::istringstream blob_in(blob.str());
  if (!merged->LoadState(blob_in)) {
    SetError(error, "merge staging restore failed");
    return false;
  }
  // Union in b's fingerprints by canonical entity, deduplicating the copies
  // a past split left on both sides. Identical seeds (same family) make the
  // entities directly transferable — Theorem 1 re-derives the candidate
  // set in the merged table.
  bool fits = true;
  const bool enumerated =
      b->filter->ForEachFingerprint([&](std::uint64_t entity) {
        if (!fits || merged->ContainsEntity(entity)) return;
        if (!merged->InsertEntity(entity)) fits = false;
      });
  if (!enumerated) {
    SetError(error, "inner filter cannot enumerate fingerprints");
    return false;
  }
  if (!fits) {
    SetError(error, "union does not fit the merged shard");
    return false;
  }
  Shard* fresh = AppendShard(std::move(merged), a->family);
  std::vector<Shard*> map = d.map;
  for (const std::size_t e : cls_a) map[e] = fresh;
  for (const std::size_t e : cls_b) map[e] = fresh;
  // Halve the directory while its two halves alias completely (undoes the
  // doubling splits introduced; never below the construction count).
  while (map.size() % 2 == 0 && map.size() / 2 >= base_count_) {
    const std::size_t half = map.size() / 2;
    bool aliased = true;
    for (std::size_t i = 0; i < half && aliased; ++i) {
      aliased = map[i] == map[i + half];
    }
    if (!aliased) break;
    map.resize(half);
  }
  PublishDir(std::move(map));
  ++merges_;
  return true;
}

// --- checkpointing ---------------------------------------------------------

std::uint64_t ShardedFilter::LegacyDigest() const noexcept {
  return detail::ConfigDigest(salt_, static_cast<unsigned>(base_count_), 0, 0);
}

bool ShardedFilter::IdentityDirectory(const Directory& d) const noexcept {
  if (d.map.size() != base_count_) return false;
  for (std::size_t i = 0; i < base_count_; ++i) {
    if (d.map[i] != &pool_[i]) return false;
  }
  return true;
}

bool ShardedFilter::SaveState(std::ostream& out) const {
  std::lock_guard admin(admin_mutex_);
  const Directory& d = CurrentDir();
  if (!IdentityDirectory(d)) return SaveStateV2(out, d);
  // Construction topology: the legacy byte format, bit-identical to
  // pre-split builds (golden-blob compatibility).
  if (!detail::WriteStateHeader(out, Name(), LegacyDigest())) return false;
  for (std::size_t i = 0; i < d.map.size(); ++i) {
    std::string staged;
    if (!SaveShardState(i, &staged, /*locked=*/true)) return false;
    if (!detail::WriteFramedBlob(out, staged)) return false;
  }
  return true;
}

bool ShardedFilter::SaveStateV2(std::ostream& out, const Directory& d) const {
  // ShardedV2 body: u32 dir_size | u32 n_objects | dir_size x u32 ordinal
  // (first-appearance order) | n_objects x (u32 family + framed blob).
  const std::uint64_t digest =
      detail::ConfigDigest(salt_, static_cast<unsigned>(base_count_), 2, 0);
  const std::string name = "ShardedV2(" + pool_.front().filter->Name() + ")";
  if (!detail::WriteStateHeader(out, name, digest)) return false;
  std::vector<Shard*> objects;
  std::vector<std::uint32_t> ordinal_of(d.map.size());
  for (std::size_t i = 0; i < d.map.size(); ++i) {
    Shard* s = d.map[i];
    auto it = std::find(objects.begin(), objects.end(), s);
    if (it == objects.end()) {
      objects.push_back(s);
      it = objects.end() - 1;
    }
    ordinal_of[i] = static_cast<std::uint32_t>(it - objects.begin());
  }
  Put(out, static_cast<std::uint32_t>(d.map.size()));
  Put(out, static_cast<std::uint32_t>(objects.size()));
  for (const std::uint32_t o : ordinal_of) Put(out, o);
  if (!out) return false;
  for (const Shard* s : objects) {
    Put(out, s->family);
    std::ostringstream staged;
    bool ok;
    {
      std::shared_lock lock(*s->mutex);
      ok = s->filter->SaveState(staged);
    }
    if (!ok || !detail::WriteFramedBlob(out, staged.str())) return false;
  }
  return static_cast<bool>(out);
}

bool ShardedFilter::SaveShardState(std::size_t i, std::string* blob,
                                   bool locked) const {
  const Shard& s = *CurrentDir().map[i];
  std::ostringstream staged;
  bool ok;
  if (locked) {
    std::shared_lock lock(*s.mutex);
    ok = s.filter->SaveState(staged);
  } else {
    ok = s.filter->SaveState(staged);
  }
  if (!ok) return false;
  *blob = std::move(staged).str();
  return true;
}

bool ShardedFilter::SaveStateEnvelope(std::ostream& out,
                                      std::span<const std::string> blobs) const {
  const Directory& d = CurrentDir();
  if (blobs.size() != d.map.size() || !IdentityDirectory(d)) return false;
  if (!detail::WriteStateHeader(out, Name(), LegacyDigest())) return false;
  for (const std::string& blob : blobs) {
    if (!detail::WriteFramedBlob(out, blob)) return false;
  }
  return true;
}

ShardedFilter::ShardStats ShardedFilter::ShardStatsSnapshot(std::size_t i,
                                                            bool locked) const {
  const Shard& s = *CurrentDir().map[i];
  ShardStats st;
  if (locked) {
    std::shared_lock lock(*s.mutex);
    st.items = s.filter->ItemCount();
    st.slots = s.filter->SlotCount();
    st.memory = s.filter->MemoryBytes();
  } else {
    st.items = s.filter->ItemCount();
    st.slots = s.filter->SlotCount();
    st.memory = s.filter->MemoryBytes();
  }
  return st;
}

bool ShardedFilter::LoadState(std::istream& in) {
  std::lock_guard admin(admin_mutex_);
  const std::istream::pos_type start = in.tellg();
  if (LoadStateLegacy(in)) return true;
  if (in.bad()) return false;
  in.clear();
  in.seekg(start);
  if (!in) return false;
  return LoadStateV2(in);
}

bool ShardedFilter::LoadStateLegacy(std::istream& in) {
  const std::string name = "Sharded" + std::to_string(base_count_) + "(" +
                           pool_.front().filter->Name() + ")";
  if (!detail::ReadStateHeader(in, name, LegacyDigest())) return false;
  for (std::size_t i = 0; i < base_count_; ++i) {
    Shard& s = pool_[i];
    std::string blob;
    if (!detail::ReadFramedBlob(in, &blob, kMaxShardBlobBytes)) {
      ClearLocked();
      return false;
    }
    std::istringstream shard_in(blob);
    bool ok;
    {
      std::unique_lock lock(*s.mutex);
      SeqLockWriteGuard seq(*s.seq);
      ok = s.filter->LoadState(shard_in);
    }
    if (!ok) {
      ClearLocked();  // cannot roll back already-restored shards; see header
      return false;
    }
  }
  // A legacy blob describes the construction topology; restore it.
  std::vector<Shard*> map;
  map.reserve(base_count_);
  for (std::size_t i = 0; i < base_count_; ++i) map.push_back(&pool_[i]);
  PublishDir(std::move(map));
  return true;
}

bool ShardedFilter::LoadStateV2(std::istream& in) {
  if (!builder_) return false;
  const std::uint64_t digest =
      detail::ConfigDigest(salt_, static_cast<unsigned>(base_count_), 2, 0);
  const std::string name = "ShardedV2(" + pool_.front().filter->Name() + ")";
  if (!detail::ReadStateHeader(in, name, digest)) return false;
  std::uint32_t dir_size = 0, n_objects = 0;
  if (!Take(in, dir_size) || !Take(in, n_objects)) return false;
  if (dir_size == 0 || dir_size > kMaxDirectoryEntries ||
      dir_size % base_count_ != 0 || n_objects == 0 ||
      n_objects > dir_size) {
    return false;
  }
  const std::size_t ratio = dir_size / base_count_;
  if ((ratio & (ratio - 1)) != 0) return false;  // growth is pure doubling
  std::vector<std::uint32_t> ordinal_of(dir_size);
  std::uint32_t seen = 0;
  for (std::uint32_t i = 0; i < dir_size; ++i) {
    if (!Take(in, ordinal_of[i]) || ordinal_of[i] >= n_objects) return false;
    // Canonical first-appearance numbering: a new ordinal must be the next
    // unseen one, which also guarantees every object is referenced.
    if (ordinal_of[i] > seen) return false;
    if (ordinal_of[i] == seen) ++seen;
  }
  if (seen != n_objects) return false;
  // Restore into FRESH objects so a mid-stream failure never leaves a
  // half-written mapped shard; old objects retire with their content (safe
  // for readers holding the superseded directory).
  std::vector<Shard*> objects;
  objects.reserve(n_objects);
  for (std::uint32_t o = 0; o < n_objects; ++o) {
    std::uint32_t family = 0;
    std::string blob;
    if (!Take(in, family) ||
        !detail::ReadFramedBlob(in, &blob, kMaxShardBlobBytes)) {
      return false;
    }
    std::unique_ptr<Filter> filter = builder_(family);
    if (!filter) return false;
    std::istringstream blob_in(blob);
    if (!filter->LoadState(blob_in)) return false;
    objects.push_back(AppendShard(std::move(filter), family));
  }
  std::vector<Shard*> map(dir_size);
  for (std::uint32_t i = 0; i < dir_size; ++i) {
    map[i] = objects[ordinal_of[i]];
  }
  PublishDir(std::move(map));
  return true;
}

const OpCounters& ShardedFilter::counters() const noexcept {
  counters_.Reset();
  for (const Shard* s : UniqueShards(CurrentDir())) {
    counters_ += s->filter->counters();
  }
  // The optimistic read path's counters live on the wrapper (retries are a
  // property of the wrapper's protocol, not of any inner filter).
  counters_.seqlock_retries += seq_retries_.Value();
  counters_.seqlock_fallbacks += seq_fallbacks_.Value();
  return counters_;
}

void ShardedFilter::ResetCounters() noexcept {
  counters_.Reset();
  seq_retries_ = 0;
  seq_fallbacks_ = 0;
  for (Shard* s : UniqueShards(CurrentDir())) s->filter->ResetCounters();
}

}  // namespace vcf
