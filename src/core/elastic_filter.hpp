// Elastic capacity wrapper: incremental online resize with bounded work per
// mutation and zero false negatives while a migration is in flight.
//
// Raw geometry doubling cannot be fingerprint-compatible — a (bucket, fp)
// pair carries no information about the extra index bit a doubled table
// needs. What IS derivable from a stored slot alone is its canonical
// *entity* (Theorem 1 closure: candidate set from any member bucket, no
// original key), so the elastic filter grows by routing entities across a
// power-of-two directory of identically parameterised sub-filters:
//
//   level L  =>  2^L sub-filters, route(e) = Mix64(e ^ salt) & (2^L - 1)
//
// Growing from level L to L+1 appends 2^L freshly built subs; the existing
// subs stay in place as the LOW half of the new directory, so exactly the
// entities whose new route has bit L set (~half, by the mix) migrate to the
// corresponding high-half sub — the classic "extendible" split, done with
// stored fingerprints alone, no key re-ingest. Migration is incremental:
// each mutation walks at most `migrate_buckets_per_op` source buckets,
// moving every slot whose entity routes high via
//
//   InsertEntity(high sub)  ->  ClearSlot(low sub)      (copy THEN clear)
//
// so a reader racing the move sees the entity in at least one of the two
// probe sites — never in neither. Readers consult the high-half route
// first and, only while a migration is marked in flight, fall back to the
// paired low-half sub (the "dual read" the STATS trailer counts). A
// bounded atomic stash absorbs the rare entity whose high-half candidate
// buckets are all busy mid-eviction; the stash drains before the migration
// is declared complete, and a full stash simply pauses the cursor (bucket
// re-scan is idempotent — already-moved slots are empty).
//
// Concurrency contract: mutations (Insert/Erase/InsertBatch/Clear/
// LoadState, and the migration steps they drive) require external mutual
// exclusion, exactly like every other filter here — wrap in
// ConcurrentFilter/ShardedFilter or use vcfd's per-shard locks. Lookups
// are safe under those wrappers' optimistic seqlock read path when the
// sub-filters are: the directory is published copy-on-write behind one
// atomic pointer (superseded views are retired to a graveyard, never
// freed), sub-filters are owned append-only for the wrapper's lifetime,
// and the stash is a fixed atomic array — so a racing read is at worst
// torn, which sequence validation discards, never a use-after-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "core/filter.hpp"
#include "metrics/op_counters.hpp"

namespace vcf {

struct ElasticOptions {
  /// Aggregate load factor at which an insert triggers the next growth
  /// step (when auto_grow is on).
  double grow_watermark = 0.85;

  /// After a migration completes, the next growth trigger is max(watermark,
  /// load-at-completion + hysteresis) so a filter hovering at the watermark
  /// does not immediately re-trigger.
  double grow_hysteresis = 0.05;

  /// Source buckets migrated per mutating operation (per key for batches).
  /// This is the k of "bounded work per insert": larger finishes a resize
  /// sooner, smaller keeps the p99 insert stall lower. 2 finishes a step in
  /// ~1/(4 * watermark * 2) of the insert window before the next one is due.
  unsigned migrate_buckets_per_op = 2;

  /// Hard cap on growth: the directory never exceeds 2^max_levels subs
  /// (each growth step doubles aggregate slot capacity).
  unsigned max_levels = 10;

  /// Watermark-triggered growth on the insert path. Off means growth only
  /// happens through explicit BeginGrow() (the RESIZE admin opcode).
  bool auto_grow = true;

  /// Salt for the entity-route mix. Must match across checkpoints (it is
  /// part of the state-blob digest).
  std::uint64_t route_salt = 0xE1A571CULL;

  /// Fixed capacity of the migration stash (entities whose target bucket
  /// set was momentarily full). 0 is legal but makes a pathological resize
  /// pause until churn frees target slots.
  std::size_t stash_capacity = 64;
};

class ElasticFilter : public Filter {
 public:
  /// Builds one sub-filter. Every call MUST produce an identically
  /// parameterised filter (same geometry, hash, seed, variant) supporting
  /// the entity-transport surface (MigrationBuckets() > 0) — CF, VCF/IVCF
  /// and DVCF qualify. The builder is retained for later growth steps.
  using SubBuilder = std::function<std::unique_ptr<Filter>()>;

  ElasticFilter(SubBuilder builder, ElasticOptions options = {});
  ~ElasticFilter() override;

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override {
    return subs_[0]->SupportsDeletion();
  }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override;
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;

  /// Checkpoints the full directory plus, mid-migration, the exact cursor
  /// and stash, so LoadState resumes an interrupted resize precisely where
  /// it stopped (no restart, no re-scan).
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  bool ForEachFingerprint(
      const std::function<void(std::uint64_t)>& fn) const override;
  bool KeyEntity(std::uint64_t key, std::uint64_t* entity) const override {
    return subs_[0]->KeyEntity(key, entity);
  }

  /// COW directory + append-only sub ownership + fixed atomic stash: safe
  /// iff the sub-filters are (see the header comment).
  bool OptimisticReadSafe() const noexcept override {
    return optimistic_safe_;
  }

  const OpCounters& counters() const noexcept override;
  void ResetCounters() noexcept override;

  // --- Elastic surface (admin opcodes, auto-grow policy, STATS) -----------

  /// Starts the next growth step (doubling aggregate capacity). Returns
  /// false when a migration is already in flight or the level cap is hit.
  /// Requires the same external exclusion as any mutation. May throw
  /// std::bad_alloc building the new subs (state is unchanged then).
  bool BeginGrow();

  /// Runs up to `buckets` source-bucket migration steps outside the insert
  /// path (admin-driven draining). No-op when not migrating.
  void MigrateStep(std::size_t buckets);

  /// Current growth level (directory holds 2^level subs).
  unsigned Level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  /// True while an incremental migration is in flight.
  bool Migrating() const noexcept {
    return migrating_.load(std::memory_order_relaxed);
  }
  /// Completed growth steps over the filter's lifetime.
  std::uint64_t Resizes() const noexcept { return resizes_.Value(); }
  /// Lookups that had to consult the migration pair / stash (dual reads).
  std::uint64_t DualReads() const noexcept { return dual_reads_.Value(); }
  /// Source buckets not yet migrated in the current step (0 when idle).
  std::uint64_t MigrationBacklog() const noexcept;
  /// Entities currently parked in the migration stash.
  std::size_t MigrationStashSize() const noexcept {
    return stash_size_.load(std::memory_order_acquire);
  }

  void SetAutoGrow(bool on) noexcept { options_.auto_grow = on; }
  void SetGrowWatermark(double watermark) noexcept;
  void SetMigrateStep(unsigned buckets) noexcept {
    options_.migrate_buckets_per_op = buckets == 0 ? 1 : buckets;
  }

  const ElasticOptions& options() const noexcept { return options_; }

 private:
  /// One immutable published snapshot of the directory. Readers load the
  /// pointer once and work off the snapshot; superseded views retire to
  /// view_history_ (tiny — one per growth step) so a stalled reader's
  /// pointer stays valid for the wrapper's lifetime.
  struct View {
    std::vector<Filter*> subs;   // size is a power of two == 1 << level
    bool migrating = false;
  };

  std::size_t RouteIn(const View& v, std::uint64_t entity) const noexcept {
    return Mix64(entity ^ options_.route_salt) & (v.subs.size() - 1);
  }

  const View& CurrentView() const noexcept {
    return *view_.load(std::memory_order_acquire);
  }
  void PublishView(std::vector<Filter*> subs, bool migrating);

  bool InsertSlow(const View& v, std::uint64_t key);
  bool ContainsSlow(const View& v, std::uint64_t key) const;
  /// Migration work + watermark check shared by every mutating entry point.
  void PaceMigration(std::size_t ops);

  /// Migrates up to `budget` source buckets of the in-flight step.
  void MigrateBuckets(std::size_t budget);
  /// Moves every high-route entity out of one source bucket; false when the
  /// target and the stash were both full (the bucket must be re-scanned).
  bool MoveBucketEntities(const View& v, std::size_t sub, std::uint64_t bucket);
  /// Final straggler sweep + stash drain; when both come up clean,
  /// publishes the migration complete.
  void TryFinishMigration();
  void RecomputeGrowThreshold(double floor_load) noexcept;

  bool StashPush(std::uint64_t entity) noexcept;
  bool StashContains(std::uint64_t entity) const noexcept;
  bool StashErase(std::uint64_t entity) noexcept;

  /// Builds one fresh sub via the builder, validating it against subs_[0].
  std::unique_ptr<Filter> BuildSub() const;
  std::uint64_t Digest() const noexcept;

  SubBuilder builder_;
  ElasticOptions options_;
  std::string name_;
  bool optimistic_safe_ = false;
  std::uint64_t buckets_per_sub_ = 0;

  /// Append-only sub ownership: a sub is never destroyed or replaced until
  /// the wrapper dies (the optimistic-read lifetime contract). The ACTIVE
  /// subset is whatever the current View references — after a LoadState,
  /// superseded subs stay here as unreferenced graveyard entries.
  std::vector<std::unique_ptr<Filter>> subs_;

  std::atomic<const View*> view_{nullptr};
  std::vector<std::unique_ptr<const View>> view_history_;

  // Mutator-only migration cursor; atomic so STATS threads may sample it.
  std::atomic<unsigned> level_{0};
  std::atomic<bool> migrating_{false};
  std::atomic<std::uint64_t> mig_sub_{0};     // low-half source sub index
  std::atomic<std::uint64_t> mig_bucket_{0};  // next bucket within it
  /// A low-half insert since the last straggler sweep may have kicked an
  /// unmigrated entity behind the cursor; the close path must re-sweep.
  bool mig_sweep_needed_ = true;

  /// Fixed atomic migration stash (see ResilientFilter's stash for the
  /// reader-safety argument: slots relaxed, size published with release).
  std::unique_ptr<std::atomic<std::uint64_t>[]> stash_;
  std::atomic<std::uint32_t> stash_size_{0};

  /// Logical item count while level > 0 (mutations all pass through the
  /// wrapper there; at level 0 the single sub's count is authoritative).
  std::atomic<std::size_t> items_{0};

  /// Absolute item count that trips the next auto-grow (precomputed so the
  /// per-insert check is one load + compare).
  std::size_t grow_threshold_items_ = 0;

  RelaxedCounter resizes_;
  mutable RelaxedCounter dual_reads_;
  mutable OpCounters combined_;  // aggregation scratch for counters()
  /// Per-bucket (slot, entity) scratch for migration steps (mutations are
  /// externally serialized, so one buffer suffices).
  std::vector<std::pair<unsigned, std::uint64_t>> mig_scratch_;
};

}  // namespace vcf
