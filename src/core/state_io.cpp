#include "core/state_io.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "common/failpoint.hpp"
#include "common/random.hpp"
#include "table/serialization.hpp"

namespace vcf::detail {

namespace {

constexpr char kMagic[4] = {'V', 'C', 'F', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Take(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

std::uint64_t BytesChecksum(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xC0FFEE5EEDULL;
  std::size_t i = 0;
  while (i + 8 <= bytes.size()) {
    std::uint64_t w;
    std::memcpy(&w, bytes.data() + i, 8);
    h = Mix64(h ^ w);
    i += 8;
  }
  std::uint64_t tail = 0;
  if (i < bytes.size()) {
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h = Mix64(h ^ tail);
  }
  return Mix64(h ^ bytes.size());
}

}  // namespace

bool WriteStateHeader(std::ostream& out, std::string_view name,
                      std::uint64_t config_digest) {
  // Failure seam: an injected fault presents as a stream write error, the
  // shape a full disk or a dropped pipe produces mid-checkpoint.
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kStateWrite)) {
    out.setstate(std::ios::failbit);
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  Put(out, kVersion);
  Put(out, static_cast<std::uint16_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  Put(out, config_digest);
  return static_cast<bool>(out);
}

bool ReadStateHeader(std::istream& in, std::string_view name,
                     std::uint64_t config_digest) {
  // Failure seam: an injected fault presents as a stream read error.
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kStateRead)) {
    in.setstate(std::ios::failbit);
    return false;
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint32_t version = 0;
  std::uint16_t name_len = 0;
  if (!Take(in, version) || version != kVersion) return false;
  if (!Take(in, name_len) || name_len != name.size()) return false;
  std::string stored(name_len, '\0');
  in.read(stored.data(), name_len);
  if (!in || stored != name) return false;
  std::uint64_t digest = 0;
  return Take(in, digest) && digest == config_digest;
}

bool SaveTablePayload(std::ostream& out, const PackedTable& table) {
  return TableCodec::Save(table, out);
}

bool LoadTablePayload(std::istream& in, PackedTable* expected) {
  auto loaded = TableCodec::Load(in);
  if (!loaded.has_value() ||
      loaded->bucket_count() != expected->bucket_count() ||
      loaded->slots_per_bucket() != expected->slots_per_bucket() ||
      loaded->slot_bits() != expected->slot_bits()) {
    return false;
  }
  // TableCodec payloads are canonical packed-layout bytes, so checkpoints
  // are layout-portable: a blob written by an aligned-layout filter restores
  // into a packed one and vice versa (AdoptContents re-spreads slot-wise
  // when the strides differ). Copying IN PLACE — instead of move-assigning
  // the staged table — keeps the destination's layout, page backing, and
  // buffer address intact, which the optimistic read path depends on:
  // a concurrent seqlock reader may still hold a pointer into the old
  // buffer, so the restore must never free it mid-life (the wrapper bumps
  // the shard's sequence around this call, invalidating any reads that
  // overlapped the copy).
  expected->AdoptContents(*loaded);
  return true;
}

bool SaveBytesPayload(std::ostream& out, const std::vector<std::uint8_t>& bytes,
                      std::uint64_t items) {
  Put(out, items);
  Put(out, static_cast<std::uint64_t>(bytes.size()));
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  Put(out, BytesChecksum(bytes));
  return static_cast<bool>(out);
}

bool LoadBytesPayload(std::istream& in, std::vector<std::uint8_t>* bytes,
                      std::uint64_t* items) {
  std::uint64_t count = 0;
  std::uint64_t size = 0;
  if (!Take(in, count) || !Take(in, size) || size != bytes->size()) {
    return false;
  }
  std::vector<std::uint8_t> staged(bytes->size());
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size()));
  std::uint64_t checksum = 0;
  if (!in || !Take(in, checksum) || checksum != BytesChecksum(staged)) {
    return false;
  }
  *bytes = std::move(staged);
  *items = count;
  return true;
}

bool SaveFilterState(std::ostream& out, std::string_view name,
                     std::uint64_t config_digest, const PackedTable& table) {
  return WriteStateHeader(out, name, config_digest) &&
         SaveTablePayload(out, table);
}

bool LoadFilterState(std::istream& in, std::string_view name,
                     std::uint64_t config_digest, PackedTable* table) {
  return ReadStateHeader(in, name, config_digest) &&
         LoadTablePayload(in, table);
}

bool WriteFramedBlob(std::ostream& out, std::string_view blob) {
  const std::uint64_t len = blob.size();
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

bool ReadFramedBlob(std::istream& in, std::string* blob,
                    std::uint64_t max_bytes) {
  std::uint64_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > max_bytes) return false;
  std::string staged(static_cast<std::size_t>(len), '\0');
  in.read(staged.data(), static_cast<std::streamsize>(staged.size()));
  if (!in) return false;
  *blob = std::move(staged);
  return true;
}

std::uint64_t ConfigDigest(std::uint64_t seed, unsigned hash_kind,
                           unsigned variant, unsigned extra) {
  return Mix64(Mix64(seed) ^ Mix64(hash_kind * 0x9E01ULL) ^
               Mix64(variant * 0xA5A5ULL) ^ Mix64(extra * 0x5A5AULL));
}

}  // namespace vcf::detail
