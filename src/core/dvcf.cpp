#include "core/dvcf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

DifferentiatedVcf::DifferentiatedVcf(const CuckooParams& params,
                                     std::uint64_t delta_t)
    : params_(params),
      hasher_(VerticalHasher::Balanced(params.index_bits(),
                                       params.fingerprint_bits)),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits, params.layout, params.pages),
      delta_t_(delta_t),
      rng_(params.seed ^ 0xD7CF104C0FFEEULL),
      name_("DVCF") {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("DVCF: unsupported table geometry");
  }
  const std::uint64_t half = std::uint64_t{1} << (params.fingerprint_bits - 1);
  if (delta_t_ > half) {
    throw std::invalid_argument("DVCF: delta_t must be <= 2^(f-1)");
  }
  interval_lo_ = half - delta_t_;
  interval_hi_ = half + delta_t_;  // half-open [lo, hi)
}

DifferentiatedVcf DifferentiatedVcf::ForEighths(const CuckooParams& params,
                                                unsigned j) {
  if (j > 8) throw std::invalid_argument("DVCF: j must be in [0, 8]");
  // 2*delta_t = j * 2^f / 8  =>  delta_t = j * 2^(f-4).
  const std::uint64_t delta =
      static_cast<std::uint64_t>(j)
      << (params.fingerprint_bits >= 4 ? params.fingerprint_bits - 4 : 0);
  DifferentiatedVcf filter(params, delta);
  filter.name_ = "DVCF_" + std::to_string(j);
  return filter;
}

double DifferentiatedVcf::TheoreticalR() const noexcept {
  return static_cast<double>(2 * delta_t_) /
         std::exp2(static_cast<double>(params_.fingerprint_bits));
}

bool DifferentiatedVcf::TryPlaceDirect(const Hashed& h) noexcept {
  counters_.bucket_probes += h.n_cand;
  for (unsigned c = 0; c < h.n_cand; ++c) {
    if (table_.InsertValue(h.cand[c], h.fp)) {
      ++items_;
      return true;
    }
  }
  return false;
}

bool DifferentiatedVcf::RelocateVictim(WalkState& walk) {
  // Algorithm 4 lines 13-28: each victim is re-judged before its alternates
  // are derived; 2-way victims march deterministically (no RNG draw).
  const std::uint64_t fh = FingerprintHash(walk.fp);
  if (FourWay(walk.fp)) {
    const auto alts = hasher_.Alternates(walk.bucket, fh);
    counters_.bucket_probes += 3;
    for (std::uint64_t z : alts) {
      if (table_.InsertValue(z, walk.fp)) {
        ++items_;
        return true;
      }
    }
    walk.bucket = alts[rng_.Below(3)];
  } else {
    const std::uint64_t alt = (walk.bucket ^ fh) & hasher_.index_mask();
    ++counters_.bucket_probes;
    if (table_.InsertValue(alt, walk.fp)) {
      ++items_;
      return true;
    }
    walk.bucket = alt;
  }
  return false;
}

bool DifferentiatedVcf::Insert(std::uint64_t key) {
  return kernel::InsertOne(*this, key);
}

bool DifferentiatedVcf::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void DifferentiatedVcf::ContainsBatch(std::span<const std::uint64_t> keys,
                                      bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t DifferentiatedVcf::InsertBatch(std::span<const std::uint64_t> keys,
                                           bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool DifferentiatedVcf::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  // Algorithm 6.
  if (FourWay(fp)) {
    const Candidates4 cand = hasher_.Candidates(b1, fh);
    counters_.bucket_probes += 4;
    for (std::uint64_t c : cand.bucket) {
      if (table_.EraseValue(c, fp)) {
        --items_;
        return true;
      }
    }
  } else {
    counters_.bucket_probes += 2;
    if (table_.EraseValue(b1, fp)) {
      --items_;
      return true;
    }
    if (table_.EraseValue((b1 ^ fh) & hasher_.index_mask(), fp)) {
      --items_;
      return true;
    }
  }
  return false;
}

void DifferentiatedVcf::Clear() {
  table_.Clear();
  items_ = 0;
}

bool DifferentiatedVcf::ForEachFingerprint(
    const std::function<void(std::uint64_t)>& fn) const {
  ForEachOccupiedSlot([&](std::uint64_t bucket, std::uint64_t fp) {
    fn(SlotEntity(bucket, fp));
  });
  return true;
}

bool DifferentiatedVcf::ForEachEntityInBucket(
    std::uint64_t bucket,
    const std::function<void(unsigned, std::uint64_t)>& fn) const {
  if (bucket >= params_.bucket_count) return false;
  for (unsigned s = 0; s < params_.slots_per_bucket; ++s) {
    const std::uint64_t fp = table_.Get(bucket, s);
    if (fp != 0) fn(s, SlotEntity(bucket, fp));
  }
  return true;
}

bool DifferentiatedVcf::InsertEntity(std::uint64_t entity) {
  Hashed h;
  if (!EntityHashed(entity, &h)) return false;
  if (TryPlaceDirect(h)) return true;
  return kernel::EvictInsert(*this, h);
}

bool DifferentiatedVcf::ContainsEntity(std::uint64_t entity) const {
  Hashed h;
  if (!EntityHashed(entity, &h)) return false;
  return ProbeCandidates(h);
}

bool DifferentiatedVcf::EraseEntity(std::uint64_t entity) {
  Hashed h;
  if (!EntityHashed(entity, &h)) return false;
  counters_.bucket_probes += h.n_cand;
  for (unsigned c = 0; c < h.n_cand; ++c) {
    if (table_.EraseValue(h.cand[c], h.fp)) {
      --items_;
      return true;
    }
  }
  return false;
}

bool DifferentiatedVcf::ClearSlot(std::uint64_t bucket, unsigned slot) {
  if (bucket >= params_.bucket_count || slot >= params_.slots_per_bucket) {
    return false;
  }
  if (table_.Get(bucket, slot) == 0) return false;
  table_.Set(bucket, slot, 0);
  --items_;
  return true;
}

bool DifferentiatedVcf::KeyEntity(std::uint64_t key,
                                  std::uint64_t* entity) const {
  const Hashed h = HashKey(key);
  std::uint64_t canon = h.cand[0];
  for (unsigned c = 1; c < h.n_cand; ++c) canon = std::min(canon, h.cand[c]);
  *entity = (canon << params_.fingerprint_bits) | h.fp;
  return true;
}

std::uint64_t DifferentiatedVcf::Digest() const noexcept {
  return detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                              static_cast<unsigned>(delta_t_),
                              params_.fingerprint_bits);
}

bool DifferentiatedVcf::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool DifferentiatedVcf::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
