#include "core/dvcf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/failpoint.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;
}

DifferentiatedVcf::DifferentiatedVcf(const CuckooParams& params,
                                     std::uint64_t delta_t)
    : params_(params),
      hasher_(VerticalHasher::Balanced(params.index_bits(),
                                       params.fingerprint_bits)),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits, params.layout),
      delta_t_(delta_t),
      rng_(params.seed ^ 0xD7CF104C0FFEEULL),
      name_("DVCF") {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("DVCF: unsupported table geometry");
  }
  const std::uint64_t half = std::uint64_t{1} << (params.fingerprint_bits - 1);
  if (delta_t_ > half) {
    throw std::invalid_argument("DVCF: delta_t must be <= 2^(f-1)");
  }
  interval_lo_ = half - delta_t_;
  interval_hi_ = half + delta_t_;  // half-open [lo, hi)
}

DifferentiatedVcf DifferentiatedVcf::ForEighths(const CuckooParams& params,
                                                unsigned j) {
  if (j > 8) throw std::invalid_argument("DVCF: j must be in [0, 8]");
  // 2*delta_t = j * 2^f / 8  =>  delta_t = j * 2^(f-4).
  const std::uint64_t delta =
      static_cast<std::uint64_t>(j)
      << (params.fingerprint_bits >= 4 ? params.fingerprint_bits - 4 : 0);
  DifferentiatedVcf filter(params, delta);
  filter.name_ = "DVCF_" + std::to_string(j);
  return filter;
}

double DifferentiatedVcf::TheoreticalR() const noexcept {
  return static_cast<double>(2 * delta_t_) /
         std::exp2(static_cast<double>(params_.fingerprint_bits));
}

std::uint64_t DifferentiatedVcf::Fingerprint(std::uint64_t key,
                                             std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & hasher_.index_mask();
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t DifferentiatedVcf::FingerprintHash(std::uint64_t fp) const noexcept {
  // f-bit hash(eta), as in the VCF (see vcf.cpp).
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits);
}

unsigned DifferentiatedVcf::CandidateSet(std::uint64_t b1, std::uint64_t fp,
                                         std::uint64_t fh,
                                         std::uint64_t out[4]) const noexcept {
  // Algorithm 4 lines 3-12: candidate set depends on the interval judgment.
  if (FourWay(fp)) {
    const Candidates4 cand = hasher_.Candidates(b1, fh);
    std::copy(cand.bucket.begin(), cand.bucket.end(), out);
    return 4;
  }
  out[0] = b1;
  out[1] = (b1 ^ fh) & hasher_.index_mask();
  return 2;
}

bool DifferentiatedVcf::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);

  std::uint64_t first_candidates[4];
  const unsigned n_cand = CandidateSet(b1, fp, fh, first_candidates);
  counters_.bucket_probes += n_cand;
  for (unsigned i = 0; i < n_cand; ++i) {
    if (table_.InsertValue(first_candidates[i], fp)) {
      ++items_;
      return true;
    }
  }
  return InsertEvict(fp, first_candidates, n_cand);
}

bool DifferentiatedVcf::InsertEvict(std::uint64_t fp,
                                    const std::uint64_t first_candidates[4],
                                    unsigned n_cand) {
  // Failure seam: injected eviction-chain exhaustion (see vcf.cpp).
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kEvictionExhausted)) {
    ++counters_.insert_failures;
    return false;
  }

  // Algorithm 4 lines 13-28: eviction walk; each victim is re-judged before
  // its alternates are derived. Swaps are recorded for rollback on failure.
  struct Step {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t displaced;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  std::uint64_t cur = first_candidates[rng_.Below(n_cand)];
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    const unsigned slot =
        static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
    const std::uint64_t victim = table_.Get(cur, slot);
    table_.Set(cur, slot, fp);
    path.push_back({cur, slot, victim});
    fp = victim;
    ++counters_.evictions;

    const std::uint64_t fh = FingerprintHash(fp);
    if (FourWay(fp)) {
      const auto alts = hasher_.Alternates(cur, fh);
      counters_.bucket_probes += 3;
      bool placed = false;
      for (std::uint64_t z : alts) {
        if (table_.InsertValue(z, fp)) {
          placed = true;
          break;
        }
      }
      if (placed) {
        ++items_;
        return true;
      }
      cur = alts[rng_.Below(3)];
    } else {
      const std::uint64_t alt = (cur ^ fh) & hasher_.index_mask();
      ++counters_.bucket_probes;
      if (table_.InsertValue(alt, fp)) {
        ++items_;
        return true;
      }
      cur = alt;
    }
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    table_.Set(it->bucket, it->slot, it->displaced);
  }
  ++counters_.insert_failures;
  return false;
}

bool DifferentiatedVcf::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  // Algorithm 5: interval judgment selects the candidate set; the whole set
  // streams through one fused probe.
  std::uint64_t cand[4];
  const unsigned n_cand = CandidateSet(b1, fp, fh, cand);
  counters_.bucket_probes += n_cand;
  return table_.ContainsValueAny(cand, n_cand, fp);
}

void DifferentiatedVcf::ContainsBatch(std::span<const std::uint64_t> keys,
                                      bool* results) const {
  constexpr std::size_t kWindow = 16;
  struct Probe {
    std::uint64_t cand[4];
    std::uint64_t fp;
    unsigned n_cand;
  };
  Probe window[kWindow];

  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.lookups;
      std::uint64_t b1;
      window[i].fp = Fingerprint(keys[done + i], &b1);
      window[i].n_cand = CandidateSet(b1, window[i].fp,
                                      FingerprintHash(window[i].fp),
                                      window[i].cand);
      for (unsigned c = 0; c < window[i].n_cand; ++c) {
        table_.PrefetchBucket(window[i].cand[c]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += window[i].n_cand;
      results[done + i] = table_.ContainsValueAny(
          window[i].cand, window[i].n_cand, window[i].fp);
    }
    done += n;
  }
}

std::size_t DifferentiatedVcf::InsertBatch(std::span<const std::uint64_t> keys,
                                           bool* results) {
  constexpr std::size_t kWindow = 16;
  struct Pending {
    std::uint64_t cand[4];
    std::uint64_t fp;
    unsigned n_cand;
  };
  Pending window[kWindow];

  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.inserts;
      std::uint64_t b1;
      window[i].fp = Fingerprint(keys[done + i], &b1);
      window[i].n_cand = CandidateSet(b1, window[i].fp,
                                      FingerprintHash(window[i].fp),
                                      window[i].cand);
      for (unsigned c = 0; c < window[i].n_cand; ++c) {
        table_.PrefetchBucket(window[i].cand[c]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += window[i].n_cand;
      bool ok = false;
      for (unsigned c = 0; c < window[i].n_cand; ++c) {
        if (table_.InsertValue(window[i].cand[c], window[i].fp)) {
          ++items_;
          ok = true;
          break;
        }
      }
      if (!ok) ok = InsertEvict(window[i].fp, window[i].cand, window[i].n_cand);
      accepted += ok ? 1 : 0;
      if (results != nullptr) results[done + i] = ok;
    }
    done += n;
  }
  return accepted;
}

bool DifferentiatedVcf::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  // Algorithm 6.
  if (FourWay(fp)) {
    const Candidates4 cand = hasher_.Candidates(b1, fh);
    counters_.bucket_probes += 4;
    for (std::uint64_t c : cand.bucket) {
      if (table_.EraseValue(c, fp)) {
        --items_;
        return true;
      }
    }
  } else {
    counters_.bucket_probes += 2;
    if (table_.EraseValue(b1, fp)) {
      --items_;
      return true;
    }
    if (table_.EraseValue((b1 ^ fh) & hasher_.index_mask(), fp)) {
      --items_;
      return true;
    }
  }
  return false;
}

void DifferentiatedVcf::Clear() {
  table_.Clear();
  items_ = 0;
}

bool DifferentiatedVcf::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      static_cast<unsigned>(delta_t_), params_.fingerprint_bits);
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveTablePayload(out, table_);
}

bool DifferentiatedVcf::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      static_cast<unsigned>(delta_t_), params_.fingerprint_bits);
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &table_)) {
    return false;
  }
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
