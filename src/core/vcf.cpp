#include "core/vcf.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/failpoint.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
/// Seed perturbation separating the fingerprint hash from the key hash.
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

void ValidateParams(const CuckooParams& p) {
  if (!IsPowerOfTwo(p.bucket_count)) {
    throw std::invalid_argument("VCF: bucket_count must be a power of two");
  }
  if (p.index_bits() > 32) {
    throw std::invalid_argument("VCF: at most 2^32 buckets are supported");
  }
  if (p.fingerprint_bits == 0 || p.fingerprint_bits > 25) {
    throw std::invalid_argument("VCF: fingerprint_bits must be in [1, 25]");
  }
  if (p.slots_per_bucket == 0) {
    throw std::invalid_argument("VCF: slots_per_bucket must be >= 1");
  }
}
}  // namespace

VerticalCuckooFilter::VerticalCuckooFilter(const CuckooParams& params)
    : VerticalCuckooFilter(params,
                           VerticalHasher::Balanced(params.index_bits(),
                                                    params.fingerprint_bits),
                           "VCF") {}

VerticalCuckooFilter::VerticalCuckooFilter(const CuckooParams& params,
                                           unsigned mask_ones)
    : VerticalCuckooFilter(params,
                           VerticalHasher::WithOnes(params.index_bits(),
                                                    params.fingerprint_bits,
                                                    mask_ones),
                           "IVCF_" + std::to_string(mask_ones)) {}

VerticalCuckooFilter::VerticalCuckooFilter(const CuckooParams& params,
                                           const VerticalHasher& hasher,
                                           std::string name)
    : params_(params),
      hasher_(hasher),
      table_((ValidateParams(params), params.bucket_count), params.slots_per_bucket,
             params.fingerprint_bits, params.layout),
      rng_(params.seed ^ 0xE71C7104C0FFEEULL),
      name_(std::move(name)) {}

std::uint64_t VerticalCuckooFilter::Fingerprint(std::uint64_t key,
                                                std::uint64_t* bucket1) const noexcept {
  // One hash computation yields both the primary bucket (low bits) and the
  // fingerprint (bits 32+), matching the reference CF derivation so that the
  // CF/DCF/VCF comparison charges identical hashing work per operation.
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & hasher_.index_mask();
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;  // 0 is the empty-slot sentinel
}

std::uint64_t VerticalCuckooFilter::FingerprintHash(std::uint64_t fp) const noexcept {
  // hash(eta) is truncated to the hasher's offset width — f bits for the
  // paper-faithful configuration (Fig. 1), so candidate offsets span the low
  // f bits of the index space. This is what makes the load factor depend on
  // the fingerprint length (Fig. 4). A custom hasher (ablation) may widen it.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         hasher_.offset_mask();
}

bool VerticalCuckooFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);

  // Algorithm 1 lines 3-9: try all four candidates directly.
  const Candidates4 cand = hasher_.Candidates(b1, fh);
  counters_.bucket_probes += 4;
  for (std::uint64_t c : cand.bucket) {
    if (table_.InsertValue(c, fp)) {
      ++items_;
      return true;
    }
  }
  return InsertEvict(fp, cand);
}

bool VerticalCuckooFilter::InsertEvict(std::uint64_t fp,
                                       const Candidates4& cand) {
  // Failure seam: fault injection treats the eviction chain as exhausted
  // before it starts — the same observable outcome (rolled-back false) a
  // saturated table produces, forced on demand.
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kEvictionExhausted)) {
    ++counters_.insert_failures;
    return false;
  }

  // Algorithm 1 lines 11-21: evict along a random walk. Every swap is
  // recorded so a failed chain can be rolled back (atomic insert).
  struct Step {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t displaced;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  std::uint64_t cur = cand.bucket[rng_.Below(4)];
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    const unsigned slot =
        static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
    const std::uint64_t victim = table_.Get(cur, slot);
    table_.Set(cur, slot, fp);
    path.push_back({cur, slot, victim});
    fp = victim;
    ++counters_.evictions;

    // Theorem 1: the victim's other candidates follow from its current
    // bucket and fingerprint alone — no access to the original item.
    const std::uint64_t fh = FingerprintHash(fp);
    const auto alts = hasher_.Alternates(cur, fh);
    counters_.bucket_probes += 3;
    for (std::uint64_t z : alts) {
      if (table_.InsertValue(z, fp)) {
        ++items_;
        return true;
      }
    }
    cur = alts[rng_.Below(3)];
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    table_.Set(it->bucket, it->slot, it->displaced);
  }
  ++counters_.insert_failures;
  return false;
}

bool VerticalCuckooFilter::InsertDirect(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const Candidates4 cand = hasher_.Candidates(b1, fh);
  counters_.bucket_probes += 4;
  for (std::uint64_t c : cand.bucket) {
    if (table_.InsertValue(c, fp)) {
      ++items_;
      return true;
    }
  }
  ++counters_.insert_failures;
  return false;
}

bool VerticalCuckooFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const Candidates4 cand = hasher_.Candidates(b1, fh);
  // Algorithm 2 probes all four candidates (possibly duplicated buckets when
  // the item degenerated to two candidates). The fused probe streams all
  // four through one kernel instead of sequential early-exit probes.
  counters_.bucket_probes += 4;
  return table_.ContainsValueAny(cand.bucket.data(), cand.bucket.size(), fp);
}

void VerticalCuckooFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                         bool* results) const {
  // Two-phase pipeline over fixed windows: phase 1 computes fingerprints
  // and candidates and issues prefetches; phase 2 probes. The window is
  // sized so all in-flight lines fit the L1 miss queue.
  constexpr std::size_t kWindow = 16;
  struct Probe {
    Candidates4 cand;
    std::uint64_t fp;
  };
  Probe window[kWindow];

  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.lookups;
      std::uint64_t b1;
      window[i].fp = Fingerprint(keys[done + i], &b1);
      window[i].cand = hasher_.Candidates(b1, FingerprintHash(window[i].fp));
      counters_.bucket_probes += 4;
      for (std::uint64_t c : window[i].cand.bucket) {
        table_.PrefetchBucket(c);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      results[done + i] = table_.ContainsValueAny(
          window[i].cand.bucket.data(), window[i].cand.bucket.size(),
          window[i].fp);
    }
    done += n;
  }
}

std::size_t VerticalCuckooFilter::InsertBatch(
    std::span<const std::uint64_t> keys, bool* results) {
  // Same two-phase window pipeline as ContainsBatch. Phase 2 runs in key
  // order and candidate derivation never depends on table contents, so the
  // outcome is identical to sequential Insert calls — inserts within the
  // window only consume slots, they never move a later key's candidates.
  constexpr std::size_t kWindow = 16;
  struct Pending {
    Candidates4 cand;
    std::uint64_t fp;
  };
  Pending window[kWindow];

  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.inserts;
      std::uint64_t b1;
      window[i].fp = Fingerprint(keys[done + i], &b1);
      window[i].cand = hasher_.Candidates(b1, FingerprintHash(window[i].fp));
      for (std::uint64_t c : window[i].cand.bucket) {
        table_.PrefetchBucket(c);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += 4;
      bool ok = false;
      for (std::uint64_t c : window[i].cand.bucket) {
        if (table_.InsertValue(c, window[i].fp)) {
          ++items_;
          ok = true;
          break;
        }
      }
      if (!ok) ok = InsertEvict(window[i].fp, window[i].cand);
      accepted += ok ? 1 : 0;
      if (results != nullptr) results[done + i] = ok;
    }
    done += n;
  }
  return accepted;
}

bool VerticalCuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const Candidates4 cand = hasher_.Candidates(b1, fh);
  counters_.bucket_probes += 4;
  for (std::uint64_t c : cand.bucket) {
    if (table_.EraseValue(c, fp)) {
      --items_;
      return true;
    }
  }
  return false;
}

void VerticalCuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool VerticalCuckooFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      static_cast<unsigned>(hasher_.bm1()), params_.fingerprint_bits);
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveTablePayload(out, table_);
}

bool VerticalCuckooFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      static_cast<unsigned>(hasher_.bm1()), params_.fingerprint_bits);
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &table_)) {
    return false;
  }
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
