#include "core/vcf.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
void ValidateParams(const CuckooParams& p) {
  if (!IsPowerOfTwo(p.bucket_count)) {
    throw std::invalid_argument("VCF: bucket_count must be a power of two");
  }
  if (p.index_bits() > 32) {
    throw std::invalid_argument("VCF: at most 2^32 buckets are supported");
  }
  if (p.fingerprint_bits == 0 || p.fingerprint_bits > 25) {
    throw std::invalid_argument("VCF: fingerprint_bits must be in [1, 25]");
  }
  if (p.slots_per_bucket == 0) {
    throw std::invalid_argument("VCF: slots_per_bucket must be >= 1");
  }
}
}  // namespace

VerticalCuckooFilter::VerticalCuckooFilter(const CuckooParams& params)
    : VerticalCuckooFilter(params,
                           VerticalHasher::Balanced(params.index_bits(),
                                                    params.fingerprint_bits),
                           "VCF") {}

VerticalCuckooFilter::VerticalCuckooFilter(const CuckooParams& params,
                                           unsigned mask_ones)
    : VerticalCuckooFilter(params,
                           VerticalHasher::WithOnes(params.index_bits(),
                                                    params.fingerprint_bits,
                                                    mask_ones),
                           "IVCF_" + std::to_string(mask_ones)) {}

VerticalCuckooFilter::VerticalCuckooFilter(const CuckooParams& params,
                                           const VerticalHasher& hasher,
                                           std::string name)
    : params_(params),
      hasher_(hasher),
      table_((ValidateParams(params), params.bucket_count), params.slots_per_bucket,
             params.fingerprint_bits, params.layout, params.pages),
      rng_(params.seed ^ 0xE71C7104C0FFEEULL),
      name_(std::move(name)) {}

void VerticalCuckooFilter::PrefetchCandidates(const Hashed& h) const noexcept {
  for (std::uint64_t c : h.cand.bucket) table_.PrefetchBucket(c);
}

bool VerticalCuckooFilter::TryPlaceDirect(const Hashed& h) noexcept {
  // Algorithm 1 lines 3-9: try all four candidates directly.
  counters_.bucket_probes += 4;
  for (std::uint64_t c : h.cand.bucket) {
    if (table_.InsertValue(c, h.fp)) {
      ++items_;
      return true;
    }
  }
  return false;
}

bool VerticalCuckooFilter::ProbeCandidates(const Hashed& h) const noexcept {
  // Algorithm 2 probes all four candidates (possibly duplicated buckets when
  // the item degenerated to two candidates). The fused probe streams all
  // four through one kernel instead of sequential early-exit probes.
  counters_.bucket_probes += 4;
  return table_.ContainsValueAny(h.cand.bucket.data(), h.cand.bucket.size(),
                                 h.fp);
}

VerticalCuckooFilter::WalkState VerticalCuckooFilter::StartWalk(
    const Hashed& h) {
  return {h.cand.bucket[rng_.Below(4)], h.fp};
}

bool VerticalCuckooFilter::RelocateVictim(WalkState& walk) {
  // Theorem 1: the victim's other candidates follow from its current bucket
  // and fingerprint alone — no access to the original item.
  const std::uint64_t fh = FingerprintHash(walk.fp);
  const auto alts = hasher_.Alternates(walk.bucket, fh);
  counters_.bucket_probes += 3;
  for (std::uint64_t z : alts) {
    if (table_.InsertValue(z, walk.fp)) {
      ++items_;
      return true;
    }
  }
  walk.bucket = alts[rng_.Below(3)];
  return false;
}

void VerticalCuckooFilter::AppendCandidates(
    const Hashed& h, std::vector<std::uint64_t>& out) const {
  for (std::uint64_t c : h.cand.bucket) out.push_back(c);
}

bool VerticalCuckooFilter::Insert(std::uint64_t key) {
  return kernel::InsertOne(*this, key);
}

bool VerticalCuckooFilter::InsertDirect(std::uint64_t key) {
  ++counters_.inserts;
  if (TryPlaceDirect(HashKey(key))) return true;
  ++counters_.insert_failures;
  return false;
}

bool VerticalCuckooFilter::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void VerticalCuckooFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                         bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t VerticalCuckooFilter::InsertBatch(
    std::span<const std::uint64_t> keys, bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool VerticalCuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  const Hashed h = HashKey(key);
  counters_.bucket_probes += 4;
  for (std::uint64_t c : h.cand.bucket) {
    if (table_.EraseValue(c, h.fp)) {
      --items_;
      return true;
    }
  }
  return false;
}

void VerticalCuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool VerticalCuckooFilter::ForEachFingerprint(
    const std::function<void(std::uint64_t)>& fn) const {
  // Theorem 1: the full candidate set follows from the slot's current
  // bucket and fingerprint alone; its minimum is the canonical bucket.
  ForEachOccupiedSlot([&](std::uint64_t bucket, std::uint64_t fp) {
    fn(SlotEntity(bucket, fp));
  });
  return true;
}

bool VerticalCuckooFilter::ForEachEntityInBucket(
    std::uint64_t bucket,
    const std::function<void(unsigned, std::uint64_t)>& fn) const {
  if (bucket >= params_.bucket_count) return false;
  for (unsigned s = 0; s < params_.slots_per_bucket; ++s) {
    const std::uint64_t fp = table_.Get(bucket, s);
    if (fp != 0) fn(s, SlotEntity(bucket, fp));
  }
  return true;
}

bool VerticalCuckooFilter::EntityHashed(std::uint64_t entity,
                                        Hashed* h) const noexcept {
  const std::uint64_t fp = entity & LowMask(params_.fingerprint_bits);
  const std::uint64_t bucket = entity >> params_.fingerprint_bits;
  if (fp == 0 || bucket >= params_.bucket_count) return false;
  // Theorem 1: Candidates() from any member bucket yields the same set, so
  // the canonical bucket stands in for the primary one.
  h->cand = hasher_.Candidates(bucket, FingerprintHash(fp));
  h->fp = fp;
  return true;
}

bool VerticalCuckooFilter::InsertEntity(std::uint64_t entity) {
  Hashed h;
  if (!EntityHashed(entity, &h)) return false;
  if (TryPlaceDirect(h)) return true;
  return kernel::EvictInsert(*this, h);
}

bool VerticalCuckooFilter::ContainsEntity(std::uint64_t entity) const {
  Hashed h;
  if (!EntityHashed(entity, &h)) return false;
  return ProbeCandidates(h);
}

bool VerticalCuckooFilter::EraseEntity(std::uint64_t entity) {
  Hashed h;
  if (!EntityHashed(entity, &h)) return false;
  counters_.bucket_probes += 4;
  for (std::uint64_t c : h.cand.bucket) {
    if (table_.EraseValue(c, h.fp)) {
      --items_;
      return true;
    }
  }
  return false;
}

bool VerticalCuckooFilter::ClearSlot(std::uint64_t bucket, unsigned slot) {
  if (bucket >= params_.bucket_count || slot >= params_.slots_per_bucket) {
    return false;
  }
  if (table_.Get(bucket, slot) == 0) return false;
  table_.Set(bucket, slot, 0);
  --items_;
  return true;
}

bool VerticalCuckooFilter::KeyEntity(std::uint64_t key,
                                     std::uint64_t* entity) const {
  const Hashed h = HashKey(key);
  std::uint64_t canon = h.cand.bucket[0];
  for (std::uint64_t c : h.cand.bucket) canon = std::min(canon, c);
  *entity = (canon << params_.fingerprint_bits) | h.fp;
  return true;
}

std::uint64_t VerticalCuckooFilter::Digest() const noexcept {
  return detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                              static_cast<unsigned>(hasher_.bm1()),
                              params_.fingerprint_bits);
}

bool VerticalCuckooFilter::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool VerticalCuckooFilter::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
