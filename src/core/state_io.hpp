// Shared plumbing for Filter::SaveState / LoadState.
//
// A state blob is:  magic "VCFS" | u32 version | u16 name_len | name bytes
//                   | u64 config_digest | payload
// The name and the digest (a caller-computed fingerprint of the filter's
// construction parameters — seed, hash kind, variant) guard against
// restoring a checkpoint into a filter with different semantics; the payload
// is either a PackedTable (cuckoo family) or a raw byte vector (Bloom
// family), each with its own integrity checksum.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "table/packed_table.hpp"

namespace vcf::detail {

/// Writes the common header. Returns false on stream failure.
bool WriteStateHeader(std::ostream& out, std::string_view name,
                      std::uint64_t config_digest);

/// Reads and validates the common header against the expected name/digest.
bool ReadStateHeader(std::istream& in, std::string_view name,
                     std::uint64_t config_digest);

/// Cuckoo-family payload: the packed table. On load, geometry must match
/// `expected` exactly; on success the loaded table is returned through it.
bool SaveTablePayload(std::ostream& out, const PackedTable& table);
bool LoadTablePayload(std::istream& in, PackedTable* expected);

/// Bloom-family payload: an opaque byte vector (bit array or counters) plus
/// the item count, both checksummed.
bool SaveBytesPayload(std::ostream& out, const std::vector<std::uint8_t>& bytes,
                      std::uint64_t items);
bool LoadBytesPayload(std::istream& in, std::vector<std::uint8_t>* bytes,
                      std::uint64_t* items);

/// Mixes construction parameters into a digest for the header.
std::uint64_t ConfigDigest(std::uint64_t seed, unsigned hash_kind,
                           unsigned variant, unsigned extra);

}  // namespace vcf::detail
