// Shared plumbing for Filter::SaveState / LoadState.
//
// A state blob is:  magic "VCFS" | u32 version | u16 name_len | name bytes
//                   | u64 config_digest | payload
// The name and the digest (a caller-computed fingerprint of the filter's
// construction parameters — seed, hash kind, variant) guard against
// restoring a checkpoint into a filter with different semantics; the payload
// is either a PackedTable (cuckoo family) or a raw byte vector (Bloom
// family), each with its own integrity checksum.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "table/packed_table.hpp"

namespace vcf::detail {

/// Writes the common header. Returns false on stream failure.
bool WriteStateHeader(std::ostream& out, std::string_view name,
                      std::uint64_t config_digest);

/// Reads and validates the common header against the expected name/digest.
bool ReadStateHeader(std::istream& in, std::string_view name,
                     std::uint64_t config_digest);

/// Cuckoo-family payload: the packed table. On load, geometry must match
/// `expected` exactly; on success the loaded table is returned through it.
bool SaveTablePayload(std::ostream& out, const PackedTable& table);
bool LoadTablePayload(std::istream& in, PackedTable* expected);

/// Bloom-family payload: an opaque byte vector (bit array or counters) plus
/// the item count, both checksummed.
bool SaveBytesPayload(std::ostream& out, const std::vector<std::uint8_t>& bytes,
                      std::uint64_t items);
bool LoadBytesPayload(std::istream& in, std::vector<std::uint8_t>* bytes,
                      std::uint64_t* items);

/// The one-stop envelope every cuckoo-family filter's SaveState/LoadState
/// delegates to: common header + canonical packed table payload. Keeping
/// the framing in one call means the resilient/sharded wrappers and the
/// vcfd SNAPSHOT command all transport the same bytes, and a format change
/// is one edit plus a version bump.
bool SaveFilterState(std::ostream& out, std::string_view name,
                     std::uint64_t config_digest, const PackedTable& table);
bool LoadFilterState(std::istream& in, std::string_view name,
                     std::uint64_t config_digest, PackedTable* table);

/// Length-prefixed opaque frame (u64 length + bytes) for wrappers that embed
/// whole child blobs — e.g. ShardedFilter's per-shard frames. Framing is
/// load-bearing: a child's LoadState may read greedily (ResilientFilter
/// slurps its stream to support retries), so each child must be handed
/// exactly its own bytes on restore.
bool WriteFramedBlob(std::ostream& out, std::string_view blob);

/// Reads one frame, rejecting lengths above `max_bytes` before allocating
/// so a corrupt frame fails cleanly instead of throwing bad_alloc.
bool ReadFramedBlob(std::istream& in, std::string* blob,
                    std::uint64_t max_bytes);

/// Mixes construction parameters into a digest for the header.
std::uint64_t ConfigDigest(std::uint64_t seed, unsigned hash_kind,
                           unsigned variant, unsigned extra);

}  // namespace vcf::detail
