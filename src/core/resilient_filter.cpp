#include "core/resilient_filter.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/random.hpp"
#include "core/vcf.hpp"

namespace vcf {

namespace {

// ResilientFilter blob: magic | u32 version | u64 stash_count | keys |
// u64 checksum | inner filter blob. Stash first so the inner payload —
// by far the larger section — is written once, contiguously.
constexpr char kMagic[4] = {'V', 'C', 'F', 'R'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t StashChecksum(const std::vector<std::uint64_t>& stash) {
  std::uint64_t h = Mix64(0x57A5ULL ^ stash.size());
  for (const std::uint64_t key : stash) h = Mix64(h ^ key);
  return h;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Take(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

void Backoff(const ResilientOptions& options, unsigned attempt) {
  if (options.backoff_base.count() <= 0) return;
  // Exponential: base, 2*base, 4*base, ... capped at 2^10 periods so a
  // misconfigured retry count cannot sleep for minutes.
  const unsigned shift = attempt < 10 ? attempt : 10;
  std::this_thread::sleep_for(options.backoff_base * (1u << shift));
}

}  // namespace

ResilientFilter::ResilientFilter(std::unique_ptr<Filter> inner,
                                 ResilientOptions options)
    : inner_(std::move(inner)), options_(options) {
  if (!inner_) {
    throw std::invalid_argument("ResilientFilter: inner filter must not be null");
  }
  if (!(options_.degrade_watermark > 0.0)) {
    throw std::invalid_argument(
        "ResilientFilter: degrade_watermark must be positive");
  }
  vcf_inner_ = dynamic_cast<VerticalCuckooFilter*>(inner_.get());
  if (options_.stash_capacity > 0xFFFFFFFFu) {
    throw std::invalid_argument("ResilientFilter: stash_capacity too large");
  }
  if (options_.stash_capacity > 0) {
    // Fixed allocation for the filter's whole life: optimistic readers may
    // hold pointers into it at any time (see header).
    stash_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        options_.stash_capacity);
  }
}

bool ResilientFilter::InDegradedMode() const noexcept {
  // Healthy fast path: two virtual calls and two integer compares. The
  // cached threshold is keyed to the SlotCount it was computed from, so any
  // geometry change — an ElasticFilter doubling mid-flight, a DynamicVcf
  // growing, a checkpoint restore shrinking — invalidates it immediately.
  // A stale threshold is wrong in both directions: after growth it trips
  // degraded mode far too early; after a shrink it never trips at all.
  const std::size_t slots = inner_->SlotCount();
  if (slots == threshold_slots_ && inner_->ItemCount() < degrade_threshold_) {
    return false;
  }
  const double bar = options_.degrade_watermark * static_cast<double>(slots);
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::size_t>::max() / 2);
  degrade_threshold_ =
      bar >= kMax ? static_cast<std::size_t>(kMax)
                  : static_cast<std::size_t>(std::ceil(bar));
  threshold_slots_ = slots;
  return inner_->ItemCount() >= degrade_threshold_;
}

bool ResilientFilter::InsertDegraded(std::uint64_t key) {
  // Fail-fast placement: probe the candidate buckets, never start an
  // eviction chain. Only the VCF exposes this; other inner filters keep
  // their normal insert (their own MAX-kicks bound still applies).
  return vcf_inner_ ? vcf_inner_->InsertDirect(key) : inner_->Insert(key);
}

bool ResilientFilter::Insert(std::uint64_t key) {
  bool placed;
  if (InDegradedMode()) {
    ++counters_.degraded_inserts;
    placed = InsertDegraded(key);
  } else {
    placed = inner_->Insert(key);
  }
  if (placed) return true;

  const std::uint32_t n = stash_size_.load(kRelaxed);
  if (n < options_.stash_capacity) {
    stash_[n].store(key, kRelaxed);
    // Publish the slot before the count so a lock-free scan never reads an
    // unwritten slot (it may still miss the key — sequence validation
    // handles overlap).
    stash_size_.store(n + 1, std::memory_order_release);
    ++counters_.stash_inserts;
    return true;  // the key is queryable: a stashed insert SUCCEEDED
  }
  ++counters_.insert_failures;
  return false;
}

bool ResilientFilter::Contains(std::uint64_t key) const {
  if (inner_->Contains(key)) return true;
  const std::uint32_t n = stash_size_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (stash_[i].load(kRelaxed) == key) {
      ++counters_.stash_hits;
      return true;
    }
  }
  return false;
}

void ResilientFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                    bool* results) const {
  inner_->ContainsBatch(keys, results);
  const std::uint32_t n = stash_size_.load(std::memory_order_acquire);
  if (n == 0) return;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (results[i]) continue;
    for (std::uint32_t j = 0; j < n; ++j) {
      if (stash_[j].load(kRelaxed) == keys[i]) {
        results[i] = true;
        ++counters_.stash_hits;
        break;
      }
    }
  }
}

bool ResilientFilter::Erase(std::uint64_t key) {
  if (inner_->Erase(key)) {
    // A deletion is exactly when table space reappears: drain while the
    // direct placements keep succeeding.
    DrainStash();
    return true;
  }
  // The table never held it (or a stashed duplicate outlived the table
  // copies): remove one stashed instance by moving the last slot into its
  // place — no shifting, so a racing lock-free scan sees only whole slots.
  const std::uint32_t n = stash_size_.load(kRelaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (stash_[i].load(kRelaxed) == key) {
      stash_[i].store(stash_[n - 1].load(kRelaxed), kRelaxed);
      stash_size_.store(n - 1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ResilientFilter::DrainStash() {
  const std::uint32_t n = stash_size_.load(kRelaxed);
  if (n == 0) return;
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t key = stash_[i].load(kRelaxed);
    // Direct placement only: draining rides on another operation, so it must
    // stay cheap and must not trigger fresh eviction cascades.
    const bool placed =
        vcf_inner_ ? vcf_inner_->InsertDirect(key) : inner_->Insert(key);
    if (placed) {
      ++counters_.stash_drains;
    } else {
      stash_[kept++].store(key, kRelaxed);
    }
  }
  stash_size_.store(kept, std::memory_order_release);
}

double ResilientFilter::LoadFactor() const noexcept {
  const std::size_t slots = inner_->SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t ResilientFilter::MemoryBytes() const noexcept {
  return inner_->MemoryBytes() +
         options_.stash_capacity * sizeof(std::uint64_t);
}

void ResilientFilter::Clear() {
  inner_->Clear();
  stash_size_.store(0, std::memory_order_release);
  degrade_threshold_ = 0;
}

bool ResilientFilter::SaveState(std::ostream& out) const {
  // Stage the whole blob in memory, retrying transient failures (the inner
  // filter's serialization path is where stream faults are injected and
  // where a real filesystem hiccup would surface). Only a fully built blob
  // is ever written to `out`, so a failed attempt cannot leave a torn
  // checkpoint behind.
  const unsigned attempts = 1 + options_.checkpoint_retries;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) {
      ++counters_.checkpoint_retries;
      Backoff(options_, attempt - 1);
    }
    std::ostringstream buf;
    buf.write(kMagic, sizeof(kMagic));
    Put(buf, kVersion);
    const std::uint32_t n = stash_size_.load(kRelaxed);
    std::vector<std::uint64_t> snapshot(n);
    for (std::uint32_t i = 0; i < n; ++i) snapshot[i] = stash_[i].load(kRelaxed);
    Put(buf, static_cast<std::uint64_t>(snapshot.size()));
    for (const std::uint64_t key : snapshot) Put(buf, key);
    Put(buf, StashChecksum(snapshot));
    if (!buf || !inner_->SaveState(buf)) continue;
    const std::string blob = buf.str();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    return static_cast<bool>(out);
  }
  return false;
}

bool ResilientFilter::LoadState(std::istream& in) {
  // Slurp once — the stream cannot be rewound — then parse from memory so
  // every retry starts from identical bytes. Corrupt input fails cleanly
  // after the retry budget; neither the inner filter (all-or-nothing by
  // contract) nor the stash is touched until everything validated.
  std::string raw(std::istreambuf_iterator<char>(in), {});
  const unsigned attempts = 1 + options_.checkpoint_retries;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) {
      ++counters_.checkpoint_retries;
      Backoff(options_, attempt - 1);
    }
    std::istringstream buf(raw);
    char magic[4];
    buf.read(magic, sizeof(magic));
    if (!buf || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) continue;
    std::uint32_t version = 0;
    if (!Take(buf, version) || version != kVersion) continue;
    std::uint64_t count = 0;
    if (!Take(buf, count) || count > raw.size() / sizeof(std::uint64_t) ||
        count > options_.stash_capacity) {
      continue;
    }
    std::vector<std::uint64_t> staged(static_cast<std::size_t>(count));
    bool keys_ok = true;
    for (std::uint64_t& key : staged) keys_ok = keys_ok && Take(buf, key);
    std::uint64_t checksum = 0;
    if (!keys_ok || !Take(buf, checksum) || checksum != StashChecksum(staged)) {
      continue;
    }
    if (!inner_->LoadState(buf)) continue;
    // The inner filter committed; the stash commit below cannot fail.
    // Copy into the fixed slots (count <= capacity was validated above) —
    // the array itself is never replaced, keeping lock-free readers safe.
    for (std::size_t i = 0; i < staged.size(); ++i) {
      stash_[i].store(staged[i], kRelaxed);
    }
    stash_size_.store(static_cast<std::uint32_t>(staged.size()),
                      std::memory_order_release);
    degrade_threshold_ = 0;  // geometry may have changed; recompute lazily
    threshold_slots_ = 0;
    return true;
  }
  return false;
}

}  // namespace vcf
