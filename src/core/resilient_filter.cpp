#include "core/resilient_filter.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/random.hpp"
#include "core/vcf.hpp"

namespace vcf {

namespace {

// ResilientFilter blob: magic | u32 version | u64 stash_count | keys |
// u64 checksum | inner filter blob. Stash first so the inner payload —
// by far the larger section — is written once, contiguously.
constexpr char kMagic[4] = {'V', 'C', 'F', 'R'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t StashChecksum(const std::vector<std::uint64_t>& stash) {
  std::uint64_t h = Mix64(0x57A5ULL ^ stash.size());
  for (const std::uint64_t key : stash) h = Mix64(h ^ key);
  return h;
}

template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Take(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

void Backoff(const ResilientOptions& options, unsigned attempt) {
  if (options.backoff_base.count() <= 0) return;
  // Exponential: base, 2*base, 4*base, ... capped at 2^10 periods so a
  // misconfigured retry count cannot sleep for minutes.
  const unsigned shift = attempt < 10 ? attempt : 10;
  std::this_thread::sleep_for(options.backoff_base * (1u << shift));
}

}  // namespace

ResilientFilter::ResilientFilter(std::unique_ptr<Filter> inner,
                                 ResilientOptions options)
    : inner_(std::move(inner)), options_(options) {
  if (!inner_) {
    throw std::invalid_argument("ResilientFilter: inner filter must not be null");
  }
  if (!(options_.degrade_watermark > 0.0)) {
    throw std::invalid_argument(
        "ResilientFilter: degrade_watermark must be positive");
  }
  vcf_inner_ = dynamic_cast<VerticalCuckooFilter*>(inner_.get());
  stash_.reserve(options_.stash_capacity);
}

bool ResilientFilter::InDegradedMode() const noexcept {
  // Healthy fast path: one virtual ItemCount() and an integer compare.
  // The cached threshold starts at 0 (always "crossed"), so the first call
  // — and every call once the filter is near the watermark — falls through
  // to the recompute, which is exact against the current geometry.
  if (inner_->ItemCount() < degrade_threshold_) return false;
  const double bar =
      options_.degrade_watermark * static_cast<double>(inner_->SlotCount());
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<std::size_t>::max() / 2);
  degrade_threshold_ =
      bar >= kMax ? static_cast<std::size_t>(kMax)
                  : static_cast<std::size_t>(std::ceil(bar));
  return inner_->ItemCount() >= degrade_threshold_;
}

bool ResilientFilter::InsertDegraded(std::uint64_t key) {
  // Fail-fast placement: probe the candidate buckets, never start an
  // eviction chain. Only the VCF exposes this; other inner filters keep
  // their normal insert (their own MAX-kicks bound still applies).
  return vcf_inner_ ? vcf_inner_->InsertDirect(key) : inner_->Insert(key);
}

bool ResilientFilter::Insert(std::uint64_t key) {
  bool placed;
  if (InDegradedMode()) {
    ++counters_.degraded_inserts;
    placed = InsertDegraded(key);
  } else {
    placed = inner_->Insert(key);
  }
  if (placed) return true;

  if (stash_.size() < options_.stash_capacity) {
    stash_.push_back(key);
    ++counters_.stash_inserts;
    return true;  // the key is queryable: a stashed insert SUCCEEDED
  }
  ++counters_.insert_failures;
  return false;
}

bool ResilientFilter::Contains(std::uint64_t key) const {
  if (inner_->Contains(key)) return true;
  if (stash_.empty()) return false;
  for (const std::uint64_t stashed : stash_) {
    if (stashed == key) {
      ++counters_.stash_hits;
      return true;
    }
  }
  return false;
}

void ResilientFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                    bool* results) const {
  inner_->ContainsBatch(keys, results);
  if (stash_.empty()) return;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (results[i]) continue;
    for (const std::uint64_t stashed : stash_) {
      if (stashed == keys[i]) {
        results[i] = true;
        ++counters_.stash_hits;
        break;
      }
    }
  }
}

bool ResilientFilter::Erase(std::uint64_t key) {
  if (inner_->Erase(key)) {
    // A deletion is exactly when table space reappears: drain while the
    // direct placements keep succeeding.
    DrainStash();
    return true;
  }
  // The table never held it (or a stashed duplicate outlived the table
  // copies): remove one stashed instance.
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (*it == key) {
      stash_.erase(it);
      return true;
    }
  }
  return false;
}

void ResilientFilter::DrainStash() {
  if (stash_.empty()) return;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    const std::uint64_t key = stash_[i];
    // Direct placement only: draining rides on another operation, so it must
    // stay cheap and must not trigger fresh eviction cascades.
    const bool placed =
        vcf_inner_ ? vcf_inner_->InsertDirect(key) : inner_->Insert(key);
    if (placed) {
      ++counters_.stash_drains;
    } else {
      stash_[kept++] = key;
    }
  }
  stash_.resize(kept);
}

double ResilientFilter::LoadFactor() const noexcept {
  const std::size_t slots = inner_->SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t ResilientFilter::MemoryBytes() const noexcept {
  return inner_->MemoryBytes() + stash_.capacity() * sizeof(std::uint64_t);
}

void ResilientFilter::Clear() {
  inner_->Clear();
  stash_.clear();
  degrade_threshold_ = 0;
}

bool ResilientFilter::SaveState(std::ostream& out) const {
  // Stage the whole blob in memory, retrying transient failures (the inner
  // filter's serialization path is where stream faults are injected and
  // where a real filesystem hiccup would surface). Only a fully built blob
  // is ever written to `out`, so a failed attempt cannot leave a torn
  // checkpoint behind.
  const unsigned attempts = 1 + options_.checkpoint_retries;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) {
      ++counters_.checkpoint_retries;
      Backoff(options_, attempt - 1);
    }
    std::ostringstream buf;
    buf.write(kMagic, sizeof(kMagic));
    Put(buf, kVersion);
    Put(buf, static_cast<std::uint64_t>(stash_.size()));
    for (const std::uint64_t key : stash_) Put(buf, key);
    Put(buf, StashChecksum(stash_));
    if (!buf || !inner_->SaveState(buf)) continue;
    const std::string blob = buf.str();
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    return static_cast<bool>(out);
  }
  return false;
}

bool ResilientFilter::LoadState(std::istream& in) {
  // Slurp once — the stream cannot be rewound — then parse from memory so
  // every retry starts from identical bytes. Corrupt input fails cleanly
  // after the retry budget; neither the inner filter (all-or-nothing by
  // contract) nor the stash is touched until everything validated.
  std::string raw(std::istreambuf_iterator<char>(in), {});
  const unsigned attempts = 1 + options_.checkpoint_retries;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) {
      ++counters_.checkpoint_retries;
      Backoff(options_, attempt - 1);
    }
    std::istringstream buf(raw);
    char magic[4];
    buf.read(magic, sizeof(magic));
    if (!buf || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) continue;
    std::uint32_t version = 0;
    if (!Take(buf, version) || version != kVersion) continue;
    std::uint64_t count = 0;
    if (!Take(buf, count) || count > raw.size() / sizeof(std::uint64_t) ||
        count > options_.stash_capacity) {
      continue;
    }
    std::vector<std::uint64_t> staged(static_cast<std::size_t>(count));
    bool keys_ok = true;
    for (std::uint64_t& key : staged) keys_ok = keys_ok && Take(buf, key);
    std::uint64_t checksum = 0;
    if (!keys_ok || !Take(buf, checksum) || checksum != StashChecksum(staged)) {
      continue;
    }
    if (!inner_->LoadState(buf)) continue;
    // The inner filter committed; the stash commit below cannot fail.
    stash_ = std::move(staged);
    degrade_threshold_ = 0;  // geometry may have changed; recompute lazily
    return true;
  }
  return false;
}

}  // namespace vcf
