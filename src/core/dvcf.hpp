// The Differentiated Vertical Cuckoo Filter (§IV-B, Algorithms 4-6).
//
// DVCF keeps the standard VCF bitmasks but splits the fingerprint value
// range [0, T), T = 2^f, at a threshold delta_t: fingerprints inside
// In1 = [T/2 - delta_t, T/2 + delta_t) receive four candidate buckets via
// vertical hashing (Eq. 3); fingerprints outside receive the classic two
// CF candidates (Eq. 1). The fraction p = 2*delta_t / T (Eq. 9) plays the
// same tuning role as IVCF's r but is continuously adjustable, at the cost
// of one interval judgment per operation and per relocation step.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "core/vertical_hashing.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class DifferentiatedVcf : public Filter {
 public:
  /// `delta_t` in fingerprint-value units (0 => pure CF behaviour;
  /// 2^(f-1) => pure VCF behaviour).
  DifferentiatedVcf(const CuckooParams& params, std::uint64_t delta_t);

  /// DVCF_j of the evaluation: 2*delta_t = j * 2^f / 8, i.e. r = j/8
  /// (j in [0, 8]).
  static DifferentiatedVcf ForEighths(const CuckooParams& params, unsigned j);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Two-phase hash-then-prefetch-then-probe pipelines (see core/vcf.cpp);
  /// the per-key interval judgment happens in the hash phase, so the probe
  /// phase streams over prefetched buckets for both 2- and 4-way keys.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Eq. 9's p for this threshold.
  double TheoreticalR() const noexcept;
  std::uint64_t delta_t() const noexcept { return delta_t_; }

  /// True when `fp` falls in In1 and therefore gets four candidates.
  bool FourWay(std::uint64_t fp) const noexcept {
    return fp >= interval_lo_ && fp < interval_hi_;
  }

 private:
  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  /// Derives the candidate set for `fp` (4-way inside In1, 2-way outside);
  /// returns the candidate count. Shared by the single and batched paths.
  unsigned CandidateSet(std::uint64_t b1, std::uint64_t fp, std::uint64_t fh,
                        std::uint64_t out[4]) const noexcept;
  /// Eviction-chain tail of Insert (Algorithm 4 lines 13-28), shared with
  /// InsertBatch.
  bool InsertEvict(std::uint64_t fp, const std::uint64_t candidates[4],
                   unsigned n_cand);

  CuckooParams params_;
  VerticalHasher hasher_;
  PackedTable table_;
  std::uint64_t delta_t_;
  std::uint64_t interval_lo_;
  std::uint64_t interval_hi_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
  std::string name_;
};

}  // namespace vcf
