// The Differentiated Vertical Cuckoo Filter (§IV-B, Algorithms 4-6).
//
// DVCF keeps the standard VCF bitmasks but splits the fingerprint value
// range [0, T), T = 2^f, at a threshold delta_t: fingerprints inside
// In1 = [T/2 - delta_t, T/2 + delta_t) receive four candidate buckets via
// vertical hashing (Eq. 3); fingerprints outside receive the classic two
// CF candidates (Eq. 1). The fraction p = 2*delta_t / T (Eq. 9) plays the
// same tuning role as IVCF's r but is continuously adjustable, at the cost
// of one interval judgment per operation and per relocation step.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "core/vertical_hashing.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class DifferentiatedVcf : public Filter,
                          public kernel::SlotWalkPolicy<DifferentiatedVcf> {
 public:
  /// `delta_t` in fingerprint-value units (0 => pure CF behaviour;
  /// 2^(f-1) => pure VCF behaviour).
  DifferentiatedVcf(const CuckooParams& params, std::uint64_t delta_t);

  /// DVCF_j of the evaluation: 2*delta_t = j * 2^f / 8, i.e. r = j/8
  /// (j in [0, 8]).
  static DifferentiatedVcf ForEighths(const CuckooParams& params, unsigned j);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Kernel-pipelined batch ops (core/cuckoo_kernel.hpp); the per-key
  /// interval judgment happens in the hash phase, so the probe phase
  /// streams over prefetched buckets for both 2- and 4-way keys.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  bool OptimisticReadSafe() const noexcept override { return true; }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Canonical-entity enumeration for the immutable segment tier. Each
  /// stored fingerprint is re-judged (FourWay) exactly as a relocation
  /// would, then canonicalised to the minimum of its candidate set — the
  /// 4-way Theorem 1 closure inside In1, the XOR pair outside.
  bool ForEachFingerprint(
      const std::function<void(std::uint64_t)>& fn) const override;
  bool KeyEntity(std::uint64_t key, std::uint64_t* entity) const override;

  /// Entity transport (elastic resize / shard merge): the judged candidate
  /// set is re-derived from the entity's canonical bucket and fingerprint
  /// alone — 4-way Theorem 1 closure inside In1, the XOR pair outside.
  std::size_t MigrationBuckets() const noexcept override {
    return params_.bucket_count;
  }
  bool ForEachEntityInBucket(
      std::uint64_t bucket,
      const std::function<void(unsigned, std::uint64_t)>& fn) const override;
  bool InsertEntity(std::uint64_t entity) override;
  bool ContainsEntity(std::uint64_t entity) const override;
  bool EraseEntity(std::uint64_t entity) override;
  bool ClearSlot(std::uint64_t bucket, unsigned slot) override;

  /// Eq. 9's p for this threshold.
  double TheoreticalR() const noexcept;
  std::uint64_t delta_t() const noexcept { return delta_t_; }

  /// True when `fp` falls in In1 and therefore gets four candidates.
  bool FourWay(std::uint64_t fp) const noexcept {
    return fp >= interval_lo_ && fp < interval_hi_;
  }

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // shared slot-table hooks come from kernel::SlotWalkPolicy) --------------
  struct Hashed {
    std::uint64_t cand[4];
    std::uint64_t fp;
    unsigned n_cand;
  };
  Hashed HashKey(std::uint64_t key) const noexcept {
    Hashed h;
    std::uint64_t b1;
    h.fp = Fingerprint(key, &b1);
    h.n_cand = CandidateSet(b1, h.fp, FingerprintHash(h.fp), h.cand);
    return h;
  }
  void PrefetchCandidates(const Hashed& h) const noexcept {
    for (unsigned c = 0; c < h.n_cand; ++c) table_.PrefetchBucket(h.cand[c]);
  }
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool ProbeCandidates(const Hashed& h) const noexcept {
    // Algorithm 5: the whole judged set streams through one fused probe.
    counters_.bucket_probes += h.n_cand;
    return table_.ContainsValueAny(h.cand, h.n_cand, h.fp);
  }
  WalkState StartWalk(const Hashed& h) {
    return {h.cand[rng_.Below(h.n_cand)], h.fp};
  }
  bool RelocateVictim(WalkState& walk);
  void AppendCandidates(const Hashed& h, std::vector<std::uint64_t>& out) const {
    for (unsigned c = 0; c < h.n_cand; ++c) out.push_back(h.cand[c]);
  }
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    // Each occupant is re-judged before its alternates are derived.
    const std::uint64_t fh = FingerprintHash(occupant);
    if (FourWay(occupant)) {
      for (std::uint64_t z : hasher_.Alternates(bucket, fh)) fn(z, occupant);
    } else {
      fn((bucket ^ fh) & hasher_.index_mask(), occupant);
    }
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<DifferentiatedVcf>;

  /// Seed perturbation separating the fingerprint hash from the key hash.
  static constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

  // The fingerprint/candidate derivation is defined inline: every lookup
  // runs HashKey -> ProbeCandidates back to back, and keeping the chain
  // visible to the inliner is worth ~5 ns/op on the miss path.
  std::uint64_t Fingerprint(std::uint64_t key,
                            std::uint64_t* bucket1) const noexcept {
    const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
    ++counters_.hash_computations;
    *bucket1 = h & hasher_.index_mask();
    const std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
    return fp == 0 ? 1 : fp;
  }
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept {
    // f-bit hash(eta), as in the VCF (see vcf.cpp).
    ++counters_.hash_computations;
    return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
           LowMask(params_.fingerprint_bits);
  }
  /// Derives the candidate set for `fp` (4-way inside In1, 2-way outside);
  /// returns the candidate count. Shared by the single and batched paths.
  unsigned CandidateSet(std::uint64_t b1, std::uint64_t fp, std::uint64_t fh,
                        std::uint64_t out[4]) const noexcept {
    // Algorithm 4 lines 3-12: candidate set depends on the interval judgment.
    if (FourWay(fp)) {
      const Candidates4 cand = hasher_.Candidates(b1, fh);
      std::copy(cand.bucket.begin(), cand.bucket.end(), out);
      return 4;
    }
    out[0] = b1;
    out[1] = (b1 ^ fh) & hasher_.index_mask();
    return 2;
  }
  std::uint64_t Digest() const noexcept;
  /// Splits a canonical entity back into its Hashed form. False when the
  /// entity is out of range for this geometry.
  bool EntityHashed(std::uint64_t entity, Hashed* h) const noexcept {
    const std::uint64_t fp = entity & LowMask(params_.fingerprint_bits);
    const std::uint64_t bucket = entity >> params_.fingerprint_bits;
    if (fp == 0 || bucket >= params_.bucket_count) return false;
    h->fp = fp;
    // CandidateSet from any member bucket reproduces the same set (the
    // 4-way closure of Theorem 1; the XOR pair is trivially symmetric).
    h->n_cand = CandidateSet(bucket, fp, FingerprintHash(fp), h->cand);
    return true;
  }
  /// The canonical entity of the fingerprint stored in `bucket`.
  std::uint64_t SlotEntity(std::uint64_t bucket,
                           std::uint64_t fp) const noexcept {
    const std::uint64_t fh = FingerprintHash(fp);
    std::uint64_t canon = bucket;
    if (FourWay(fp)) {
      for (std::uint64_t z : hasher_.Alternates(bucket, fh)) {
        canon = std::min(canon, z);
      }
    } else {
      canon = std::min(canon, (bucket ^ fh) & hasher_.index_mask());
    }
    return (canon << params_.fingerprint_bits) | fp;
  }

  CuckooParams params_;
  VerticalHasher hasher_;
  PackedTable table_;
  std::uint64_t delta_t_;
  std::uint64_t interval_lo_;
  std::uint64_t interval_hi_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
  std::string name_;
};

}  // namespace vcf
