// Overload/recovery wrapper for any Filter: keeps an online service correct
// and observable through the saturation regime the paper's Fig. 5 measures.
//
// Three mechanisms, all off the hot path until trouble starts:
//
//  1. Victim stash (the classic "cuckoo hashing with a stash" technique,
//     Aumüller et al.): an insert the table rejects lands in a small bounded
//     side buffer instead of being dropped. Contains/Erase consult the stash,
//     so a stashed key is indistinguishable from a stored one; stashed keys
//     drain back into the table opportunistically when deletions make room.
//     Only when the stash itself is full does Insert report failure.
//
//  2. Degraded mode: past a load-factor watermark, eviction chains are long
//     and mostly futile, so Insert switches to the fail-fast direct placement
//     (VerticalCuckooFilter::InsertDirect when the inner filter is a VCF) —
//     bounding tail latency exactly when the service is under the most
//     pressure. Failed direct placements still fall into the stash.
//
//  3. Checkpoint retry: SaveState/LoadState retry transient stream failures
//     with capped exponential backoff, staging everything in memory so a
//     failed (or corrupt) attempt never leaves a torn blob or a partially
//     mutated filter.
//
// Every mechanism is observable through counters(): stash_inserts,
// stash_hits, stash_drains, degraded_inserts, checkpoint_retries, plus
// insert_failures for inserts the stash could not absorb. Hot-path op
// totals (inserts/lookups/probes/evictions) live on the inner filter's
// counters, as with ConcurrentFilter — the wrapper adds no per-op
// bookkeeping of its own, keeping its healthy-path overhead to a virtual
// dispatch, an integer watermark compare and an empty-stash check.
//
// Thread safety: mutations need external exclusion (wrap in
// ConcurrentFilter or ShardedFilter). Lookups, however, are safe under
// those wrappers' OPTIMISTIC seqlock read path: the stash is a
// fixed-capacity atomic array sized once at construction (never
// reallocated, never shifted with non-atomic writes), so a racing read is
// at worst stale/torn — which sequence validation discards — never a
// use-after-free. OptimisticReadSafe() therefore forwards to the inner
// filter's verdict.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/filter.hpp"

namespace vcf {

class VerticalCuckooFilter;

struct ResilientOptions {
  /// Maximum stashed keys. 0 disables the stash entirely.
  std::size_t stash_capacity = 64;

  /// Inner load factor at or above which Insert stops running eviction
  /// chains and fails fast into the stash.
  double degrade_watermark = 0.98;

  /// Extra SaveState/LoadState attempts after the first failure.
  unsigned checkpoint_retries = 3;

  /// Backoff before retry k (1-based) is `backoff_base * 2^(k-1)`; zero
  /// disables sleeping (tests use this to keep retry loops instant).
  std::chrono::microseconds backoff_base{100};
};

class ResilientFilter : public Filter {
 public:
  explicit ResilientFilter(std::unique_ptr<Filter> inner,
                           ResilientOptions options = {});

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override {
    return inner_->SupportsDeletion();
  }
  std::string Name() const override {
    return "Resilient(" + inner_->Name() + ")";
  }
  /// Items represented = inner table items + stashed keys.
  std::size_t ItemCount() const noexcept override {
    return inner_->ItemCount() + StashSize();
  }
  std::size_t SlotCount() const noexcept override {
    return inner_->SlotCount();
  }
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;

  /// Checkpoints the stash alongside the inner filter's blob; both sides
  /// retry transient stream failures (options().checkpoint_retries) and are
  /// all-or-nothing on the load side.
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Current number of stashed keys (test/monitoring hook).
  std::size_t StashSize() const noexcept {
    return stash_size_.load(std::memory_order_acquire);
  }
  /// True when inserts are currently taking the fail-fast degraded path.
  bool InDegradedMode() const noexcept;

  /// Lock-free-readable iff the inner filter is: the wrapper's own stash
  /// is already a fixed atomic array (see the header comment).
  bool OptimisticReadSafe() const noexcept override {
    return inner_->OptimisticReadSafe();
  }

  const ResilientOptions& options() const noexcept { return options_; }
  Filter& inner() noexcept { return *inner_; }
  const Filter& inner() const noexcept { return *inner_; }

  void ForEachLeaf(const std::function<void(Filter&)>& fn) override {
    inner_->ForEachLeaf(fn);
  }

 private:
  /// Moves stashed keys back into the table while placements succeed.
  void DrainStash();
  bool InsertDegraded(std::uint64_t key);

  std::unique_ptr<Filter> inner_;
  /// Set iff the inner filter is a VCF: enables true fail-fast placement in
  /// degraded mode (other filters fall back to a normal Insert).
  VerticalCuckooFilter* vcf_inner_ = nullptr;
  ResilientOptions options_;
  /// Fixed-capacity stash (options_.stash_capacity slots, allocated once).
  /// Slots are relaxed atomics and the live count publishes with release
  /// ordering, so the wrappers' optimistic readers may scan it without a
  /// lock; mutation ordering is still the caller's job.
  std::unique_ptr<std::atomic<std::uint64_t>[]> stash_;
  std::atomic<std::uint32_t> stash_size_{0};
  /// Inner item count at which the watermark is crossed, plus the
  /// SlotCount() it was computed from. Starts at 0 so the first check
  /// recomputes; InDegradedMode() recomputes whenever the inner geometry
  /// changed (an elastic resize or growing DynamicVcf raises the bar, a
  /// restore can lower it) or the bar appears crossed. Mutable: caches,
  /// not state.
  mutable std::size_t degrade_threshold_ = 0;
  mutable std::size_t threshold_slots_ = 0;
};

}  // namespace vcf
