#include "core/filter.hpp"

namespace vcf {

// Default: checkpointing is optional; filters without an implementation
// report failure rather than silently writing nothing.
bool Filter::SaveState(std::ostream&) const { return false; }
bool Filter::LoadState(std::istream&) { return false; }

// Default: fingerprint enumeration is opt-in; only filters whose stored
// slots canonicalise to a key-derivable entity implement the pair.
bool Filter::ForEachFingerprint(
    const std::function<void(std::uint64_t)>&) const {
  return false;
}
bool Filter::KeyEntity(std::uint64_t, std::uint64_t*) const { return false; }

// Default: the entity-transport surface is opt-in alongside the
// enumeration pair above.
bool Filter::ForEachEntityInBucket(
    std::uint64_t, const std::function<void(unsigned, std::uint64_t)>&) const {
  return false;
}
bool Filter::InsertEntity(std::uint64_t) { return false; }
bool Filter::ContainsEntity(std::uint64_t) const { return false; }
bool Filter::EraseEntity(std::uint64_t) { return false; }
bool Filter::ClearSlot(std::uint64_t, unsigned) { return false; }

void Filter::ContainsBatch(std::span<const std::uint64_t> keys,
                           bool* results) const {
  for (std::size_t i = 0; i < keys.size(); ++i) {
    results[i] = Contains(keys[i]);
  }
}

std::size_t Filter::InsertBatch(std::span<const std::uint64_t> keys,
                                bool* results) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool ok = Insert(keys[i]);
    accepted += ok ? 1 : 0;
    if (results != nullptr) results[i] = ok;
  }
  return accepted;
}

}  // namespace vcf
