// The Vertical Cuckoo Filter (§III-B) and its Inversed variant IVCF (§IV-A).
//
// A VCF is a cuckoo filter whose candidate derivation is vertical hashing
// (4 candidate buckets, Eq. 3) instead of partial-key cuckoo hashing (2
// buckets, Eq. 1). IVCF_i is *the same structure* with a bitmask bm1 holding
// exactly i one-bits: the mask shape tunes r, the probability that an item
// really gets four distinct candidates, trading load factor against false
// positive rate. Insertion, lookup and deletion are the paper's Algorithms
// 1-3.
//
// Deviation from Algorithm 1 (documented in DESIGN.md): on insertion failure
// the eviction chain is rolled back, so a failed Insert leaves the filter
// exactly as it was. The paper's pseudo-code silently drops the last victim;
// rollback costs nothing measurable (failures only occur at saturation) and
// gives the library an atomic-insert guarantee.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "core/vertical_hashing.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class VerticalCuckooFilter : public Filter {
 public:
  /// Balanced-mask VCF (the paper's plain "VCF": bm1 = half the index bits).
  explicit VerticalCuckooFilter(const CuckooParams& params);

  /// IVCF_i: bm1 has exactly `mask_ones` one-bits (0 or index_bits degrades
  /// the structure to a standard CF; allowed, r becomes 0).
  VerticalCuckooFilter(const CuckooParams& params, unsigned mask_ones);

  /// Fully explicit mask (tests exercise arbitrary shapes).
  VerticalCuckooFilter(const CuckooParams& params, const VerticalHasher& hasher,
                       std::string name);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Insert only if one of the candidate buckets has a free slot — no
  /// eviction chain. Used by DynamicVcf to probe full segments cheaply; also
  /// useful for latency-critical callers that prefer failing fast.
  bool InsertDirect(std::uint64_t key);

  /// Prefetch-pipelined batch lookup (overrides the naive default): hashes
  /// a window of keys, prefetches all their candidate buckets, then probes.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;

  /// Prefetch-pipelined batch insert, mirroring ContainsBatch: phase 1
  /// hashes a window and prefetches all candidate buckets, phase 2 places
  /// each key (running the eviction chain only for keys whose candidates
  /// were all full). Produces exactly the results and end state of
  /// sequential Insert calls.
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Eq. 8's r for this mask shape.
  double TheoreticalR() const noexcept { return hasher_.TheoreticalR(); }
  const VerticalHasher& hasher() const noexcept { return hasher_; }
  const CuckooParams& params() const noexcept { return params_; }
  const PackedTable& table() const noexcept { return table_; }

 private:
  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  /// Eviction-chain tail of Insert (Algorithm 1 lines 11-21), shared with
  /// InsertBatch. Called after every candidate of `cand` was found full.
  bool InsertEvict(std::uint64_t fp, const Candidates4& cand);

  CuckooParams params_;
  VerticalHasher hasher_;
  PackedTable table_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
  std::string name_;
};

}  // namespace vcf
