// The Vertical Cuckoo Filter (§III-B) and its Inversed variant IVCF (§IV-A).
//
// A VCF is a cuckoo filter whose candidate derivation is vertical hashing
// (4 candidate buckets, Eq. 3) instead of partial-key cuckoo hashing (2
// buckets, Eq. 1). IVCF_i is *the same structure* with a bitmask bm1 holding
// exactly i one-bits: the mask shape tunes r, the probability that an item
// really gets four distinct candidates, trading load factor against false
// positive rate. Insertion, lookup and deletion are the paper's Algorithms
// 1-3, run on the shared engine in core/cuckoo_kernel.hpp — this class is
// the vertical-bitmask CandidatePolicy.
//
// Deviation from Algorithm 1 (documented in DESIGN.md): on insertion failure
// the eviction chain is rolled back, so a failed Insert leaves the filter
// exactly as it was. The paper's pseudo-code silently drops the last victim;
// rollback costs nothing measurable (failures only occur at saturation) and
// gives the library an atomic-insert guarantee.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "core/vertical_hashing.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class VerticalCuckooFilter
    : public Filter,
      public kernel::SlotWalkPolicy<VerticalCuckooFilter> {
 public:
  /// Balanced-mask VCF (the paper's plain "VCF": bm1 = half the index bits).
  explicit VerticalCuckooFilter(const CuckooParams& params);

  /// IVCF_i: bm1 has exactly `mask_ones` one-bits (0 or index_bits degrades
  /// the structure to a standard CF; allowed, r becomes 0).
  VerticalCuckooFilter(const CuckooParams& params, unsigned mask_ones);

  /// Fully explicit mask (tests exercise arbitrary shapes).
  VerticalCuckooFilter(const CuckooParams& params, const VerticalHasher& hasher,
                       std::string name);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Insert only if one of the candidate buckets has a free slot — no
  /// eviction chain. Used by DynamicVcf to probe full segments cheaply; also
  /// useful for latency-critical callers that prefer failing fast.
  bool InsertDirect(std::uint64_t key);

  /// Kernel-pipelined batch ops: 16-key hash+prefetch window, then probe or
  /// place. Results and end state identical to the sequential calls.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  // Fixed table: mutations never reallocate probe-reachable storage.
  bool OptimisticReadSafe() const noexcept override { return true; }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Canonical-entity enumeration for the immutable segment tier. The
  /// canonical bucket is the minimum of the candidate set, which Theorem 1
  /// makes derivable from any member bucket — so the stored-side and
  /// key-side derivations agree by construction.
  bool ForEachFingerprint(
      const std::function<void(std::uint64_t)>& fn) const override;
  bool KeyEntity(std::uint64_t key, std::uint64_t* entity) const override;

  /// Entity transport (elastic resize / shard merge): the candidate set is
  /// re-derived from the entity's canonical bucket and fingerprint via
  /// Theorem 1, so entities move between identically parameterised tables
  /// without the original keys.
  std::size_t MigrationBuckets() const noexcept override {
    return params_.bucket_count;
  }
  bool ForEachEntityInBucket(
      std::uint64_t bucket,
      const std::function<void(unsigned, std::uint64_t)>& fn) const override;
  bool InsertEntity(std::uint64_t entity) override;
  bool ContainsEntity(std::uint64_t entity) const override;
  bool EraseEntity(std::uint64_t entity) override;
  bool ClearSlot(std::uint64_t bucket, unsigned slot) override;

  /// Eq. 8's r for this mask shape.
  double TheoreticalR() const noexcept { return hasher_.TheoreticalR(); }
  const VerticalHasher& hasher() const noexcept { return hasher_; }
  const CuckooParams& params() const noexcept { return params_; }
  const PackedTable& table() const noexcept { return table_; }

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // shared slot-table hooks come from kernel::SlotWalkPolicy) --------------
  struct Hashed {
    Candidates4 cand;
    std::uint64_t fp;
  };
  Hashed HashKey(std::uint64_t key) const noexcept {
    std::uint64_t b1;
    const std::uint64_t fp = Fingerprint(key, &b1);
    return {hasher_.Candidates(b1, FingerprintHash(fp)), fp};
  }
  void PrefetchCandidates(const Hashed& h) const noexcept;
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool ProbeCandidates(const Hashed& h) const noexcept;
  WalkState StartWalk(const Hashed& h);
  bool RelocateVictim(WalkState& walk);
  void AppendCandidates(const Hashed& h, std::vector<std::uint64_t>& out) const;
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    // Theorem 1: the occupant's other candidates follow from its current
    // bucket and fingerprint alone — no access to the original item.
    const std::uint64_t fh = FingerprintHash(occupant);
    for (std::uint64_t z : hasher_.Alternates(bucket, fh)) fn(z, occupant);
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<VerticalCuckooFilter>;

  /// Seed perturbation separating the fingerprint hash from the key hash.
  static constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

  // Defined inline (with HashKey above) so the per-lookup derivation chain
  // stays visible to the inliner; see the matching note in dvcf.hpp.
  std::uint64_t Fingerprint(std::uint64_t key,
                            std::uint64_t* bucket1) const noexcept {
    // One hash computation yields both the primary bucket (low bits) and the
    // fingerprint (bits 32+), matching the reference CF derivation so that
    // the CF/DCF/VCF comparison charges identical hashing work per
    // operation.
    const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
    ++counters_.hash_computations;
    const std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
    *bucket1 = h & hasher_.index_mask();
    return fp == 0 ? 1 : fp;  // 0 is the empty-slot sentinel
  }
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept {
    // hash(eta) is truncated to the hasher's offset width — f bits for the
    // paper-faithful configuration (Fig. 1), so candidate offsets span the
    // low f bits of the index space. This is what makes the load factor
    // depend on the fingerprint length (Fig. 4). A custom hasher (ablation)
    // may widen it.
    ++counters_.hash_computations;
    return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
           hasher_.offset_mask();
  }
  std::uint64_t Digest() const noexcept;
  /// Splits a canonical entity back into its Hashed form (candidate set +
  /// fingerprint). False when the entity is out of range for this geometry.
  bool EntityHashed(std::uint64_t entity, Hashed* h) const noexcept;
  /// The canonical entity of the fingerprint stored in `bucket` —
  /// min-of-candidate-set, shared by ForEachFingerprint and the bucket walk.
  std::uint64_t SlotEntity(std::uint64_t bucket,
                           std::uint64_t fp) const noexcept {
    std::uint64_t canon = bucket;
    for (std::uint64_t z : hasher_.Alternates(bucket, FingerprintHash(fp))) {
      canon = std::min(canon, z);
    }
    return (canon << params_.fingerprint_bits) | fp;
  }

  CuckooParams params_;
  VerticalHasher hasher_;
  PackedTable table_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
  std::string name_;
};

}  // namespace vcf
