#include "core/sizing.hpp"

#include <cmath>
#include <stdexcept>

#include "analysis/model.hpp"
#include "common/bitops.hpp"

namespace vcf {

SizingResult PlanCapacity(const SizingRequest& request) {
  if (request.expected_items == 0) {
    throw std::invalid_argument("PlanCapacity: expected_items must be > 0");
  }
  if (request.target_fpr <= 0.0 || request.target_fpr >= 1.0) {
    throw std::invalid_argument("PlanCapacity: target_fpr must be in (0, 1)");
  }
  if (request.r < 0.0 || request.r > 1.0) {
    throw std::invalid_argument("PlanCapacity: r must be in [0, 1]");
  }
  if (request.headroom < 0.0 || request.headroom >= 1.0) {
    throw std::invalid_argument("PlanCapacity: headroom must be in [0, 1)");
  }

  constexpr unsigned kSlotsPerBucket = 4;  // the paper's standard geometry
  // Achievable load: the VCF family sustains ~98-99.9% depending on r
  // (Fig. 5(c)); be conservative and take 0.95 + 0.045 r, then subtract the
  // requested headroom.
  const double sustainable = 0.95 + 0.045 * request.r;
  const double design_load = sustainable * (1.0 - request.headroom);

  // Slots needed so that expected_items sits at design_load occupancy,
  // rounded up to a power-of-two bucket count.
  const double raw_slots =
      static_cast<double>(request.expected_items) / design_load;
  std::size_t bucket_count = NextPowerOfTwo(static_cast<std::uint64_t>(
      std::ceil(raw_slots / kSlotsPerBucket)));
  if (bucket_count < 1) bucket_count = 1;

  CuckooParams params;
  params.bucket_count = bucket_count;
  params.slots_per_bucket = kSlotsPerBucket;
  params.layout = request.layout;

  const double actual_load = static_cast<double>(request.expected_items) /
                             static_cast<double>(params.slot_count());

  // Eq. 11: minimal fingerprint width for the target FPR at the actual load.
  const unsigned f_bits = model::MinFingerprintBits(
      request.r, kSlotsPerBucket, actual_load, request.target_fpr);
  if (f_bits > 25) {
    throw std::invalid_argument(
        "PlanCapacity: target_fpr requires a fingerprint wider than the "
        "supported 25 bits");
  }
  params.fingerprint_bits = f_bits < 4 ? 4 : f_bits;  // Fig. 4: avoid tiny f

  SizingResult result;
  result.params = params;
  result.design_load = actual_load;
  result.predicted_fpr = model::FalsePositiveUpperBound(
      params.fingerprint_bits, request.r, kSlotsPerBucket, actual_load);
  // Space per item prices the bucket *stride*, so the aligned layout's
  // padding shows up in the planning output.
  const unsigned bucket_bits = kSlotsPerBucket * params.fingerprint_bits;
  const unsigned stride_bits =
      request.layout == TableLayout::kCacheAligned
          ? static_cast<unsigned>(NextPowerOfTwo(bucket_bits))
          : bucket_bits;
  result.bits_per_item =
      static_cast<double>(params.bucket_count) * stride_bits /
      static_cast<double>(request.expected_items);
  return result;
}

std::size_t CeilBucketCount(std::size_t min_buckets) {
  if (min_buckets > kMaxBucketCount) {
    throw std::invalid_argument(
        "CeilBucketCount: budget exceeds the 2^32-bucket index cap");
  }
  const std::size_t rounded =
      static_cast<std::size_t>(NextPowerOfTwo(static_cast<std::uint64_t>(
          min_buckets == 0 ? 1 : min_buckets)));
  if (rounded > kMaxBucketCount) {
    throw std::invalid_argument(
        "CeilBucketCount: budget exceeds the 2^32-bucket index cap");
  }
  return rounded < 1 ? 1 : rounded;
}

CuckooParams NextCapacity(const CuckooParams& current) {
  if (current.bucket_count >= kMaxBucketCount) {
    throw std::invalid_argument(
        "NextCapacity: geometry already at the 2^32-bucket index cap");
  }
  CuckooParams next = current;
  next.bucket_count = CeilBucketCount(current.bucket_count * 2);
  return next;
}

}  // namespace vcf
