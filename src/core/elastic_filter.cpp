#include "core/elastic_filter.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/state_io.hpp"

namespace vcf {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// Elastic body (after the common state header): u32 level | u8 migrating |
// u64 mig_sub | u64 mig_bucket | u64 stash_count | entities | u64 checksum
// | one framed blob per sub. Cursor and stash first so a resumed migration
// restarts on exactly the bucket it stopped at.
constexpr std::uint32_t kDigestTag = 0xE7A5u;
constexpr std::uint64_t kMaxSubBlobBytes = std::uint64_t{1} << 32;

std::uint64_t StashChecksum(const std::vector<std::uint64_t>& stash) {
  std::uint64_t h = Mix64(0xE7A5ULL ^ stash.size());
  for (const std::uint64_t e : stash) h = Mix64(h ^ e);
  return h;
}

template <typename T>
void Put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Take(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

}  // namespace

ElasticFilter::ElasticFilter(SubBuilder builder, ElasticOptions options)
    : builder_(std::move(builder)), options_(options) {
  if (!builder_) {
    throw std::invalid_argument("ElasticFilter: sub builder must not be null");
  }
  if (!(options_.grow_watermark > 0.0) || !(options_.grow_watermark < 1.0)) {
    throw std::invalid_argument(
        "ElasticFilter: grow_watermark must be in (0, 1)");
  }
  if (options_.grow_hysteresis < 0.0) {
    throw std::invalid_argument(
        "ElasticFilter: grow_hysteresis must be >= 0");
  }
  if (options_.max_levels > 24) {
    throw std::invalid_argument(
        "ElasticFilter: max_levels above 24 (16M subs) is a configuration "
        "error");
  }
  if (options_.migrate_buckets_per_op == 0) options_.migrate_buckets_per_op = 1;

  subs_.push_back(builder_());
  if (!subs_[0]) {
    throw std::invalid_argument("ElasticFilter: sub builder returned null");
  }
  std::uint64_t probe = 0;
  if (subs_[0]->MigrationBuckets() == 0 || !subs_[0]->KeyEntity(0, &probe)) {
    throw std::invalid_argument(
        "ElasticFilter: sub filter does not support the entity-transport "
        "surface (needs the canonical-entity cuckoo family)");
  }
  name_ = "Elastic(" + subs_[0]->Name() + ")";
  buckets_per_sub_ = subs_[0]->MigrationBuckets();
  optimistic_safe_ = subs_[0]->OptimisticReadSafe();
  stash_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      options_.stash_capacity == 0 ? 1 : options_.stash_capacity);
  mig_scratch_.reserve(8);
  PublishView({subs_[0].get()}, false);
  RecomputeGrowThreshold(0.0);
}

ElasticFilter::~ElasticFilter() = default;

void ElasticFilter::PublishView(std::vector<Filter*> subs, bool migrating) {
  auto next = std::make_unique<View>();
  next->subs = std::move(subs);
  next->migrating = migrating;
  // Retire-then-publish: if the history push throws, the new view was never
  // visible; superseded views stay alive for stalled optimistic readers.
  view_history_.push_back(std::move(next));
  view_.store(view_history_.back().get(), std::memory_order_release);
}

std::unique_ptr<Filter> ElasticFilter::BuildSub() const {
  auto fresh = builder_();
  if (!fresh || fresh->SlotCount() != subs_[0]->SlotCount() ||
      fresh->Name() != subs_[0]->Name()) {
    throw std::invalid_argument(
        "ElasticFilter: sub builder produced a differently parameterised "
        "filter");
  }
  return fresh;
}

void ElasticFilter::RecomputeGrowThreshold(double floor_load) noexcept {
  const double t = std::min(
      1.0, std::max(options_.grow_watermark,
                    floor_load + options_.grow_hysteresis));
  grow_threshold_items_ =
      static_cast<std::size_t>(t * static_cast<double>(SlotCount()));
}

void ElasticFilter::SetGrowWatermark(double watermark) noexcept {
  if (watermark > 0.0 && watermark < 1.0) {
    options_.grow_watermark = watermark;
    RecomputeGrowThreshold(0.0);
  }
}

// --- growth & migration ----------------------------------------------------

bool ElasticFilter::BeginGrow() {
  if (migrating_.load(kRelaxed)) return false;
  const unsigned level = level_.load(kRelaxed);
  if (level >= options_.max_levels) return false;
  const View& v = CurrentView();
  const std::size_t n = v.subs.size();
  // Build the whole high half before touching any state: a throw here
  // (bad_alloc, builder drift) leaves the filter exactly as it was.
  std::vector<std::unique_ptr<Filter>> fresh;
  fresh.reserve(n);
  for (std::size_t i = 0; i < n; ++i) fresh.push_back(BuildSub());
  if (level == 0) {
    // Entering wrapper-tracked counting (level-0 ops delegate wholesale).
    items_.store(v.subs[0]->ItemCount(), kRelaxed);
  }
  std::vector<Filter*> next(v.subs);
  next.reserve(2 * n);
  for (auto& s : fresh) {
    next.push_back(s.get());
    subs_.push_back(std::move(s));
  }
  mig_sub_.store(0, kRelaxed);
  mig_bucket_.store(0, kRelaxed);
  mig_sweep_needed_ = true;
  PublishView(std::move(next), true);
  migrating_.store(true, kRelaxed);
  level_.store(level + 1, kRelaxed);
  RecomputeGrowThreshold(0.0);  // watermark of the doubled capacity
  return true;
}

void ElasticFilter::PaceMigration(std::size_t ops) {
  if (migrating_.load(kRelaxed)) {
    MigrateBuckets(ops * options_.migrate_buckets_per_op);
  } else if (options_.auto_grow &&
             level_.load(kRelaxed) < options_.max_levels &&
             ItemCount() + ops > grow_threshold_items_) {
    BeginGrow();
  }
}

void ElasticFilter::MigrateStep(std::size_t buckets) {
  if (migrating_.load(kRelaxed)) MigrateBuckets(buckets);
}

bool ElasticFilter::MoveBucketEntities(const View& v, std::size_t sub,
                                       std::uint64_t bucket) {
  Filter& src = *v.subs[sub];
  mig_scratch_.clear();
  src.ForEachEntityInBucket(bucket,
                            [&](unsigned slot, std::uint64_t entity) {
                              mig_scratch_.emplace_back(slot, entity);
                            });
  bool clean = true;
  for (const auto& [slot, entity] : mig_scratch_) {
    const std::size_t j = RouteIn(v, entity);
    if (j == sub) continue;  // route bit clear: stays in the low half
    // Copy THEN clear, so a racing optimistic reader always finds the
    // entity in at least one of its two probe sites.
    if (v.subs[j]->InsertEntity(entity) || StashPush(entity)) {
      src.ClearSlot(bucket, slot);
    } else {
      clean = false;  // stash full: leave the slot, re-scan later
    }
  }
  return clean;
}

void ElasticFilter::MigrateBuckets(std::size_t budget) {
  const View& v = CurrentView();
  if (!v.migrating) return;
  const std::size_t half = v.subs.size() / 2;
  std::uint64_t sub = mig_sub_.load(kRelaxed);
  std::uint64_t bucket = mig_bucket_.load(kRelaxed);
  while (budget-- > 0 && sub < half) {
    if (!MoveBucketEntities(v, sub, bucket)) break;  // re-scan is idempotent
    if (++bucket >= buckets_per_sub_) {
      bucket = 0;
      ++sub;
    }
  }
  mig_sub_.store(sub, kRelaxed);
  mig_bucket_.store(bucket, kRelaxed);
  if (sub >= half) TryFinishMigration();
}

void ElasticFilter::TryFinishMigration() {
  const View& v = CurrentView();
  const std::size_t half = v.subs.size() / 2;
  // Straggler sweep: the incremental scan can be outrun — between two
  // migration steps, a low-route insert's eviction chain may kick a
  // not-yet-migrated entity into a bucket the cursor already passed. One
  // full pass inside this (externally serialized) mutation op catches every
  // such entity, and is sound in a single pass because the sweep itself
  // only moves entities OUT of the low half: with no interleaved inserts,
  // nothing new can land behind it. Normally it finds nothing and costs one
  // bucket iteration per slot; dual reads stay on until it comes up clean.
  bool clean = true;
  if (mig_sweep_needed_) {
    // Clear the flag BEFORE sweeping: the sweep itself never inserts into
    // the low half, so anything it misses can only come from a later
    // low-route insert, which re-arms it.
    mig_sweep_needed_ = false;
    for (std::size_t sub = 0; sub < half; ++sub) {
      for (std::uint64_t b = 0; b < buckets_per_sub_; ++b) {
        clean &= MoveBucketEntities(v, sub, b);
      }
    }
    if (!clean) mig_sweep_needed_ = true;  // stash full mid-sweep: re-scan
  }
  // Drain parked entities into their final homes; targets may still be
  // busy, in which case the migration simply stays open.
  std::uint32_t n = stash_size_.load(kRelaxed);
  for (std::uint32_t i = 0; i < n;) {
    const std::uint64_t entity = stash_[i].load(kRelaxed);
    if (v.subs[RouteIn(v, entity)]->InsertEntity(entity)) {
      stash_[i].store(stash_[n - 1].load(kRelaxed), kRelaxed);
      stash_size_.store(--n, std::memory_order_release);
    } else {
      ++i;
    }
  }
  if (!clean || n != 0) return;
  PublishView(std::vector<Filter*>(v.subs), false);
  migrating_.store(false, kRelaxed);
  // Park the cursors at zero: checkpoints of a quiescent filter carry
  // (0, 0), which is what LoadState demands when `migrating` is clear.
  mig_sub_.store(0, kRelaxed);
  mig_bucket_.store(0, kRelaxed);
  ++resizes_;
  // Hysteresis: a filter that crawled back up to the watermark while
  // migrating must not immediately re-trigger.
  RecomputeGrowThreshold(LoadFactor());
}

std::uint64_t ElasticFilter::MigrationBacklog() const noexcept {
  if (!migrating_.load(kRelaxed)) return 0;
  const View& v = CurrentView();
  const std::uint64_t half = v.subs.size() / 2;
  const std::uint64_t sub = mig_sub_.load(kRelaxed);
  if (sub >= half) return 0;  // only the stash is left
  return (half - sub) * buckets_per_sub_ - mig_bucket_.load(kRelaxed);
}

// --- stash -----------------------------------------------------------------

bool ElasticFilter::StashPush(std::uint64_t entity) noexcept {
  const std::uint32_t n = stash_size_.load(kRelaxed);
  if (n >= options_.stash_capacity) return false;
  stash_[n].store(entity, kRelaxed);
  stash_size_.store(n + 1, std::memory_order_release);
  return true;
}

bool ElasticFilter::StashContains(std::uint64_t entity) const noexcept {
  const std::uint32_t n = stash_size_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (stash_[i].load(kRelaxed) == entity) return true;
  }
  return false;
}

bool ElasticFilter::StashErase(std::uint64_t entity) noexcept {
  const std::uint32_t n = stash_size_.load(kRelaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (stash_[i].load(kRelaxed) == entity) {
      stash_[i].store(stash_[n - 1].load(kRelaxed), kRelaxed);
      stash_size_.store(n - 1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

// --- hot paths -------------------------------------------------------------

bool ElasticFilter::Insert(std::uint64_t key) {
  PaceMigration(1);
  const View& v = CurrentView();
  if (v.subs.size() == 1 && !v.migrating) return v.subs[0]->Insert(key);
  return InsertSlow(v, key);
}

bool ElasticFilter::InsertSlow(const View& v, std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t entity = 0;
  v.subs[0]->KeyEntity(key, &entity);
  // New inserts route at the NEW level even mid-migration, so they never
  // need to be migrated themselves.
  const std::size_t j = RouteIn(v, entity);
  if (v.migrating && j < v.subs.size() / 2) mig_sweep_needed_ = true;
  if (v.subs[j]->InsertEntity(entity)) {
    items_.fetch_add(1, kRelaxed);
    return true;
  }
  ++counters_.insert_failures;
  return false;
}

bool ElasticFilter::Contains(std::uint64_t key) const {
  const View& v = CurrentView();
  if (v.subs.size() == 1 && !v.migrating) return v.subs[0]->Contains(key);
  return ContainsSlow(v, key);
}

bool ElasticFilter::ContainsSlow(const View& v, std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t entity = 0;
  v.subs[0]->KeyEntity(key, &entity);
  const std::size_t j = RouteIn(v, entity);
  if (v.subs[j]->ContainsEntity(entity)) return true;
  if (v.migrating && j >= v.subs.size() / 2) {
    // High-half route, migration in flight: the entity may not have moved
    // out of its pre-growth home (or may be parked in the stash).
    ++dual_reads_;
    return v.subs[j - v.subs.size() / 2]->ContainsEntity(entity) ||
           StashContains(entity);
  }
  return false;
}

void ElasticFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                  bool* results) const {
  const View& v = CurrentView();
  if (v.subs.size() == 1 && !v.migrating) {
    v.subs[0]->ContainsBatch(keys, results);
    return;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    results[i] = ContainsSlow(v, keys[i]);
  }
}

std::size_t ElasticFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                       bool* results) {
  // One pacing call for the whole batch: the migration budget scales with
  // the key count, so per-key amortised work stays bounded.
  PaceMigration(keys.size());
  const View& v = CurrentView();
  if (v.subs.size() == 1 && !v.migrating) {
    return v.subs[0]->InsertBatch(keys, results);
  }
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool ok = InsertSlow(v, keys[i]);
    if (results != nullptr) results[i] = ok;
    accepted += ok ? 1 : 0;
  }
  return accepted;
}

bool ElasticFilter::Erase(std::uint64_t key) {
  PaceMigration(1);
  const View& v = CurrentView();
  if (v.subs.size() == 1 && !v.migrating) return v.subs[0]->Erase(key);
  ++counters_.deletions;
  std::uint64_t entity = 0;
  v.subs[0]->KeyEntity(key, &entity);
  const std::size_t j = RouteIn(v, entity);
  bool erased = v.subs[j]->EraseEntity(entity);
  if (!erased && v.migrating && j >= v.subs.size() / 2) {
    erased = v.subs[j - v.subs.size() / 2]->EraseEntity(entity) ||
             StashErase(entity);
  }
  if (erased) items_.fetch_sub(1, kRelaxed);
  return erased;
}

// --- aggregates ------------------------------------------------------------

std::size_t ElasticFilter::ItemCount() const noexcept {
  const View& v = CurrentView();
  if (v.subs.size() == 1 && !v.migrating) return v.subs[0]->ItemCount();
  return items_.load(kRelaxed);
}

std::size_t ElasticFilter::SlotCount() const noexcept {
  return CurrentView().subs.size() * subs_[0]->SlotCount();
}

double ElasticFilter::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t ElasticFilter::MemoryBytes() const noexcept {
  const View& v = CurrentView();
  std::size_t total = options_.stash_capacity * sizeof(std::uint64_t);
  for (const Filter* s : v.subs) total += s->MemoryBytes();
  return total;
}

void ElasticFilter::Clear() {
  // Only the ACTIVE subs are cleared — graveyard subs (superseded by a
  // LoadState) are unreachable and stay frozen for stalled readers.
  const View& v = CurrentView();
  Filter* first = v.subs[0];
  for (Filter* s : v.subs) s->Clear();
  stash_size_.store(0, std::memory_order_release);
  migrating_.store(false, kRelaxed);
  mig_sub_.store(0, kRelaxed);
  mig_bucket_.store(0, kRelaxed);
  mig_sweep_needed_ = true;
  level_.store(0, kRelaxed);
  items_.store(0, kRelaxed);
  PublishView({first}, false);
  RecomputeGrowThreshold(0.0);
}

bool ElasticFilter::ForEachFingerprint(
    const std::function<void(std::uint64_t)>& fn) const {
  const View& v = CurrentView();
  for (const Filter* s : v.subs) {
    if (!s->ForEachFingerprint(fn)) return false;
  }
  const std::uint32_t n = stash_size_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) fn(stash_[i].load(kRelaxed));
  return true;
}

const OpCounters& ElasticFilter::counters() const noexcept {
  combined_.Reset();
  combined_ += counters_;
  const View& v = CurrentView();
  for (const Filter* s : v.subs) combined_ += s->counters();
  return combined_;
}

void ElasticFilter::ResetCounters() noexcept {
  counters_.Reset();
  const View& v = CurrentView();
  for (Filter* s : v.subs) s->ResetCounters();
}

// --- checkpointing ---------------------------------------------------------

std::uint64_t ElasticFilter::Digest() const noexcept {
  return detail::ConfigDigest(options_.route_salt, kDigestTag, 0, 0);
}

bool ElasticFilter::SaveState(std::ostream& out) const {
  const View& v = CurrentView();
  if (!detail::WriteStateHeader(out, name_, Digest())) return false;
  Put(out, static_cast<std::uint32_t>(level_.load(kRelaxed)));
  Put(out, static_cast<std::uint8_t>(v.migrating ? 1 : 0));
  Put(out, mig_sub_.load(kRelaxed));
  Put(out, mig_bucket_.load(kRelaxed));
  std::vector<std::uint64_t> stash;
  const std::uint32_t n = stash_size_.load(std::memory_order_acquire);
  stash.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) stash.push_back(stash_[i].load(kRelaxed));
  Put(out, static_cast<std::uint64_t>(stash.size()));
  for (const std::uint64_t e : stash) Put(out, e);
  Put(out, StashChecksum(stash));
  if (!out) return false;
  for (const Filter* s : v.subs) {
    std::ostringstream blob;
    if (!s->SaveState(blob)) return false;
    if (!detail::WriteFramedBlob(out, blob.str())) return false;
  }
  return static_cast<bool>(out);
}

bool ElasticFilter::LoadState(std::istream& in) {
  if (!detail::ReadStateHeader(in, name_, Digest())) return false;
  std::uint32_t level = 0;
  std::uint8_t migrating = 0;
  std::uint64_t mig_sub = 0, mig_bucket = 0, stash_count = 0;
  if (!Take(in, level) || !Take(in, migrating) || !Take(in, mig_sub) ||
      !Take(in, mig_bucket) || !Take(in, stash_count)) {
    return false;
  }
  if (level > options_.max_levels || migrating > 1) return false;
  const std::uint64_t count = std::uint64_t{1} << level;
  const std::uint64_t half = count / 2;
  if (migrating != 0) {
    // Valid cursors: scanning (sub < half) or finished-but-stash-pending
    // (sub == half, bucket == 0).
    if (level == 0 || mig_sub > half ||
        (mig_sub < half ? mig_bucket >= buckets_per_sub_ : mig_bucket != 0)) {
      return false;
    }
  } else {
    if (mig_sub != 0 || mig_bucket != 0) return false;
  }
  if (stash_count > options_.stash_capacity ||
      (migrating == 0 && stash_count != 0)) {
    return false;
  }
  std::vector<std::uint64_t> stash(stash_count);
  for (std::uint64_t& e : stash) {
    if (!Take(in, e)) return false;
  }
  std::uint64_t checksum = 0;
  if (!Take(in, checksum) || checksum != StashChecksum(stash)) return false;

  // Stage everything into FRESH subs: the live tables are untouched until
  // the last blob has decoded, so any failure is all-or-nothing (and a
  // stalled optimistic reader's old view stays coherent throughout). The
  // superseded subs retire to the graveyard end of subs_.
  std::vector<std::unique_ptr<Filter>> staged;
  staged.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string blob;
    if (!detail::ReadFramedBlob(in, &blob, kMaxSubBlobBytes)) return false;
    auto sub = BuildSub();  // may throw bad_alloc; filter unchanged then
    std::istringstream blob_in(blob);
    if (!sub->LoadState(blob_in)) return false;
    staged.push_back(std::move(sub));
  }

  for (std::size_t i = 0; i < stash.size(); ++i) {
    stash_[i].store(stash[i], kRelaxed);
  }
  stash_size_.store(static_cast<std::uint32_t>(stash.size()),
                    std::memory_order_release);
  mig_sub_.store(mig_sub, kRelaxed);
  mig_bucket_.store(mig_bucket, kRelaxed);
  mig_sweep_needed_ = true;  // the blob does not carry sweep provenance
  level_.store(level, kRelaxed);
  std::size_t items = stash.size();
  std::vector<Filter*> next;
  next.reserve(count);
  for (auto& s : staged) {
    items += s->ItemCount();
    next.push_back(s.get());
    subs_.push_back(std::move(s));
  }
  items_.store(items, kRelaxed);
  PublishView(std::move(next), migrating != 0);
  migrating_.store(migrating != 0, kRelaxed);
  RecomputeGrowThreshold(0.0);
  return true;
}

}  // namespace vcf
