// Common interface for every approximate-membership-query (AMQ) filter in
// the library: the VCF family, the cuckoo-filter baselines and the Bloom
// family. The experiment harness, tests and examples are written against
// this interface; each concrete filter keeps its hot path non-virtual and
// only the harness-facing entry points dispatch virtually.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "hash/hash64.hpp"
#include "metrics/op_counters.hpp"

namespace vcf {

class Filter {
 public:
  virtual ~Filter() = default;

  Filter(const Filter&) = delete;
  Filter& operator=(const Filter&) = delete;

  /// Inserts a (pre-hashed) 64-bit key. Returns false when the filter is too
  /// full to accept the item (the cuckoo eviction chain hit MAX kicks, or a
  /// counting-Bloom counter would saturate).
  virtual bool Insert(std::uint64_t key) = 0;

  /// Membership query. May return a false positive; never a false negative
  /// for a key that was inserted and not erased.
  virtual bool Contains(std::uint64_t key) const = 0;

  /// Batched membership query: results[i] = Contains(keys[i]). The default
  /// loops; cuckoo filters override with a software-prefetching pipeline
  /// that hides the random-access latency of candidate buckets — the throughput
  /// shape online packet pipelines rely on.
  virtual void ContainsBatch(std::span<const std::uint64_t> keys,
                             bool* results) const;

  /// Batched insertion: results[i] = Insert(keys[i]), applied in key order,
  /// with identical end state to the sequential calls. The default loops;
  /// the cuckoo family overrides with the same two-phase
  /// hash-then-prefetch-then-probe pipeline as ContainsBatch (eviction
  /// chains, when needed, still run per key). `results` may be nullptr when
  /// the caller does not need per-key outcomes. Returns the number of
  /// accepted keys.
  virtual std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                                  bool* results = nullptr);

  /// Removes one previously inserted copy of `key`. Returns false when no
  /// matching fingerprint exists or the filter does not support deletion.
  virtual bool Erase(std::uint64_t key) = 0;

  virtual bool SupportsDeletion() const noexcept = 0;

  /// Display name, e.g. "CF", "IVCF_4", "DVCF_3", "7-VCF", "DCF(d=4)".
  virtual std::string Name() const = 0;

  /// Number of items currently represented.
  virtual std::size_t ItemCount() const noexcept = 0;

  /// Capacity in fingerprint slots (for Bloom variants: the design capacity
  /// n the structure was sized for).
  virtual std::size_t SlotCount() const noexcept = 0;

  /// alpha = ItemCount / SlotCount.
  virtual double LoadFactor() const noexcept = 0;

  /// Bytes of storage for the approximate representation (Eq. 12's C times
  /// item capacity), excluding object headers.
  virtual std::size_t MemoryBytes() const noexcept = 0;

  /// Empties the filter; counters are preserved (use ResetCounters()).
  virtual void Clear() = 0;

  /// Checkpoints the filter's contents to a stream so a long-lived online
  /// service can restore it after a restart without replaying the insertion
  /// stream. Default implementation reports "unsupported" (false).
  virtual bool SaveState(std::ostream& out) const;

  /// Restores contents previously written by SaveState into THIS filter,
  /// which must have been constructed with identical parameters (geometry,
  /// hash kind, seed, variant). Returns false on malformed input or a
  /// parameter mismatch, leaving the filter unchanged.
  virtual bool LoadState(std::istream& in);

  /// Iterates every stored fingerprint as a canonical 64-bit *entity* —
  /// `(canonical candidate bucket << fingerprint_bits) | fingerprint` —
  /// where the canonical bucket is derived from the slot's current bucket
  /// alone (Theorem 1 closure for the VCF family, the XOR pair for CF, mark
  /// bits for k-VCF). Two copies of one key always canonicalise to the same
  /// entity no matter which candidate bucket they landed in, so an immutable
  /// segment compiled from this enumeration answers exactly the membership
  /// queries the live table would. Returns false when the filter cannot
  /// enumerate (Bloom family, compressed baselines) — the default.
  virtual bool ForEachFingerprint(
      const std::function<void(std::uint64_t)>& fn) const;

  /// Lookup-side counterpart of ForEachFingerprint: the canonical entity
  /// `key` would store. Guaranteed equal to the stored-side derivation for
  /// any inserted copy of `key`, so a frozen segment has no false negatives.
  /// Returns false when unsupported (same kinds as ForEachFingerprint).
  virtual bool KeyEntity(std::uint64_t key, std::uint64_t* entity) const;

  // --- Entity transport (elastic resize, shard merge) ---------------------
  // Bucket-granular enumeration plus keyless re-ingest: a migration engine
  // walks a source table bucket by bucket, re-inserts each slot's canonical
  // entity into an identically parameterised target (Theorem 1 derives the
  // full candidate set from the entity alone — no original keys), then
  // frees the source slot. All five hooks default to "unsupported"; the
  // canonical-entity cuckoo family (CF, VCF/IVCF, DVCF) implements them.

  /// Number of enumerable buckets for bucket-granular migration; 0 when the
  /// entity-transport surface is unsupported.
  virtual std::size_t MigrationBuckets() const noexcept { return 0; }

  /// Visits every occupied slot of `bucket` as (slot index, canonical
  /// entity) — ForEachFingerprint's canonicalisation restricted to one
  /// bucket. Returns false when unsupported or `bucket` is out of range.
  virtual bool ForEachEntityInBucket(
      std::uint64_t bucket,
      const std::function<void(unsigned, std::uint64_t)>& fn) const;

  /// Re-ingests a canonical entity produced by ForEachFingerprint /
  /// ForEachEntityInBucket on a filter constructed with IDENTICAL
  /// parameters (geometry, hash kind, seed, variant). Returns false when
  /// the entity is malformed, the table is too full, or unsupported.
  virtual bool InsertEntity(std::uint64_t entity);

  /// Membership by canonical entity (the stored-side derivation, so an
  /// entity enumerated from an identically parameterised filter probes the
  /// exact candidate set its fingerprint lives in).
  virtual bool ContainsEntity(std::uint64_t entity) const;

  /// Removes one stored copy matching `entity` from its candidate set.
  virtual bool EraseEntity(std::uint64_t entity);

  /// Zeroes one slot of `bucket` (migration calls this after the slot's
  /// entity was re-ingested elsewhere). False when the slot is already
  /// empty, out of range, or the surface is unsupported.
  virtual bool ClearSlot(std::uint64_t bucket, unsigned slot);

  /// Visits the innermost concrete filter(s): wrappers (sharded, resilient,
  /// concurrent) recurse into their children; everything else visits
  /// itself. Lets the server find e.g. ElasticFilter instances through any
  /// wrapper composition.
  virtual void ForEachLeaf(const std::function<void(Filter&)>& fn) {
    fn(*this);
  }

  /// Convenience for string keys: hashes to 64 bits (SplitMix) then inserts.
  bool InsertKey(std::string_view key) { return Insert(KeyToU64(key)); }
  bool ContainsKey(std::string_view key) const { return Contains(KeyToU64(key)); }
  bool EraseKey(std::string_view key) { return Erase(KeyToU64(key)); }

  static std::uint64_t KeyToU64(std::string_view key) noexcept {
    return SplitMixHash64(key.data(), key.size(), /*seed=*/0);
  }

  /// True when Contains/ContainsBatch may safely run concurrently with
  /// mutations under an external seqlock protocol (the sharded/concurrent
  /// wrappers' optimistic read path): every byte a probe dereferences stays
  /// allocated for the filter's whole lifetime (mutations never reallocate
  /// or free probe-reachable storage), so a racing read is at worst *torn*
  /// — never a use-after-free — and sequence validation discards it.
  /// Fixed-table cuckoo-family filters return true; growing or
  /// pointer-chasing structures (DynamicVcf, Bloom baselines by default)
  /// keep the conservative false, and the wrappers fall back to locking.
  virtual bool OptimisticReadSafe() const noexcept { return false; }

  /// Operation counters. Virtual so aggregating wrappers (ShardedFilter)
  /// can present a combined view; plain filters return their own counters.
  virtual const OpCounters& counters() const noexcept { return counters_; }
  virtual void ResetCounters() noexcept { counters_.Reset(); }

 protected:
  Filter() = default;
  // Derived filters are movable (factories return them by value) but never
  // copyable through the interface.
  Filter(Filter&&) = default;
  Filter& operator=(Filter&&) = default;
  mutable OpCounters counters_;
};

}  // namespace vcf
