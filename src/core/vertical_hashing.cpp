#include "core/vertical_hashing.hpp"

#include <stdexcept>
#include <unordered_set>

#include "analysis/model.hpp"
#include "common/random.hpp"

namespace vcf {

VerticalHasher::VerticalHasher(unsigned index_bits, unsigned offset_bits,
                               std::uint64_t bm1) noexcept
    : index_bits_(index_bits),
      offset_bits_(offset_bits),
      index_mask_(LowMask(index_bits)),
      offset_mask_(LowMask(offset_bits)),
      bm1_(bm1 & offset_mask_),
      bm2_(~bm1 & offset_mask_) {}

VerticalHasher VerticalHasher::Balanced(unsigned index_bits,
                                        unsigned offset_bits) noexcept {
  return WithOnes(index_bits, offset_bits, offset_bits / 2);
}

VerticalHasher VerticalHasher::WithOnes(unsigned index_bits,
                                        unsigned offset_bits,
                                        unsigned ones) noexcept {
  return VerticalHasher(index_bits, offset_bits, LowMask(ones));
}

double VerticalHasher::TheoreticalR() const noexcept {
  // The fragments that actually distinguish buckets are the mask bits that
  // survive reduction modulo the table size.
  const unsigned o1 = PopCount(bm1_ & index_mask_);
  const unsigned o2 = PopCount(bm2_ & index_mask_);
  return model::ProbFourCandidatesFragments(o1, o2);
}

GeneralizedVerticalHasher::GeneralizedVerticalHasher(unsigned index_bits,
                                                     unsigned offset_bits,
                                                     unsigned k,
                                                     std::uint64_t seed)
    : index_bits_(index_bits),
      offset_bits_(offset_bits),
      index_mask_(LowMask(index_bits)) {
  if (k < 2) {
    throw std::invalid_argument("GeneralizedVerticalHasher: k must be >= 2");
  }
  if (index_bits == 0 || index_bits > 63 || offset_bits == 0 ||
      offset_bits > 63) {
    throw std::invalid_argument(
        "GeneralizedVerticalHasher: widths must be in [1, 63]");
  }
  const std::uint64_t offset_mask = LowMask(offset_bits);
  // k distinct masks are only possible when the offset space is wide enough;
  // 2^offset_bits masks exist in total.
  if (offset_bits < 63 &&
      (std::uint64_t{k} > (std::uint64_t{1} << offset_bits))) {
    throw std::invalid_argument(
        "GeneralizedVerticalHasher: k exceeds the number of distinct masks");
  }

  masks_.reserve(k);
  masks_.push_back(0);
  std::unordered_set<std::uint64_t> used = {0, offset_mask};
  SplitMix64 rng(seed);
  while (masks_.size() + 1 < k) {
    const std::uint64_t m = rng.Next() & offset_mask;
    if (used.insert(m).second) masks_.push_back(m);
  }
  masks_.push_back(offset_mask);
}

}  // namespace vcf
