#include "core/kvcf.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

unsigned MarkBitsFor(unsigned k) {
  if (k < 2) throw std::invalid_argument("KVcf: k must be >= 2");
  return CeilLog2(k);
}
}  // namespace

KVcf::KVcf(const CuckooParams& params, unsigned k)
    : params_(params),
      hasher_(params.index_bits(), params.fingerprint_bits, k,
              params.seed ^ 0x6E6E6E6EULL),
      mark_bits_(MarkBitsFor(k)),
      fp_mask_(LowMask(params.fingerprint_bits)),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits + mark_bits_, params.layout, params.pages),
      rng_(params.seed ^ 0x1C7F4B1D5EEDULL),
      name_(std::to_string(k) + "-VCF") {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("KVcf: unsupported table geometry");
  }
}

std::uint64_t KVcf::Fingerprint(std::uint64_t key,
                                std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & hasher_.index_mask();
  std::uint64_t fp = (h >> 32) & fp_mask_;
  return fp == 0 ? 1 : fp;
}

std::uint64_t KVcf::FingerprintHash(std::uint64_t fp) const noexcept {
  // f-bit hash(eta): the generalized masks live in the f-bit offset space.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) & fp_mask_;
}

KVcf::Hashed KVcf::HashKey(std::uint64_t key) const noexcept {
  Hashed h;
  h.fp = Fingerprint(key, &h.b1);
  h.fh = FingerprintHash(h.fp);
  return h;
}

bool KVcf::TryPlaceDirect(const Hashed& h) noexcept {
  // Try every candidate bucket for an empty slot; the stored slot records
  // which candidate index the fingerprint landed on (the mark field).
  const unsigned k = hasher_.k();
  counters_.bucket_probes += k;
  for (unsigned e = 0; e < k; ++e) {
    const std::uint64_t bucket = hasher_.Candidate(h.b1, h.fh, e);
    if (table_.InsertValue(bucket, EncodeSlot(h.fp, e))) {
      ++items_;
      return true;
    }
  }
  return false;
}

bool KVcf::ProbeCandidates(const Hashed& h) const noexcept {
  const unsigned k = hasher_.k();
  counters_.bucket_probes += k;
  // Match on the fingerprint field only; the mark bits are location
  // metadata, not identity. All k candidates stream through one fused
  // masked probe (chunked for large k).
  std::uint64_t cand[16];
  for (unsigned base = 0; base < k; base += 16) {
    const unsigned n = std::min(k - base, 16u);
    for (unsigned e = 0; e < n; ++e) {
      cand[e] = hasher_.Candidate(h.b1, h.fh, base + e);
    }
    if (table_.ContainsMaskedAny(cand, n, h.fp, fp_mask_)) return true;
  }
  return false;
}

KVcf::WalkUndo KVcf::KickVictim(WalkState& walk) {
  const unsigned slot =
      static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
  const std::uint64_t victim_slot = table_.Get(walk.bucket, slot);
  table_.Set(walk.bucket, slot, EncodeSlot(walk.fp, walk.mark));
  const WalkUndo undo{walk.bucket, slot, victim_slot};
  walk.fp = SlotFingerprint(victim_slot);
  walk.victim_mark = SlotMark(victim_slot);
  return undo;
}

bool KVcf::RelocateVictim(WalkState& walk) {
  // Eq. 7: every other candidate of the victim from (bucket, fp, mark).
  const unsigned k = hasher_.k();
  const std::uint64_t fh = FingerprintHash(walk.fp);
  counters_.bucket_probes += k - 1;
  for (unsigned e = 0; e < k; ++e) {
    if (e == walk.victim_mark) continue;
    const std::uint64_t bucket =
        hasher_.FromSibling(walk.bucket, fh, walk.victim_mark, e);
    if (table_.InsertValue(bucket, EncodeSlot(walk.fp, e))) {
      ++items_;
      return true;
    }
  }
  unsigned next = static_cast<unsigned>(rng_.Below(k - 1));
  if (next >= walk.victim_mark) ++next;  // uniform among e != victim_mark
  walk.bucket = hasher_.FromSibling(walk.bucket, fh, walk.victim_mark, next);
  walk.mark = next;
  return false;
}

bool KVcf::Insert(std::uint64_t key) { return kernel::InsertOne(*this, key); }

bool KVcf::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void KVcf::ContainsBatch(std::span<const std::uint64_t> keys,
                         bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t KVcf::InsertBatch(std::span<const std::uint64_t> keys,
                              bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool KVcf::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const unsigned k = hasher_.k();
  counters_.bucket_probes += k;
  for (unsigned e = 0; e < k; ++e) {
    const std::uint64_t bucket = hasher_.Candidate(b1, fh, e);
    if (table_.EraseMasked(bucket, fp, fp_mask_) != 0) {
      --items_;
      return true;
    }
  }
  return false;
}

void KVcf::Clear() {
  table_.Clear();
  items_ = 0;
}

bool KVcf::ForEachFingerprint(
    const std::function<void(std::uint64_t)>& fn) const {
  ForEachOccupiedSlot([&](std::uint64_t bucket, std::uint64_t slot) {
    const std::uint64_t fp = SlotFingerprint(slot);
    const unsigned mark = SlotMark(slot);
    // Eq. 7 back to candidate 0: masks[0] = 0, so this is the primary B1.
    const std::uint64_t b1 =
        hasher_.FromSibling(bucket, FingerprintHash(fp), mark, 0);
    fn((b1 << params_.fingerprint_bits) | fp);
  });
  return true;
}

bool KVcf::KeyEntity(std::uint64_t key, std::uint64_t* entity) const {
  const Hashed h = HashKey(key);
  *entity = (h.b1 << params_.fingerprint_bits) | h.fp;
  return true;
}

std::uint64_t KVcf::Digest() const noexcept {
  return detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                              hasher_.k(), params_.fingerprint_bits);
}

bool KVcf::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool KVcf::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
