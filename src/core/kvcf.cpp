#include "core/kvcf.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/failpoint.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

unsigned MarkBitsFor(unsigned k) {
  if (k < 2) throw std::invalid_argument("KVcf: k must be >= 2");
  return CeilLog2(k);
}
}  // namespace

KVcf::KVcf(const CuckooParams& params, unsigned k)
    : params_(params),
      hasher_(params.index_bits(), params.fingerprint_bits, k,
              params.seed ^ 0x6E6E6E6EULL),
      mark_bits_(MarkBitsFor(k)),
      fp_mask_(LowMask(params.fingerprint_bits)),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits + mark_bits_, params.layout),
      rng_(params.seed ^ 0x1C7F4B1D5EEDULL),
      name_(std::to_string(k) + "-VCF") {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("KVcf: unsupported table geometry");
  }
}

std::uint64_t KVcf::Fingerprint(std::uint64_t key,
                                std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & hasher_.index_mask();
  std::uint64_t fp = (h >> 32) & fp_mask_;
  return fp == 0 ? 1 : fp;
}

std::uint64_t KVcf::FingerprintHash(std::uint64_t fp) const noexcept {
  // f-bit hash(eta): the generalized masks live in the f-bit offset space.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) & fp_mask_;
}

bool KVcf::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const unsigned k = hasher_.k();

  // Try every candidate bucket for an empty slot; the stored slot records
  // which candidate index the fingerprint landed on (the mark field).
  counters_.bucket_probes += k;
  for (unsigned e = 0; e < k; ++e) {
    const std::uint64_t bucket = hasher_.Candidate(b1, fh, e);
    if (table_.InsertValue(bucket, EncodeSlot(fp, e))) {
      ++items_;
      return true;
    }
  }
  return InsertEvict(fp, b1, fh);
}

bool KVcf::InsertEvict(std::uint64_t fp, std::uint64_t b1, std::uint64_t fh) {
  const unsigned k = hasher_.k();
  // Failure seam: injected eviction-chain exhaustion (see vcf.cpp).
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kEvictionExhausted)) {
    ++counters_.insert_failures;
    return false;
  }

  // Eviction walk (Fig. 3). State: the in-hand fingerprint `fp`, the bucket
  // it is about to be written into, and that bucket's candidate index for it.
  struct Step {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t displaced;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  unsigned mark = static_cast<unsigned>(rng_.Below(k));
  std::uint64_t cur = hasher_.Candidate(b1, fh, mark);
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    const unsigned slot =
        static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
    const std::uint64_t victim_slot = table_.Get(cur, slot);
    table_.Set(cur, slot, EncodeSlot(fp, mark));
    path.push_back({cur, slot, victim_slot});
    fp = SlotFingerprint(victim_slot);
    const unsigned victim_mark = SlotMark(victim_slot);
    ++counters_.evictions;

    // Eq. 7: every other candidate of the victim from (cur, fp, mark).
    fh = FingerprintHash(fp);
    counters_.bucket_probes += k - 1;
    bool placed = false;
    for (unsigned e = 0; e < k && !placed; ++e) {
      if (e == victim_mark) continue;
      const std::uint64_t bucket = hasher_.FromSibling(cur, fh, victim_mark, e);
      if (table_.InsertValue(bucket, EncodeSlot(fp, e))) placed = true;
    }
    if (placed) {
      ++items_;
      return true;
    }
    unsigned next = static_cast<unsigned>(rng_.Below(k - 1));
    if (next >= victim_mark) ++next;  // uniform choice among e != victim_mark
    cur = hasher_.FromSibling(cur, fh, victim_mark, next);
    mark = next;
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    table_.Set(it->bucket, it->slot, it->displaced);
  }
  ++counters_.insert_failures;
  return false;
}

bool KVcf::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const unsigned k = hasher_.k();
  counters_.bucket_probes += k;
  // Match on the fingerprint field only; the mark bits are location
  // metadata, not identity. All k candidates stream through one fused
  // masked probe (chunked for large k).
  std::uint64_t cand[16];
  for (unsigned base = 0; base < k; base += 16) {
    const unsigned n = std::min(k - base, 16u);
    for (unsigned e = 0; e < n; ++e) {
      cand[e] = hasher_.Candidate(b1, fh, base + e);
    }
    if (table_.ContainsMaskedAny(cand, n, fp, fp_mask_)) return true;
  }
  return false;
}

void KVcf::ContainsBatch(std::span<const std::uint64_t> keys,
                         bool* results) const {
  constexpr std::size_t kWindow = 16;
  struct Probe {
    std::uint64_t b1, fh, fp;
  };
  Probe window[kWindow];
  const unsigned k = hasher_.k();

  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.lookups;
      window[i].fp = Fingerprint(keys[done + i], &window[i].b1);
      window[i].fh = FingerprintHash(window[i].fp);
      for (unsigned e = 0; e < k; ++e) {
        table_.PrefetchBucket(hasher_.Candidate(window[i].b1, window[i].fh, e));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += k;
      bool hit = false;
      std::uint64_t cand[16];
      for (unsigned base = 0; base < k && !hit; base += 16) {
        const unsigned m = std::min(k - base, 16u);
        for (unsigned e = 0; e < m; ++e) {
          cand[e] = hasher_.Candidate(window[i].b1, window[i].fh, base + e);
        }
        hit = table_.ContainsMaskedAny(cand, m, window[i].fp, fp_mask_);
      }
      results[done + i] = hit;
    }
    done += n;
  }
}

std::size_t KVcf::InsertBatch(std::span<const std::uint64_t> keys,
                              bool* results) {
  constexpr std::size_t kWindow = 16;
  struct Pending {
    std::uint64_t b1, fh, fp;
  };
  Pending window[kWindow];
  const unsigned k = hasher_.k();

  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.inserts;
      window[i].fp = Fingerprint(keys[done + i], &window[i].b1);
      window[i].fh = FingerprintHash(window[i].fp);
      for (unsigned e = 0; e < k; ++e) {
        table_.PrefetchBucket(hasher_.Candidate(window[i].b1, window[i].fh, e));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += k;
      bool ok = false;
      for (unsigned e = 0; e < k; ++e) {
        const std::uint64_t bucket =
            hasher_.Candidate(window[i].b1, window[i].fh, e);
        if (table_.InsertValue(bucket, EncodeSlot(window[i].fp, e))) {
          ++items_;
          ok = true;
          break;
        }
      }
      if (!ok) ok = InsertEvict(window[i].fp, window[i].b1, window[i].fh);
      accepted += ok ? 1 : 0;
      if (results != nullptr) results[done + i] = ok;
    }
    done += n;
  }
  return accepted;
}

bool KVcf::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const unsigned k = hasher_.k();
  counters_.bucket_probes += k;
  for (unsigned e = 0; e < k; ++e) {
    const std::uint64_t bucket = hasher_.Candidate(b1, fh, e);
    if (table_.EraseMasked(bucket, fp, fp_mask_) != 0) {
      --items_;
      return true;
    }
  }
  return false;
}

void KVcf::Clear() {
  table_.Clear();
  items_ = 0;
}

bool KVcf::SaveState(std::ostream& out) const {
  const std::uint64_t digest =
      detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                           hasher_.k(), params_.fingerprint_bits);
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveTablePayload(out, table_);
}

bool KVcf::LoadState(std::istream& in) {
  const std::uint64_t digest =
      detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                           hasher_.k(), params_.fingerprint_bits);
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &table_)) {
    return false;
  }
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
