// Dynamic Vertical Cuckoo Filter — key-set extension for the VCF, in the
// spirit of the Dynamic Cuckoo filter the paper cites ([12], Chen et al.,
// ICNP 2017): a chain of homogeneous VCFs, growing by one segment whenever
// the active segment rejects an insertion.
//
// The paper notes DCF-style chaining costs lookup throughput and false
// positives (every segment must be probed); this implementation exists both
// as a capacity-extension feature and so that trade-off can be measured
// against a single right-sized VCF (see bench/ablation notes in DESIGN.md).
//
// Deletions compact: when a segment empties it is dropped (except the
// first), keeping the probe chain short under churn.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "core/vcf.hpp"

namespace vcf {

class DynamicVcf : public Filter {
 public:
  /// `segment_params` sizes each segment; `mask_ones` configures the
  /// segments' IVCF bitmask (0 = balanced masks). `max_segments` bounds
  /// growth (0 = unbounded).
  explicit DynamicVcf(const CuckooParams& segment_params, unsigned mask_ones = 0,
                      std::size_t max_segments = 0);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "DynamicVCF"; }
  std::size_t ItemCount() const noexcept override;
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  std::size_t MemoryBytes() const noexcept override;
  void Clear() override;

  std::size_t SegmentCount() const noexcept { return segments_.size(); }

 private:
  std::unique_ptr<VerticalCuckooFilter> MakeSegment(std::size_t index) const;

  CuckooParams segment_params_;
  unsigned mask_ones_;
  std::size_t max_segments_;
  std::vector<std::unique_ptr<VerticalCuckooFilter>> segments_;
};

}  // namespace vcf
