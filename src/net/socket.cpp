#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/failpoint.hpp"

namespace vcf::net {

namespace {

void SetError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

}  // namespace

int ListenTcp(std::uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, "socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError(error, "bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    SetError(error, "listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int ConnectTcp(const std::string& host, std::uint16_t port,
               std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError(error, "connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectTcpTimeout(const std::string& host, std::uint16_t port,
                      int timeout_ms, std::string* error) {
  if (timeout_ms <= 0) return ConnectTcp(host, port, error);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host address: " + host;
    ::close(fd);
    return -1;
  }
  if (!SetNonBlocking(fd)) {
    SetError(error, "fcntl");
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      SetError(error, "connect");
      ::close(fd);
      return -1;
    }
    pollfd p{fd, POLLOUT, 0};
    int r;
    do {
      r = ::poll(&p, 1, timeout_ms);
    } while (r < 0 && errno == EINTR);
    if (r == 0) {
      if (error != nullptr) *error = "connect: timed out";
      ::close(fd);
      return -1;
    }
    if (r < 0) {
      SetError(error, "poll");
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      SetError(error, "connect");
      ::close(fd);
      return -1;
    }
  }
  // Hand callers a blocking fd, matching ConnectTcp.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    SetError(error, "fcntl");
    ::close(fd);
    return -1;
  }
  return fd;
}

std::ptrdiff_t ReadSome(int fd, std::span<std::uint8_t> buf) {
  if (VCF_FAILPOINT_TRIGGERED(failpoints::kNetSocketRead)) {
    errno = EIO;
    return -1;
  }
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

std::ptrdiff_t ReadSomeTimeout(int fd, std::span<std::uint8_t> buf,
                               int timeout_ms) {
  // Opportunistic non-blocking read first: when draining a pipelined
  // response window the later frames are usually already buffered, and the
  // poll() would be a wasted syscall per refill.
  const ssize_t fast = ::recv(fd, buf.data(), buf.size(), MSG_DONTWAIT);
  if (fast > 0) return fast;
  if (fast == 0) return 0;
  if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return -1;
  if (timeout_ms > 0) {
    pollfd p{fd, POLLIN, 0};
    int r;
    do {
      r = ::poll(&p, 1, timeout_ms);
    } while (r < 0 && errno == EINTR);
    if (r == 0) return -3;
    if (r < 0) return -1;
  }
  return ReadSome(fd, buf);
}

bool WriteAll(int fd, std::span<const std::uint8_t> data,
              std::size_t* written) {
  std::size_t done = 0;
  // The write-seam failpoint tears the buffer: roughly half goes out, then
  // the call fails with EIO as if the peer vanished mid-frame.
  const bool torn = VCF_FAILPOINT_TRIGGERED(failpoints::kNetSocketWrite);
  const std::size_t limit = torn ? data.size() / 2 : data.size();
  while (done < data.size()) {
    if (torn && done >= limit) {
      errno = EIO;
      if (written != nullptr) *written = done;
      return false;
    }
    const ssize_t n =
        ::write(fd, data.data() + done,
                (torn ? limit : data.size()) - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (written != nullptr) *written = done;
      return true;  // non-blocking backpressure: partial progress, no error
    }
    if (written != nullptr) *written = done;
    return false;
  }
  if (written != nullptr) *written = done;
  return true;
}

bool WritevAll(int fd, std::span<const struct iovec> iov,
               std::size_t* written) {
  std::size_t total = 0;
  for (const struct iovec& v : iov) total += v.iov_len;
  const bool torn = VCF_FAILPOINT_TRIGGERED(failpoints::kNetSocketWrite);
  const std::size_t limit = torn ? total / 2 : total;
  std::size_t done = 0;
  std::size_t seg = 0;      // first segment with unwritten bytes
  std::size_t seg_off = 0;  // bytes of that segment already written
  while (done < total) {
    if (torn && done >= limit) {
      errno = EIO;
      if (written != nullptr) *written = done;
      return false;
    }
    // Rebuild the remaining window (clipped to the torn-write limit) each
    // iteration; partial writes advance seg/seg_off below.
    constexpr std::size_t kMaxIov = 16;
    struct iovec win[kMaxIov];
    std::size_t wc = 0;
    std::size_t budget = limit - done;
    for (std::size_t s = seg; s < iov.size() && wc < kMaxIov && budget > 0;
         ++s) {
      const std::size_t off = s == seg ? seg_off : 0;
      std::size_t len = iov[s].iov_len - off;
      if (len == 0) continue;
      if (len > budget) len = budget;
      win[wc].iov_base = static_cast<std::uint8_t*>(iov[s].iov_base) + off;
      win[wc].iov_len = len;
      budget -= len;
      ++wc;
    }
    if (wc == 0) break;
    const ssize_t n = ::writev(fd, win, static_cast<int>(wc));
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      std::size_t adv = static_cast<std::size_t>(n);
      while (adv > 0) {
        const std::size_t avail = iov[seg].iov_len - seg_off;
        if (adv < avail) {
          seg_off += adv;
          adv = 0;
        } else {
          adv -= avail;
          ++seg;
          seg_off = 0;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (written != nullptr) *written = done;
      return true;  // non-blocking backpressure: partial progress, no error
    }
    if (written != nullptr) *written = done;
    return false;
  }
  if (written != nullptr) *written = done;
  return true;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SetNoDelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace vcf::net
