// Thin POSIX TCP helpers shared by vcfd, VcfClient and the tests. All
// functions report errors through an out-parameter message instead of errno
// so call sites can surface them without a platform header.
//
// ReadSome is the socket-read seam: the `net/socket_read` failpoint fires
// there as a synthetic I/O error, which is how the robustness tests force
// mid-stream disconnects without a real network fault (docs/robustness.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <sys/uio.h>

namespace vcf::net {

/// Creates a listening TCP socket bound to 127.0.0.1:`port` (port 0 picks an
/// ephemeral port). Returns the fd, or -1 with `*error` set.
int ListenTcp(std::uint16_t port, std::string* error);

/// The port a listening socket is actually bound to (resolves port 0).
std::uint16_t BoundPort(int fd);

/// Blocking connect to host:port. Returns the fd, or -1 with `*error` set.
int ConnectTcp(const std::string& host, std::uint16_t port,
               std::string* error);

/// Like ConnectTcp but gives up after `timeout_ms` milliseconds
/// (non-blocking connect + poll; the returned fd is blocking again).
/// `timeout_ms` <= 0 degenerates to the blocking ConnectTcp.
int ConnectTcpTimeout(const std::string& host, std::uint16_t port,
                      int timeout_ms, std::string* error);

/// One read(2). Returns bytes read (>0), 0 on orderly peer shutdown, -1 on
/// error, -2 when the socket is non-blocking and no data is ready.
std::ptrdiff_t ReadSome(int fd, std::span<std::uint8_t> buf);

/// ReadSome with a deadline: polls up to `timeout_ms` milliseconds for
/// readability first and returns -3 when the deadline expires with no data.
/// `timeout_ms` <= 0 means no deadline (plain ReadSome).
std::ptrdiff_t ReadSomeTimeout(int fd, std::span<std::uint8_t> buf,
                               int timeout_ms);

/// Writes until done or error; short writes are retried. False on error.
/// On a non-blocking socket, `*written` reports progress when the socket
/// backpressures (-1 EAGAIN path); pass nullptr for blocking sockets.
bool WriteAll(int fd, std::span<const std::uint8_t> data,
              std::size_t* written = nullptr);

/// Scatter-gather WriteAll: writes every iovec segment in order with
/// writev(2), so a flush of [old tail, fresh responses] is one syscall
/// instead of a memmove + write. Same contract as WriteAll: short writes
/// retried, `*written` counts total bytes across segments, true on full
/// write or EAGAIN backpressure, false on error. Shares the
/// `net/socket_write` torn-write failpoint.
bool WritevAll(int fd, std::span<const struct iovec> iov,
               std::size_t* written = nullptr);

bool SetNonBlocking(int fd);
bool SetNoDelay(int fd);
void CloseFd(int fd);

}  // namespace vcf::net
