#include "net/proto.hpp"

#include <bit>
#include <cstring>

namespace vcf::net {

namespace {

bool ValidOpcode(std::uint8_t op) noexcept {
  return op <= static_cast<std::uint8_t>(Opcode::kShardSplit);
}

/// Appends the frame length prefix for a payload built by `fill`. The
/// payload is built first into `out` after a 4-byte hole, then the hole is
/// patched — one allocation path, no temporary vector.
template <typename Fill>
void WithFrame(std::vector<std::uint8_t>& out, Fill&& fill) {
  const std::size_t len_pos = out.size();
  PutU32(out, 0);  // patched below
  const std::size_t payload_start = out.size();
  fill();
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - payload_start);
  out[len_pos + 0] = static_cast<std::uint8_t>(payload_len);
  out[len_pos + 1] = static_cast<std::uint8_t>(payload_len >> 8);
  out[len_pos + 2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[len_pos + 3] = static_cast<std::uint8_t>(payload_len >> 24);
}

void PutHeader(std::vector<std::uint8_t>& out, std::uint8_t op_or_status,
               std::uint32_t request_id) {
  out.push_back(kProtoVersion);
  out.push_back(op_or_status);
  PutU16(out, 0);  // reserved
  PutU32(out, request_id);
}

}  // namespace

const char* StatusName(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad_request";
    case Status::kBadVersion: return "bad_version";
    case Status::kBadOpcode: return "bad_opcode";
    case Status::kUnsupported: return "unsupported";
    case Status::kServerError: return "server_error";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kReadOnly: return "read_only";
  }
  return "unknown";
}

// --- Encoding -------------------------------------------------------------

void EncodePingRequest(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                       std::span<const std::uint8_t> echo) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kPing), request_id);
    out.insert(out.end(), echo.begin(), echo.end());
  });
}

void EncodeKeyRequest(std::vector<std::uint8_t>& out, Opcode op,
                      std::uint32_t request_id, std::uint64_t key) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(op), request_id);
    PutU64(out, key);
  });
}

void EncodeBatchRequest(std::vector<std::uint8_t>& out, Opcode op,
                        std::uint32_t request_id,
                        std::span<const std::uint64_t> keys) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(op), request_id);
    PutU32(out, static_cast<std::uint32_t>(keys.size()));
    // One resize for the whole key block; per-key PutU64 would re-check
    // capacity on every store in the client's hottest encode loop.
    const std::size_t at = out.size();
    out.resize(at + keys.size() * 8);
    std::uint8_t* p = out.data() + at;
    for (const std::uint64_t k : keys) {
      for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(k >> (8 * i));
      p += 8;
    }
  });
}

void EncodeEmptyRequest(std::vector<std::uint8_t>& out, Opcode op,
                        std::uint32_t request_id) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(op), request_id);
  });
}

void EncodeShardSplitRequest(std::vector<std::uint8_t>& out,
                             std::uint32_t request_id, std::uint32_t entry) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kShardSplit), request_id);
    PutU32(out, entry);
  });
}

void EncodeErrorResponse(std::vector<std::uint8_t>& out, Status status,
                         std::uint32_t request_id) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(status), request_id);
  });
}

void EncodeFlagResponse(std::vector<std::uint8_t>& out,
                        std::uint32_t request_id, bool flag) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Status::kOk), request_id);
    out.push_back(flag ? 1 : 0);
  });
}

void EncodePingResponse(std::vector<std::uint8_t>& out,
                        std::uint32_t request_id,
                        std::span<const std::uint8_t> echo) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Status::kOk), request_id);
    out.insert(out.end(), echo.begin(), echo.end());
  });
}

void EncodeBatchResponse(std::vector<std::uint8_t>& out, Opcode op,
                         std::uint32_t request_id,
                         std::span<const bool> bits, std::uint32_t accepted) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Status::kOk), request_id);
    PutU32(out, static_cast<std::uint32_t>(bits.size()));
    if (op == Opcode::kInsertBatch) PutU32(out, accepted);
    const std::size_t at = out.size();
    out.resize(at + (bits.size() + 7) / 8, 0);
    std::uint8_t* p = out.data() + at;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) p[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    }
  });
}

void EncodeStatsResponse(std::vector<std::uint8_t>& out,
                         std::uint32_t request_id, const std::string& name,
                         std::uint64_t items, std::uint64_t slots,
                         std::uint64_t memory_bytes, double load_factor,
                         bool supports_deletion,
                         std::uint64_t seqlock_retries,
                         std::uint64_t seqlock_fallbacks,
                         std::uint64_t hugepage_bytes,
                         std::uint64_t elastic_resizes,
                         std::uint64_t elastic_backlog,
                         std::uint64_t elastic_dual_reads) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Status::kOk), request_id);
    const std::uint16_t name_len =
        static_cast<std::uint16_t>(name.size() > 0xFFFF ? 0xFFFF : name.size());
    PutU16(out, name_len);
    out.insert(out.end(), name.begin(), name.begin() + name_len);
    PutU64(out, items);
    PutU64(out, slots);
    PutU64(out, memory_bytes);
    PutU64(out, std::bit_cast<std::uint64_t>(load_factor));
    out.push_back(supports_deletion ? 1 : 0);
    PutU64(out, seqlock_retries);
    PutU64(out, seqlock_fallbacks);
    PutU64(out, hugepage_bytes);
    PutU64(out, elastic_resizes);
    PutU64(out, elastic_backlog);
    PutU64(out, elastic_dual_reads);
  });
}

void EncodeWorkerInfoResponse(std::vector<std::uint8_t>& out,
                              std::uint32_t request_id,
                              std::uint32_t worker_index,
                              std::uint32_t worker_count,
                              std::uint32_t shard_count,
                              std::uint64_t route_salt, bool pinned) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Status::kOk), request_id);
    PutU32(out, worker_index);
    PutU32(out, worker_count);
    PutU32(out, shard_count);
    PutU64(out, route_salt);
    out.push_back(pinned ? 1 : 0);
  });
}

void EncodeReplHello(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                     std::uint64_t epoch, std::uint64_t last_applied_seq) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kReplHello), request_id);
    PutU64(out, epoch);
    PutU64(out, last_applied_seq);
  });
}

void EncodeReplHelloResponse(std::vector<std::uint8_t>& out,
                             std::uint32_t request_id, bool snapshot,
                             std::uint64_t start_seq, std::uint64_t epoch) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Status::kOk), request_id);
    out.push_back(snapshot ? 1 : 0);
    PutU64(out, start_seq);
    PutU64(out, epoch);
  });
}

void EncodeOplogEntry(std::vector<std::uint8_t>& out, std::uint64_t seq,
                      std::uint8_t op, std::uint64_t key) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kOplogEntry), 0);
    PutU64(out, seq);
    out.push_back(op);
    PutU64(out, key);
  });
}

void EncodeOplogAck(std::vector<std::uint8_t>& out, std::uint64_t acked_seq) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kOplogAck), 0);
    PutU64(out, acked_seq);
  });
}

void EncodeSnapshotBegin(std::vector<std::uint8_t>& out,
                         std::uint64_t snapshot_seq,
                         std::uint64_t total_bytes) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kSnapshotBegin), 0);
    PutU64(out, snapshot_seq);
    PutU64(out, total_bytes);
  });
}

void EncodeSnapshotChunk(std::vector<std::uint8_t>& out,
                         std::span<const std::uint8_t> chunk) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kSnapshotChunk), 0);
    out.insert(out.end(), chunk.begin(), chunk.end());
  });
}

void EncodeSnapshotEnd(std::vector<std::uint8_t>& out,
                       std::uint64_t total_bytes, std::uint64_t digest) {
  WithFrame(out, [&] {
    PutHeader(out, static_cast<std::uint8_t>(Opcode::kSnapshotEnd), 0);
    PutU64(out, total_bytes);
    PutU64(out, digest);
  });
}

// --- Decoding -------------------------------------------------------------

namespace {

DecodeResult DecodeHeader(Reader& r, std::uint8_t& op_or_status,
                          std::uint32_t& request_id) {
  std::uint8_t version = 0;
  std::uint16_t reserved = 0;
  if (!r.ReadU8(version) || !r.ReadU8(op_or_status) ||
      !r.ReadU16(reserved) || !r.ReadU32(request_id)) {
    return DecodeResult::kMalformed;
  }
  if (version != kProtoVersion) return DecodeResult::kBadVersion;
  if (reserved != 0) return DecodeResult::kMalformed;
  return DecodeResult::kOk;
}

bool ReadKeyVector(Reader& r, std::vector<std::uint64_t>& keys) {
  std::uint32_t count = 0;
  if (!r.ReadU32(count) || count > kMaxBatchKeys) return false;
  // The count is validated against the actual remaining bytes before the
  // allocation, so a hostile count cannot reserve more than the frame holds.
  if (r.Remaining() != std::size_t{count} * 8) return false;
  keys.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.ReadU64(keys[i])) return false;
  }
  return true;
}

}  // namespace

std::uint32_t PeekRequestId(std::span<const std::uint8_t> payload) noexcept {
  if (payload.size() < kHeaderSize) return 0;
  std::uint32_t id = 0;
  for (int i = 0; i < 4; ++i) {
    id |= static_cast<std::uint32_t>(payload[4 + i]) << (8 * i);
  }
  return id;
}

DecodeResult DecodeRequest(std::span<const std::uint8_t> payload,
                           Request& out) {
  Reader r(payload);
  std::uint8_t op = 0;
  if (const DecodeResult h = DecodeHeader(r, op, out.request_id);
      h != DecodeResult::kOk) {
    return h;
  }
  if (!ValidOpcode(op)) return DecodeResult::kBadOpcode;
  out.opcode = static_cast<Opcode>(op);
  out.key = 0;
  out.keys.clear();
  out.ping_echo.clear();
  out.seq = 0;
  out.epoch = 0;
  out.repl_op = 0;
  out.total_bytes = 0;
  out.digest = 0;
  out.blob.clear();
  out.shard_entry = 0;
  switch (out.opcode) {
    case Opcode::kPing: {
      if (r.Remaining() > kMaxPingEcho) return DecodeResult::kMalformed;
      std::span<const std::uint8_t> echo;
      r.ReadBytes(r.Remaining(), echo);
      out.ping_echo.assign(echo.begin(), echo.end());
      return DecodeResult::kOk;
    }
    case Opcode::kInsert:
    case Opcode::kLookup:
    case Opcode::kDelete:
      if (!r.ReadU64(out.key) || !r.AtEnd()) return DecodeResult::kMalformed;
      return DecodeResult::kOk;
    case Opcode::kInsertBatch:
    case Opcode::kLookupBatch:
      if (!ReadKeyVector(r, out.keys) || !r.AtEnd()) {
        return DecodeResult::kMalformed;
      }
      return DecodeResult::kOk;
    case Opcode::kStats:
    case Opcode::kSnapshot:
    case Opcode::kWorkerInfo:
    case Opcode::kResize:
      if (!r.AtEnd()) return DecodeResult::kMalformed;
      return DecodeResult::kOk;
    case Opcode::kShardSplit:
      if (!r.ReadU32(out.shard_entry) || !r.AtEnd()) {
        return DecodeResult::kMalformed;
      }
      return DecodeResult::kOk;
    case Opcode::kReplHello:
      if (!r.ReadU64(out.epoch) || !r.ReadU64(out.seq) || !r.AtEnd()) {
        return DecodeResult::kMalformed;
      }
      return DecodeResult::kOk;
    case Opcode::kOplogAck:
      if (!r.ReadU64(out.seq) || !r.AtEnd()) return DecodeResult::kMalformed;
      return DecodeResult::kOk;
    case Opcode::kOplogEntry:
      if (!r.ReadU64(out.seq) || !r.ReadU8(out.repl_op) ||
          !r.ReadU64(out.key) || !r.AtEnd() || out.repl_op > 1) {
        return DecodeResult::kMalformed;
      }
      return DecodeResult::kOk;
    case Opcode::kSnapshotBegin:
      if (!r.ReadU64(out.seq) || !r.ReadU64(out.total_bytes) || !r.AtEnd()) {
        return DecodeResult::kMalformed;
      }
      return DecodeResult::kOk;
    case Opcode::kSnapshotChunk: {
      if (r.Remaining() == 0 || r.Remaining() > kReplChunkBytes) {
        return DecodeResult::kMalformed;
      }
      std::span<const std::uint8_t> bytes;
      r.ReadBytes(r.Remaining(), bytes);
      out.blob.assign(bytes.begin(), bytes.end());
      return DecodeResult::kOk;
    }
    case Opcode::kSnapshotEnd:
      if (!r.ReadU64(out.total_bytes) || !r.ReadU64(out.digest) ||
          !r.AtEnd()) {
        return DecodeResult::kMalformed;
      }
      return DecodeResult::kOk;
  }
  return DecodeResult::kBadOpcode;
}

DecodeResult DecodeResponse(std::span<const std::uint8_t> payload,
                            Opcode expect_op, Response& out) {
  Reader r(payload);
  std::uint8_t status = 0;
  if (const DecodeResult h = DecodeHeader(r, status, out.request_id);
      h != DecodeResult::kOk) {
    return h;
  }
  if (status > static_cast<std::uint8_t>(Status::kReadOnly)) {
    return DecodeResult::kMalformed;
  }
  out.status = static_cast<Status>(status);
  out.flag = false;
  out.bitmap.clear();
  out.ping_echo.clear();
  out.seq = 0;
  out.epoch = 0;
  out.worker_index = 0;
  out.worker_count = 0;
  out.shard_count = 0;
  out.route_salt = 0;
  out.pinned = false;
  if (out.status != Status::kOk) {
    // Error responses have an empty body regardless of opcode.
    return r.AtEnd() ? DecodeResult::kOk : DecodeResult::kMalformed;
  }
  switch (expect_op) {
    case Opcode::kPing: {
      if (r.Remaining() > kMaxPingEcho) return DecodeResult::kMalformed;
      std::span<const std::uint8_t> echo;
      r.ReadBytes(r.Remaining(), echo);
      out.ping_echo.assign(echo.begin(), echo.end());
      return DecodeResult::kOk;
    }
    case Opcode::kInsert:
    case Opcode::kLookup:
    case Opcode::kDelete:
    case Opcode::kSnapshot:
    case Opcode::kResize:
    case Opcode::kShardSplit: {
      std::uint8_t flag = 0;
      if (!r.ReadU8(flag) || !r.AtEnd() || flag > 1) {
        return DecodeResult::kMalformed;
      }
      out.flag = flag != 0;
      return DecodeResult::kOk;
    }
    case Opcode::kInsertBatch:
    case Opcode::kLookupBatch: {
      if (!r.ReadU32(out.batch_count) || out.batch_count > kMaxBatchKeys) {
        return DecodeResult::kMalformed;
      }
      if (expect_op == Opcode::kInsertBatch) {
        if (!r.ReadU32(out.batch_accepted) ||
            out.batch_accepted > out.batch_count) {
          return DecodeResult::kMalformed;
        }
      } else {
        out.batch_accepted = 0;
      }
      const std::size_t bitmap_bytes = (out.batch_count + 7) / 8;
      std::span<const std::uint8_t> bits;
      if (!r.ReadBytes(bitmap_bytes, bits) || !r.AtEnd()) {
        return DecodeResult::kMalformed;
      }
      out.bitmap.assign(bits.begin(), bits.end());
      return DecodeResult::kOk;
    }
    case Opcode::kStats: {
      out.seqlock_retries = 0;
      out.seqlock_fallbacks = 0;
      out.hugepage_bytes = 0;
      out.elastic_resizes = 0;
      out.elastic_backlog = 0;
      out.elastic_dual_reads = 0;
      std::uint16_t name_len = 0;
      std::span<const std::uint8_t> name_bytes;
      std::uint64_t lf_bits = 0;
      std::uint8_t deletion = 0;
      if (!r.ReadU16(name_len) || !r.ReadBytes(name_len, name_bytes) ||
          !r.ReadU64(out.items) || !r.ReadU64(out.slots) ||
          !r.ReadU64(out.memory_bytes) || !r.ReadU64(lf_bits) ||
          !r.ReadU8(deletion) || deletion > 1) {
        return DecodeResult::kMalformed;
      }
      // Optional trailers (servers that predate one end there; the fields
      // keep their zero defaults).
      if (!r.AtEnd() &&
          (!r.ReadU64(out.seqlock_retries) ||
           !r.ReadU64(out.seqlock_fallbacks) ||
           !r.ReadU64(out.hugepage_bytes))) {
        return DecodeResult::kMalformed;
      }
      if (!r.AtEnd() &&
          (!r.ReadU64(out.elastic_resizes) ||
           !r.ReadU64(out.elastic_backlog) ||
           !r.ReadU64(out.elastic_dual_reads) || !r.AtEnd())) {
        return DecodeResult::kMalformed;
      }
      out.name.assign(name_bytes.begin(), name_bytes.end());
      out.load_factor = std::bit_cast<double>(lf_bits);
      out.supports_deletion = deletion != 0;
      return DecodeResult::kOk;
    }
    case Opcode::kReplHello: {
      std::uint8_t snapshot = 0;
      if (!r.ReadU8(snapshot) || !r.ReadU64(out.seq) ||
          !r.ReadU64(out.epoch) || !r.AtEnd() || snapshot > 1) {
        return DecodeResult::kMalformed;
      }
      out.flag = snapshot != 0;
      return DecodeResult::kOk;
    }
    case Opcode::kWorkerInfo: {
      std::uint8_t pinned = 0;
      if (!r.ReadU32(out.worker_index) || !r.ReadU32(out.worker_count) ||
          !r.ReadU32(out.shard_count) || !r.ReadU64(out.route_salt) ||
          !r.ReadU8(pinned) || !r.AtEnd() || pinned > 1 ||
          out.worker_count == 0 || out.worker_index >= out.worker_count) {
        return DecodeResult::kMalformed;
      }
      out.pinned = pinned != 0;
      return DecodeResult::kOk;
    }
    case Opcode::kOplogEntry:
    case Opcode::kOplogAck:
    case Opcode::kSnapshotBegin:
    case Opcode::kSnapshotChunk:
    case Opcode::kSnapshotEnd:
      // Stream frames are one-way; they never appear as responses.
      return DecodeResult::kBadOpcode;
  }
  return DecodeResult::kBadOpcode;
}

// --- FrameBuffer ----------------------------------------------------------

bool FrameBuffer::Append(std::span<const std::uint8_t> data) {
  if (poisoned_) return false;
  // Compact once the consumed prefix dominates, so a long-lived pipelined
  // connection does not grow its buffer without bound.
  if (off_ > 4096 && off_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
  // Validate the next length prefix eagerly so a hostile value poisons the
  // stream before anything accumulates behind it.
  if (!have_frame_ && buf_.size() - off_ >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buf_[off_ + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len > kMaxFrameLen) {
      poisoned_ = true;
      return false;
    }
    frame_len_ = len;
    have_frame_ = true;
  }
  return true;
}

bool FrameBuffer::Next(std::span<const std::uint8_t>& payload) {
  if (poisoned_ || !have_frame_) return false;
  if (buf_.size() - off_ < 4 + frame_len_) return false;
  payload = std::span<const std::uint8_t>(buf_).subspan(off_ + 4, frame_len_);
  return true;
}

void FrameBuffer::Pop() {
  if (poisoned_ || !have_frame_) return;
  if (buf_.size() - off_ < 4 + frame_len_) return;
  off_ += 4 + frame_len_;
  have_frame_ = false;
  if (buf_.size() - off_ >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buf_[off_ + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len > kMaxFrameLen) {
      poisoned_ = true;
      return;
    }
    frame_len_ = len;
    have_frame_ = true;
  }
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  }
}

}  // namespace vcf::net
