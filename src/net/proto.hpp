// Wire protocol for vcfd, the networked membership-query service.
//
// Framing: every message is a length-prefixed frame
//
//     u32  payload_length   (little-endian, bytes that follow; <= kMaxFrameLen)
//     ...  payload
//
// and every payload starts with a fixed 8-byte header
//
//     u8   version          (kProtoVersion)
//     u8   opcode           (requests) / status (responses)
//     u16  reserved         (must be zero; rejected otherwise)
//     u32  request_id       (echoed verbatim in the response, so a pipelined
//                            client can match replies to requests)
//
// followed by an opcode-specific body (all integers little-endian):
//
//     PING          request: 0..kMaxPingEcho opaque bytes; response echoes them
//     INSERT        request: u64 key; response: u8 accepted
//     LOOKUP        request: u64 key; response: u8 maybe_present
//     DELETE        request: u64 key; response: u8 erased
//     INSERT_BATCH  request: u32 count + count x u64 keys
//                   response: u32 count + u32 accepted + ceil(count/8) result
//                   bitmap (bit i = key i accepted; LSB-first within a byte)
//     LOOKUP_BATCH  request: u32 count + count x u64 keys
//                   response: u32 count + ceil(count/8) bitmap (bit i =
//                   maybe-present)
//     STATS         request: empty
//                   response: u16 name_len + name bytes + u64 items +
//                   u64 slots + u64 memory_bytes + u64 load_factor_bits
//                   (IEEE-754 double bit pattern) + u8 supports_deletion
//                   [+ trailer u64 seqlock_retries + u64 seqlock_fallbacks +
//                   u64 hugepage_bytes [+ u64 elastic_resizes +
//                   u64 elastic_backlog + u64 elastic_dual_reads]] — each
//                   trailer extends the previous body; decoders accept all
//                   three lengths
//     SNAPSHOT      request: empty; asks the server to checkpoint its filter
//                   to the configured state path now. response: u8 ok
//     WORKER_INFO   request: empty; asks the serving worker to identify
//                   itself. response: u32 worker_index + u32 worker_count +
//                   u32 shard_count + u64 route_salt + u8 pinned. With
//                   pinned=1 the server runs core-affine shard ownership:
//                   shard ShardIndex(key, route_salt, shard_count) is owned
//                   by worker (shard % worker_count), and a client that
//                   routes keys to a connection on the owning worker skips
//                   the server's cross-worker forwarding path entirely
//                   (docs/server.md#core-affine-shard-ownership).
//     RESIZE        request: empty; asks the server to start one elastic
//                   growth step on every elastic leaf now (regardless of
//                   the watermark). response: u8 started (0 when every
//                   leaf was already at max level or mid-migration);
//                   kUnsupported when the filter has no elastic layer.
//     SHARD_SPLIT   request: u32 directory_entry; clones the shard behind
//                   that entry of the sharded wrapper and re-points half of
//                   the entry's alias class at the clone (online; see
//                   core/sharded_filter.hpp). response: u8 ok;
//                   kUnsupported when the filter is not sharded or the
//                   server runs pinned shard ownership, kServerError with
//                   the refusal logged when the split is rejected.
//
// Replication messages (docs/server.md#replication). REPLICATE_HELLO is a
// normal request/response pair; everything after it is a one-way stream —
// the primary pushes OPLOG_ENTRY / SNAPSHOT_* frames down the connection
// the replica opened, and the replica pushes OPLOG_ACK frames back. Stream
// frames reuse the request header with request_id = 0 (there is no reply to
// match).
//
//     REPLICATE_HELLO  request: u64 epoch + u64 last_applied_seq. `epoch`
//                      is the primary run ID the replica's sequence numbers
//                      belong to (0 = no stream yet); a primary restart
//                      restarts the op log at 1, so a stale epoch makes
//                      last_applied_seq meaningless and forces a snapshot.
//                      response: u8 snapshot + u64 start_seq + u64 epoch
//                      (the primary's current run ID, which the replica
//                      adopts). snapshot=0: op-log entries will stream
//                      starting at start_seq = last_applied_seq+1.
//                      snapshot=1: a snapshot bootstrap (BEGIN/CHUNK.../END)
//                      covering ops <= start_seq streams first, then entries
//                      from start_seq+1.
//     OPLOG_ENTRY      u64 seq + u8 op (0 insert, 1 erase) + u64 key
//     OPLOG_ACK        u64 seq (cumulative: replica applied everything <= seq)
//     SNAPSHOT_BEGIN   u64 snapshot_seq + u64 total_bytes
//     SNAPSHOT_CHUNK   1..kReplChunkBytes raw bytes of the framed state blob
//     SNAPSHOT_END     u64 total_bytes + u64 digest (SplitMix hash of blob)
//
// Error responses carry a non-kOk status and an empty body (the request_id
// still identifies which pipelined request failed). A frame too malformed to
// recover a request_id is answered with request_id = 0 and the connection is
// closed — the stream offset can no longer be trusted.
//
// Decoding is strictly bounds-checked: every read is validated against the
// frame length first, trailing bytes are rejected, and batch counts are
// capped (kMaxBatchKeys) before any allocation, so a hostile length field
// cannot drive an over-allocation. See tests/net/proto_test.cpp for the
// truncation/bit-flip sweep.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace vcf::net {

inline constexpr std::uint8_t kProtoVersion = 1;

/// Hard cap on a frame payload. Large enough for a kMaxBatchKeys batch
/// (8 + 4 + 8 * 65536 bytes), small enough that a hostile length prefix
/// cannot make a connection buffer unbounded.
inline constexpr std::uint32_t kMaxFrameLen = 1u << 20;

/// Batch ops are capped so a single request cannot monopolise a worker.
inline constexpr std::uint32_t kMaxBatchKeys = 65536;

/// PING echo payloads are capped (they exist to measure RTT, not move data).
inline constexpr std::uint32_t kMaxPingEcho = 64;

/// Snapshot bootstrap blobs stream in chunks of at most this many bytes per
/// SNAPSHOT_CHUNK frame — well under kMaxFrameLen, large enough that a
/// multi-GiB table moves in a few thousand frames.
inline constexpr std::uint32_t kReplChunkBytes = 256u * 1024;

inline constexpr std::size_t kHeaderSize = 8;  ///< version..request_id

enum class Opcode : std::uint8_t {
  kPing = 0,
  kInsert = 1,
  kLookup = 2,
  kDelete = 3,
  kInsertBatch = 4,
  kLookupBatch = 5,
  kStats = 6,
  kSnapshot = 7,
  kReplHello = 8,
  kOplogEntry = 9,
  kOplogAck = 10,
  kSnapshotBegin = 11,
  kSnapshotChunk = 12,
  kSnapshotEnd = 13,
  kWorkerInfo = 14,
  kResize = 15,
  kShardSplit = 16,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,    ///< malformed frame (bounds, reserved bits, counts)
  kBadVersion = 2,    ///< header version != kProtoVersion
  kBadOpcode = 3,     ///< unknown opcode byte
  kUnsupported = 4,   ///< op not supported by this filter (e.g. DELETE on BF)
  kServerError = 5,   ///< server-side failure (checkpoint write failed, ...)
  kShuttingDown = 6,  ///< server is draining; retry against a new connection
  kReadOnly = 7,      ///< replica rejects mutations; write to the primary
};

const char* StatusName(Status s) noexcept;

/// A decoded request. Batch keys are copied out of the frame (the wire
/// layout is unaligned little-endian, so a span into the buffer would not be
/// a valid uint64_t span on strict-alignment targets).
struct Request {
  Opcode opcode = Opcode::kPing;
  std::uint32_t request_id = 0;
  std::uint64_t key = 0;                 ///< single-key ops / OPLOG_ENTRY
  std::vector<std::uint64_t> keys;       ///< batch ops
  std::vector<std::uint8_t> ping_echo;   ///< PING payload
  // Replication stream fields:
  std::uint64_t seq = 0;          ///< HELLO / OPLOG_ENTRY / ACK / SNAPSHOT_BEGIN
  std::uint64_t epoch = 0;        ///< HELLO: primary run ID (0 = none yet)
  std::uint8_t repl_op = 0;       ///< OPLOG_ENTRY: 0 insert, 1 erase
  std::uint64_t total_bytes = 0;  ///< SNAPSHOT_BEGIN / SNAPSHOT_END
  std::uint64_t digest = 0;       ///< SNAPSHOT_END blob integrity hash
  std::vector<std::uint8_t> blob;  ///< SNAPSHOT_CHUNK bytes
  std::uint32_t shard_entry = 0;   ///< SHARD_SPLIT: directory entry to split
};

/// A decoded response.
struct Response {
  Status status = Status::kOk;
  std::uint32_t request_id = 0;
  bool flag = false;                     ///< single-key result / snapshot ok
  std::uint32_t batch_count = 0;         ///< batch ops
  std::uint32_t batch_accepted = 0;      ///< INSERT_BATCH only
  std::vector<std::uint8_t> bitmap;      ///< batch result bits, LSB-first
  std::vector<std::uint8_t> ping_echo;   ///< PING payload
  // STATS body:
  std::string name;
  std::uint64_t items = 0;
  std::uint64_t slots = 0;
  std::uint64_t memory_bytes = 0;
  double load_factor = 0.0;
  bool supports_deletion = false;
  /// Optional STATS trailer (zero when talking to a server that predates
  /// it): optimistic-read contention and hugepage-backed table bytes.
  std::uint64_t seqlock_retries = 0;
  std::uint64_t seqlock_fallbacks = 0;
  std::uint64_t hugepage_bytes = 0;
  /// Second optional STATS trailer (elastic capacity; zero against servers
  /// that predate it): completed growth steps, source buckets still to
  /// migrate (0 = no migration in flight), and lookups that had to consult
  /// both tables mid-migration.
  std::uint64_t elastic_resizes = 0;
  std::uint64_t elastic_backlog = 0;
  std::uint64_t elastic_dual_reads = 0;
  // REPLICATE_HELLO body: `flag` carries the snapshot indicator, `seq` the
  // start sequence, `epoch` the primary's run ID (see the header comment).
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  // WORKER_INFO body:
  std::uint32_t worker_index = 0;
  std::uint32_t worker_count = 0;
  std::uint32_t shard_count = 0;   ///< 0 when the filter is not sharded
  std::uint64_t route_salt = 0;    ///< ShardedFilter routing salt
  bool pinned = false;             ///< core-affine shard ownership active

  bool BitmapBit(std::uint32_t i) const noexcept {
    return i / 8 < bitmap.size() && ((bitmap[i / 8] >> (i % 8)) & 1) != 0;
  }
};

enum class DecodeResult : std::uint8_t {
  kOk,
  kMalformed,    ///< bounds violation, trailing bytes, reserved != 0, counts
  kBadVersion,
  kBadOpcode,
};

// --- Encoding (appends one complete frame, length prefix included) --------

void EncodePingRequest(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                       std::span<const std::uint8_t> echo = {});
void EncodeKeyRequest(std::vector<std::uint8_t>& out, Opcode op,
                      std::uint32_t request_id, std::uint64_t key);
void EncodeBatchRequest(std::vector<std::uint8_t>& out, Opcode op,
                        std::uint32_t request_id,
                        std::span<const std::uint64_t> keys);
void EncodeEmptyRequest(std::vector<std::uint8_t>& out, Opcode op,
                        std::uint32_t request_id);
void EncodeShardSplitRequest(std::vector<std::uint8_t>& out,
                             std::uint32_t request_id, std::uint32_t entry);

void EncodeErrorResponse(std::vector<std::uint8_t>& out, Status status,
                         std::uint32_t request_id);
void EncodeFlagResponse(std::vector<std::uint8_t>& out,
                        std::uint32_t request_id, bool flag);
void EncodePingResponse(std::vector<std::uint8_t>& out,
                        std::uint32_t request_id,
                        std::span<const std::uint8_t> echo);
/// `bits[i]` = outcome of key i; `accepted` is ignored for LOOKUP_BATCH.
void EncodeBatchResponse(std::vector<std::uint8_t>& out, Opcode op,
                         std::uint32_t request_id,
                         std::span<const bool> bits, std::uint32_t accepted);
void EncodeWorkerInfoResponse(std::vector<std::uint8_t>& out,
                              std::uint32_t request_id,
                              std::uint32_t worker_index,
                              std::uint32_t worker_count,
                              std::uint32_t shard_count,
                              std::uint64_t route_salt, bool pinned);
/// The trailing u64s (seqlock retries/fallbacks, hugepage-backed bytes,
/// then the elastic resize/backlog/dual-read totals) extend the original
/// body in two steps; decoders accept every length, so old clients read new
/// servers and vice versa.
void EncodeStatsResponse(std::vector<std::uint8_t>& out,
                         std::uint32_t request_id, const std::string& name,
                         std::uint64_t items, std::uint64_t slots,
                         std::uint64_t memory_bytes, double load_factor,
                         bool supports_deletion,
                         std::uint64_t seqlock_retries = 0,
                         std::uint64_t seqlock_fallbacks = 0,
                         std::uint64_t hugepage_bytes = 0,
                         std::uint64_t elastic_resizes = 0,
                         std::uint64_t elastic_backlog = 0,
                         std::uint64_t elastic_dual_reads = 0);

// Replication handshake (request/response) and stream frames (one-way,
// request_id = 0).
void EncodeReplHello(std::vector<std::uint8_t>& out, std::uint32_t request_id,
                     std::uint64_t epoch, std::uint64_t last_applied_seq);
void EncodeReplHelloResponse(std::vector<std::uint8_t>& out,
                             std::uint32_t request_id, bool snapshot,
                             std::uint64_t start_seq, std::uint64_t epoch);
void EncodeOplogEntry(std::vector<std::uint8_t>& out, std::uint64_t seq,
                      std::uint8_t op, std::uint64_t key);
void EncodeOplogAck(std::vector<std::uint8_t>& out, std::uint64_t acked_seq);
void EncodeSnapshotBegin(std::vector<std::uint8_t>& out,
                         std::uint64_t snapshot_seq, std::uint64_t total_bytes);
void EncodeSnapshotChunk(std::vector<std::uint8_t>& out,
                         std::span<const std::uint8_t> chunk);
void EncodeSnapshotEnd(std::vector<std::uint8_t>& out,
                       std::uint64_t total_bytes, std::uint64_t digest);

// --- Decoding (frame payload only — the u32 length prefix has already been
// stripped by FrameBuffer) -------------------------------------------------

DecodeResult DecodeRequest(std::span<const std::uint8_t> payload, Request& out);
DecodeResult DecodeResponse(std::span<const std::uint8_t> payload,
                            Opcode expect_op, Response& out);

/// Best-effort request_id recovery from a malformed payload, so the error
/// reply can still name the failing pipelined request. 0 when the payload is
/// too short to contain a header.
std::uint32_t PeekRequestId(std::span<const std::uint8_t> payload) noexcept;

// --- Stream reassembly ----------------------------------------------------

/// Accumulates raw stream bytes and yields complete frame payloads. The
/// server and client both feed their socket reads through one of these; it
/// is the single place the length prefix is validated.
class FrameBuffer {
 public:
  /// Appends raw bytes. Returns false — and poisons the buffer — when a
  /// length prefix exceeds kMaxFrameLen (the stream cannot be resynced).
  bool Append(std::span<const std::uint8_t> data);

  /// True when a complete frame is buffered; `payload` then points into the
  /// buffer and stays valid until the next Append/Pop call.
  bool Next(std::span<const std::uint8_t>& payload);

  /// Discards the frame returned by the last successful Next().
  void Pop();

  bool poisoned() const noexcept { return poisoned_; }
  std::size_t buffered_bytes() const noexcept { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;        ///< consumed prefix, compacted lazily
  std::size_t frame_len_ = 0;  ///< payload length of the frame at off_
  bool have_frame_ = false;
  bool poisoned_ = false;
};

// --- Little-endian primitives (shared by codec and tests) -----------------

inline void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
// Staging through a stack buffer gives one capacity check + memcpy per
// value instead of a capacity check per byte (push_back); the byte shifts
// compile to a single unaligned little-endian store.
inline void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.insert(out.end(), b, b + 4);
}
inline void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.insert(out.end(), b, b + 8);
}

/// Bounds-checked little-endian reader over a frame payload.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  bool ReadU8(std::uint8_t& v) noexcept { return ReadLE(v); }
  bool ReadU16(std::uint16_t& v) noexcept { return ReadLE(v); }
  bool ReadU32(std::uint32_t& v) noexcept { return ReadLE(v); }
  bool ReadU64(std::uint64_t& v) noexcept { return ReadLE(v); }

  bool ReadBytes(std::size_t n, std::span<const std::uint8_t>& out) noexcept {
    if (Remaining() < n) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t Remaining() const noexcept { return data_.size() - pos_; }
  bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  template <typename T>
  bool ReadLE(T& v) noexcept {
    if (Remaining() < sizeof(T)) return false;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    v = static_cast<T>(acc);
    pos_ += sizeof(T);
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace vcf::net
