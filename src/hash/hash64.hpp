// 64-bit hash-function family used by every filter in the library.
//
// The paper evaluates the filters under three hash functions (Table IV):
// FNV-1a, MurmurHash3 and DJB2. All of them are implemented here from their
// published reference descriptions, plus SplitMix64 as a strong default for
// pre-hashed integer keys. A filter is configured with a HashKind and calls
// through HashFn; the indirection is a single function pointer, hoisted out
// of hot loops by the filters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vcf {

/// Which concrete hash function a filter uses.
enum class HashKind : std::uint8_t {
  kFnv1a = 0,    ///< FNV-1a 64-bit (paper's default, §VI-A)
  kMurmur3 = 1,  ///< MurmurHash3 x64 finalized to 64 bits
  kDjb2 = 2,     ///< Bernstein's DJB2, widened to 64 bits
  kSplitMix = 3, ///< SplitMix64 finalizer over the bytes (strong default)
};

/// Human-readable name ("FNV", "Murmur3", "DJB2", "SplitMix").
std::string_view HashKindName(HashKind kind) noexcept;

/// Parses a name accepted case-insensitively; returns kFnv1a for unknown input.
HashKind ParseHashKind(std::string_view name) noexcept;

/// Hashes an arbitrary byte string.
std::uint64_t Hash64(HashKind kind, const void* data, std::size_t len,
                     std::uint64_t seed) noexcept;

/// Hashes a 64-bit key (the common case: workload keys are pre-hashed
/// records). Each kind treats the key as its 8 little-endian bytes so that
/// results are consistent with the byte-string overload.
std::uint64_t Hash64(HashKind kind, std::uint64_t key,
                     std::uint64_t seed) noexcept;

inline std::uint64_t Hash64(HashKind kind, std::string_view s,
                            std::uint64_t seed) noexcept {
  return Hash64(kind, s.data(), s.size(), seed);
}

// Direct entry points (also used by tests against known vectors).
std::uint64_t Fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed) noexcept;
std::uint64_t Murmur3_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept;
std::uint64_t Djb2_64(const void* data, std::size_t len,
                      std::uint64_t seed) noexcept;
std::uint64_t SplitMixHash64(const void* data, std::size_t len,
                             std::uint64_t seed) noexcept;

}  // namespace vcf
