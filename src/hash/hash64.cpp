#include "hash/hash64.hpp"

#include <cstring>

#include "common/random.hpp"

namespace vcf {

namespace {

std::uint64_t LoadLE64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only (x86-64/aarch64-le), asserted in tests
}

constexpr std::uint64_t Rotl(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t Fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed) noexcept {
  // Reference FNV-1a (http://www.isthe.com/chongo/tech/comp/fnv/): the seed
  // perturbs the offset basis, which is the standard seeding extension.
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL ^ seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t Murmur3_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept {
  // MurmurHash3 x64_128 (Austin Appleby), returning h1 of the 128-bit result.
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::size_t nblocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;
  constexpr std::uint64_t c1 = 0x87C37B91114253D5ULL;
  constexpr std::uint64_t c2 = 0x4CF5AD432745937FULL;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = LoadLE64(p + i * 16);
    std::uint64_t k2 = LoadLE64(p + i * 16 + 8);

    k1 *= c1; k1 = Rotl(k1, 31); k1 *= c2; h1 ^= k1;
    h1 = Rotl(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52DCE729;
    k2 *= c2; k2 = Rotl(k2, 33); k2 *= c1; h2 ^= k2;
    h2 = Rotl(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495AB5;
  }

  const std::uint8_t* tail = p + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= std::uint64_t{tail[14]} << 48; [[fallthrough]];
    case 14: k2 ^= std::uint64_t{tail[13]} << 40; [[fallthrough]];
    case 13: k2 ^= std::uint64_t{tail[12]} << 32; [[fallthrough]];
    case 12: k2 ^= std::uint64_t{tail[11]} << 24; [[fallthrough]];
    case 11: k2 ^= std::uint64_t{tail[10]} << 16; [[fallthrough]];
    case 10: k2 ^= std::uint64_t{tail[9]} << 8; [[fallthrough]];
    case 9:
      k2 ^= std::uint64_t{tail[8]};
      k2 *= c2; k2 = Rotl(k2, 33); k2 *= c1; h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= std::uint64_t{tail[7]} << 56; [[fallthrough]];
    case 7: k1 ^= std::uint64_t{tail[6]} << 48; [[fallthrough]];
    case 6: k1 ^= std::uint64_t{tail[5]} << 40; [[fallthrough]];
    case 5: k1 ^= std::uint64_t{tail[4]} << 32; [[fallthrough]];
    case 4: k1 ^= std::uint64_t{tail[3]} << 24; [[fallthrough]];
    case 3: k1 ^= std::uint64_t{tail[2]} << 16; [[fallthrough]];
    case 2: k1 ^= std::uint64_t{tail[1]} << 8; [[fallthrough]];
    case 1:
      k1 ^= std::uint64_t{tail[0]};
      k1 *= c1; k1 = Rotl(k1, 31); k1 *= c2; h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = Fmix64(h1);
  h2 = Fmix64(h2);
  h1 += h2;
  return h1;
}

std::uint64_t Djb2_64(const void* data, std::size_t len,
                      std::uint64_t seed) noexcept {
  // Bernstein's hash (h*33 ^ c variant), widened to 64 bits. DJB2 mixes the
  // high bits poorly; we keep it faithful because Table IV measures exactly
  // that behaviour, but fold the seed in so seeded uses stay distinct.
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 5381 + seed;
  for (std::size_t i = 0; i < len; ++i) {
    h = ((h << 5) + h) ^ p[i];
  }
  return h;
}

std::uint64_t SplitMixHash64(const void* data, std::size_t len,
                             std::uint64_t seed) noexcept {
  // Mixes 8-byte chunks through the SplitMix64 finalizer; cheap and strong
  // for the pre-hashed integer keys the workloads produce.
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = Mix64(seed ^ (0x9E3779B97F4A7C15ULL + len));
  while (len >= 8) {
    h = Mix64(h ^ LoadLE64(p));
    p += 8;
    len -= 8;
  }
  if (len > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, len);
    h = Mix64(h ^ tail);
  }
  return h;
}

std::string_view HashKindName(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kFnv1a: return "FNV";
    case HashKind::kMurmur3: return "Murmur3";
    case HashKind::kDjb2: return "DJB2";
    case HashKind::kSplitMix: return "SplitMix";
  }
  return "FNV";
}

HashKind ParseHashKind(std::string_view name) noexcept {
  auto eq = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const char ca = a[i] >= 'A' && a[i] <= 'Z' ? char(a[i] - 'A' + 'a') : a[i];
      const char cb = b[i] >= 'A' && b[i] <= 'Z' ? char(b[i] - 'A' + 'a') : b[i];
      if (ca != cb) return false;
    }
    return true;
  };
  if (eq(name, "murmur") || eq(name, "murmur3")) return HashKind::kMurmur3;
  if (eq(name, "djb") || eq(name, "djb2")) return HashKind::kDjb2;
  if (eq(name, "splitmix") || eq(name, "mix")) return HashKind::kSplitMix;
  return HashKind::kFnv1a;
}

std::uint64_t Hash64(HashKind kind, const void* data, std::size_t len,
                     std::uint64_t seed) noexcept {
  switch (kind) {
    case HashKind::kFnv1a: return Fnv1a64(data, len, seed);
    case HashKind::kMurmur3: return Murmur3_64(data, len, seed);
    case HashKind::kDjb2: return Djb2_64(data, len, seed);
    case HashKind::kSplitMix: return SplitMixHash64(data, len, seed);
  }
  return Fnv1a64(data, len, seed);
}

std::uint64_t Hash64(HashKind kind, std::uint64_t key,
                     std::uint64_t seed) noexcept {
  std::uint8_t bytes[8];
  std::memcpy(bytes, &key, sizeof(bytes));
  return Hash64(kind, bytes, sizeof(bytes), seed);
}

}  // namespace vcf
