#include "tiered/tiered_filter.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {

constexpr char kBlobName[] = "Tiered";
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxSegments = 1u << 20;

// Same Mix64-chain construction as the segment meta frame.
std::uint64_t BufferChecksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0x5E6D3A75C0DEULL;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = Mix64(h ^ w);
  }
  std::uint64_t tail = 0;
  if (i < size) {
    std::memcpy(&tail, data + i, size - i);
    h = Mix64(h ^ tail);
  }
  return Mix64(h ^ size);
}

void PutRaw64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool TakeVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                std::uint64_t* v) {
  std::uint64_t out = 0;
  for (unsigned shift = 0; shift < 64 && *pos < size; shift += 7) {
    const std::uint8_t b = data[(*pos)++];
    out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = out;
      return true;
    }
  }
  return false;
}

}  // namespace

TieredFilter::TieredFilter(FrontFactory front_factory, TieredOptions options)
    : front_factory_(std::move(front_factory)), options_(options) {
  if (!front_factory_) {
    throw std::invalid_argument("TieredFilter: null front factory");
  }
  front_ = front_factory_();
  std::uint64_t probe = 0;
  if (!front_ || !front_->KeyEntity(0, &probe)) {
    throw std::invalid_argument(
        "TieredFilter: front filter does not support canonical-entity "
        "enumeration (ForEachFingerprint/KeyEntity)");
  }
  view_.store(std::make_shared<const FrozenView>(),
              std::memory_order_release);
}

std::uint64_t TieredFilter::TierDigest() const noexcept {
  return detail::ConfigDigest(
      options_.segment.seed,
      static_cast<unsigned>(options_.segment.kind) + 0x71E0,
      options_.segment.fingerprint_bits,
      static_cast<unsigned>(options_.freeze_watermark * 1024.0));
}

bool TieredFilter::FrozenContains(const FrozenView& view,
                                  std::uint64_t entity) noexcept {
  if (!view.tombstones.empty() && view.tombstones.count(entity) != 0) {
    return false;
  }
  // Post-compact steady state: exactly one segment, probed directly; the
  // general newest-to-oldest walk also answers false for zero segments.
  if (view.segments.size() == 1) return view.segments.front()->Contains(entity);
  for (auto it = view.segments.rbegin(); it != view.segments.rend(); ++it) {
    if ((*it)->Contains(entity)) return true;
  }
  return false;
}

bool TieredFilter::Insert(std::uint64_t key) {
  bool ok = front_->Insert(key);
  if (!ok) {
    // Front full: freeze it out of the way and retry into the fresh front.
    if (!Freeze()) return false;
    ok = front_->Insert(key);
  }
  if (ok) {
    front_empty_.store(false, std::memory_order_relaxed);
    const auto view = View();
    if (!view->tombstones.empty()) {
      std::uint64_t entity = 0;
      front_->KeyEntity(key, &entity);
      if (view->tombstones.count(entity) != 0) {
        // Re-insert resurrects the entity: publish a snapshot without its
        // tombstone (COW — the set is copied, the segments are shared).
        FrozenView next{view->segments, view->tombstones};
        next.tombstones.erase(entity);
        Publish(std::move(next));
      }
    }
    if (front_->LoadFactor() >= options_.freeze_watermark) Freeze();
  }
  return ok;
}

bool TieredFilter::Contains(std::uint64_t key) const {
  // The empty-front skip is the cold-set fast path: a fully frozen tier
  // answers with segment probes alone, no front bucket loads.
  if (!front_empty_.load(std::memory_order_relaxed) && front_->Contains(key)) {
    return true;
  }
  const auto view = View();
  if (view->segments.empty()) return false;
  std::uint64_t entity = 0;
  front_->KeyEntity(key, &entity);
  return FrozenContains(*view, entity);
}

void TieredFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                 bool* results) const {
  const auto view = View();
  if (!front_empty_.load(std::memory_order_relaxed)) {
    front_->ContainsBatch(keys, results);
    if (view->segments.empty()) return;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (results[i]) continue;
      std::uint64_t entity = 0;
      front_->KeyEntity(keys[i], &entity);
      results[i] = FrozenContains(*view, entity);
    }
    return;
  }
  if (view->segments.empty()) {
    std::fill_n(results, keys.size(), false);
    return;
  }
  // Fully frozen fast path: entity-ize a window of keys, then hand it to
  // the segment's pipelined batch probe (single segment, no tombstones —
  // the post-compact steady state); otherwise fall back per key.
  constexpr std::size_t kWindow = 128;
  std::uint64_t entities[kWindow];
  const bool pipelined =
      view->segments.size() == 1 && view->tombstones.empty();
  for (std::size_t at = 0; at < keys.size(); at += kWindow) {
    const std::size_t w = std::min(kWindow, keys.size() - at);
    for (std::size_t i = 0; i < w; ++i) {
      front_->KeyEntity(keys[at + i], &entities[i]);
    }
    if (pipelined) {
      view->segments.front()->ContainsBatch({entities, w}, results + at);
    } else {
      for (std::size_t i = 0; i < w; ++i) {
        results[at + i] = FrozenContains(*view, entities[i]);
      }
    }
  }
}

bool TieredFilter::Erase(std::uint64_t key) {
  bool erased = front_->Erase(key);
  if (erased) {
    front_empty_.store(front_->ItemCount() == 0, std::memory_order_relaxed);
  }
  const auto view = View();
  if (!view->segments.empty()) {
    std::uint64_t entity = 0;
    front_->KeyEntity(key, &entity);
    if (view->tombstones.count(entity) == 0) {
      bool frozen = false;
      for (auto it = view->segments.rbegin(); it != view->segments.rend();
           ++it) {
        if ((*it)->Contains(entity)) {
          frozen = true;
          break;
        }
      }
      if (frozen) {
        // Segments are immutable; shadow the entity instead. Set-like over
        // the frozen tier: one tombstone kills every frozen copy. COW: the
        // tombstone set is copied into the next snapshot.
        FrozenView next{view->segments, view->tombstones};
        next.tombstones.insert(entity);
        Publish(std::move(next));
        erased = true;
      }
    }
  }
  return erased;
}

std::size_t TieredFilter::ItemCount() const noexcept {
  const auto view = View();
  std::size_t frozen = 0;
  for (const auto& s : view->segments) frozen += s->EntityCount();
  return front_->ItemCount() + frozen - view->tombstones.size();
}

std::size_t TieredFilter::SlotCount() const noexcept {
  const auto view = View();
  std::size_t frozen = 0;
  for (const auto& s : view->segments) frozen += s->EntityCount();
  return front_->SlotCount() + frozen;
}

double TieredFilter::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t TieredFilter::MemoryBytes() const noexcept {
  const auto view = View();
  std::size_t bytes = front_->MemoryBytes();
  for (const auto& s : view->segments) bytes += s->ProbeBytes();
  return bytes;
}

std::size_t TieredFilter::SidecarBytes() const noexcept {
  const auto view = View();
  std::size_t bytes = 0;
  for (const auto& s : view->segments) bytes += s->SidecarBytes();
  return bytes;
}

void TieredFilter::Clear() {
  front_->Clear();
  front_empty_.store(true, std::memory_order_relaxed);
  Publish(FrozenView{});
}

bool TieredFilter::Freeze() {
  if (front_->ItemCount() == 0) return true;
  std::vector<std::uint64_t> entities;
  entities.reserve(front_->ItemCount());
  front_->ForEachFingerprint(
      [&](std::uint64_t e) { entities.push_back(e); });
  auto seg = ImmutableSegment::Build(std::move(entities), options_.segment);
  if (!seg.has_value()) return false;
  const auto view = View();
  FrozenView next{view->segments, view->tombstones};
  next.segments.push_back(
      std::make_shared<const ImmutableSegment>(std::move(*seg)));
  Publish(std::move(next));
  front_->Clear();
  front_empty_.store(true, std::memory_order_relaxed);
  return true;
}

bool TieredFilter::Compact() {
  const auto view = View();
  if (view->segments.empty()) {
    if (!view->tombstones.empty()) Publish(FrozenView{});
    return true;
  }
  std::vector<std::uint64_t> survivors;
  for (const auto& s : view->segments) {
    for (std::uint64_t e : s->Entities()) {
      if (view->tombstones.count(e) == 0) survivors.push_back(e);
    }
  }
  if (survivors.empty()) {
    Publish(FrozenView{});
    return true;
  }
  auto merged = ImmutableSegment::Build(std::move(survivors), options_.segment);
  if (!merged.has_value()) return false;
  FrozenView next;
  next.segments.push_back(
      std::make_shared<const ImmutableSegment>(std::move(*merged)));
  Publish(std::move(next));
  return true;
}

bool TieredFilter::SaveState(std::ostream& out) const {
  if (!detail::WriteStateHeader(out, kBlobName, TierDigest())) return false;
  const auto view = View();

  std::ostringstream front_blob;
  if (!front_->SaveState(front_blob)) return false;
  const std::string front_bytes = front_blob.str();
  if (!detail::WriteFramedBlob(out, front_bytes)) return false;

  // Manifest: segment count + tombstones, sorted so identical logical state
  // always serializes to identical bytes.
  std::vector<std::uint64_t> stones(view->tombstones.begin(),
                                    view->tombstones.end());
  std::sort(stones.begin(), stones.end());
  std::vector<std::uint8_t> meta;
  PutRaw64(meta, view->segments.size());
  PutRaw64(meta, stones.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < stones.size(); ++i) {
    PutVarint(meta, i == 0 ? stones[i] : stones[i] - prev);
    prev = stones[i];
  }
  PutRaw64(meta, BufferChecksum(meta.data(), meta.size()));
  if (!detail::WriteFramedBlob(
          out, std::string_view(reinterpret_cast<const char*>(meta.data()),
                                meta.size()))) {
    return false;
  }

  for (const auto& s : view->segments) {
    std::ostringstream seg_blob;
    if (!s->SaveState(seg_blob)) return false;
    if (!detail::WriteFramedBlob(out, seg_blob.str())) return false;
  }
  return true;
}

bool TieredFilter::LoadState(std::istream& in) {
  if (!detail::ReadStateHeader(in, kBlobName, TierDigest())) return false;

  std::string front_bytes;
  if (!detail::ReadFramedBlob(in, &front_bytes, kMaxFrameBytes)) return false;
  // Validate the front blob against a factory-fresh filter first; the live
  // front is only touched after every frame has parsed.
  std::unique_ptr<Filter> staged_front = front_factory_();
  {
    std::istringstream front_in(front_bytes);
    if (!staged_front->LoadState(front_in)) return false;
  }

  std::string meta;
  if (!detail::ReadFramedBlob(in, &meta, kMaxFrameBytes)) return false;
  const auto* data = reinterpret_cast<const std::uint8_t*>(meta.data());
  const std::size_t size = meta.size();
  if (size < 3 * 8) return false;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, data + size - 8, 8);
  if (stored_sum != BufferChecksum(data, size - 8)) return false;
  std::uint64_t seg_count = 0;
  std::uint64_t stone_count = 0;
  std::memcpy(&seg_count, data, 8);
  std::memcpy(&stone_count, data + 8, 8);
  if (seg_count > kMaxSegments || stone_count > size * 10) return false;
  std::size_t pos = 16;
  std::unordered_set<std::uint64_t> staged_stones;
  staged_stones.reserve(static_cast<std::size_t>(stone_count));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < stone_count; ++i) {
    std::uint64_t delta = 0;
    if (!TakeVarint(data, size - 8, &pos, &delta)) return false;
    if (i > 0 && delta == 0) return false;  // must be strictly increasing
    const std::uint64_t e = i == 0 ? delta : prev + delta;
    if (i > 0 && e < prev) return false;
    staged_stones.insert(e);
    prev = e;
  }
  if (pos != size - 8) return false;

  FrozenView staged;
  staged.tombstones = std::move(staged_stones);
  staged.segments.reserve(static_cast<std::size_t>(seg_count));
  for (std::uint64_t i = 0; i < seg_count; ++i) {
    std::string seg_bytes;
    if (!detail::ReadFramedBlob(in, &seg_bytes, kMaxFrameBytes)) return false;
    std::istringstream seg_in(seg_bytes);
    auto seg = ImmutableSegment::LoadState(seg_in, options_.segment);
    if (!seg.has_value()) return false;
    staged.segments.push_back(
        std::make_shared<const ImmutableSegment>(std::move(*seg)));
  }

  // Everything parsed and validated: commit. The live front restores IN
  // PLACE from the already-validated bytes (same bytes + same config that
  // just loaded into the staged copy, so failure here means a torn runtime,
  // not a bad blob — fall back to an empty tier rather than a half commit).
  {
    std::istringstream front_in(front_bytes);
    if (!front_->LoadState(front_in)) {
      Clear();
      return false;
    }
  }
  Publish(std::move(staged));
  front_empty_.store(front_->ItemCount() == 0, std::memory_order_relaxed);
  return true;
}

}  // namespace vcf
