#include "tiered/tiered_filter.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {

constexpr char kBlobName[] = "Tiered";
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxSegments = 1u << 20;

// Same Mix64-chain construction as the segment meta frame.
std::uint64_t BufferChecksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0x5E6D3A75C0DEULL;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = Mix64(h ^ w);
  }
  std::uint64_t tail = 0;
  if (i < size) {
    std::memcpy(&tail, data + i, size - i);
    h = Mix64(h ^ tail);
  }
  return Mix64(h ^ size);
}

void PutRaw64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool TakeVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                std::uint64_t* v) {
  std::uint64_t out = 0;
  for (unsigned shift = 0; shift < 64 && *pos < size; shift += 7) {
    const std::uint8_t b = data[(*pos)++];
    out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = out;
      return true;
    }
  }
  return false;
}

}  // namespace

TieredFilter::TieredFilter(FrontFactory front_factory, TieredOptions options)
    : front_factory_(std::move(front_factory)), options_(options) {
  if (!front_factory_) {
    throw std::invalid_argument("TieredFilter: null front factory");
  }
  front_ = front_factory_();
  std::uint64_t probe = 0;
  if (!front_ || !front_->KeyEntity(0, &probe)) {
    throw std::invalid_argument(
        "TieredFilter: front filter does not support canonical-entity "
        "enumeration (ForEachFingerprint/KeyEntity)");
  }
}

std::uint64_t TieredFilter::TierDigest() const noexcept {
  return detail::ConfigDigest(
      options_.segment.seed,
      static_cast<unsigned>(options_.segment.kind) + 0x71E0,
      options_.segment.fingerprint_bits,
      static_cast<unsigned>(options_.freeze_watermark * 1024.0));
}

bool TieredFilter::FrozenContains(std::uint64_t entity) const noexcept {
  if (!tombstones_.empty() && tombstones_.count(entity) != 0) return false;
  // Post-compact steady state: exactly one segment, probed directly; the
  // general newest-to-oldest walk also answers false for zero segments.
  if (segments_.size() == 1) return segments_.front().Contains(entity);
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->Contains(entity)) return true;
  }
  return false;
}

bool TieredFilter::Insert(std::uint64_t key) {
  bool ok = front_->Insert(key);
  if (!ok) {
    // Front full: freeze it out of the way and retry into the fresh front.
    if (!Freeze()) return false;
    ok = front_->Insert(key);
  }
  if (ok) {
    front_empty_ = false;
    if (!tombstones_.empty()) {
      std::uint64_t entity = 0;
      front_->KeyEntity(key, &entity);
      tombstones_.erase(entity);
    }
    if (front_->LoadFactor() >= options_.freeze_watermark) Freeze();
  }
  return ok;
}

bool TieredFilter::Contains(std::uint64_t key) const {
  // The empty-front skip is the cold-set fast path: a fully frozen tier
  // answers with segment probes alone, no front bucket loads.
  if (!front_empty_ && front_->Contains(key)) return true;
  if (segments_.empty()) return false;
  std::uint64_t entity = 0;
  front_->KeyEntity(key, &entity);
  return FrozenContains(entity);
}

void TieredFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                 bool* results) const {
  if (!front_empty_) {
    front_->ContainsBatch(keys, results);
    if (segments_.empty()) return;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (results[i]) continue;
      std::uint64_t entity = 0;
      front_->KeyEntity(keys[i], &entity);
      results[i] = FrozenContains(entity);
    }
    return;
  }
  if (segments_.empty()) {
    std::fill_n(results, keys.size(), false);
    return;
  }
  // Fully frozen fast path: entity-ize a window of keys, then hand it to
  // the segment's pipelined batch probe (single segment, no tombstones —
  // the post-compact steady state); otherwise fall back per key.
  constexpr std::size_t kWindow = 128;
  std::uint64_t entities[kWindow];
  const bool pipelined = segments_.size() == 1 && tombstones_.empty();
  for (std::size_t at = 0; at < keys.size(); at += kWindow) {
    const std::size_t w = std::min(kWindow, keys.size() - at);
    for (std::size_t i = 0; i < w; ++i) {
      front_->KeyEntity(keys[at + i], &entities[i]);
    }
    if (pipelined) {
      segments_.front().ContainsBatch({entities, w}, results + at);
    } else {
      for (std::size_t i = 0; i < w; ++i) {
        results[at + i] = FrozenContains(entities[i]);
      }
    }
  }
}

bool TieredFilter::Erase(std::uint64_t key) {
  bool erased = front_->Erase(key);
  if (erased) front_empty_ = front_->ItemCount() == 0;
  if (!segments_.empty()) {
    std::uint64_t entity = 0;
    front_->KeyEntity(key, &entity);
    if (tombstones_.count(entity) == 0) {
      bool frozen = false;
      for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
        if (it->Contains(entity)) {
          frozen = true;
          break;
        }
      }
      if (frozen) {
        // Segments are immutable; shadow the entity instead. Set-like over
        // the frozen tier: one tombstone kills every frozen copy.
        tombstones_.insert(entity);
        erased = true;
      }
    }
  }
  return erased;
}

std::size_t TieredFilter::ItemCount() const noexcept {
  std::size_t frozen = 0;
  for (const ImmutableSegment& s : segments_) frozen += s.EntityCount();
  return front_->ItemCount() + frozen - tombstones_.size();
}

std::size_t TieredFilter::SlotCount() const noexcept {
  std::size_t frozen = 0;
  for (const ImmutableSegment& s : segments_) frozen += s.EntityCount();
  return front_->SlotCount() + frozen;
}

double TieredFilter::LoadFactor() const noexcept {
  const std::size_t slots = SlotCount();
  return slots == 0 ? 0.0
                    : static_cast<double>(ItemCount()) /
                          static_cast<double>(slots);
}

std::size_t TieredFilter::MemoryBytes() const noexcept {
  std::size_t bytes = front_->MemoryBytes();
  for (const ImmutableSegment& s : segments_) bytes += s.ProbeBytes();
  return bytes;
}

std::size_t TieredFilter::SidecarBytes() const noexcept {
  std::size_t bytes = 0;
  for (const ImmutableSegment& s : segments_) bytes += s.SidecarBytes();
  return bytes;
}

void TieredFilter::Clear() {
  front_->Clear();
  front_empty_ = true;
  segments_.clear();
  tombstones_.clear();
}

bool TieredFilter::Freeze() {
  if (front_->ItemCount() == 0) return true;
  std::vector<std::uint64_t> entities;
  entities.reserve(front_->ItemCount());
  front_->ForEachFingerprint(
      [&](std::uint64_t e) { entities.push_back(e); });
  auto seg = ImmutableSegment::Build(std::move(entities), options_.segment);
  if (!seg.has_value()) return false;
  segments_.push_back(std::move(*seg));
  front_->Clear();
  front_empty_ = true;
  return true;
}

bool TieredFilter::Compact() {
  if (segments_.empty()) {
    tombstones_.clear();
    return true;
  }
  std::vector<std::uint64_t> survivors;
  for (const ImmutableSegment& s : segments_) {
    for (std::uint64_t e : s.Entities()) {
      if (tombstones_.count(e) == 0) survivors.push_back(e);
    }
  }
  if (survivors.empty()) {
    segments_.clear();
    tombstones_.clear();
    return true;
  }
  auto merged = ImmutableSegment::Build(std::move(survivors), options_.segment);
  if (!merged.has_value()) return false;
  segments_.clear();
  segments_.push_back(std::move(*merged));
  tombstones_.clear();
  return true;
}

bool TieredFilter::SaveState(std::ostream& out) const {
  if (!detail::WriteStateHeader(out, kBlobName, TierDigest())) return false;

  std::ostringstream front_blob;
  if (!front_->SaveState(front_blob)) return false;
  const std::string front_bytes = front_blob.str();
  if (!detail::WriteFramedBlob(out, front_bytes)) return false;

  // Manifest: segment count + tombstones, sorted so identical logical state
  // always serializes to identical bytes.
  std::vector<std::uint64_t> stones(tombstones_.begin(), tombstones_.end());
  std::sort(stones.begin(), stones.end());
  std::vector<std::uint8_t> meta;
  PutRaw64(meta, segments_.size());
  PutRaw64(meta, stones.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < stones.size(); ++i) {
    PutVarint(meta, i == 0 ? stones[i] : stones[i] - prev);
    prev = stones[i];
  }
  PutRaw64(meta, BufferChecksum(meta.data(), meta.size()));
  if (!detail::WriteFramedBlob(
          out, std::string_view(reinterpret_cast<const char*>(meta.data()),
                                meta.size()))) {
    return false;
  }

  for (const ImmutableSegment& s : segments_) {
    std::ostringstream seg_blob;
    if (!s.SaveState(seg_blob)) return false;
    if (!detail::WriteFramedBlob(out, seg_blob.str())) return false;
  }
  return true;
}

bool TieredFilter::LoadState(std::istream& in) {
  if (!detail::ReadStateHeader(in, kBlobName, TierDigest())) return false;

  std::string front_bytes;
  if (!detail::ReadFramedBlob(in, &front_bytes, kMaxFrameBytes)) return false;
  std::unique_ptr<Filter> staged_front = front_factory_();
  {
    std::istringstream front_in(front_bytes);
    if (!staged_front->LoadState(front_in)) return false;
  }

  std::string meta;
  if (!detail::ReadFramedBlob(in, &meta, kMaxFrameBytes)) return false;
  const auto* data = reinterpret_cast<const std::uint8_t*>(meta.data());
  const std::size_t size = meta.size();
  if (size < 3 * 8) return false;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, data + size - 8, 8);
  if (stored_sum != BufferChecksum(data, size - 8)) return false;
  std::uint64_t seg_count = 0;
  std::uint64_t stone_count = 0;
  std::memcpy(&seg_count, data, 8);
  std::memcpy(&stone_count, data + 8, 8);
  if (seg_count > kMaxSegments || stone_count > size * 10) return false;
  std::size_t pos = 16;
  std::unordered_set<std::uint64_t> staged_stones;
  staged_stones.reserve(static_cast<std::size_t>(stone_count));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < stone_count; ++i) {
    std::uint64_t delta = 0;
    if (!TakeVarint(data, size - 8, &pos, &delta)) return false;
    if (i > 0 && delta == 0) return false;  // must be strictly increasing
    const std::uint64_t e = i == 0 ? delta : prev + delta;
    if (i > 0 && e < prev) return false;
    staged_stones.insert(e);
    prev = e;
  }
  if (pos != size - 8) return false;

  std::vector<ImmutableSegment> staged_segments;
  staged_segments.reserve(static_cast<std::size_t>(seg_count));
  for (std::uint64_t i = 0; i < seg_count; ++i) {
    std::string seg_bytes;
    if (!detail::ReadFramedBlob(in, &seg_bytes, kMaxFrameBytes)) return false;
    std::istringstream seg_in(seg_bytes);
    auto seg = ImmutableSegment::LoadState(seg_in, options_.segment);
    if (!seg.has_value()) return false;
    staged_segments.push_back(std::move(*seg));
  }

  // Everything parsed and validated: commit atomically.
  front_ = std::move(staged_front);
  segments_ = std::move(staged_segments);
  tombstones_ = std::move(staged_stones);
  front_empty_ = front_->ItemCount() == 0;
  return true;
}

}  // namespace vcf
