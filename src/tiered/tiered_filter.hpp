// LSM-style two-level filter: a small mutable cuckoo-family front absorbs
// inserts and deletes at full speed, and an ordered list of immutable
// xor / binary-fuse segments (segment/segment.hpp) holds the frozen cold
// set at a fraction of the front's bits per key.
//
// Lifecycle mirrors an LSM tree's memtable/SST split:
//
//   Insert --> front; when the front's load factor crosses the freeze
//   watermark the front is compiled into a new segment (Freeze) and reset.
//   Lookup  --> front first (skipped entirely while the front is empty —
//   the fully-frozen cold-set fast path), then segments newest -> oldest.
//   Erase   --> removed from the front if present there; an entity living
//   in a frozen segment is shadowed by a tombstone instead (segments are
//   immutable), which a later re-insert of the same entity clears.
//   Compact --> merges every segment (minus tombstones) into one.
//
// Correctness rests on the canonical-entity contract of
// Filter::ForEachFingerprint / Filter::KeyEntity: the stored-side and
// key-side derivations agree for any inserted key, so freezing introduces
// no false negatives, and false positives stay at the segment's 2^-g.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/filter.hpp"
#include "segment/segment.hpp"

namespace vcf {

struct TieredOptions {
  /// Builder configuration for frozen segments (kind, fingerprint width,
  /// seed, retry budget). Every segment of one tier shares it.
  SegmentParams segment;

  /// Front load factor at or above which Insert auto-freezes. 1.0 (or
  /// anything >= 1.0) effectively disables auto-freeze: the front then only
  /// freezes explicitly or when an insert fails outright.
  double freeze_watermark = 0.85;
};

class TieredFilter : public Filter {
 public:
  /// Constructs fresh, identically-configured fronts; called once at
  /// construction and once per LoadState (staged restore builds the new
  /// front off to the side before committing).
  using FrontFactory = std::function<std::unique_ptr<Filter>()>;

  /// Throws std::invalid_argument when the factory's filters do not support
  /// the canonical-entity hooks (Bloom family, compressed baselines).
  explicit TieredFilter(FrontFactory front_factory, TieredOptions options = {});

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override {
    return front_->SupportsDeletion();
  }
  std::string Name() const override { return "Tiered(" + front_->Name() + ")"; }

  /// Live membership count: front items plus frozen entities not shadowed
  /// by a tombstone.
  std::size_t ItemCount() const noexcept override;
  /// Front slots plus one virtual slot per frozen entity (segments are
  /// always exactly full).
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  /// Approximate-representation bytes: front table plus segment probe
  /// arrays. Entity sidecars are cold restore/compact data; account them
  /// via SidecarBytes().
  std::size_t MemoryBytes() const noexcept override;
  std::size_t SidecarBytes() const noexcept;
  void Clear() override;

  /// Compiles the current front into a new (newest) segment and resets the
  /// front. No-op success on an empty front. Returns false — with the tier
  /// unchanged — only when every build seed fails.
  bool Freeze();

  /// Merges all segments into one, dropping tombstoned entities for good.
  /// No-op success with zero segments; clears everything frozen when the
  /// survivor set is empty. Returns false (tier unchanged) on build failure.
  bool Compact();

  /// Canonical versioned tier blob: header, framed front checkpoint, framed
  /// checksummed manifest (segment count + sorted tombstones), then one
  /// framed segment blob per segment, newest last. Save-load-save is
  /// byte-identical.
  bool SaveState(std::ostream& out) const override;
  /// All-or-nothing: stages the front (via the factory), manifest and every
  /// segment before committing any of them.
  bool LoadState(std::istream& in) override;

  std::size_t SegmentCount() const noexcept { return segments_.size(); }
  std::size_t TombstoneCount() const noexcept { return tombstones_.size(); }
  const ImmutableSegment& Segment(std::size_t i) const { return segments_[i]; }
  Filter& front() noexcept { return *front_; }
  const Filter& front() const noexcept { return *front_; }
  const TieredOptions& options() const noexcept { return options_; }

  /// Wrapper view: hot-path op totals live on the front's counters.
  const OpCounters& counters() const noexcept override {
    return front_->counters();
  }
  void ResetCounters() noexcept override { front_->ResetCounters(); }

 private:
  std::uint64_t TierDigest() const noexcept;
  /// True when `entity` lives in some segment (newest -> oldest) and is not
  /// tombstoned.
  bool FrozenContains(std::uint64_t entity) const noexcept;

  FrontFactory front_factory_;
  TieredOptions options_;
  std::unique_ptr<Filter> front_;
  /// Cached `front_->ItemCount() == 0`, refreshed at every mutation point,
  /// so the per-lookup empty-front skip costs a byte load instead of a
  /// virtual call — on a fully frozen tier that call was the single largest
  /// slice of Contains.
  bool front_empty_ = true;
  /// Oldest first; lookups walk it back-to-front (newest wins).
  std::vector<ImmutableSegment> segments_;
  /// Entities erased from the frozen tier; consulted after a front miss,
  /// cleared entity-wise on re-insert and wholesale on Compact.
  std::unordered_set<std::uint64_t> tombstones_;
};

}  // namespace vcf
