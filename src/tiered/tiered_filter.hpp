// LSM-style two-level filter: a small mutable cuckoo-family front absorbs
// inserts and deletes at full speed, and an ordered list of immutable
// xor / binary-fuse segments (segment/segment.hpp) holds the frozen cold
// set at a fraction of the front's bits per key.
//
// Lifecycle mirrors an LSM tree's memtable/SST split:
//
//   Insert --> front; when the front's load factor crosses the freeze
//   watermark the front is compiled into a new segment (Freeze) and reset.
//   Lookup  --> front first (skipped entirely while the front is empty —
//   the fully-frozen cold-set fast path), then segments newest -> oldest.
//   Erase   --> removed from the front if present there; an entity living
//   in a frozen segment is shadowed by a tombstone instead (segments are
//   immutable), which a later re-insert of the same entity clears.
//   Compact --> merges every segment (minus tombstones) into one.
//
// Correctness rests on the canonical-entity contract of
// Filter::ForEachFingerprint / Filter::KeyEntity: the stored-side and
// key-side derivations agree for any inserted key, so freezing introduces
// no false negatives, and false positives stay at the segment's 2^-g.
//
// Concurrency: the frozen tier is published as an immutable copy-on-write
// snapshot (FrozenView) behind std::atomic<shared_ptr>. Mutators — which
// still require external exclusion, e.g. a wrapping ConcurrentFilter or
// ShardedFilter — never modify a published view; Freeze/Compact/Clear/
// Erase-of-frozen/LoadState build a fresh view and swap the pointer, so a
// concurrent optimistic (seqlock) reader either sees the complete old
// snapshot or the complete new one and can never dereference freed segment
// memory. The trade-offs are deliberate and documented: tombstone changes
// copy the whole tombstone set (O(#tombstones) per frozen-tier erase), and
// the shared_ptr swap itself uses libstdc++'s internal spin-guarded
// atomic<shared_ptr> (readers copy the pointer in a handful of
// instructions; they never wait out a writer's critical section).
// OptimisticReadSafe() forwards the front's verdict, since the front table
// is probed in place; LoadState restores the front in place (never
// replaces the object) for the same reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/filter.hpp"
#include "segment/segment.hpp"

namespace vcf {

struct TieredOptions {
  /// Builder configuration for frozen segments (kind, fingerprint width,
  /// seed, retry budget). Every segment of one tier shares it.
  SegmentParams segment;

  /// Front load factor at or above which Insert auto-freezes. 1.0 (or
  /// anything >= 1.0) effectively disables auto-freeze: the front then only
  /// freezes explicitly or when an insert fails outright.
  double freeze_watermark = 0.85;
};

class TieredFilter : public Filter {
 public:
  /// Constructs fresh, identically-configured fronts; called once at
  /// construction and once per LoadState (staged restore builds the new
  /// front off to the side before committing).
  using FrontFactory = std::function<std::unique_ptr<Filter>()>;

  /// Throws std::invalid_argument when the factory's filters do not support
  /// the canonical-entity hooks (Bloom family, compressed baselines).
  explicit TieredFilter(FrontFactory front_factory, TieredOptions options = {});

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override {
    return front_->SupportsDeletion();
  }
  std::string Name() const override { return "Tiered(" + front_->Name() + ")"; }

  /// Live membership count: front items plus frozen entities not shadowed
  /// by a tombstone.
  std::size_t ItemCount() const noexcept override;
  /// Front slots plus one virtual slot per frozen entity (segments are
  /// always exactly full).
  std::size_t SlotCount() const noexcept override;
  double LoadFactor() const noexcept override;
  /// Approximate-representation bytes: front table plus segment probe
  /// arrays. Entity sidecars are cold restore/compact data; account them
  /// via SidecarBytes().
  std::size_t MemoryBytes() const noexcept override;
  std::size_t SidecarBytes() const noexcept;
  void Clear() override;

  /// Compiles the current front into a new (newest) segment and resets the
  /// front. No-op success on an empty front. Returns false — with the tier
  /// unchanged — only when every build seed fails.
  bool Freeze();

  /// Merges all segments into one, dropping tombstoned entities for good.
  /// No-op success with zero segments; clears everything frozen when the
  /// survivor set is empty. Returns false (tier unchanged) on build failure.
  bool Compact();

  /// Canonical versioned tier blob: header, framed front checkpoint, framed
  /// checksummed manifest (segment count + sorted tombstones), then one
  /// framed segment blob per segment, newest last. Save-load-save is
  /// byte-identical.
  bool SaveState(std::ostream& out) const override;
  /// All-or-nothing: stages the front blob, manifest and every segment off
  /// to the side, then commits by restoring the live front IN PLACE and
  /// publishing a fresh frozen view (the front object's address never
  /// changes — optimistic readers depend on that).
  bool LoadState(std::istream& in) override;

  std::size_t SegmentCount() const noexcept { return View()->segments.size(); }
  std::size_t TombstoneCount() const noexcept {
    return View()->tombstones.size();
  }
  /// Quiesced test/monitoring hook: the reference is valid only until the
  /// next frozen-tier mutation (Freeze/Compact/Clear/Erase/LoadState).
  const ImmutableSegment& Segment(std::size_t i) const {
    return *View()->segments[i];
  }
  Filter& front() noexcept { return *front_; }
  const Filter& front() const noexcept { return *front_; }
  const TieredOptions& options() const noexcept { return options_; }

  /// Lock-free-readable iff the front is: the frozen tier is already
  /// snapshot-published (see the header comment).
  bool OptimisticReadSafe() const noexcept override {
    return front_->OptimisticReadSafe();
  }

  /// Wrapper view: hot-path op totals live on the front's counters.
  const OpCounters& counters() const noexcept override {
    return front_->counters();
  }
  void ResetCounters() noexcept override { front_->ResetCounters(); }

 private:
  /// Immutable snapshot of the frozen tier. Published once, never mutated;
  /// segments are shared across successive views (Freeze copies the
  /// vector-of-pointers, not the probe arrays).
  struct FrozenView {
    /// Oldest first; lookups walk it back-to-front (newest wins).
    std::vector<std::shared_ptr<const ImmutableSegment>> segments;
    /// Entities erased from the frozen tier; consulted after a front miss,
    /// cleared entity-wise on re-insert and wholesale on Compact.
    std::unordered_set<std::uint64_t> tombstones;
  };

  std::shared_ptr<const FrozenView> View() const noexcept {
    return view_.load(std::memory_order_acquire);
  }
  void Publish(FrozenView next) noexcept {
    view_.store(std::make_shared<const FrozenView>(std::move(next)),
                std::memory_order_release);
  }

  std::uint64_t TierDigest() const noexcept;
  /// True when `entity` lives in some segment (newest -> oldest) of `view`
  /// and is not tombstoned there.
  static bool FrozenContains(const FrozenView& view,
                             std::uint64_t entity) noexcept;

  FrontFactory front_factory_;
  TieredOptions options_;
  std::unique_ptr<Filter> front_;
  /// Cached `front_->ItemCount() == 0`, refreshed at every mutation point,
  /// so the per-lookup empty-front skip costs a relaxed byte load instead
  /// of a virtual call — on a fully frozen tier that call was the single
  /// largest slice of Contains. Atomic because optimistic readers load it
  /// without the wrapper lock.
  std::atomic<bool> front_empty_{true};
  /// Current frozen-tier snapshot; never null after construction.
  std::atomic<std::shared_ptr<const FrozenView>> view_;
};

}  // namespace vcf
