#include "baselines/quotient_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
// Validation must run before the table member allocates (an out-of-range
// quotient width would otherwise trigger a multi-gigabyte allocation before
// the constructor body could throw).
unsigned ValidatedQuotientBits(unsigned q) {
  if (q == 0 || q > 32) {
    throw std::invalid_argument("QuotientFilter: quotient_bits must be in [1, 32]");
  }
  return q;
}
unsigned ValidatedRemainderBits(unsigned r) {
  if (r == 0 || r > 30) {
    throw std::invalid_argument("QuotientFilter: remainder_bits must be in [1, 30]");
  }
  return r;
}
}  // namespace

QuotientFilter::QuotientFilter(unsigned quotient_bits, unsigned remainder_bits,
                               HashKind hash, std::uint64_t seed)
    : q_(ValidatedQuotientBits(quotient_bits)),
      r_(ValidatedRemainderBits(remainder_bits)),
      slot_count_(std::size_t{1} << q_),
      hash_(hash),
      seed_(seed),
      table_(slot_count_, /*slots_per_bucket=*/1, r_ + 3) {}

QuotientFilter::Slot QuotientFilter::GetSlot(std::size_t i) const noexcept {
  const std::uint64_t v = table_.Get(i, 0);
  return Slot{(v >> (r_ + 2) & 1) != 0, (v >> (r_ + 1) & 1) != 0,
              (v >> r_ & 1) != 0, v & LowMask(r_)};
}

void QuotientFilter::SetSlot(std::size_t i, const Slot& s) noexcept {
  const std::uint64_t v = (std::uint64_t{s.occupied} << (r_ + 2)) |
                          (std::uint64_t{s.continuation} << (r_ + 1)) |
                          (std::uint64_t{s.shifted} << r_) | s.remainder;
  table_.Set(i, 0, v);
}

void QuotientFilter::ClearSlot(std::size_t i) noexcept { table_.Set(i, 0, 0); }

bool QuotientFilter::SlotEmpty(std::size_t i) const noexcept {
  // An element always carries occupied/continuation/shifted metadata (a run
  // head in its canonical slot has occupied set; every other element has
  // shifted set), so value 0 <=> empty is exact.
  return table_.Get(i, 0) == 0;
}

void QuotientFilter::Fingerprint(std::uint64_t key, std::uint64_t* fq,
                                 std::uint64_t* fr) const noexcept {
  const std::uint64_t h = Hash64(hash_, key, seed_);
  ++counters_.hash_computations;
  *fq = h & LowMask(q_);
  *fr = (h >> 32) & LowMask(r_);
}

std::size_t QuotientFilter::ClusterStart(std::size_t i) const noexcept {
  // Walk left while elements are shifted; the cluster head is the unique
  // unshifted element of the cluster. Terminates because the caller
  // guarantees at least one empty slot in the table.
  std::size_t j = i;
  while (GetSlot(j).shifted) j = Prev(j);
  return j;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
QuotientFilter::DecodeCluster(std::size_t start, std::size_t* end) const {
  // Offsets are relative to `start` so wrap-around clusters order cleanly.
  std::vector<std::uint64_t> occupied_offsets;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> elements;
  std::size_t i = start;
  std::size_t off = 0;
  // First pass structure: gather occupied offsets and raw slots in order.
  std::vector<Slot> slots;
  while (!SlotEmpty(i)) {
    const Slot s = GetSlot(i);
    if (s.occupied) occupied_offsets.push_back(off);
    slots.push_back(s);
    i = Next(i);
    ++off;
  }
  *end = i;
  // Runs appear in the same order as their quotients' occupied bits.
  std::size_t run = 0;
  for (std::size_t k = 0; k < slots.size(); ++k) {
    if (!slots[k].continuation) {
      // New run: bind to the next occupied offset.
      run = k == 0 ? 0 : run + 1;
    }
    elements.emplace_back(occupied_offsets[run], slots[k].remainder);
  }
  return elements;
}

void QuotientFilter::EncodeCluster(
    std::size_t start, std::size_t old_end,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> elements) {
  // Clear the old region (this also clears its occupied bits, which always
  // refer to indices inside the region).
  for (std::size_t i = start; i != old_end; i = Next(i)) ClearSlot(i);

  // Lay runs out left to right: a run for canonical offset o starts at
  // max(o, cursor); a gap before it starts a fresh (sub)cluster.
  std::sort(elements.begin(), elements.end());
  std::size_t cursor = 0;
  std::size_t k = 0;
  while (k < elements.size()) {
    const std::uint64_t o = elements[k].first;
    const std::size_t run_start = std::max<std::size_t>(cursor, o);
    std::size_t idx = 0;
    while (k < elements.size() && elements[k].first == o) {
      const std::size_t pos = (start + run_start + idx) & (slot_count_ - 1);
      Slot s;
      s.occupied = GetSlot(pos).occupied;  // preserve bit set by earlier runs
      s.continuation = idx > 0;
      s.shifted = run_start + idx != o;
      s.remainder = elements[k].second;
      SetSlot(pos, s);
      ++idx;
      ++k;
    }
    // Mark the quotient occupied (its index is inside the written region).
    const std::size_t qpos = (start + o) & (slot_count_ - 1);
    Slot qslot = GetSlot(qpos);
    qslot.occupied = true;
    SetSlot(qpos, qslot);
    cursor = run_start + idx;
  }
}

bool QuotientFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  // Keep one empty slot: cluster walks and the +1 encode extension need it.
  if (items_ + 1 >= slot_count_) {
    ++counters_.insert_failures;
    return false;
  }
  std::uint64_t fq, fr;
  Fingerprint(key, &fq, &fr);
  ++counters_.bucket_probes;

  if (SlotEmpty(fq)) {
    SetSlot(fq, Slot{true, false, false, fr});
    ++items_;
    return true;
  }
  const std::size_t start = ClusterStart(fq);
  std::size_t end = 0;
  auto elements = DecodeCluster(start, &end);
  const std::uint64_t off = (fq - start) & (slot_count_ - 1);
  elements.emplace_back(off, fr);
  EncodeCluster(start, end, std::move(elements));
  ++items_;
  return true;
}

bool QuotientFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t fq, fr;
  Fingerprint(key, &fq, &fr);
  ++counters_.bucket_probes;
  if (!GetSlot(fq).occupied) return false;

  // Locate fq's run inside its cluster: it is the K-th run, where K is the
  // number of occupied indices in [cluster_start .. fq].
  const std::size_t start = ClusterStart(fq);
  std::size_t runs_needed = 0;
  for (std::size_t j = start;; j = Next(j)) {
    if (GetSlot(j).occupied) ++runs_needed;
    if (j == fq) break;
  }
  std::size_t run_no = 0;
  for (std::size_t j = start; !SlotEmpty(j); j = Next(j)) {
    const Slot s = GetSlot(j);
    if (!s.continuation) ++run_no;
    if (run_no == runs_needed) {
      if (s.remainder == fr) return true;
    } else if (run_no > runs_needed) {
      break;
    }
  }
  return false;
}

bool QuotientFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t fq, fr;
  Fingerprint(key, &fq, &fr);
  ++counters_.bucket_probes;
  if (!GetSlot(fq).occupied) return false;

  const std::size_t start = ClusterStart(fq);
  std::size_t end = 0;
  auto elements = DecodeCluster(start, &end);
  const std::uint64_t off = (fq - start) & (slot_count_ - 1);
  const auto it = std::find(elements.begin(), elements.end(),
                            std::make_pair(off, fr));
  if (it == elements.end()) return false;
  elements.erase(it);
  EncodeCluster(start, end, std::move(elements));
  --items_;
  return true;
}

void QuotientFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool QuotientFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      seed_, static_cast<unsigned>(hash_), q_, r_);
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveTablePayload(out, table_);
}

bool QuotientFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      seed_, static_cast<unsigned>(hash_), q_, r_);
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &table_)) {
    return false;
  }
  // Item count: every non-empty slot stores exactly one element.
  items_ = 0;
  for (std::size_t i = 0; i < slot_count_; ++i) items_ += SlotEmpty(i) ? 0 : 1;
  return true;
}

bool QuotientFilter::CheckInvariants() const {
  std::size_t counted = 0;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    if (SlotEmpty(i)) continue;
    ++counted;
    const Slot s = GetSlot(i);
    // A continuation is never in its canonical slot.
    if (s.continuation && !s.shifted) return false;
    // An occupied index must hold an element (cluster covers it).
    // (Already implied by !SlotEmpty here; check the converse globally.)
  }
  for (std::size_t i = 0; i < slot_count_; ++i) {
    if (GetSlot(i).occupied && SlotEmpty(i)) return false;
  }
  if (counted != items_) return false;

  // Decode every cluster and re-derive structure.
  std::vector<bool> visited(slot_count_, false);
  for (std::size_t i = 0; i < slot_count_; ++i) {
    if (SlotEmpty(i) || visited[i]) continue;
    if (GetSlot(i).shifted) continue;  // find cluster heads only
    if (GetSlot(i).continuation) return false;  // head cannot be continuation
    std::size_t end = 0;
    const auto elements = DecodeCluster(i, &end);
    std::uint64_t prev_off = 0;
    std::uint64_t prev_rem = 0;
    bool first = true;
    std::size_t pos_off = 0;
    for (const auto& [off, rem] : elements) {
      // Elements ordered by (offset, remainder); each element sits at or
      // right of its canonical offset.
      if (!first && (off < prev_off || (off == prev_off && rem < prev_rem))) {
        return false;
      }
      // occupied bit set at the canonical index.
      if (!GetSlot((i + off) & (slot_count_ - 1)).occupied) return false;
      prev_off = off;
      prev_rem = rem;
      first = false;
      ++pos_off;
    }
    for (std::size_t j = i; j != end; j = Next(j)) visited[j] = true;
  }
  return true;
}

}  // namespace vcf
