#include "baselines/counting_bloom_filter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
std::size_t ValidatedCounterCount(std::size_t capacity, double bits_per_item) {
  if (capacity == 0 || bits_per_item <= 0.0) {
    throw std::invalid_argument(
        "CountingBloomFilter: capacity and bits_per_item must be positive");
  }
  return std::max<std::size_t>(
      16, static_cast<std::size_t>(
              std::ceil(bits_per_item * static_cast<double>(capacity))));
}
}  // namespace

CountingBloomFilter::CountingBloomFilter(std::size_t capacity,
                                         double bits_per_item, HashKind hash,
                                         unsigned num_hashes, std::uint64_t seed,
                                         BloomHashing mode)
    : capacity_(capacity),
      m_(ValidatedCounterCount(capacity, bits_per_item)),
      k_(num_hashes != 0
             ? num_hashes
             : std::max(1u, static_cast<unsigned>(std::lround(
                                bits_per_item * 0.6931471805599453)))),
      hash_(hash),
      seed_(seed),
      mode_(mode),
      counters_store_((m_ + 1) / 2, 0) {
  probe_seeds_.reserve(k_);
  for (unsigned i = 0; i < k_; ++i) {
    probe_seeds_.push_back(Mix64(seed_ + 0x9E3779B97F4A7C15ULL * (i + 1)));
  }
}

std::size_t CountingBloomFilter::Position(std::uint64_t key, unsigned i,
                                          std::uint64_t* h1,
                                          std::uint64_t* h2) const noexcept {
  if (mode_ == BloomHashing::kClassic) {
    ++counters_.hash_computations;
    return static_cast<std::size_t>(Hash64(hash_, key, probe_seeds_[i]) % m_);
  }
  if (i == 0) {
    *h1 = Hash64(hash_, key, seed_);
    *h2 = Hash64(hash_, key, seed_ ^ 0xB10F2ULL) | 1;
    counters_.hash_computations += 2;
  }
  return static_cast<std::size_t>((*h1 + i * *h2) % m_);
}

bool CountingBloomFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t pos = Position(key, i, &h1, &h2);
    const unsigned c = GetCounter(pos);
    if (c < 15) SetCounter(pos, c + 1);  // saturate, never wrap
  }
  ++items_;
  return true;
}

bool CountingBloomFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  for (unsigned i = 0; i < k_; ++i) {
    if (GetCounter(Position(key, i, &h1, &h2)) == 0) return false;
  }
  return true;
}

bool CountingBloomFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  // Deleting a never-inserted key corrupts a CBF; like the classic design we
  // only guard against the observable case (some counter already zero).
  for (unsigned i = 0; i < k_; ++i) {
    if (GetCounter(Position(key, i, &h1, &h2)) == 0) return false;
  }
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t pos = Position(key, i, &h1, &h2);
    const unsigned c = GetCounter(pos);
    if (c > 0 && c < 15) SetCounter(pos, c - 1);  // saturated counters stay
  }
  --items_;
  return true;
}

void CountingBloomFilter::Clear() {
  std::fill(counters_store_.begin(), counters_store_.end(), std::uint8_t{0});
  items_ = 0;
}

bool CountingBloomFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      seed_, static_cast<unsigned>(hash_),
      k_ * 2 + static_cast<unsigned>(mode_),
      static_cast<unsigned>(m_ & 0xFFFFFFFFu));
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveBytesPayload(out, counters_store_, items_);
}

bool CountingBloomFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      seed_, static_cast<unsigned>(hash_),
      k_ * 2 + static_cast<unsigned>(mode_),
      static_cast<unsigned>(m_ & 0xFFFFFFFFu));
  if (!detail::ReadStateHeader(in, Name(), digest)) return false;
  std::vector<std::uint8_t> bytes(counters_store_.size());
  std::uint64_t items = 0;
  if (!detail::LoadBytesPayload(in, &bytes, &items)) return false;
  counters_store_ = std::move(bytes);
  items_ = static_cast<std::size_t>(items);
  return true;
}

}  // namespace vcf
