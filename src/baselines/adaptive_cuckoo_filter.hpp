// Adaptive Cuckoo Filter (Mitzenmacher, Pontarelli, Reviriego — ALENEX
// 2018), cited by the paper ([10]) as the false-positive-rate improvement
// over the CF: when the application detects a false positive (the backing
// store says "not there" after the filter said "maybe"), the filter
// RE-FINGERPRINTS the offending bucket under a different hash, so the same
// wrong answer is never repeated. Skewed negative workloads — where the
// same few keys are probed over and over — see their effective FPR decay
// toward zero.
//
// ACF's premise is that the original keys are retrievable (it fronts a
// store that has them); this implementation models that with a shadow key
// array (one 64-bit key per slot). The shadow store is the backing
// system's data, not filter state, and is excluded from MemoryBytes() —
// the filter proper stores an f-bit fingerprint per slot plus a 2-bit
// fingerprint-selector per bucket.
//
// Buckets are addressed by two independent key hashes (classic cuckoo
// hashing rather than partial-key: fingerprints change under adaptation,
// so candidates must not depend on them); relocation re-hashes the
// victim's shadow key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class AdaptiveCuckooFilter : public Filter {
 public:
  explicit AdaptiveCuckooFilter(const CuckooParams& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "ACF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  /// Filter-proper bytes: fingerprint table + selectors (shadow keys are
  /// the backing store's, see header comment).
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes() + selectors_.size();
  }
  void Clear() override;

  /// The adaptation hook: the application calls this after the backing
  /// store disproved a positive Contains(key). Every candidate slot whose
  /// fingerprint matched but whose stored key differs flips its bucket to
  /// the next fingerprint function (re-fingerprinting all residents).
  /// Returns true if any bucket adapted.
  bool AdaptFalsePositive(std::uint64_t key);

  std::uint64_t adaptations() const noexcept { return adaptations_; }

 private:
  std::uint64_t BucketOf(std::uint64_t key, unsigned which) const noexcept;
  std::uint64_t FingerprintUnder(std::uint64_t key, unsigned selector) const noexcept;
  unsigned Selector(std::uint64_t bucket) const noexcept {
    return (selectors_[bucket >> 2] >> ((bucket & 3) * 2)) & 3;
  }
  void BumpSelector(std::uint64_t bucket) noexcept;
  void RefingerprintBucket(std::uint64_t bucket) noexcept;

  CuckooParams params_;
  std::uint64_t index_mask_;
  PackedTable table_;
  std::vector<std::uint8_t> selectors_;    // 2 bits per bucket
  std::vector<std::uint64_t> shadow_keys_; // backing-store model, per slot
  std::size_t items_ = 0;
  std::uint64_t adaptations_ = 0;
  mutable Xoshiro256 rng_;
};

}  // namespace vcf
