#include "baselines/dleft_cbf.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
const DleftCountingBloomFilter::Params& Validated(
    const DleftCountingBloomFilter::Params& p) {
  if (p.subtables == 0 || p.subtables > 16) {
    throw std::invalid_argument("dlCBF: subtables must be in [1, 16]");
  }
  if (!IsPowerOfTwo(p.buckets_per_subtable)) {
    throw std::invalid_argument("dlCBF: buckets_per_subtable must be a power of two");
  }
  if (p.cells_per_bucket == 0 || p.cells_per_bucket > 64) {
    throw std::invalid_argument("dlCBF: cells_per_bucket must be in [1, 64]");
  }
  if (p.fingerprint_bits == 0 || p.fingerprint_bits > 30) {
    throw std::invalid_argument("dlCBF: fingerprint_bits must be in [1, 30]");
  }
  if (FloorLog2(p.buckets_per_subtable) + p.fingerprint_bits > 55) {
    throw std::invalid_argument("dlCBF: bucket + remainder width exceeds 55 bits");
  }
  return p;
}
}  // namespace

DleftCountingBloomFilter::DleftCountingBloomFilter(const Params& params)
    : params_(Validated(params)),
      bucket_bits_(FloorLog2(params.buckets_per_subtable)),
      width_(bucket_bits_ + params.fingerprint_bits),
      rem_mask_(LowMask(params.fingerprint_bits)),
      width_mask_(LowMask(width_)),
      table_(params.subtables * params.buckets_per_subtable,
             params.cells_per_bucket, params.fingerprint_bits + 2) {
  // Per-subtable permutation constants: odd multipliers are bijections
  // modulo 2^width, and the interleaved xorshift keeps high/low bits mixed.
  SplitMix64 sm(params.seed ^ 0xD1EF7ULL);
  for (auto& m : mul1_) m = sm.Next() | 1;
  for (auto& m : mul2_) m = sm.Next() | 1;
}

std::uint64_t DleftCountingBloomFilter::TrueFingerprint(
    std::uint64_t key) const noexcept {
  // The ONE hash computation of a dlCBF operation; the d placements come
  // from cheap invertible permutations of this value.
  ++counters_.hash_computations;
  return Hash64(params_.hash, key, params_.seed) & width_mask_;
}

DleftCountingBloomFilter::Candidate DleftCountingBloomFilter::Locate(
    std::uint64_t f, unsigned subtable) const noexcept {
  // P_i(F): multiply (odd, invertible mod 2^w) -> xorshift (invertible) ->
  // multiply. A (bucket, remainder) pair therefore determines F uniquely.
  std::uint64_t v = (f * mul1_[subtable]) & width_mask_;
  v ^= v >> std::max(1u, width_ / 2);  // shift 0 would zero v (v ^= v)
  v = (v * mul2_[subtable]) & width_mask_;
  return {subtable * params_.buckets_per_subtable +
              static_cast<std::size_t>(v >> params_.fingerprint_bits),
          v & rem_mask_};
}

bool DleftCountingBloomFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  const std::uint64_t f = TrueFingerprint(key);

  // Pass 1: an existing cell with this remainder absorbs the duplicate; in
  // parallel, track the least-loaded candidate (leftmost tie-break).
  std::size_t best_bucket = 0;
  std::uint64_t best_rem = 0;
  unsigned best_load = ~0u;
  counters_.bucket_probes += params_.subtables;
  for (unsigned d = 0; d < params_.subtables; ++d) {
    const Candidate cand = Locate(f, d);
    unsigned load = 0;
    for (unsigned c = 0; c < params_.cells_per_bucket; ++c) {
      const std::uint64_t cell = table_.Get(cand.bucket, c);
      if (cell == 0) continue;
      ++load;
      if (CellRemainder(cell) == cand.remainder && CellCount(cell) < 3) {
        table_.Set(cand.bucket, c, MakeCell(cand.remainder, CellCount(cell) + 1));
        ++items_;
        return true;
      }
    }
    // d-left rule: least loaded wins, leftmost subtable breaks ties.
    if (load < best_load) {
      best_load = load;
      best_bucket = cand.bucket;
      best_rem = cand.remainder;
    }
  }

  if (best_load >= params_.cells_per_bucket) {
    ++counters_.insert_failures;  // every candidate bucket is full
    return false;
  }
  const int slot = table_.FindEmptySlot(best_bucket);
  table_.Set(best_bucket, static_cast<unsigned>(slot), MakeCell(best_rem, 1));
  ++items_;
  return true;
}

bool DleftCountingBloomFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  const std::uint64_t f = TrueFingerprint(key);
  counters_.bucket_probes += params_.subtables;
  for (unsigned d = 0; d < params_.subtables; ++d) {
    const Candidate cand = Locate(f, d);
    for (unsigned c = 0; c < params_.cells_per_bucket; ++c) {
      const std::uint64_t cell = table_.Get(cand.bucket, c);
      if (cell != 0 && CellRemainder(cell) == cand.remainder) return true;
    }
  }
  return false;
}

bool DleftCountingBloomFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  const std::uint64_t f = TrueFingerprint(key);
  counters_.bucket_probes += params_.subtables;
  for (unsigned d = 0; d < params_.subtables; ++d) {
    const Candidate cand = Locate(f, d);
    for (unsigned c = 0; c < params_.cells_per_bucket; ++c) {
      const std::uint64_t cell = table_.Get(cand.bucket, c);
      if (cell != 0 && CellRemainder(cell) == cand.remainder) {
        const unsigned count = CellCount(cell);
        table_.Set(cand.bucket, c,
                   count > 1 ? MakeCell(cand.remainder, count - 1) : 0);
        --items_;
        return true;
      }
    }
  }
  return false;
}

void DleftCountingBloomFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool DleftCountingBloomFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      params_.subtables * 256 + params_.cells_per_bucket,
      params_.fingerprint_bits);
  if (!detail::WriteStateHeader(out, Name(), digest) ||
      !detail::SaveTablePayload(out, table_)) {
    return false;
  }
  // Duplicate counters make item count independent of occupied cells.
  const std::uint64_t items = items_;
  out.write(reinterpret_cast<const char*>(&items), sizeof(items));
  return static_cast<bool>(out);
}

bool DleftCountingBloomFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      params_.subtables * 256 + params_.cells_per_bucket,
      params_.fingerprint_bits);
  // Stage into a copy: the trailing item count can still fail after the
  // table payload parses, and LoadState must be all-or-nothing.
  PackedTable staged = table_;
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &staged)) {
    return false;
  }
  std::uint64_t items = 0;
  in.read(reinterpret_cast<char*>(&items), sizeof(items));
  if (!in) return false;
  table_ = std::move(staged);
  items_ = static_cast<std::size_t>(items);
  return true;
}

}  // namespace vcf
