// D-ary Cuckoo Filter (Xie et al., ICPADS 2017) — the multi-candidate
// baseline the paper compares VCF against.
//
// DCF gives each item d candidate buckets using a base-d digit-wise XOR
// (digit-wise modular addition): applying the operation with the same
// operand d times cycles back to the start (Eq. 2), so candidates index each
// other just like partial-key hashing — at the cost of converting every
// bucket index to base-d form and back on each hop. That conversion loop is
// implemented literally here (not strength-reduced to word ops) because the
// paper's central claim against DCF is precisely this computational
// overhead; see §II-B and the lookup-time results in Fig. 6.
//
// d must be a power of two. When log2(m) is not a multiple of log2(d), the
// most-significant digit uses a smaller radix (2^(w mod log2 d)); digit-wise
// modular addition remains cyclic with period d because d annihilates every
// digit radix that divides it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class DaryCuckooFilter : public Filter,
                         public kernel::SlotWalkPolicy<DaryCuckooFilter> {
 public:
  DaryCuckooFilter(const CuckooParams& params, unsigned d = 4);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Kernel-pipelined batch ops (core/cuckoo_kernel.hpp). Only the primary
  /// bucket is prefetched: materializing all d DigitAdd successors in the
  /// hash phase would add the very per-hop conversion cost the DCF baseline
  /// exists to exhibit, swamping the prefetch win.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  bool OptimisticReadSafe() const noexcept override { return true; }
  std::string Name() const override { return name_; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  unsigned d() const noexcept { return d_; }

  /// Base-d digit-wise modular addition of bucket indices (the paper's
  /// "base-d XOR"). Public so tests can verify the Eq. 2 cyclic property.
  std::uint64_t DigitAdd(std::uint64_t a, std::uint64_t b) const noexcept;

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // shared slot-table hooks come from kernel::SlotWalkPolicy) --------------
  struct Hashed {
    std::uint64_t b1;
    std::uint64_t fh;
    std::uint64_t fp;
  };
  Hashed HashKey(std::uint64_t key) const noexcept;
  void PrefetchCandidates(const Hashed& h) const noexcept {
    table_.PrefetchBucket(h.b1);
  }
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool ProbeCandidates(const Hashed& h) const noexcept;
  WalkState StartWalk(const Hashed& h);
  bool RelocateVictim(WalkState& walk);
  void AppendCandidates(const Hashed& h, std::vector<std::uint64_t>& out) const;
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    const std::uint64_t fh = FingerprintHash(occupant);
    std::uint64_t probe = bucket;
    for (unsigned j = 0; j + 1 < d_; ++j) {
      probe = DigitAdd(probe, fh);
      fn(probe, occupant);
    }
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<DaryCuckooFilter>;

  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  std::uint64_t Digest() const noexcept;

  CuckooParams params_;
  unsigned d_;
  unsigned digit_bits_;
  unsigned index_bits_;
  std::uint64_t index_mask_;
  PackedTable table_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
  std::string name_;
};

}  // namespace vcf
