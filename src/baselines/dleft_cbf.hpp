// d-left Counting Bloom Filter (Bonomi, Mitzenmacher, Panigrahy, Singh,
// Varghese — ESA 2006), reviewed in §II-A of the paper: replaces the CBF's
// per-bit counters with fingerprint cells placed by d-left hashing (d
// subtables; insert into the least-loaded candidate bucket, leftmost on
// ties). The paper quotes its claims — half the space of a CBF at equal FPR
// — and bench/related_work puts them next to the cuckoo family.
//
// Construction (the paper's "hash-then-permute"): a key hashes once to a
// true fingerprint F of (bucket_bits + remainder_bits) bits; for each
// subtable i an INVERTIBLE permutation P_i scrambles F, whose high bits
// pick the bucket and low bits form the stored remainder. Invertibility is
// what makes deletion safe: a (subtable, bucket, remainder) triple
// determines F exactly, so cells that look equal belong to the same F and
// share every candidate — a deletion can never consume another key's cell
// unless their full fingerprints collide outright.
//
// Cell layout: remainder + a 2-bit duplicate counter (saturating; a fourth
// duplicate opens a second cell).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/filter.hpp"
#include "hash/hash64.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class DleftCountingBloomFilter : public Filter {
 public:
  struct Params {
    unsigned subtables = 4;             ///< d
    std::size_t buckets_per_subtable = 1 << 12;  ///< power of two
    unsigned cells_per_bucket = 8;
    unsigned fingerprint_bits = 14;     ///< stored remainder width
    HashKind hash = HashKind::kFnv1a;
    std::uint64_t seed = 0x5EEDF00DULL;
  };

  explicit DleftCountingBloomFilter(const Params& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "dlCBF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override {
    return params_.subtables * params_.buckets_per_subtable *
           params_.cells_per_bucket;
  }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(SlotCount());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  const Params& params() const noexcept { return params_; }

 private:
  /// (bucket index within the whole table, stored remainder) for subtable i.
  struct Candidate {
    std::size_t bucket;
    std::uint64_t remainder;
  };

  /// One full hash -> true fingerprint F of width_ bits.
  std::uint64_t TrueFingerprint(std::uint64_t key) const noexcept;

  /// P_i(F) split into bucket and remainder.
  Candidate Locate(std::uint64_t f, unsigned subtable) const noexcept;

  std::uint64_t CellRemainder(std::uint64_t cell) const noexcept {
    return cell & rem_mask_;
  }
  unsigned CellCount(std::uint64_t cell) const noexcept {
    return static_cast<unsigned>(cell >> params_.fingerprint_bits);
  }
  std::uint64_t MakeCell(std::uint64_t rem, unsigned count) const noexcept {
    return (static_cast<std::uint64_t>(count) << params_.fingerprint_bits) | rem;
  }

  Params params_;
  unsigned bucket_bits_;
  unsigned width_;  // bucket_bits_ + fingerprint_bits
  std::uint64_t rem_mask_;
  std::uint64_t width_mask_;
  std::array<std::uint64_t, 16> mul1_;  // per-subtable odd multipliers
  std::array<std::uint64_t, 16> mul2_;
  PackedTable table_;  // (d * buckets) buckets x cells slots x (rem + 2) bits
  std::size_t items_ = 0;
};

}  // namespace vcf
