// Standard Bloom filter (Bloom, 1970) — the Table I reference point.
//
// m bits, n-capacity design, k = round(m/n * ln 2) hash positions. Two
// position-derivation modes:
//   kClassic       — k independent seeded hash invocations, the textbook
//                    construction the paper's comparison framework assumes
//                    (its Table I charges BF k hash computations per op,
//                    which is where "CF ~ 10x BF throughput" comes from).
//   kDoubleHashing — Kirsch-Mitzenmacher g_i = h1 + i*h2: two hash calls
//                    total, same asymptotic FPR; the engineering optimum.
// Classic is the default so baseline comparisons stay paper-faithful;
// pass kDoubleHashing to see how much of Table I's gap is BF hashing cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/filter.hpp"
#include "hash/hash64.hpp"

namespace vcf {

enum class BloomHashing : std::uint8_t {
  kClassic = 0,
  kDoubleHashing = 1,
};

class BloomFilter : public Filter {
 public:
  /// A filter sized for `capacity` items at `bits_per_item` bits each.
  /// k is chosen optimally unless `num_hashes` > 0 forces it.
  BloomFilter(std::size_t capacity, double bits_per_item,
              HashKind hash = HashKind::kFnv1a, unsigned num_hashes = 0,
              std::uint64_t seed = 0x5EEDF00DULL,
              BloomHashing mode = BloomHashing::kClassic);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  /// Bloom filters cannot delete; always returns false.
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return false; }
  std::string Name() const override { return "BF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return capacity_; }
  double LoadFactor() const noexcept override {
    return capacity_ == 0
               ? 0.0
               : static_cast<double>(items_) / static_cast<double>(capacity_);
  }
  std::size_t MemoryBytes() const noexcept override {
    return bits_.size() * sizeof(std::uint64_t);
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  unsigned num_hashes() const noexcept { return k_; }
  std::size_t bit_count() const noexcept { return m_; }
  BloomHashing hashing_mode() const noexcept { return mode_; }

 private:
  /// Bit position for probe i of `key`; counts hash computations.
  std::size_t Position(std::uint64_t key, unsigned i, std::uint64_t* h1,
                       std::uint64_t* h2) const noexcept;

  std::size_t capacity_;
  std::size_t m_;
  unsigned k_;
  HashKind hash_;
  std::uint64_t seed_;
  BloomHashing mode_;
  std::size_t items_ = 0;
  std::vector<std::uint64_t> probe_seeds_;  // classic mode: one per probe
  std::vector<std::uint64_t> bits_;
};

}  // namespace vcf
