#include "baselines/morton_filter.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

unsigned ByteCounterSum(std::uint8_t b) noexcept {
  return (b & 3) + ((b >> 2) & 3) + ((b >> 4) & 3) + ((b >> 6) & 3);
}

unsigned OtaBit(std::uint8_t fp) noexcept {
  return static_cast<unsigned>(Mix64(fp) & 15);
}
}  // namespace

MortonFilter::MortonFilter(const Params& params)
    : params_(params),
      index_mask_(params.bucket_count - 1),
      blocks_(params.bucket_count / kBucketsPerBlock),
      rng_(params.seed ^ 0x303A7104C0FFEEULL) {
  if (!IsPowerOfTwo(params.bucket_count) ||
      params.bucket_count < kBucketsPerBlock) {
    throw std::invalid_argument(
        "MortonFilter: bucket_count must be a power of two >= 64");
  }
  if (params.bucket_count > (std::uint64_t{1} << 32)) {
    throw std::invalid_argument("MortonFilter: at most 2^32 buckets");
  }
  Clear();
}

unsigned MortonFilter::OffsetOf(const Block& block, unsigned lb) const noexcept {
  unsigned sum = 0;
  unsigned byte = 0;
  while ((byte + 1) * 4 <= lb) {
    sum += ByteCounterSum(block.fca[byte]);
    ++byte;
  }
  for (unsigned i = byte * 4; i < lb; ++i) {
    sum += (block.fca[i >> 2] >> ((i & 3) * 2)) & 3;
  }
  return sum;
}

unsigned MortonFilter::BlockFill(const Block& block) const noexcept {
  unsigned sum = 0;
  for (const std::uint8_t b : block.fca) sum += ByteCounterSum(b);
  return sum;
}

bool MortonFilter::BucketInsert(std::uint64_t bucket, std::uint8_t fp) noexcept {
  Block& block = blocks_[bucket >> 6];
  const unsigned lb = static_cast<unsigned>(bucket & 63);
  const unsigned count = Count(block, lb);
  if (count >= kMaxPerBucket) return false;
  const unsigned fill = BlockFill(block);
  if (fill >= kSlotsPerBlock) return false;
  const unsigned pos = OffsetOf(block, lb) + count;
  std::memmove(block.fsa + pos + 1, block.fsa + pos, fill - pos);
  block.fsa[pos] = fp;
  SetCount(block, lb, count + 1);
  return true;
}

bool MortonFilter::BucketContains(std::uint64_t bucket,
                                  std::uint8_t fp) const noexcept {
  const Block& block = blocks_[bucket >> 6];
  const unsigned lb = static_cast<unsigned>(bucket & 63);
  const unsigned count = Count(block, lb);
  const unsigned off = OffsetOf(block, lb);
  for (unsigned i = 0; i < count; ++i) {
    if (block.fsa[off + i] == fp) return true;
  }
  return false;
}

bool MortonFilter::BucketErase(std::uint64_t bucket, std::uint8_t fp) noexcept {
  Block& block = blocks_[bucket >> 6];
  const unsigned lb = static_cast<unsigned>(bucket & 63);
  const unsigned count = Count(block, lb);
  const unsigned off = OffsetOf(block, lb);
  for (unsigned i = 0; i < count; ++i) {
    if (block.fsa[off + i] == fp) {
      const unsigned fill = BlockFill(block);
      std::memmove(block.fsa + off + i, block.fsa + off + i + 1,
                   fill - (off + i + 1));
      block.fsa[fill - 1] = 0;
      SetCount(block, lb, count - 1);
      return true;
    }
  }
  return false;
}

std::uint8_t MortonFilter::BucketKick(std::uint64_t bucket,
                                      std::uint8_t replacement) noexcept {
  Block& block = blocks_[bucket >> 6];
  const unsigned lb = static_cast<unsigned>(bucket & 63);
  const unsigned count = Count(block, lb);
  if (count == 0) return 0;
  const unsigned off = OffsetOf(block, lb);
  const unsigned idx = static_cast<unsigned>(rng_.Below(count));
  const std::uint8_t victim = block.fsa[off + idx];
  block.fsa[off + idx] = replacement;
  return victim;
}

std::uint64_t MortonFilter::Fingerprint(std::uint64_t key,
                                        std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & index_mask_;
  const std::uint64_t fp = (h >> 32) & 0xFF;
  return fp == 0 ? 1 : fp;
}

std::uint64_t MortonFilter::AltBucket(std::uint64_t bucket,
                                      std::uint8_t fp) const noexcept {
  // f-bit (f = 8) offset convention shared across the library; involutive,
  // so it works from either member of the pair.
  ++counters_.hash_computations;
  const std::uint64_t fh =
      Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) & 0xFF;
  return (bucket ^ fh) & index_mask_;
}

void MortonFilter::MarkOverflow(std::uint64_t bucket, std::uint8_t fp) noexcept {
  blocks_[bucket >> 6].ota |= static_cast<std::uint16_t>(1u << OtaBit(fp));
}

bool MortonFilter::OverflowPossible(std::uint64_t bucket,
                                    std::uint8_t fp) const noexcept {
  return (blocks_[bucket >> 6].ota >> OtaBit(fp)) & 1;
}

bool MortonFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  const std::uint8_t fp = static_cast<std::uint8_t>(Fingerprint(key, &b1));
  ++counters_.bucket_probes;
  if (BucketInsert(b1, fp)) {
    ++items_;
    return true;
  }

  // Overflow out of b1's block: record it so negative lookups that would
  // miss b1 know they must still probe the alternate.
  MarkOverflow(b1, fp);
  const std::uint64_t b2 = AltBucket(b1, fp);
  ++counters_.bucket_probes;
  if (BucketInsert(b2, fp)) {
    ++items_;
    return true;
  }

  // Eviction random walk with value-based rollback.
  struct Step {
    std::uint64_t bucket;
    std::uint8_t placed;
    std::uint8_t displaced;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  std::uint64_t cur = rng_.Next() & 1 ? b2 : b1;
  std::uint8_t in_hand = fp;
  bool ok = false;
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    std::uint8_t victim = BucketKick(cur, in_hand);
    if (victim == 0) {
      // Empty bucket inside a full block: nothing to kick here; hop to the
      // in-hand item's other candidate and retry.
      cur = AltBucket(cur, in_hand);
      victim = BucketKick(cur, in_hand);
      if (victim == 0) break;  // both candidates unkickable: give up
    }
    path.push_back({cur, in_hand, victim});
    ++counters_.evictions;

    // The victim leaves cur's block for its alternate bucket.
    MarkOverflow(cur, victim);
    const std::uint64_t next = AltBucket(cur, victim);
    ++counters_.bucket_probes;
    if (BucketInsert(next, victim)) {
      ok = true;
      break;
    }
    in_hand = victim;
    cur = next;
  }
  if (ok) {
    ++items_;
    return true;
  }

  // Undo the swap chain (stale OTA bits are harmless: they only cost an
  // extra probe, never an answer).
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Block& block = blocks_[it->bucket >> 6];
    const unsigned lb = static_cast<unsigned>(it->bucket & 63);
    const unsigned off = OffsetOf(block, lb);
    const unsigned count = Count(block, lb);
    for (unsigned i = 0; i < count; ++i) {
      if (block.fsa[off + i] == it->placed) {
        block.fsa[off + i] = it->displaced;
        break;
      }
    }
  }
  ++counters_.insert_failures;
  return false;
}

bool MortonFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t b1;
  const std::uint8_t fp = static_cast<std::uint8_t>(Fingerprint(key, &b1));
  ++counters_.bucket_probes;
  if (BucketContains(b1, fp)) return true;
  // The MF speedup: if nothing with this fingerprint's OTA signature ever
  // overflowed from b1's block, the item cannot be in its alternate bucket.
  if (!OverflowPossible(b1, fp)) {
    ++ota_skips_;
    return false;
  }
  ++counters_.bucket_probes;
  return BucketContains(AltBucket(b1, fp), fp);
}

bool MortonFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint8_t fp = static_cast<std::uint8_t>(Fingerprint(key, &b1));
  counters_.bucket_probes += 2;
  if (BucketErase(b1, fp) || BucketErase(AltBucket(b1, fp), fp)) {
    --items_;
    return true;
  }
  return false;
}

void MortonFilter::Clear() {
  for (auto& block : blocks_) {
    std::memset(&block, 0, sizeof(block));
  }
  items_ = 0;
  ota_skips_ = 0;
}

bool MortonFilter::CheckInvariants() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) {
    const unsigned fill = BlockFill(block);
    if (fill > kSlotsPerBlock) return false;
    unsigned recount = 0;
    for (unsigned lb = 0; lb < kBucketsPerBlock; ++lb) {
      const unsigned c = Count(block, lb);
      if (c > kMaxPerBucket) return false;
      recount += c;
    }
    if (recount != fill) return false;
    for (unsigned i = 0; i < kSlotsPerBlock; ++i) {
      if (i < fill && block.fsa[i] == 0) return false;   // live slot empty
      if (i >= fill && block.fsa[i] != 0) return false;  // dead slot dirty
    }
    total += fill;
  }
  return total == items_;
}

}  // namespace vcf
