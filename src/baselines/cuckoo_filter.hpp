// Standard Cuckoo filter (Fan et al., CoNEXT 2014) — the paper's primary
// baseline. Two candidate buckets per item via partial-key cuckoo hashing:
//
//   B1 = hash(x) mod m,   B2 = B1 xor hash(eta_x)      (Eq. 1)
//
// Construction parameters, fingerprint derivation, eviction policy and
// instrumentation are identical to the VCF family so that every measured
// difference is attributable to the candidate-derivation scheme.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class CuckooFilter : public Filter,
                     public kernel::SlotWalkPolicy<CuckooFilter> {
 public:
  explicit CuckooFilter(const CuckooParams& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Kernel-pipelined batch ops (core/cuckoo_kernel.hpp), the same pipeline
  /// structure every filter in the family gets, so batched-throughput
  /// comparisons are attributable to candidate derivation alone.
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  bool OptimisticReadSafe() const noexcept override { return true; }
  std::string Name() const override { return "CF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Canonical-entity enumeration for the immutable segment tier: the
  /// canonical bucket is min(B1, B2), derivable from either member of the
  /// partial-key XOR pair.
  bool ForEachFingerprint(
      const std::function<void(std::uint64_t)>& fn) const override;
  bool KeyEntity(std::uint64_t key, std::uint64_t* entity) const override;

  /// Entity transport (elastic resize / shard merge): the XOR pair is
  /// re-derived from the entity's canonical bucket and fingerprint alone.
  std::size_t MigrationBuckets() const noexcept override {
    return params_.bucket_count;
  }
  bool ForEachEntityInBucket(
      std::uint64_t bucket,
      const std::function<void(unsigned, std::uint64_t)>& fn) const override;
  bool InsertEntity(std::uint64_t entity) override;
  bool ContainsEntity(std::uint64_t entity) const override;
  bool EraseEntity(std::uint64_t entity) override;
  bool ClearSlot(std::uint64_t bucket, unsigned slot) override;

  const CuckooParams& params() const noexcept { return params_; }

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // shared slot-table hooks come from kernel::SlotWalkPolicy) --------------
  struct Hashed {
    std::uint64_t b1;
    std::uint64_t b2;
    std::uint64_t fp;
  };
  Hashed HashKey(std::uint64_t key) const noexcept;
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool RelocateVictim(WalkState& walk);
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    // Partial-key cuckoo: the occupant's only alternate bucket, one hash.
    fn(AltBucket(bucket, FingerprintHash(occupant)), occupant);
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<CuckooFilter>;

  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  std::uint64_t AltBucket(std::uint64_t bucket, std::uint64_t fp_hash) const noexcept {
    return (bucket ^ fp_hash) & index_mask_;
  }
  std::uint64_t Digest() const noexcept;

  CuckooParams params_;
  std::uint64_t index_mask_;
  PackedTable table_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
};

}  // namespace vcf
