#include "baselines/cuckoo_filter.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;
}

CuckooFilter::CuckooFilter(const CuckooParams& params)
    : params_(params),
      index_mask_(LowMask(params.index_bits())),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits, params.layout),
      rng_(params.seed ^ 0xCF104C0FFEEULL) {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("CuckooFilter: unsupported table geometry");
  }
}

std::uint64_t CuckooFilter::Fingerprint(std::uint64_t key,
                                        std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & index_mask_;
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t CuckooFilter::FingerprintHash(std::uint64_t fp) const noexcept {
  // Following the paper's Eq. 1 / Fig. 1 convention (shared by all filters
  // in this library for comparability): hash(eta) is an f-bit value, so the
  // alternate bucket lies within the same aligned 2^f-bucket block.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits);
}

bool CuckooFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  const std::uint64_t b2 = AltBucket(b1, fh);

  counters_.bucket_probes += 2;
  if (table_.InsertValue(b1, fp) || table_.InsertValue(b2, fp)) {
    ++items_;
    return true;
  }
  return InsertEvict(fp, b1, b2);
}

bool CuckooFilter::InsertEvict(std::uint64_t fp, std::uint64_t b1,
                               std::uint64_t b2) {
  struct Step {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t displaced;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  std::uint64_t cur = rng_.Next() & 1 ? b2 : b1;
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    const unsigned slot =
        static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
    const std::uint64_t victim = table_.Get(cur, slot);
    table_.Set(cur, slot, fp);
    path.push_back({cur, slot, victim});
    fp = victim;
    ++counters_.evictions;

    // Partial-key cuckoo: the victim's only alternate bucket, one hash.
    const std::uint64_t fh = FingerprintHash(fp);
    cur = AltBucket(cur, fh);
    ++counters_.bucket_probes;
    if (table_.InsertValue(cur, fp)) {
      ++items_;
      return true;
    }
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    table_.Set(it->bucket, it->slot, it->displaced);
  }
  ++counters_.insert_failures;
  return false;
}

bool CuckooFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += 2;
  const std::uint64_t cand[2] = {b1, AltBucket(b1, fh)};
  return table_.ContainsValueAny(cand, 2, fp);
}

void CuckooFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                 bool* results) const {
  // Window pipeline matching VerticalCuckooFilter::ContainsBatch.
  constexpr std::size_t kWindow = 16;
  struct Probe {
    std::uint64_t b1, b2, fp;
  };
  Probe window[kWindow];

  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.lookups;
      window[i].fp = Fingerprint(keys[done + i], &window[i].b1);
      window[i].b2 = AltBucket(window[i].b1, FingerprintHash(window[i].fp));
      table_.PrefetchBucket(window[i].b1);
      table_.PrefetchBucket(window[i].b2);
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += 2;
      const std::uint64_t cand[2] = {window[i].b1, window[i].b2};
      results[done + i] = table_.ContainsValueAny(cand, 2, window[i].fp);
    }
    done += n;
  }
}

std::size_t CuckooFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                      bool* results) {
  constexpr std::size_t kWindow = 16;
  struct Pending {
    std::uint64_t b1, b2, fp;
  };
  Pending window[kWindow];

  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(kWindow, keys.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      ++counters_.inserts;
      window[i].fp = Fingerprint(keys[done + i], &window[i].b1);
      window[i].b2 = AltBucket(window[i].b1, FingerprintHash(window[i].fp));
      table_.PrefetchBucket(window[i].b1);
      table_.PrefetchBucket(window[i].b2);
    }
    for (std::size_t i = 0; i < n; ++i) {
      counters_.bucket_probes += 2;
      bool ok;
      if (table_.InsertValue(window[i].b1, window[i].fp) ||
          table_.InsertValue(window[i].b2, window[i].fp)) {
        ++items_;
        ok = true;
      } else {
        ok = InsertEvict(window[i].fp, window[i].b1, window[i].b2);
      }
      accepted += ok ? 1 : 0;
      if (results != nullptr) results[done + i] = ok;
    }
    done += n;
  }
  return accepted;
}

bool CuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += 2;
  if (table_.EraseValue(b1, fp) || table_.EraseValue(AltBucket(b1, fh), fp)) {
    --items_;
    return true;
  }
  return false;
}

void CuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool CuckooFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest =
      detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash), 0,
                           params_.fingerprint_bits);
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveTablePayload(out, table_);
}

bool CuckooFilter::LoadState(std::istream& in) {
  const std::uint64_t digest =
      detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash), 0,
                           params_.fingerprint_bits);
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &table_)) {
    return false;
  }
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
