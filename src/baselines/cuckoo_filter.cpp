#include "baselines/cuckoo_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;
}

CuckooFilter::CuckooFilter(const CuckooParams& params)
    : params_(params),
      index_mask_(LowMask(params.index_bits())),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits, params.layout, params.pages),
      rng_(params.seed ^ 0xCF104C0FFEEULL) {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("CuckooFilter: unsupported table geometry");
  }
}

std::uint64_t CuckooFilter::Fingerprint(std::uint64_t key,
                                        std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & index_mask_;
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t CuckooFilter::FingerprintHash(std::uint64_t fp) const noexcept {
  // Following the paper's Eq. 1 / Fig. 1 convention (shared by all filters
  // in this library for comparability): hash(eta) is an f-bit value, so the
  // alternate bucket lies within the same aligned 2^f-bucket block.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits);
}

CuckooFilter::Hashed CuckooFilter::HashKey(std::uint64_t key) const noexcept {
  Hashed h;
  h.fp = Fingerprint(key, &h.b1);
  h.b2 = AltBucket(h.b1, FingerprintHash(h.fp));
  return h;
}

bool CuckooFilter::TryPlaceDirect(const Hashed& h) noexcept {
  counters_.bucket_probes += 2;
  if (table_.InsertValue(h.b1, h.fp) || table_.InsertValue(h.b2, h.fp)) {
    ++items_;
    return true;
  }
  return false;
}

bool CuckooFilter::RelocateVictim(WalkState& walk) {
  // Partial-key cuckoo: the victim's only alternate bucket, one hash. The
  // walk lands there whether or not the placement succeeds.
  walk.bucket = AltBucket(walk.bucket, FingerprintHash(walk.fp));
  ++counters_.bucket_probes;
  if (table_.InsertValue(walk.bucket, walk.fp)) {
    ++items_;
    return true;
  }
  return false;
}

bool CuckooFilter::Insert(std::uint64_t key) {
  return kernel::InsertOne(*this, key);
}

bool CuckooFilter::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void CuckooFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                 bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t CuckooFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                      bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool CuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += 2;
  if (table_.EraseValue(b1, fp) || table_.EraseValue(AltBucket(b1, fh), fp)) {
    --items_;
    return true;
  }
  return false;
}

void CuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool CuckooFilter::ForEachFingerprint(
    const std::function<void(std::uint64_t)>& fn) const {
  ForEachOccupiedSlot([&](std::uint64_t bucket, std::uint64_t fp) {
    const std::uint64_t alt = AltBucket(bucket, FingerprintHash(fp));
    fn((std::min(bucket, alt) << params_.fingerprint_bits) | fp);
  });
  return true;
}

bool CuckooFilter::KeyEntity(std::uint64_t key, std::uint64_t* entity) const {
  const Hashed h = HashKey(key);
  *entity = (std::min(h.b1, h.b2) << params_.fingerprint_bits) | h.fp;
  return true;
}

bool CuckooFilter::ForEachEntityInBucket(
    std::uint64_t bucket,
    const std::function<void(unsigned, std::uint64_t)>& fn) const {
  if (bucket >= params_.bucket_count) return false;
  for (unsigned s = 0; s < params_.slots_per_bucket; ++s) {
    const std::uint64_t fp = table_.Get(bucket, s);
    if (fp == 0) continue;
    const std::uint64_t alt = AltBucket(bucket, FingerprintHash(fp));
    fn(s, (std::min(bucket, alt) << params_.fingerprint_bits) | fp);
  }
  return true;
}

namespace {
// Shared entity decomposition: (canonical bucket << f) | fp, fp != 0.
bool SplitEntity(std::uint64_t entity, unsigned fp_bits,
                 std::uint64_t bucket_count, std::uint64_t* bucket,
                 std::uint64_t* fp) noexcept {
  *fp = entity & LowMask(fp_bits);
  *bucket = entity >> fp_bits;
  return *fp != 0 && *bucket < bucket_count;
}
}  // namespace

bool CuckooFilter::InsertEntity(std::uint64_t entity) {
  std::uint64_t bucket, fp;
  if (!SplitEntity(entity, params_.fingerprint_bits, params_.bucket_count,
                   &bucket, &fp)) {
    return false;
  }
  // The XOR pair is symmetric, so the canonical bucket stands in for b1.
  const Hashed h{bucket, AltBucket(bucket, FingerprintHash(fp)), fp};
  if (TryPlaceDirect(h)) return true;
  return kernel::EvictInsert(*this, h);
}

bool CuckooFilter::ContainsEntity(std::uint64_t entity) const {
  std::uint64_t bucket, fp;
  if (!SplitEntity(entity, params_.fingerprint_bits, params_.bucket_count,
                   &bucket, &fp)) {
    return false;
  }
  const Hashed h{bucket, AltBucket(bucket, FingerprintHash(fp)), fp};
  return ProbeCandidates(h);
}

bool CuckooFilter::EraseEntity(std::uint64_t entity) {
  std::uint64_t bucket, fp;
  if (!SplitEntity(entity, params_.fingerprint_bits, params_.bucket_count,
                   &bucket, &fp)) {
    return false;
  }
  counters_.bucket_probes += 2;
  if (table_.EraseValue(bucket, fp) ||
      table_.EraseValue(AltBucket(bucket, FingerprintHash(fp)), fp)) {
    --items_;
    return true;
  }
  return false;
}

bool CuckooFilter::ClearSlot(std::uint64_t bucket, unsigned slot) {
  if (bucket >= params_.bucket_count || slot >= params_.slots_per_bucket) {
    return false;
  }
  if (table_.Get(bucket, slot) == 0) return false;
  table_.Set(bucket, slot, 0);
  --items_;
  return true;
}

std::uint64_t CuckooFilter::Digest() const noexcept {
  return detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                              0, params_.fingerprint_bits);
}

bool CuckooFilter::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool CuckooFilter::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
