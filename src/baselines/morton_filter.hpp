// Morton filter (Breslow & Jayasena, VLDB Journal 2020), reviewed in §II-B
// of the paper: a cuckoo filter re-organised into cache-line-sized
// compressed blocks so that a logically sparse table stores densely.
//
// Block format (512 bits = one cache line, the paper's flagship layout):
//   FSA — fingerprint storage array: 46 slots x 8-bit fingerprints,
//   FCA — fullness counter array: 64 logical buckets x 2-bit counters,
//   OTA — overflow tracking array: 16 bits.
// A block serves 64 logical buckets of up to 3 fingerprints each, but only
// 46 physical slots exist: buckets borrow capacity from their block
// neighbours (46/64 ~ 0.72 slots of slack per bucket), which is where the
// space density comes from. The OTA remembers "something overflowed out of
// this block", letting negative lookups skip the second bucket probe most
// of the time — the filter's lookup-throughput headline.
//
// The paper's §II-B criticism — "MF only supports certain lengths of
// fingerprints (hence specific false positive rates)" — is literal here:
// the block format hard-wires f = 8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/filter.hpp"
#include "hash/hash64.hpp"

namespace vcf {

class MortonFilter : public Filter {
 public:
  struct Params {
    /// Total logical buckets; must be a power of two and >= 64 (one block).
    std::size_t bucket_count = 1 << 14;
    HashKind hash = HashKind::kFnv1a;
    unsigned max_kicks = 500;
    std::uint64_t seed = 0x5EEDF00DULL;
  };

  explicit MortonFilter(const Params& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "MF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  /// Physical slot capacity: 46 per 64-bucket block.
  std::size_t SlotCount() const noexcept override {
    return (params_.bucket_count / kBucketsPerBlock) * kSlotsPerBlock;
  }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(SlotCount());
  }
  std::size_t MemoryBytes() const noexcept override {
    return blocks_.size() * sizeof(Block);
  }
  void Clear() override;

  static constexpr unsigned kBucketsPerBlock = 64;
  static constexpr unsigned kSlotsPerBlock = 46;
  static constexpr unsigned kMaxPerBucket = 3;
  static constexpr unsigned kFingerprintBits = 8;  // hard-wired by the format

  /// Structural self-check (FCA sums vs FSA occupancy); tests call this.
  bool CheckInvariants() const;

  /// Fraction of negative lookups whose second probe the OTA skipped since
  /// the last ResetCounters (the MF speedup mechanism, asserted in tests).
  double OtaSkipRate() const noexcept {
    const std::uint64_t n = counters_.lookups;
    return n == 0 ? 0.0 : static_cast<double>(ota_skips_) / static_cast<double>(n);
  }

 private:
  /// One 512-bit block: 46-byte FSA + 16-byte FCA (64 x 2b) + 2-byte OTA.
  struct Block {
    std::uint8_t fsa[46];
    std::uint8_t fca[16];
    std::uint16_t ota;
  };
  static_assert(sizeof(Block) == 64, "block must be one cache line");

  unsigned Count(const Block& block, unsigned lb) const noexcept {
    return (block.fca[lb >> 2] >> ((lb & 3) * 2)) & 3;
  }
  void SetCount(Block& block, unsigned lb, unsigned count) const noexcept {
    const unsigned shift = (lb & 3) * 2;
    block.fca[lb >> 2] = static_cast<std::uint8_t>(
        (block.fca[lb >> 2] & ~(3u << shift)) | (count << shift));
  }
  /// FSA offset of logical bucket lb = sum of counts of buckets before it.
  unsigned OffsetOf(const Block& block, unsigned lb) const noexcept;
  unsigned BlockFill(const Block& block) const noexcept;

  /// Inserts fp into bucket; false when the bucket has 3 entries already or
  /// the block's 46 slots are exhausted.
  bool BucketInsert(std::uint64_t bucket, std::uint8_t fp) noexcept;
  bool BucketContains(std::uint64_t bucket, std::uint8_t fp) const noexcept;
  bool BucketErase(std::uint64_t bucket, std::uint8_t fp) noexcept;
  /// Removes and returns a random resident of the bucket (0 if empty).
  std::uint8_t BucketKick(std::uint64_t bucket, std::uint8_t replacement) noexcept;

  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t AltBucket(std::uint64_t bucket, std::uint8_t fp) const noexcept;
  void MarkOverflow(std::uint64_t bucket, std::uint8_t fp) noexcept;
  bool OverflowPossible(std::uint64_t bucket, std::uint8_t fp) const noexcept;

  Params params_;
  std::uint64_t index_mask_;
  std::vector<Block> blocks_;
  std::size_t items_ = 0;
  mutable std::uint64_t ota_skips_ = 0;
  mutable Xoshiro256 rng_;
};

}  // namespace vcf
