// Vacuum filter (Wang, Zhou, Shi, Qian — VLDB 2020), reviewed in §II-B of
// the paper: a cuckoo filter whose table is divided into equal power-of-two
// chunks, with both candidate buckets of every item confined to one chunk
// (the partial-key XOR is taken modulo the chunk size). Because the XOR
// never crosses chunks, the TOTAL table size no longer needs to be a power
// of two — VF's headline fix of CF's memory inflexibility — and candidate
// pairs stay cache-local.
//
// This implementation uses a fixed chunk size (the full multi-range "semi-
// sorted load balancing" of the paper's artifact is out of scope); the
// table may be any multiple of the chunk size. Eviction, rollback and
// instrumentation mirror the other cuckoo filters.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "hash/hash64.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class VacuumFilter : public Filter,
                     public kernel::SlotWalkPolicy<VacuumFilter> {
 public:
  struct Params {
    std::size_t bucket_count = 3 << 14;  ///< ANY multiple of chunk_buckets
    std::size_t chunk_buckets = 1 << 7;  ///< power of two
    unsigned slots_per_bucket = 4;
    unsigned fingerprint_bits = 14;
    HashKind hash = HashKind::kFnv1a;
    unsigned max_kicks = 500;
    std::uint64_t seed = 0x5EEDF00DULL;
    EvictionMode eviction = EvictionMode::kRandomWalk;
    /// Page backing for the fingerprint table (not serialized identity).
    PageHint pages = PageHint::kNormal;
  };

  explicit VacuumFilter(const Params& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Kernel-pipelined batch ops (core/cuckoo_kernel.hpp).
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  bool OptimisticReadSafe() const noexcept override { return true; }
  std::string Name() const override { return "VF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return table_.slot_count(); }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(table_.slot_count());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  const Params& params() const noexcept { return params_; }

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // shared slot-table hooks come from kernel::SlotWalkPolicy). Chunk
  // confinement holds throughout eviction: every victim move is an in-chunk
  // XOR, so walk and BFS chains never leave the root buckets' chunks. ------
  struct Hashed {
    std::uint64_t b1;
    std::uint64_t b2;
    std::uint64_t fp;
  };
  Hashed HashKey(std::uint64_t key) const noexcept;
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool RelocateVictim(WalkState& walk);
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    fn(AltBucket(bucket, FingerprintHash(occupant)), occupant);
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<VacuumFilter>;

  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  std::uint64_t AltBucket(std::uint64_t bucket, std::uint64_t fp_hash) const noexcept {
    // XOR within the chunk only: the high (chunk-index) part is preserved,
    // so the result is < bucket_count for any multiple-of-chunk table size.
    return bucket ^ (fp_hash & chunk_mask_);
  }
  std::uint64_t Digest() const noexcept;

  Params params_;
  std::uint64_t chunk_mask_;
  PackedTable table_;
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
};

}  // namespace vcf
