// Quotient filter (Bender et al., "Don't Thrash: How to Cache Your Hash on
// Flash", VLDB 2012) — the classic deletable compact AMQ the paper's
// introduction cites among the Bloom-filter fixes that "suffer degradation
// in either space or time efficiency". Implemented here so that claim can
// be measured against the cuckoo family (bench/related_work).
//
// Design: a fingerprint F of q+r bits is split into a quotient fq (table
// index, 2^q slots) and a remainder fr (r bits stored in the slot). Slots
// form runs (same quotient, sorted remainders) packed by linear probing;
// three metadata bits per slot — is_occupied, is_continuation, is_shifted —
// encode the run structure losslessly, so lookups and deletions can recover
// each stored remainder's quotient.
//
// This implementation keeps the canonical invariants but performs cluster
// surgery by decode-rewrite: mutations locate the cluster (maximal full
// region) around the target, decode it into (quotient, remainder) pairs,
// edit the multiset, and re-encode. A cluster is bounded by empty slots, so
// the rewrite is local and exact; expected cluster length is O(1) below
// ~85% load and grows steeply beyond — which is precisely the behaviour
// the related-work comparison is meant to exhibit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/filter.hpp"
#include "hash/hash64.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class QuotientFilter : public Filter {
 public:
  /// 2^quotient_bits slots, remainder_bits stored per slot (plus 3 metadata
  /// bits). quotient_bits in [1, 32], remainder_bits in [1, 54].
  QuotientFilter(unsigned quotient_bits, unsigned remainder_bits,
                 HashKind hash = HashKind::kFnv1a,
                 std::uint64_t seed = 0x5EEDF00DULL);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "QF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return slot_count_; }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(slot_count_);
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  unsigned quotient_bits() const noexcept { return q_; }
  unsigned remainder_bits() const noexcept { return r_; }

  /// Validates every structural invariant (metadata consistency, run
  /// ordering, occupied-bit bookkeeping); tests call this after mutations.
  bool CheckInvariants() const;

 private:
  struct Slot {
    bool occupied;      // some element has this INDEX as its quotient
    bool continuation;  // this ELEMENT continues the previous slot's run
    bool shifted;       // this ELEMENT is not at its canonical index
    std::uint64_t remainder;
  };

  Slot GetSlot(std::size_t i) const noexcept;
  void SetSlot(std::size_t i, const Slot& s) noexcept;
  void ClearSlot(std::size_t i) noexcept;
  bool SlotEmpty(std::size_t i) const noexcept;

  std::size_t Next(std::size_t i) const noexcept {
    return (i + 1) & (slot_count_ - 1);
  }
  std::size_t Prev(std::size_t i) const noexcept {
    return (i + slot_count_ - 1) & (slot_count_ - 1);
  }

  void Fingerprint(std::uint64_t key, std::uint64_t* fq,
                   std::uint64_t* fr) const noexcept;

  /// Start index of the cluster containing full slot `i`.
  std::size_t ClusterStart(std::size_t i) const noexcept;

  /// Decodes the cluster starting at `start` into (quotient, remainder)
  /// pairs ordered by (quotient, remainder); returns one past the last full
  /// slot through `end`.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> DecodeCluster(
      std::size_t start, std::size_t* end) const;

  /// Clears [start, old_end) and re-encodes `elements` (sorted) from
  /// `start`; may write into the slot at old_end (guaranteed empty by the
  /// caller's one-free-slot precondition).
  void EncodeCluster(std::size_t start, std::size_t old_end,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>> elements);

  unsigned q_;
  unsigned r_;
  std::size_t slot_count_;
  HashKind hash_;
  std::uint64_t seed_;
  PackedTable table_;
  std::size_t items_ = 0;
};

}  // namespace vcf
