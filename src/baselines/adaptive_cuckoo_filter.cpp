#include "baselines/adaptive_cuckoo_filter.hpp"

#include <stdexcept>

#include "common/bitops.hpp"
#include "common/random.hpp"

namespace vcf {

namespace {
// Seed perturbations: two bucket hashes and four fingerprint functions.
constexpr std::uint64_t kBucketSeed[2] = {0xACF0B1ULL, 0xACF0B2ULL};
constexpr std::uint64_t kSelectorSeed[4] = {0xACF5E1ULL, 0xACF5E2ULL,
                                            0xACF5E3ULL, 0xACF5E4ULL};
}  // namespace

AdaptiveCuckooFilter::AdaptiveCuckooFilter(const CuckooParams& params)
    : params_(params),
      index_mask_(LowMask(params.index_bits())),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits),
      selectors_((params.bucket_count + 3) / 4, 0),
      shadow_keys_(params.slot_count(), 0),
      rng_(params.seed ^ 0xACF104C0FFEEULL) {
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 ||
      params.fingerprint_bits == 0 || params.fingerprint_bits > 25) {
    throw std::invalid_argument("ACF: unsupported table geometry");
  }
}

std::uint64_t AdaptiveCuckooFilter::BucketOf(std::uint64_t key,
                                             unsigned which) const noexcept {
  // The SplitMix finalizer decorrelates the seeded hashes: weak hash
  // functions (FNV's low bits) otherwise leave the two bucket streams and
  // the four fingerprint streams visibly correlated, inflating the FPR.
  ++counters_.hash_computations;
  return Mix64(Hash64(params_.hash, key, params_.seed ^ kBucketSeed[which])) &
         index_mask_;
}

std::uint64_t AdaptiveCuckooFilter::FingerprintUnder(
    std::uint64_t key, unsigned selector) const noexcept {
  ++counters_.hash_computations;
  const std::uint64_t fp =
      Mix64(Hash64(params_.hash, key, params_.seed ^ kSelectorSeed[selector])) &
      LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

void AdaptiveCuckooFilter::BumpSelector(std::uint64_t bucket) noexcept {
  const unsigned shift = (bucket & 3) * 2;
  std::uint8_t& byte = selectors_[bucket >> 2];
  const unsigned next = ((byte >> shift) + 1) & 3;
  byte = static_cast<std::uint8_t>((byte & ~(3u << shift)) | (next << shift));
}

void AdaptiveCuckooFilter::RefingerprintBucket(std::uint64_t bucket) noexcept {
  const unsigned selector = Selector(bucket);
  for (unsigned s = 0; s < params_.slots_per_bucket; ++s) {
    if (table_.Get(bucket, s) != 0) {
      const std::uint64_t key = shadow_keys_[bucket * params_.slots_per_bucket + s];
      table_.Set(bucket, s, FingerprintUnder(key, selector));
    }
  }
}

bool AdaptiveCuckooFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  const std::uint64_t buckets[2] = {BucketOf(key, 0), BucketOf(key, 1)};
  counters_.bucket_probes += 2;
  for (const std::uint64_t bucket : buckets) {
    const int slot = table_.FindEmptySlot(bucket);
    if (slot >= 0) {
      table_.Set(bucket, static_cast<unsigned>(slot),
                 FingerprintUnder(key, Selector(bucket)));
      shadow_keys_[bucket * params_.slots_per_bucket +
                   static_cast<unsigned>(slot)] = key;
      ++items_;
      return true;
    }
  }

  // Eviction: relocation re-hashes the victim's shadow key (the backing
  // store the ACF fronts makes original keys available).
  struct Step {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t old_fp;
    std::uint64_t old_key;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  std::uint64_t cur = buckets[rng_.Next() & 1];
  std::uint64_t in_hand = key;
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    const unsigned slot =
        static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
    const std::size_t flat = cur * params_.slots_per_bucket + slot;
    path.push_back({cur, slot, table_.Get(cur, slot), shadow_keys_[flat]});
    const std::uint64_t victim = shadow_keys_[flat];
    table_.Set(cur, slot, FingerprintUnder(in_hand, Selector(cur)));
    shadow_keys_[flat] = in_hand;
    in_hand = victim;
    ++counters_.evictions;

    const std::uint64_t v0 = BucketOf(in_hand, 0);
    const std::uint64_t v1 = BucketOf(in_hand, 1);
    const std::uint64_t other = v0 == cur ? v1 : v0;
    ++counters_.bucket_probes;
    const int free_slot = table_.FindEmptySlot(other);
    if (free_slot >= 0) {
      table_.Set(other, static_cast<unsigned>(free_slot),
                 FingerprintUnder(in_hand, Selector(other)));
      shadow_keys_[other * params_.slots_per_bucket +
                   static_cast<unsigned>(free_slot)] = in_hand;
      ++items_;
      return true;
    }
    cur = other;
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    table_.Set(it->bucket, it->slot, it->old_fp);
    shadow_keys_[it->bucket * params_.slots_per_bucket + it->slot] = it->old_key;
  }
  ++counters_.insert_failures;
  return false;
}

bool AdaptiveCuckooFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  counters_.bucket_probes += 2;
  for (unsigned which = 0; which < 2; ++which) {
    const std::uint64_t bucket = BucketOf(key, which);
    if (table_.ContainsValue(bucket, FingerprintUnder(key, Selector(bucket)))) {
      return true;
    }
  }
  return false;
}

bool AdaptiveCuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  counters_.bucket_probes += 2;
  // Exact deletion: shadow keys disambiguate fingerprint collisions (the
  // backing store knows which entry is really being removed).
  for (unsigned which = 0; which < 2; ++which) {
    const std::uint64_t bucket = BucketOf(key, which);
    const std::uint64_t fp = FingerprintUnder(key, Selector(bucket));
    for (unsigned s = 0; s < params_.slots_per_bucket; ++s) {
      const std::size_t flat = bucket * params_.slots_per_bucket + s;
      if (table_.Get(bucket, s) == fp && shadow_keys_[flat] == key) {
        table_.Set(bucket, s, 0);
        shadow_keys_[flat] = 0;
        --items_;
        return true;
      }
    }
  }
  return false;
}

bool AdaptiveCuckooFilter::AdaptFalsePositive(std::uint64_t key) {
  bool adapted = false;
  for (unsigned which = 0; which < 2; ++which) {
    const std::uint64_t bucket = BucketOf(key, which);
    const std::uint64_t fp = FingerprintUnder(key, Selector(bucket));
    for (unsigned s = 0; s < params_.slots_per_bucket; ++s) {
      const std::size_t flat = bucket * params_.slots_per_bucket + s;
      if (table_.Get(bucket, s) == fp && shadow_keys_[flat] != key) {
        // Genuine false positive in this bucket: rotate its fingerprint
        // function and re-fingerprint all residents.
        BumpSelector(bucket);
        RefingerprintBucket(bucket);
        ++adaptations_;
        adapted = true;
        break;  // the bucket's fingerprints changed; move to the other one
      }
    }
  }
  return adapted;
}

void AdaptiveCuckooFilter::Clear() {
  table_.Clear();
  std::fill(selectors_.begin(), selectors_.end(), std::uint8_t{0});
  std::fill(shadow_keys_.begin(), shadow_keys_.end(), 0);
  items_ = 0;
  adaptations_ = 0;
}

}  // namespace vcf
