#include "baselines/dary_cuckoo_filter.hpp"

#include <stdexcept>

#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;
}

DaryCuckooFilter::DaryCuckooFilter(const CuckooParams& params, unsigned d)
    : params_(params),
      d_(d),
      digit_bits_(IsPowerOfTwo(d) ? FloorLog2(d) : 0),
      index_bits_(params.index_bits()),
      index_mask_(LowMask(params.index_bits())),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits, TableLayout::kPacked, params.pages),
      rng_(params.seed ^ 0xDCF104C0FFEEULL),
      name_("DCF(d=" + std::to_string(d) + ")") {
  if (!IsPowerOfTwo(d) || d < 2) {
    throw std::invalid_argument("DaryCuckooFilter: d must be a power of two >= 2");
  }
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("DaryCuckooFilter: unsupported table geometry");
  }
}

std::uint64_t DaryCuckooFilter::DigitAdd(std::uint64_t a,
                                         std::uint64_t b) const noexcept {
  // Literal DCF indexing: convert both indices to base-d digit form with
  // general-purpose div/mod (d is a runtime value, so the compiler cannot
  // strength-reduce this to shifts), add digit-wise modulo the radix, and
  // convert back via multiply-accumulate. The paper's critique of DCF is
  // precisely this per-hop conversion cost (§II-B), so we keep it honest
  // rather than exploiting d being a power of two. The top digit may have a
  // smaller radix when the index width is not a multiple of log2(d); d
  // applications still cycle (Eq. 2) because every digit radix divides d.
  const std::uint64_t d = d_;
  std::uint64_t qa = a;
  std::uint64_t qb = b;
  std::uint64_t result = 0;
  std::uint64_t place = 1;
  unsigned consumed = 0;
  while (consumed + digit_bits_ <= index_bits_) {
    const std::uint64_t da = qa % d;
    const std::uint64_t db = qb % d;
    qa /= d;
    qb /= d;
    result += ((da + db) % d) * place;
    place *= d;
    consumed += digit_bits_;
  }
  if (consumed < index_bits_) {
    const std::uint64_t radix = std::uint64_t{1} << (index_bits_ - consumed);
    result += ((qa + qb) % radix) * place;
  }
  return result;
}

std::uint64_t DaryCuckooFilter::Fingerprint(std::uint64_t key,
                                            std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & index_mask_;
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t DaryCuckooFilter::FingerprintHash(std::uint64_t fp) const noexcept {
  // f-bit hash(eta), as everywhere in this library (see cuckoo_filter.cpp);
  // DigitAdd additionally confines the result to the index width.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits) & index_mask_;
}

DaryCuckooFilter::Hashed DaryCuckooFilter::HashKey(
    std::uint64_t key) const noexcept {
  Hashed h;
  h.fp = Fingerprint(key, &h.b1);
  h.fh = FingerprintHash(h.fp);
  return h;
}

bool DaryCuckooFilter::TryPlaceDirect(const Hashed& h) noexcept {
  // The d candidates are successive digit-additions of hash(fp), derived
  // lazily — each hop pays the base-d conversion the baseline exhibits.
  counters_.bucket_probes += d_;
  std::uint64_t bucket = h.b1;
  for (unsigned j = 0; j < d_; ++j) {
    if (table_.InsertValue(bucket, h.fp)) {
      ++items_;
      return true;
    }
    bucket = DigitAdd(bucket, h.fh);
  }
  return false;
}

bool DaryCuckooFilter::ProbeCandidates(const Hashed& h) const noexcept {
  counters_.bucket_probes += d_;
  std::uint64_t bucket = h.b1;
  for (unsigned j = 0; j < d_; ++j) {
    if (table_.ContainsValue(bucket, h.fp)) return true;
    bucket = DigitAdd(bucket, h.fh);
  }
  return false;
}

DaryCuckooFilter::WalkState DaryCuckooFilter::StartWalk(const Hashed& h) {
  // Random starting candidate: b1 advanced a random number of hops.
  std::uint64_t cur = h.b1;
  for (std::uint64_t hops = rng_.Below(d_); hops > 0; --hops) {
    cur = DigitAdd(cur, h.fh);
  }
  return {cur, h.fp};
}

bool DaryCuckooFilter::RelocateVictim(WalkState& walk) {
  const std::uint64_t fh = FingerprintHash(walk.fp);
  counters_.bucket_probes += d_ - 1;
  std::uint64_t probe = walk.bucket;
  std::uint64_t fallback = walk.bucket;
  const std::uint64_t pick = rng_.Below(d_ - 1);  // random-walk continuation
  for (unsigned j = 0; j + 1 < d_; ++j) {
    probe = DigitAdd(probe, fh);
    if (table_.InsertValue(probe, walk.fp)) {
      ++items_;
      return true;
    }
    if (j == pick) fallback = probe;
  }
  walk.bucket = fallback;
  return false;
}

void DaryCuckooFilter::AppendCandidates(
    const Hashed& h, std::vector<std::uint64_t>& out) const {
  std::uint64_t bucket = h.b1;
  for (unsigned j = 0; j < d_; ++j) {
    out.push_back(bucket);
    bucket = DigitAdd(bucket, h.fh);
  }
}

bool DaryCuckooFilter::Insert(std::uint64_t key) {
  return kernel::InsertOne(*this, key);
}

bool DaryCuckooFilter::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void DaryCuckooFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                     bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t DaryCuckooFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                          bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool DaryCuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += d_;
  std::uint64_t bucket = b1;
  for (unsigned j = 0; j < d_; ++j) {
    if (table_.EraseValue(bucket, fp)) {
      --items_;
      return true;
    }
    bucket = DigitAdd(bucket, fh);
  }
  return false;
}

void DaryCuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

std::uint64_t DaryCuckooFilter::Digest() const noexcept {
  return detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                              d_, params_.fingerprint_bits);
}

bool DaryCuckooFilter::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool DaryCuckooFilter::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
