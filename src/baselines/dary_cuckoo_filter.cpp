#include "baselines/dary_cuckoo_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;
}

DaryCuckooFilter::DaryCuckooFilter(const CuckooParams& params, unsigned d)
    : params_(params),
      d_(d),
      digit_bits_(IsPowerOfTwo(d) ? FloorLog2(d) : 0),
      index_bits_(params.index_bits()),
      index_mask_(LowMask(params.index_bits())),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits),
      rng_(params.seed ^ 0xDCF104C0FFEEULL),
      name_("DCF(d=" + std::to_string(d) + ")") {
  if (!IsPowerOfTwo(d) || d < 2) {
    throw std::invalid_argument("DaryCuckooFilter: d must be a power of two >= 2");
  }
  if (!IsPowerOfTwo(params.bucket_count) || params.index_bits() > 32 || params.fingerprint_bits == 0 ||
      params.fingerprint_bits > 25) {
    throw std::invalid_argument("DaryCuckooFilter: unsupported table geometry");
  }
}

std::uint64_t DaryCuckooFilter::DigitAdd(std::uint64_t a,
                                         std::uint64_t b) const noexcept {
  // Literal DCF indexing: convert both indices to base-d digit form with
  // general-purpose div/mod (d is a runtime value, so the compiler cannot
  // strength-reduce this to shifts), add digit-wise modulo the radix, and
  // convert back via multiply-accumulate. The paper's critique of DCF is
  // precisely this per-hop conversion cost (§II-B), so we keep it honest
  // rather than exploiting d being a power of two. The top digit may have a
  // smaller radix when the index width is not a multiple of log2(d); d
  // applications still cycle (Eq. 2) because every digit radix divides d.
  const std::uint64_t d = d_;
  std::uint64_t qa = a;
  std::uint64_t qb = b;
  std::uint64_t result = 0;
  std::uint64_t place = 1;
  unsigned consumed = 0;
  while (consumed + digit_bits_ <= index_bits_) {
    const std::uint64_t da = qa % d;
    const std::uint64_t db = qb % d;
    qa /= d;
    qb /= d;
    result += ((da + db) % d) * place;
    place *= d;
    consumed += digit_bits_;
  }
  if (consumed < index_bits_) {
    const std::uint64_t radix = std::uint64_t{1} << (index_bits_ - consumed);
    result += ((qa + qb) % radix) * place;
  }
  return result;
}

std::uint64_t DaryCuckooFilter::Fingerprint(std::uint64_t key,
                                            std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & index_mask_;
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t DaryCuckooFilter::FingerprintHash(std::uint64_t fp) const noexcept {
  // f-bit hash(eta), as everywhere in this library (see cuckoo_filter.cpp);
  // DigitAdd additionally confines the result to the index width.
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits) & index_mask_;
}

bool DaryCuckooFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t b1;
  std::uint64_t fp = Fingerprint(key, &b1);
  std::uint64_t fh = FingerprintHash(fp);

  // The d candidates are successive digit-additions of hash(fp).
  counters_.bucket_probes += d_;
  std::uint64_t bucket = b1;
  for (unsigned j = 0; j < d_; ++j) {
    if (table_.InsertValue(bucket, fp)) {
      ++items_;
      return true;
    }
    bucket = DigitAdd(bucket, fh);
  }

  struct Step {
    std::uint64_t bucket;
    unsigned slot;
    std::uint64_t displaced;
  };
  std::vector<Step> path;
  path.reserve(params_.max_kicks);

  // Random starting candidate: b1 advanced a random number of hops.
  std::uint64_t cur = b1;
  for (std::uint64_t hops = rng_.Below(d_); hops > 0; --hops) {
    cur = DigitAdd(cur, fh);
  }
  for (unsigned s = 0; s < params_.max_kicks; ++s) {
    const unsigned slot =
        static_cast<unsigned>(rng_.Below(params_.slots_per_bucket));
    const std::uint64_t victim = table_.Get(cur, slot);
    table_.Set(cur, slot, fp);
    path.push_back({cur, slot, victim});
    fp = victim;
    ++counters_.evictions;

    fh = FingerprintHash(fp);
    counters_.bucket_probes += d_ - 1;
    std::uint64_t probe = cur;
    bool placed = false;
    std::uint64_t fallback = cur;
    const std::uint64_t pick = rng_.Below(d_ - 1);  // random-walk continuation
    for (unsigned j = 0; j + 1 < d_; ++j) {
      probe = DigitAdd(probe, fh);
      if (table_.InsertValue(probe, fp)) {
        placed = true;
        break;
      }
      if (j == pick) fallback = probe;
    }
    if (placed) {
      ++items_;
      return true;
    }
    cur = fallback;
  }

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    table_.Set(it->bucket, it->slot, it->displaced);
  }
  ++counters_.insert_failures;
  return false;
}

bool DaryCuckooFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += d_;
  std::uint64_t bucket = b1;
  for (unsigned j = 0; j < d_; ++j) {
    if (table_.ContainsValue(bucket, fp)) return true;
    bucket = DigitAdd(bucket, fh);
  }
  return false;
}

bool DaryCuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += d_;
  std::uint64_t bucket = b1;
  for (unsigned j = 0; j < d_; ++j) {
    if (table_.EraseValue(bucket, fp)) {
      --items_;
      return true;
    }
    bucket = DigitAdd(bucket, fh);
  }
  return false;
}

void DaryCuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

bool DaryCuckooFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest =
      detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                           d_, params_.fingerprint_bits);
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveTablePayload(out, table_);
}

bool DaryCuckooFilter::LoadState(std::istream& in) {
  const std::uint64_t digest =
      detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                           d_, params_.fingerprint_bits);
  if (!detail::ReadStateHeader(in, Name(), digest) ||
      !detail::LoadTablePayload(in, &table_)) {
    return false;
  }
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
