#include "baselines/semisorted_cuckoo_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

const CuckooParams& Validated(const CuckooParams& p) {
  if (!IsPowerOfTwo(p.bucket_count) || p.bucket_count == 0) {
    throw std::invalid_argument("ssCF: bucket_count must be a power of two");
  }
  if (p.index_bits() > 32) {
    throw std::invalid_argument("ssCF: at most 2^32 buckets are supported");
  }
  if (p.slots_per_bucket != 4) {
    throw std::invalid_argument("ssCF: semi-sorting requires 4 slots per bucket");
  }
  if (p.fingerprint_bits < 5 || p.fingerprint_bits > 15) {
    throw std::invalid_argument("ssCF: fingerprint_bits must be in [5, 15]");
  }
  return p;
}

std::uint16_t PackNibbles(const std::array<std::uint8_t, 4>& n) {
  return static_cast<std::uint16_t>(n[0] | (n[1] << 4) | (n[2] << 8) |
                                    (n[3] << 12));
}

}  // namespace

const SemiSortedCuckooFilter::Codec& SemiSortedCuckooFilter::GetCodec() {
  static const Codec codec = [] {
    Codec c;
    c.encode.assign(1 << 16, 0xFFFF);
    // Enumerate all non-decreasing nibble 4-tuples in lexicographic order;
    // the tuple's rank is its 12-bit code. C(19, 4) = 3876 codes.
    for (unsigned a = 0; a < 16; ++a) {
      for (unsigned b = a; b < 16; ++b) {
        for (unsigned d = b; d < 16; ++d) {
          for (unsigned e = d; e < 16; ++e) {
            const std::array<std::uint8_t, 4> tuple = {
                static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                static_cast<std::uint8_t>(d), static_cast<std::uint8_t>(e)};
            c.encode[PackNibbles(tuple)] =
                static_cast<std::uint16_t>(c.decode.size());
            c.decode.push_back(tuple);
          }
        }
      }
    }
    return c;
  }();
  return codec;
}

SemiSortedCuckooFilter::SemiSortedCuckooFilter(const CuckooParams& params)
    : params_(Validated(params)),
      index_mask_(LowMask(params.index_bits())),
      high_bits_(params.fingerprint_bits - 4),
      table_(params.bucket_count, /*slots_per_bucket=*/1,
             12 + 4 * (params.fingerprint_bits - 4)),
      rng_(params.seed ^ 0x55CF104C0FFEEULL) {
  GetCodec();  // build the shared tables before first use
}

SemiSortedCuckooFilter::Bucket SemiSortedCuckooFilter::DecodeBucket(
    std::size_t index) const noexcept {
  const std::uint64_t word = table_.Get(index, 0);
  const std::uint16_t code = static_cast<std::uint16_t>(word & 0xFFF);
  const auto& nibbles = GetCodec().decode[code];
  Bucket bucket;
  for (unsigned i = 0; i < 4; ++i) {
    const std::uint64_t high =
        (word >> (12 + i * high_bits_)) & LowMask(high_bits_);
    bucket[i] = (high << 4) | nibbles[i];
  }
  return bucket;
}

void SemiSortedCuckooFilter::EncodeBucket(std::size_t index,
                                          Bucket bucket) noexcept {
  // Canonical order: sort by (low nibble, high part); empty entries (0)
  // sort first naturally. The nibble tuple is then non-decreasing.
  std::sort(bucket.begin(), bucket.end(),
            [](std::uint64_t x, std::uint64_t y) {
              const auto kx = ((x & 0xF) << 60) | (x >> 4);
              const auto ky = ((y & 0xF) << 60) | (y >> 4);
              return kx < ky;
            });
  std::array<std::uint8_t, 4> nibbles;
  std::uint64_t word = 0;
  for (unsigned i = 0; i < 4; ++i) {
    nibbles[i] = static_cast<std::uint8_t>(bucket[i] & 0xF);
    word |= (bucket[i] >> 4) << (12 + i * high_bits_);
  }
  word |= GetCodec().encode[PackNibbles(nibbles)];
  table_.Set(index, 0, word);
}

std::uint64_t SemiSortedCuckooFilter::Fingerprint(
    std::uint64_t key, std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  *bucket1 = h & index_mask_;
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t SemiSortedCuckooFilter::FingerprintHash(
    std::uint64_t fp) const noexcept {
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits);
}

bool SemiSortedCuckooFilter::BucketContains(std::size_t index,
                                            std::uint64_t fp) const noexcept {
  const Bucket bucket = DecodeBucket(index);
  return std::find(bucket.begin(), bucket.end(), fp) != bucket.end();
}

bool SemiSortedCuckooFilter::TryInsertIntoBucket(std::size_t index,
                                                 std::uint64_t fp) noexcept {
  Bucket bucket = DecodeBucket(index);
  for (auto& slot : bucket) {
    if (slot == 0) {
      slot = fp;
      EncodeBucket(index, bucket);
      return true;
    }
  }
  return false;
}

SemiSortedCuckooFilter::Hashed SemiSortedCuckooFilter::HashKey(
    std::uint64_t key) const noexcept {
  Hashed h;
  h.fp = Fingerprint(key, &h.b1);
  h.b2 = AltBucket(h.b1, FingerprintHash(h.fp));
  return h;
}

bool SemiSortedCuckooFilter::TryPlaceDirect(const Hashed& h) noexcept {
  counters_.bucket_probes += 2;
  if (TryInsertIntoBucket(h.b1, h.fp) || TryInsertIntoBucket(h.b2, h.fp)) {
    ++items_;
    return true;
  }
  return false;
}

SemiSortedCuckooFilter::WalkUndo SemiSortedCuckooFilter::KickVictim(
    WalkState& walk) {
  // Capture the packed word BEFORE the victim draw: the whole-bucket
  // re-encode makes slot-level undo impossible.
  const WalkUndo undo{walk.bucket, table_.Get(walk.bucket, 0)};
  Bucket bucket = DecodeBucket(walk.bucket);
  const unsigned victim_slot = static_cast<unsigned>(rng_.Below(4));
  const std::uint64_t victim = bucket[victim_slot];
  bucket[victim_slot] = walk.fp;
  EncodeBucket(walk.bucket, bucket);
  walk.fp = victim;
  return undo;
}

bool SemiSortedCuckooFilter::RelocateVictim(WalkState& walk) {
  walk.bucket = AltBucket(walk.bucket, FingerprintHash(walk.fp));
  ++counters_.bucket_probes;
  if (TryInsertIntoBucket(walk.bucket, walk.fp)) {
    ++items_;
    return true;
  }
  return false;
}

int SemiSortedCuckooFilter::FreeSlot(std::uint64_t bucket) const noexcept {
  const Bucket b = DecodeBucket(bucket);
  for (unsigned s = 0; s < 4; ++s) {
    if (b[s] == 0) return static_cast<int>(s);
  }
  return -1;
}

bool SemiSortedCuckooFilter::Insert(std::uint64_t key) {
  return kernel::InsertOne(*this, key);
}

bool SemiSortedCuckooFilter::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void SemiSortedCuckooFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                           bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t SemiSortedCuckooFilter::InsertBatch(
    std::span<const std::uint64_t> keys, bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool SemiSortedCuckooFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += 2;
  for (const std::uint64_t index : {b1, AltBucket(b1, fh)}) {
    Bucket bucket = DecodeBucket(index);
    for (auto& slot : bucket) {
      if (slot == fp) {
        slot = 0;
        EncodeBucket(index, bucket);
        --items_;
        return true;
      }
    }
  }
  return false;
}

void SemiSortedCuckooFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

std::uint64_t SemiSortedCuckooFilter::Digest() const noexcept {
  return detail::ConfigDigest(params_.seed, static_cast<unsigned>(params_.hash),
                              0x55, params_.fingerprint_bits);
}

bool SemiSortedCuckooFilter::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool SemiSortedCuckooFilter::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  // Recount items: a bucket word's code reveals its nibbles; empty slots
  // are exactly the zero fingerprints.
  items_ = 0;
  for (std::size_t i = 0; i < table_.bucket_count(); ++i) {
    const Bucket bucket = DecodeBucket(i);
    for (const auto fpv : bucket) items_ += fpv != 0 ? 1 : 0;
  }
  return true;
}

}  // namespace vcf
