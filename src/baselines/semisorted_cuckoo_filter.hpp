// Semi-sorted cuckoo filter — the space optimization of the original CF
// paper (Fan et al., CoNEXT 2014, §5.2), implemented as an additional
// baseline: with b = 4 slots per bucket, the four fingerprints' low nibbles
// are kept sorted, and a sorted 4-multiset of nibbles has only
// C(16+4-1, 4) = 3876 <= 2^12 possibilities — so the 16 nibble bits
// compress losslessly into a 12-bit code, saving exactly 1 bit per slot
// versus the plain layout at the same fingerprint width.
//
// Every bucket is read-modify-written as a whole (decode nibble code +
// high parts -> 4 fingerprints; mutate; re-sort; encode). That whole-bucket
// codec is the optimization's time cost; the related-work bench shows both
// sides of the trade next to the plain CF.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class SemiSortedCuckooFilter : public Filter {
 public:
  /// slots_per_bucket is fixed at 4 (the nibble-coding arity);
  /// fingerprint_bits must be in [5, 15] so a bucket fits one packed word.
  explicit SemiSortedCuckooFilter(const CuckooParams& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "ssCF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override {
    return table_.bucket_count() * 4;
  }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(SlotCount());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Bits per slot in this layout: 12/4 + (f - 4) = f - 1.
  double BitsPerSlot() const noexcept {
    return static_cast<double>(params_.fingerprint_bits) - 1.0;
  }

  /// Whole-bucket codec, exposed for tests: a bucket is 4 fingerprints
  /// (0 = empty slot).
  using Bucket = std::array<std::uint64_t, 4>;
  Bucket DecodeBucket(std::size_t index) const noexcept;
  void EncodeBucket(std::size_t index, Bucket bucket) noexcept;

 private:
  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  std::uint64_t AltBucket(std::uint64_t bucket, std::uint64_t fp_hash) const noexcept {
    return (bucket ^ fp_hash) & index_mask_;
  }
  bool BucketContains(std::size_t index, std::uint64_t fp) const noexcept;
  bool TryInsertIntoBucket(std::size_t index, std::uint64_t fp) noexcept;

  /// Shared nibble-code tables (built once, process-wide).
  struct Codec {
    std::vector<std::array<std::uint8_t, 4>> decode;  // code -> sorted nibbles
    std::vector<std::uint16_t> encode;                // packed nibbles -> code
  };
  static const Codec& GetCodec();

  CuckooParams params_;
  std::uint64_t index_mask_;
  unsigned high_bits_;  // f - 4 bits stored verbatim per slot
  PackedTable table_;   // 1 packed word per bucket: 12 + 4*high_bits_ bits
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
};

}  // namespace vcf
