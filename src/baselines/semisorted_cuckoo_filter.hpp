// Semi-sorted cuckoo filter — the space optimization of the original CF
// paper (Fan et al., CoNEXT 2014, §5.2), implemented as an additional
// baseline: with b = 4 slots per bucket, the four fingerprints' low nibbles
// are kept sorted, and a sorted 4-multiset of nibbles has only
// C(16+4-1, 4) = 3876 <= 2^12 possibilities — so the 16 nibble bits
// compress losslessly into a 12-bit code, saving exactly 1 bit per slot
// versus the plain layout at the same fingerprint width.
//
// Every bucket is read-modify-written as a whole (decode nibble code +
// high parts -> 4 fingerprints; mutate; re-sort; encode). That whole-bucket
// codec is the optimization's time cost; the related-work bench shows both
// sides of the trade next to the plain CF.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/random.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"
#include "table/packed_table.hpp"

namespace vcf {

class SemiSortedCuckooFilter
    : public Filter,
      public kernel::SlotWalkPolicy<SemiSortedCuckooFilter> {
 public:
  /// slots_per_bucket is fixed at 4 (the nibble-coding arity);
  /// fingerprint_bits must be in [5, 15] so a bucket fits one packed word.
  explicit SemiSortedCuckooFilter(const CuckooParams& params);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  /// Kernel-pipelined batch ops (core/cuckoo_kernel.hpp).
  void ContainsBatch(std::span<const std::uint64_t> keys,
                     bool* results) const override;
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "ssCF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override {
    return table_.bucket_count() * 4;
  }
  double LoadFactor() const noexcept override {
    return static_cast<double>(items_) / static_cast<double>(SlotCount());
  }
  std::size_t MemoryBytes() const noexcept override {
    return table_.StorageBytes();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  /// Bits per slot in this layout: 12/4 + (f - 4) = f - 1.
  double BitsPerSlot() const noexcept {
    return static_cast<double>(params_.fingerprint_bits) - 1.0;
  }

  /// Whole-bucket codec, exposed for tests: a bucket is 4 fingerprints
  /// (0 = empty slot).
  using Bucket = std::array<std::uint64_t, 4>;
  Bucket DecodeBucket(std::size_t index) const noexcept;
  void EncodeBucket(std::size_t index, Bucket bucket) noexcept;

  // --- CandidatePolicy surface (consumed by core/cuckoo_kernel.hpp; the
  // trivial hooks come from kernel::SlotWalkPolicy, while everything that
  // touches a bucket goes through the whole-bucket codec and hides the
  // slot-table defaults) ---------------------------------------------------
  struct Hashed {
    std::uint64_t b1;
    std::uint64_t b2;
    std::uint64_t fp;
  };
  /// Slot identities shift when a bucket is re-sorted on encode, so the undo
  /// log stores the bucket's previous packed word rather than a slot index.
  struct WalkUndo {
    std::uint64_t bucket;
    std::uint64_t old_word;
  };
  Hashed HashKey(std::uint64_t key) const noexcept;
  bool TryPlaceDirect(const Hashed& h) noexcept;
  bool ProbeCandidates(const Hashed& h) const noexcept {
    counters_.bucket_probes += 2;
    return BucketContains(h.b1, h.fp) || BucketContains(h.b2, h.fp);
  }
  WalkUndo KickVictim(WalkState& walk);
  bool RelocateVictim(WalkState& walk);
  void UndoKick(const WalkUndo& u) noexcept {
    table_.Set(u.bucket, 0, u.old_word);
  }

  // BFS surface. Slot indices refer to the bucket's DECODED order; they stay
  // meaningful across the apply phase because the search phase never writes
  // and the visited set guarantees each bucket on the final path is
  // re-encoded exactly once.
  std::uint64_t ReadSlot(std::uint64_t bucket, unsigned slot) const noexcept {
    return DecodeBucket(bucket)[slot];
  }
  void WriteSlot(std::uint64_t bucket, unsigned slot, std::uint64_t v) noexcept {
    Bucket b = DecodeBucket(bucket);
    b[slot] = v;
    EncodeBucket(bucket, b);
  }
  int FreeSlot(std::uint64_t bucket) const noexcept;
  template <typename Fn>
  void ForEachVictimMove(std::uint64_t bucket, std::uint64_t occupant,
                         Fn&& fn) const {
    fn(AltBucket(bucket, FingerprintHash(occupant)), occupant);
  }
  // ------------------------------------------------------------------------

 private:
  friend kernel::SlotWalkPolicy<SemiSortedCuckooFilter>;

  std::uint64_t Fingerprint(std::uint64_t key, std::uint64_t* bucket1) const noexcept;
  std::uint64_t FingerprintHash(std::uint64_t fp) const noexcept;
  std::uint64_t AltBucket(std::uint64_t bucket, std::uint64_t fp_hash) const noexcept {
    return (bucket ^ fp_hash) & index_mask_;
  }
  bool BucketContains(std::size_t index, std::uint64_t fp) const noexcept;
  bool TryInsertIntoBucket(std::size_t index, std::uint64_t fp) noexcept;
  std::uint64_t Digest() const noexcept;

  /// Shared nibble-code tables (built once, process-wide).
  struct Codec {
    std::vector<std::array<std::uint8_t, 4>> decode;  // code -> sorted nibbles
    std::vector<std::uint16_t> encode;                // packed nibbles -> code
  };
  static const Codec& GetCodec();

  CuckooParams params_;
  std::uint64_t index_mask_;
  unsigned high_bits_;  // f - 4 bits stored verbatim per slot
  PackedTable table_;   // 1 packed word per bucket: 12 + 4*high_bits_ bits
  std::size_t items_ = 0;
  mutable Xoshiro256 rng_;
};

}  // namespace vcf
