// Counting Bloom filter (Fan et al., SIGCOMM 1998) — Table I's deletable
// Bloom variant: each position is a 4-bit saturating counter, costing 4x the
// space of a plain Bloom filter for the same false-positive rate.
//
// Counters saturate at 15 and, once saturated, are never decremented
// (the classic safety rule: a saturated counter may be shared by more items
// than it can count, so decrementing could create false negatives).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/bloom_filter.hpp"  // BloomHashing
#include "core/filter.hpp"
#include "hash/hash64.hpp"

namespace vcf {

class CountingBloomFilter : public Filter {
 public:
  /// `bits_per_item` refers to the equivalent plain-Bloom budget; the CBF
  /// allocates 4 bits per position (so 4x that budget in total), matching
  /// how Table I accounts CBF space as 4x BF. Position derivation follows
  /// the same classic/double-hashing choice as BloomFilter.
  CountingBloomFilter(std::size_t capacity, double bits_per_item,
                      HashKind hash = HashKind::kFnv1a, unsigned num_hashes = 0,
                      std::uint64_t seed = 0x5EEDF00DULL,
                      BloomHashing mode = BloomHashing::kClassic);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;

  bool SupportsDeletion() const noexcept override { return true; }
  std::string Name() const override { return "CBF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return capacity_; }
  double LoadFactor() const noexcept override {
    return capacity_ == 0
               ? 0.0
               : static_cast<double>(items_) / static_cast<double>(capacity_);
  }
  std::size_t MemoryBytes() const noexcept override {
    return counters_store_.size();
  }
  void Clear() override;
  bool SaveState(std::ostream& out) const override;
  bool LoadState(std::istream& in) override;

  unsigned num_hashes() const noexcept { return k_; }
  std::size_t counter_count() const noexcept { return m_; }

 private:
  unsigned GetCounter(std::size_t i) const noexcept {
    const std::uint8_t byte = counters_store_[i >> 1];
    return (i & 1) ? byte >> 4 : byte & 0xF;
  }
  void SetCounter(std::size_t i, unsigned v) noexcept {
    std::uint8_t& byte = counters_store_[i >> 1];
    if (i & 1) {
      byte = static_cast<std::uint8_t>((byte & 0x0F) | (v << 4));
    } else {
      byte = static_cast<std::uint8_t>((byte & 0xF0) | v);
    }
  }
  std::size_t Position(std::uint64_t key, unsigned i, std::uint64_t* h1,
                       std::uint64_t* h2) const noexcept;

  std::size_t capacity_;
  std::size_t m_;
  unsigned k_;
  HashKind hash_;
  std::uint64_t seed_;
  BloomHashing mode_;
  std::size_t items_ = 0;
  std::vector<std::uint64_t> probe_seeds_;
  std::vector<std::uint8_t> counters_store_;  // two 4-bit counters per byte
};

}  // namespace vcf
