#include "baselines/bloom_filter.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/random.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
std::size_t ValidatedBitCount(std::size_t capacity, double bits_per_item,
                              std::size_t minimum, const char* what) {
  if (capacity == 0 || bits_per_item <= 0.0) {
    throw std::invalid_argument(what);
  }
  return std::max<std::size_t>(
      minimum, static_cast<std::size_t>(
                   std::ceil(bits_per_item * static_cast<double>(capacity))));
}
}  // namespace

BloomFilter::BloomFilter(std::size_t capacity, double bits_per_item,
                         HashKind hash, unsigned num_hashes, std::uint64_t seed,
                         BloomHashing mode)
    : capacity_(capacity),
      m_(ValidatedBitCount(capacity, bits_per_item, 64,
                           "BloomFilter: capacity and bits_per_item must be "
                           "positive")),
      k_(num_hashes != 0
             ? num_hashes
             : std::max(1u, static_cast<unsigned>(std::lround(
                                bits_per_item * 0.6931471805599453)))),
      hash_(hash),
      seed_(seed),
      mode_(mode),
      bits_((m_ + 63) / 64, 0) {
  probe_seeds_.reserve(k_);
  for (unsigned i = 0; i < k_; ++i) {
    probe_seeds_.push_back(Mix64(seed_ + 0x9E3779B97F4A7C15ULL * (i + 1)));
  }
}

std::size_t BloomFilter::Position(std::uint64_t key, unsigned i,
                                  std::uint64_t* h1,
                                  std::uint64_t* h2) const noexcept {
  if (mode_ == BloomHashing::kClassic) {
    ++counters_.hash_computations;
    return static_cast<std::size_t>(Hash64(hash_, key, probe_seeds_[i]) % m_);
  }
  // Double hashing: two base hashes computed once (at i == 0), then a
  // stride walk. The odd stride guarantees full period modulo m.
  if (i == 0) {
    *h1 = Hash64(hash_, key, seed_);
    *h2 = Hash64(hash_, key, seed_ ^ 0xB10F2ULL) | 1;
    counters_.hash_computations += 2;
  }
  return static_cast<std::size_t>((*h1 + i * *h2) % m_);
}

bool BloomFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t bit = Position(key, i, &h1, &h2);
    bits_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  ++items_;
  return true;
}

bool BloomFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t bit = Position(key, i, &h1, &h2);
    if ((bits_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

bool BloomFilter::Erase(std::uint64_t key) {
  (void)key;
  ++counters_.deletions;
  return false;  // standard Bloom filters cannot delete (§II-A)
}

void BloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  items_ = 0;
}

bool BloomFilter::SaveState(std::ostream& out) const {
  const std::uint64_t digest = detail::ConfigDigest(
      seed_, static_cast<unsigned>(hash_),
      k_ * 2 + static_cast<unsigned>(mode_),
      static_cast<unsigned>(m_ & 0xFFFFFFFFu));
  std::vector<std::uint8_t> bytes(bits_.size() * sizeof(std::uint64_t));
  std::memcpy(bytes.data(), bits_.data(), bytes.size());
  return detail::WriteStateHeader(out, Name(), digest) &&
         detail::SaveBytesPayload(out, bytes, items_);
}

bool BloomFilter::LoadState(std::istream& in) {
  const std::uint64_t digest = detail::ConfigDigest(
      seed_, static_cast<unsigned>(hash_),
      k_ * 2 + static_cast<unsigned>(mode_),
      static_cast<unsigned>(m_ & 0xFFFFFFFFu));
  if (!detail::ReadStateHeader(in, Name(), digest)) return false;
  std::vector<std::uint8_t> bytes(bits_.size() * sizeof(std::uint64_t));
  std::uint64_t items = 0;
  if (!detail::LoadBytesPayload(in, &bytes, &items)) return false;
  std::memcpy(bits_.data(), bytes.data(), bytes.size());
  items_ = static_cast<std::size_t>(items);
  return true;
}

}  // namespace vcf
