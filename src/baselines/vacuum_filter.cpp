#include "baselines/vacuum_filter.hpp"

#include <stdexcept>

#include "common/bitops.hpp"
#include "core/cuckoo_kernel.hpp"
#include "core/state_io.hpp"

namespace vcf {

namespace {
constexpr std::uint64_t kFpHashSeed = 0xF1A9E57ECULL;

const VacuumFilter::Params& Validated(const VacuumFilter::Params& p) {
  if (!IsPowerOfTwo(p.chunk_buckets)) {
    throw std::invalid_argument("VacuumFilter: chunk_buckets must be a power of two");
  }
  if (p.bucket_count == 0 || p.bucket_count % p.chunk_buckets != 0) {
    throw std::invalid_argument(
        "VacuumFilter: bucket_count must be a positive multiple of chunk_buckets");
  }
  if (p.fingerprint_bits == 0 || p.fingerprint_bits > 25) {
    throw std::invalid_argument("VacuumFilter: fingerprint_bits must be in [1, 25]");
  }
  if (p.chunk_buckets > (std::uint64_t{1} << p.fingerprint_bits)) {
    throw std::invalid_argument(
        "VacuumFilter: chunk_buckets must be <= 2^fingerprint_bits (the f-bit "
        "hash(eta) must be able to reach the whole chunk)");
  }
  if (p.slots_per_bucket == 0) {
    throw std::invalid_argument("VacuumFilter: slots_per_bucket must be >= 1");
  }
  return p;
}
}  // namespace

VacuumFilter::VacuumFilter(const Params& params)
    : params_(Validated(params)),
      chunk_mask_(params.chunk_buckets - 1),
      table_(params.bucket_count, params.slots_per_bucket,
             params.fingerprint_bits, TableLayout::kPacked, params.pages),
      rng_(params.seed ^ 0x7ACC7F104C0FFEEULL) {}

std::uint64_t VacuumFilter::Fingerprint(std::uint64_t key,
                                        std::uint64_t* bucket1) const noexcept {
  const std::uint64_t h = Hash64(params_.hash, key, params_.seed);
  ++counters_.hash_computations;
  // Modulo reduction onto the (possibly non-power-of-two) bucket range uses
  // the hash's LOW bits; a multiply-shift reduction would read the high
  // bits, which weak hashes (DJB2 over short keys) leave almost empty and
  // would pile every key into chunk 0. The fingerprint comes from bits 32+,
  // matching the rest of the library.
  *bucket1 = h % params_.bucket_count;
  std::uint64_t fp = (h >> 32) & LowMask(params_.fingerprint_bits);
  return fp == 0 ? 1 : fp;
}

std::uint64_t VacuumFilter::FingerprintHash(std::uint64_t fp) const noexcept {
  ++counters_.hash_computations;
  return Hash64(params_.hash, fp, params_.seed ^ kFpHashSeed) &
         LowMask(params_.fingerprint_bits);
}

VacuumFilter::Hashed VacuumFilter::HashKey(std::uint64_t key) const noexcept {
  Hashed h;
  h.fp = Fingerprint(key, &h.b1);
  h.b2 = AltBucket(h.b1, FingerprintHash(h.fp));
  return h;
}

bool VacuumFilter::TryPlaceDirect(const Hashed& h) noexcept {
  counters_.bucket_probes += 2;
  if (table_.InsertValue(h.b1, h.fp) || table_.InsertValue(h.b2, h.fp)) {
    ++items_;
    return true;
  }
  return false;
}

bool VacuumFilter::RelocateVictim(WalkState& walk) {
  walk.bucket = AltBucket(walk.bucket, FingerprintHash(walk.fp));
  ++counters_.bucket_probes;
  if (table_.InsertValue(walk.bucket, walk.fp)) {
    ++items_;
    return true;
  }
  return false;
}

bool VacuumFilter::Insert(std::uint64_t key) {
  return kernel::InsertOne(*this, key);
}

bool VacuumFilter::Contains(std::uint64_t key) const {
  return kernel::ContainsOne(*this, key);
}

void VacuumFilter::ContainsBatch(std::span<const std::uint64_t> keys,
                                 bool* results) const {
  kernel::ContainsBatch(*this, keys, results);
}

std::size_t VacuumFilter::InsertBatch(std::span<const std::uint64_t> keys,
                                      bool* results) {
  return kernel::InsertBatch(*this, keys, results);
}

bool VacuumFilter::Erase(std::uint64_t key) {
  ++counters_.deletions;
  std::uint64_t b1;
  const std::uint64_t fp = Fingerprint(key, &b1);
  const std::uint64_t fh = FingerprintHash(fp);
  counters_.bucket_probes += 2;
  if (table_.EraseValue(b1, fp) || table_.EraseValue(AltBucket(b1, fh), fp)) {
    --items_;
    return true;
  }
  return false;
}

void VacuumFilter::Clear() {
  table_.Clear();
  items_ = 0;
}

std::uint64_t VacuumFilter::Digest() const noexcept {
  return detail::ConfigDigest(
      params_.seed, static_cast<unsigned>(params_.hash),
      static_cast<unsigned>(params_.chunk_buckets & 0xFFFFFFFFu),
      params_.fingerprint_bits);
}

bool VacuumFilter::SaveState(std::ostream& out) const {
  return detail::SaveFilterState(out, Name(), Digest(), table_);
}

bool VacuumFilter::LoadState(std::istream& in) {
  if (!detail::LoadFilterState(in, Name(), Digest(), &table_)) return false;
  items_ = table_.OccupiedSlots();
  return true;
}

}  // namespace vcf
