// Count-Min sketches: the standard d-row construction (Cormode &
// Muthukrishnan) and a vertical-hashing variant.
//
// §III-C of the paper argues that vertical hashing is a general methodology
// for replacing the independent hash functions other sketches rely on:
// Count-Min computes d hashes per update/estimate; generalized vertical
// hashing derives all d row positions from ONE hash plus fixed bitmasks.
// This module implements both so the claim can be tested (accuracy parity)
// and benchmarked (hash-computation savings) — see bench/ext_sketches and
// tests/sketches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vertical_hashing.hpp"
#include "hash/hash64.hpp"
#include "metrics/op_counters.hpp"

namespace vcf {

/// Common interface so the harness can compare the two constructions.
class FrequencySketch {
 public:
  virtual ~FrequencySketch() = default;

  FrequencySketch(const FrequencySketch&) = delete;
  FrequencySketch& operator=(const FrequencySketch&) = delete;

  /// Adds `count` occurrences of `key`.
  virtual void Update(std::uint64_t key, std::uint64_t count) = 0;

  /// Point estimate: >= true count (one-sided error), with
  /// P[error > e/width * total] <= (1/2)^depth for the standard sketch.
  virtual std::uint64_t Estimate(std::uint64_t key) const = 0;

  virtual std::string Name() const = 0;
  virtual std::size_t MemoryBytes() const noexcept = 0;

  const OpCounters& counters() const noexcept { return counters_; }
  void ResetCounters() noexcept { counters_.Reset(); }

 protected:
  FrequencySketch() = default;
  FrequencySketch(FrequencySketch&&) = default;
  FrequencySketch& operator=(FrequencySketch&&) = default;
  mutable OpCounters counters_;
};

/// Textbook Count-Min: `depth` rows of `width` counters, one independent
/// hash per row.
class CountMinSketch : public FrequencySketch {
 public:
  /// `width` is rounded up to a power of two (index masking).
  CountMinSketch(std::size_t width, unsigned depth,
                 HashKind hash = HashKind::kFnv1a,
                 std::uint64_t seed = 0x5EEDF00DULL);

  void Update(std::uint64_t key, std::uint64_t count) override;
  std::uint64_t Estimate(std::uint64_t key) const override;
  std::string Name() const override { return "CountMin"; }
  std::size_t MemoryBytes() const noexcept override {
    return rows_.size() * sizeof(std::uint64_t);
  }

  std::size_t width() const noexcept { return width_; }
  unsigned depth() const noexcept { return depth_; }

 private:
  std::size_t Position(std::uint64_t key, unsigned row) const noexcept;

  std::size_t width_;
  unsigned depth_;
  HashKind hash_;
  std::vector<std::uint64_t> row_seeds_;
  std::vector<std::uint64_t> rows_;  // depth_ * width_, row-major
};

/// Vertical-hashing Count-Min: ONE hash computation per operation; the
/// depth row positions are h ^ (h' & mask_e) for the generalized mask
/// family (mask_0 = 0, mask_{d-1} = full, middle masks random). The row
/// positions are pairwise dependent — the paper's §III-C trade: one hash
/// for slightly correlated rows — and the tests quantify that the point-
/// estimate quality on realistic workloads is indistinguishable.
class VerticalCountMin : public FrequencySketch {
 public:
  VerticalCountMin(std::size_t width, unsigned depth,
                   HashKind hash = HashKind::kFnv1a,
                   std::uint64_t seed = 0x5EEDF00DULL);

  void Update(std::uint64_t key, std::uint64_t count) override;
  std::uint64_t Estimate(std::uint64_t key) const override;
  std::string Name() const override { return "VerticalCountMin"; }
  std::size_t MemoryBytes() const noexcept override {
    return rows_.size() * sizeof(std::uint64_t);
  }

  std::size_t width() const noexcept { return width_; }
  unsigned depth() const noexcept { return depth_; }

 private:
  std::size_t width_;
  unsigned depth_;
  HashKind hash_;
  std::uint64_t seed_;
  GeneralizedVerticalHasher hasher_;
  std::vector<std::uint64_t> rows_;
};

}  // namespace vcf
