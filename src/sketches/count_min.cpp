#include "sketches/count_min.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/random.hpp"

namespace vcf {

namespace {
std::size_t ValidatedWidth(std::size_t width, unsigned depth) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("CountMin: width and depth must be positive");
  }
  const std::size_t rounded = NextPowerOfTwo(width);
  if (FloorLog2(rounded) > 32) {
    throw std::invalid_argument("CountMin: width above 2^32 is unsupported");
  }
  return rounded;
}
}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, unsigned depth, HashKind hash,
                               std::uint64_t seed)
    : width_(ValidatedWidth(width, depth)),
      depth_(depth),
      hash_(hash),
      rows_(width_ * depth, 0) {
  row_seeds_.reserve(depth);
  for (unsigned r = 0; r < depth; ++r) {
    row_seeds_.push_back(Mix64(seed + 0x9E3779B97F4A7C15ULL * (r + 1)));
  }
}

std::size_t CountMinSketch::Position(std::uint64_t key,
                                     unsigned row) const noexcept {
  ++counters_.hash_computations;
  return static_cast<std::size_t>(Hash64(hash_, key, row_seeds_[row]) &
                                  (width_ - 1));
}

void CountMinSketch::Update(std::uint64_t key, std::uint64_t count) {
  ++counters_.inserts;
  for (unsigned r = 0; r < depth_; ++r) {
    rows_[r * width_ + Position(key, r)] += count;
  }
}

std::uint64_t CountMinSketch::Estimate(std::uint64_t key) const {
  ++counters_.lookups;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (unsigned r = 0; r < depth_; ++r) {
    best = std::min(best, rows_[r * width_ + Position(key, r)]);
  }
  return best;
}

VerticalCountMin::VerticalCountMin(std::size_t width, unsigned depth,
                                   HashKind hash, std::uint64_t seed)
    : width_(ValidatedWidth(width, depth)),
      depth_(depth),
      hash_(hash),
      seed_(seed),
      hasher_(FloorLog2(width_), FloorLog2(width_), depth,
              seed ^ 0x5E7C4E5ULL),
      rows_(width_ * depth, 0) {}

void VerticalCountMin::Update(std::uint64_t key, std::uint64_t count) {
  ++counters_.inserts;
  // One full hash; the row positions come from its two halves and the mask
  // family (Eq. 6 applied to counter rows instead of buckets).
  const std::uint64_t h = Hash64(hash_, key, seed_);
  ++counters_.hash_computations;
  const std::uint64_t base = h;        // low bits: primary position
  const std::uint64_t offset = h >> 32;  // high bits: the masked offset source
  for (unsigned r = 0; r < depth_; ++r) {
    const std::size_t pos =
        static_cast<std::size_t>(hasher_.Candidate(base, offset, r));
    rows_[r * width_ + pos] += count;
  }
}

std::uint64_t VerticalCountMin::Estimate(std::uint64_t key) const {
  ++counters_.lookups;
  const std::uint64_t h = Hash64(hash_, key, seed_);
  ++counters_.hash_computations;
  const std::uint64_t base = h;
  const std::uint64_t offset = h >> 32;
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (unsigned r = 0; r < depth_; ++r) {
    const std::size_t pos =
        static_cast<std::size_t>(hasher_.Candidate(base, offset, r));
    best = std::min(best, rows_[r * width_ + pos]);
  }
  return best;
}

}  // namespace vcf
