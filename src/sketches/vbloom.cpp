#include "sketches/vbloom.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace vcf {

namespace {

std::size_t PowerOfTwoBits(std::size_t capacity, double bits_per_item) {
  if (capacity == 0 || bits_per_item <= 0.0) {
    throw std::invalid_argument(
        "VerticalBloomFilter: capacity and bits_per_item must be positive");
  }
  const auto raw = static_cast<std::uint64_t>(
      std::ceil(bits_per_item * static_cast<double>(capacity)));
  const std::uint64_t rounded = NextPowerOfTwo(std::max<std::uint64_t>(64, raw));
  if (FloorLog2(rounded) > 40) {
    throw std::invalid_argument("VerticalBloomFilter: bit array too large");
  }
  return static_cast<std::size_t>(rounded);
}

unsigned ChooseK(double bits_per_item, unsigned forced) {
  if (forced != 0) return forced;
  return std::max(2u, static_cast<unsigned>(
                          std::lround(bits_per_item * 0.6931471805599453)));
}

}  // namespace

VerticalBloomFilter::VerticalBloomFilter(std::size_t capacity,
                                         double bits_per_item, HashKind hash,
                                         unsigned num_hashes,
                                         std::uint64_t seed)
    : capacity_(capacity),
      m_(PowerOfTwoBits(capacity, bits_per_item)),
      k_(ChooseK(bits_per_item, num_hashes)),
      hash_(hash),
      seed_(seed),
      hasher_(FloorLog2(m_), FloorLog2(m_), k_, seed ^ 0xB100F0ULL),
      bits_(m_ / 64, 0) {}

bool VerticalBloomFilter::Insert(std::uint64_t key) {
  ++counters_.inserts;
  const std::uint64_t h = Hash64(hash_, key, seed_);
  ++counters_.hash_computations;  // the ONLY hash computation of the op
  const std::uint64_t base = h;
  const std::uint64_t offset = h >> 32;
  for (unsigned e = 0; e < k_; ++e) {
    const std::uint64_t bit = hasher_.Candidate(base, offset, e);
    bits_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  ++items_;
  return true;
}

bool VerticalBloomFilter::Contains(std::uint64_t key) const {
  ++counters_.lookups;
  const std::uint64_t h = Hash64(hash_, key, seed_);
  ++counters_.hash_computations;
  const std::uint64_t base = h;
  const std::uint64_t offset = h >> 32;
  for (unsigned e = 0; e < k_; ++e) {
    const std::uint64_t bit = hasher_.Candidate(base, offset, e);
    if ((bits_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) return false;
  }
  return true;
}

bool VerticalBloomFilter::Erase(std::uint64_t key) {
  (void)key;
  ++counters_.deletions;
  return false;
}

void VerticalBloomFilter::Clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  items_ = 0;
}

}  // namespace vcf
