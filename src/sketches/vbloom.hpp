// Vertical Bloom filter — §III-C's "one hash function for many sketches"
// methodology applied to the plain Bloom filter: the k bit positions are
// derived from a single hash via the generalized vertical-hashing mask
// family instead of k independent hash invocations.
//
// Positions are pairwise dependent (they share the base and offset halves
// of one 64-bit hash), trading a small amount of independence for a k-fold
// reduction in hashing work — the same trade the VCF makes for candidate
// buckets. tests/sketches verifies the empirical FPR stays within a small
// factor of the independent-hash Bloom filter at equal geometry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/filter.hpp"
#include "core/vertical_hashing.hpp"
#include "hash/hash64.hpp"

namespace vcf {

class VerticalBloomFilter : public Filter {
 public:
  /// Same sizing interface as BloomFilter: `capacity` items at
  /// `bits_per_item` bits, k = round(bits_per_item * ln 2) probes unless
  /// forced. The bit count is rounded up to a power of two (mask indexing).
  VerticalBloomFilter(std::size_t capacity, double bits_per_item,
                      HashKind hash = HashKind::kFnv1a,
                      unsigned num_hashes = 0,
                      std::uint64_t seed = 0x5EEDF00DULL);

  bool Insert(std::uint64_t key) override;
  bool Contains(std::uint64_t key) const override;
  bool Erase(std::uint64_t key) override;  ///< unsupported: returns false

  bool SupportsDeletion() const noexcept override { return false; }
  std::string Name() const override { return "VBF"; }
  std::size_t ItemCount() const noexcept override { return items_; }
  std::size_t SlotCount() const noexcept override { return capacity_; }
  double LoadFactor() const noexcept override {
    return capacity_ == 0
               ? 0.0
               : static_cast<double>(items_) / static_cast<double>(capacity_);
  }
  std::size_t MemoryBytes() const noexcept override {
    return bits_.size() * sizeof(std::uint64_t);
  }
  void Clear() override;

  unsigned num_hashes() const noexcept { return k_; }
  std::size_t bit_count() const noexcept { return m_; }

 private:
  std::size_t capacity_;
  std::size_t m_;  // power of two
  unsigned k_;
  HashKind hash_;
  std::uint64_t seed_;
  GeneralizedVerticalHasher hasher_;
  std::size_t items_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace vcf
