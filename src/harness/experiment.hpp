// Experiment drivers shared by all bench binaries: fill a filter from a key
// stream, measure lookup latency, measure false-positive rate, and assemble
// mixed query sets — the four primitives behind every table and figure in
// the paper's evaluation (§VI).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/filter.hpp"

namespace vcf {

struct FillResult {
  std::size_t attempted = 0;  ///< keys offered
  std::size_t stored = 0;     ///< keys accepted
  std::size_t failures = 0;   ///< keys rejected (eviction chain exhausted)
  double load_factor = 0.0;   ///< stored / slots after the fill
  double total_seconds = 0.0;
  double avg_insert_micros = 0.0;       ///< total time / attempted
  double evictions_per_insert = 0.0;    ///< the paper's E0 (Fig. 8)
};

/// Offers every key to the filter (the paper's methodology: n keys into an
/// n-slot filter; "a small portion of items fail to be stored"). Counters
/// are reset first so the eviction statistics cover exactly this fill.
FillResult FillAll(Filter& filter, std::span<const std::uint64_t> keys);

/// Stops at the first rejected key instead (max sustainable load).
FillResult FillToFirstFailure(Filter& filter, std::span<const std::uint64_t> keys);

/// Like FillAll, but feeds keys through Filter::InsertBatch in windows of
/// `batch` keys — the throughput shape of the batched-insert pipeline
/// (docs/performance.md). The end state is identical to FillAll on the same
/// key stream; only the timing differs.
FillResult FillAllBatched(Filter& filter, std::span<const std::uint64_t> keys,
                          std::size_t batch = 256);

/// Mean lookup latency in microseconds over `queries` (sum of per-batch
/// wall time / count; the result of each query is consumed to prevent
/// dead-code elimination).
double MeasureLookupMicros(const Filter& filter,
                           std::span<const std::uint64_t> queries);

/// Fraction of `aliens` (keys never inserted) reported present — the
/// empirical false-positive rate xi' of §VI-B3.
double MeasureFpr(const Filter& filter, std::span<const std::uint64_t> aliens);

/// Interleaves members and aliens (alien share = `alien_fraction`) into one
/// shuffled query stream, as in Fig. 6(b)'s 50/50 mixed lookups.
std::vector<std::uint64_t> MixQueries(std::span<const std::uint64_t> members,
                                      std::span<const std::uint64_t> aliens,
                                      double alien_fraction, std::uint64_t seed);

}  // namespace vcf
