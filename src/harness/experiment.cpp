#include "harness/experiment.hpp"

#include <algorithm>

#include "common/random.hpp"
#include "common/timer.hpp"

namespace vcf {

namespace {

FillResult FillImpl(Filter& filter, std::span<const std::uint64_t> keys,
                    bool stop_at_failure) {
  filter.ResetCounters();
  FillResult result;
  Stopwatch watch;
  for (const std::uint64_t key : keys) {
    ++result.attempted;
    if (filter.Insert(key)) {
      ++result.stored;
    } else {
      ++result.failures;
      if (stop_at_failure) break;
    }
  }
  result.total_seconds = watch.ElapsedSeconds();
  result.load_factor = filter.LoadFactor();
  result.avg_insert_micros =
      result.attempted == 0
          ? 0.0
          : result.total_seconds * 1e6 / static_cast<double>(result.attempted);
  result.evictions_per_insert = filter.counters().EvictionsPerInsert();
  return result;
}

}  // namespace

FillResult FillAll(Filter& filter, std::span<const std::uint64_t> keys) {
  return FillImpl(filter, keys, /*stop_at_failure=*/false);
}

FillResult FillToFirstFailure(Filter& filter,
                              std::span<const std::uint64_t> keys) {
  return FillImpl(filter, keys, /*stop_at_failure=*/true);
}

FillResult FillAllBatched(Filter& filter, std::span<const std::uint64_t> keys,
                          std::size_t batch) {
  if (batch == 0) batch = 1;
  filter.ResetCounters();
  FillResult result;
  Stopwatch watch;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n = std::min(batch, keys.size() - done);
    result.stored += filter.InsertBatch(keys.subspan(done, n));
    result.attempted += n;
    done += n;
  }
  result.failures = result.attempted - result.stored;
  result.total_seconds = watch.ElapsedSeconds();
  result.load_factor = filter.LoadFactor();
  result.avg_insert_micros =
      result.attempted == 0
          ? 0.0
          : result.total_seconds * 1e6 / static_cast<double>(result.attempted);
  result.evictions_per_insert = filter.counters().EvictionsPerInsert();
  return result;
}

double MeasureLookupMicros(const Filter& filter,
                           std::span<const std::uint64_t> queries) {
  if (queries.empty()) return 0.0;
  std::size_t hits = 0;
  Stopwatch watch;
  for (const std::uint64_t q : queries) {
    hits += filter.Contains(q) ? 1 : 0;
  }
  const double micros = watch.ElapsedMicros();
  DoNotOptimize(hits);
  return micros / static_cast<double>(queries.size());
}

double MeasureFpr(const Filter& filter, std::span<const std::uint64_t> aliens) {
  if (aliens.empty()) return 0.0;
  std::size_t positives = 0;
  for (const std::uint64_t q : aliens) {
    positives += filter.Contains(q) ? 1 : 0;
  }
  return static_cast<double>(positives) / static_cast<double>(aliens.size());
}

std::vector<std::uint64_t> MixQueries(std::span<const std::uint64_t> members,
                                      std::span<const std::uint64_t> aliens,
                                      double alien_fraction,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> queries;
  queries.reserve(members.size() + aliens.size());
  Xoshiro256 rng(seed);
  std::size_t mi = 0;
  std::size_t ai = 0;
  // Draw from each pool proportionally until both are exhausted; then a
  // Fisher-Yates pass removes the residual ordering bias.
  while (mi < members.size() || ai < aliens.size()) {
    const bool pick_alien =
        ai < aliens.size() &&
        (mi >= members.size() || rng.NextDouble() < alien_fraction);
    queries.push_back(pick_alien ? aliens[ai++] : members[mi++]);
  }
  for (std::size_t i = queries.size(); i > 1; --i) {
    std::swap(queries[i - 1], queries[rng.Below(i)]);
  }
  return queries;
}

}  // namespace vcf
