// Declarative filter construction for the experiment harness: a FilterSpec
// names a filter family plus its variant parameter, and MakeFilter builds
// it. The standard lineups mirror the paper's evaluation roster (§VI-A:
// CF, DCF with d = 4, IVCF_1..6 and DVCF_1..8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cuckoo_params.hpp"
#include "core/filter.hpp"

namespace vcf {

struct FilterSpec {
  enum class Kind : std::uint8_t {
    kCF,    ///< standard cuckoo filter
    kVCF,   ///< balanced-mask VCF
    kIVCF,  ///< variant = number of 1-bits in bm1
    kDVCF,  ///< variant = j, r = j/8
    kKVCF,  ///< variant = k (number of candidate buckets)
    kDCF,   ///< variant = d (defaults to 4)
    kBF,    ///< Bloom filter; bits_per_item applies
    kCBF,   ///< counting Bloom filter; bits_per_item applies
    kQF,    ///< quotient filter; variant = remainder bits (default f)
    kDlCBF, ///< d-left counting Bloom filter; variant = d (default 4)
    kVF,    ///< vacuum filter; variant = log2(chunk buckets) (default 7)
    kSsCF,  ///< semi-sorted cuckoo filter (CF + nibble compression)
    kMF,    ///< Morton filter (512-bit compressed blocks, f = 8)
  };

  Kind kind = Kind::kCF;
  unsigned variant = 0;
  CuckooParams params;
  double bits_per_item = 12.0;  // Bloom family only
  unsigned num_hashes = 0;      // Bloom family only; 0 = optimal k

  /// Wrap the built filter in a ResilientFilter (victim stash + degraded
  /// mode + checkpoint retry; see core/resilient_filter.hpp). Spelled
  /// "resilient:<kind>" in string specs (vcf_tool --filter).
  bool resilient = false;

  /// Partition the key space across this many independently locked inner
  /// filters (core/sharded_filter.hpp). 0 = no sharding. The total slot
  /// budget `params.bucket_count` is split across shards (rounded up to a
  /// power of two per shard) and each shard gets a distinct derived seed.
  /// Spelled "sharded:<n>:<kind>" in string specs; composes outside
  /// `resilient:` — "sharded:4:resilient:vcf" builds four resilient shards.
  unsigned shards = 0;

  /// Build the backing PackedTable with the cache-aligned bucket layout
  /// (TableLayout::kCacheAligned: bucket stride padded to a power of two so
  /// no bucket straddles a cache line — extra space for faster probes).
  /// Applies to the cuckoo-table filters that take CuckooParams; ignored by
  /// the Bloom family. Spelled "aligned:<kind>" in string specs, innermost
  /// (after sharded:/resilient:). Serialized state is layout-independent,
  /// so aligned and packed checkpoints interoperate.
  bool aligned = false;

  /// Use BFS (breadth-first search) eviction instead of the default random
  /// walk: on a full table the kernel searches the cuckoo move graph
  /// breadth-first for the shortest relocation chain and applies it leaf-
  /// first (core/cuckoo_kernel.hpp). Applies to every kernel-ported cuckoo
  /// filter; ignored by the Bloom family, QF, dlCBF and MF. Spelled
  /// "bfs:<kind>" in string specs, composing with the other prefixes.
  /// Eviction mode is a runtime policy, not part of serialized state.
  bool bfs = false;

  /// Wrap the leaf filter in a TieredFilter (tiered/tiered_filter.hpp): a
  /// mutable front provisioned at 1/8 of the slot budget plus immutable
  /// xor / binary-fuse segments absorbing the frozen cold set. Only the
  /// canonical-entity cuckoo family (cf|vcf|ivcf|dvcf|kvcf) qualifies as
  /// the leaf. Spelled "tiered:<kind>" (binary-fuse segments, the default)
  /// or "tiered:xor:<kind>" / "tiered:bfuse:<kind>" in string specs;
  /// composes with the other prefixes ("sharded:4:tiered:vcf" builds four
  /// independently locked tiers).
  bool tiered = false;

  /// Segment builder for `tiered`: 0 = binary fuse, 1 = xor.
  unsigned tiered_segment = 0;

  /// Wrap the leaf filter in an ElasticFilter (core/elastic_filter.hpp):
  /// incremental online resize — past `elastic_watermark` aggregate load the
  /// filter doubles capacity and migrates stored fingerprints with bounded
  /// work per insert, serving reads from both halves mid-migration. Only
  /// the canonical-entity cuckoo family (cf|vcf|ivcf|dvcf) qualifies as the
  /// leaf. Spelled "elastic:<kind>" in string specs; composes inside
  /// `sharded:`/`resilient:` ("sharded:4:elastic:vcf" grows each shard
  /// independently) and is mutually exclusive with `tiered:`.
  bool elastic = false;

  /// ElasticFilter tuning (used when `elastic` is set; defaults mirror
  /// ElasticOptions).
  double elastic_watermark = 0.85;
  double elastic_hysteresis = 0.05;
  unsigned elastic_migrate_step = 2;
  unsigned elastic_max_levels = 10;

  /// Page backing for the leaf tables and segments: 0 = normal 4 KiB
  /// pages, 1 = transparent hugepages (madvise(MADV_HUGEPAGE); the
  /// `hugepage:` prefix), 2 = explicit MAP_HUGETLB with silent fallback to
  /// THP/heap (`hugetlb:`). Placement is runtime-only: checkpoints are
  /// bit-identical whichever backing is in use.
  unsigned hugepages = 0;

  std::string DisplayName() const;
};

std::unique_ptr<Filter> MakeFilter(const FilterSpec& spec);

class Flags;

/// Parses a `--filter` kind string — `cf|vcf|ivcf|dvcf|kvcf|dcf|bf|cbf|qf|
/// dlcbf|vf|sscf`, optionally prefixed `sharded:<n>:` and then any mix of
/// `resilient:`, `elastic:`, `aligned:`, `bfs:`, `hugepage:`/`hugetlb:` and
/// `tiered:[xor:|bfuse:]` (composing:
/// "sharded:4:resilient:elastic:vcf") — into `spec.kind/shards/resilient/
/// elastic/aligned/bfs/hugepages/tiered/tiered_segment`, leaving
/// every other field untouched. Throws
/// std::invalid_argument with an operator-facing message on bad input.
/// Shared by vcf_tool, vcfd and vcf_loadgen so every binary serves the same
/// spellings.
void ParseFilterKind(const std::string& kind_string, FilterSpec& spec);

/// The full command-line construction surface: --filter (ParseFilterKind),
/// --variant, --slots_log2, --f, --max_kicks, --hash, --seed,
/// --bits_per_item. Throws std::invalid_argument on bad values.
FilterSpec SpecFromFlags(const Flags& flags);

/// The flag lines documenting SpecFromFlags, shared by the tools' --help.
extern const char kFilterFlagsHelp[];

/// Theoretical r — the probability that an item receives four candidate
/// buckets — for a spec: Eq. 8 (mask fragments) for VCF/IVCF, Eq. 9 for
/// DVCF, 0 for CF, and -1 ("n/a") for kinds where r is not defined.
double SpecTheoreticalR(const FilterSpec& spec);

/// CF, DCF(4), IVCF_1..6, DVCF_1..8 — the roster of Table III and
/// Figs. 5-9, all sharing `params`.
std::vector<FilterSpec> PaperLineup(const CuckooParams& params);

/// IVCF_1..6 only (Figs. 5(a), 7(a)).
std::vector<FilterSpec> IvcfSweep(const CuckooParams& params);

/// DVCF_1..8 only (Figs. 5(b), 7(b)).
std::vector<FilterSpec> DvcfSweep(const CuckooParams& params);

}  // namespace vcf
