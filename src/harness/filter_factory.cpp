#include "harness/filter_factory.hpp"

#include <stdexcept>

#include <algorithm>
#include <string_view>

#include "baselines/bloom_filter.hpp"
#include "baselines/counting_bloom_filter.hpp"
#include "baselines/cuckoo_filter.hpp"
#include "baselines/dary_cuckoo_filter.hpp"
#include "baselines/dleft_cbf.hpp"
#include "baselines/morton_filter.hpp"
#include "baselines/quotient_filter.hpp"
#include "baselines/semisorted_cuckoo_filter.hpp"
#include "baselines/vacuum_filter.hpp"
#include "common/bitops.hpp"
#include "core/dvcf.hpp"
#include "core/elastic_filter.hpp"
#include "core/kvcf.hpp"
#include "common/random.hpp"
#include "core/resilient_filter.hpp"
#include "core/sharded_filter.hpp"
#include "core/sizing.hpp"
#include "harness/flags.hpp"
#include "core/vcf.hpp"
#include "core/vertical_hashing.hpp"
#include "tiered/tiered_filter.hpp"

namespace vcf {

namespace {

/// Segment fingerprint width matching the leaf filter's lookup FPR: a
/// b-slot, c-candidate cuckoo probe admits ~b*c fingerprint comparisons, so
/// an f-bit stored fingerprint yields ~b*c*2^-f — one g-bit segment probe
/// matches it at g = f - ceil(log2(b*c)).
unsigned SegmentFpBitsFor(const FilterSpec& spec) {
  unsigned candidates = 4;  // the VCF family's four-candidate groups
  if (spec.kind == FilterSpec::Kind::kCF) candidates = 2;
  if (spec.kind == FilterSpec::Kind::kKVCF) {
    candidates = std::max(2u, spec.variant);
  }
  const unsigned comparisons =
      std::max(1u, spec.params.slots_per_bucket * candidates);
  const unsigned f = spec.params.fingerprint_bits;
  const unsigned g = f > CeilLog2(comparisons) ? f - CeilLog2(comparisons) : 4;
  return std::min(25u, std::max(4u, g));
}

}  // namespace

std::string FilterSpec::DisplayName() const {
  if (shards > 0) {
    FilterSpec bare = *this;
    bare.shards = 0;
    return "Sharded" + std::to_string(shards) + "(" + bare.DisplayName() + ")";
  }
  if (resilient) {
    FilterSpec bare = *this;
    bare.resilient = false;
    return "Resilient(" + bare.DisplayName() + ")";
  }
  if (elastic) {
    FilterSpec bare = *this;
    bare.elastic = false;
    return "Elastic(" + bare.DisplayName() + ")";
  }
  if (tiered) {
    FilterSpec bare = *this;
    bare.tiered = false;
    return std::string(tiered_segment == 1 ? "TieredXor(" : "Tiered(") +
           bare.DisplayName() + ")";
  }
  if (aligned) {
    FilterSpec bare = *this;
    bare.aligned = false;
    return "Aligned(" + bare.DisplayName() + ")";
  }
  if (bfs) {
    FilterSpec bare = *this;
    bare.bfs = false;
    return "Bfs(" + bare.DisplayName() + ")";
  }
  switch (kind) {
    case Kind::kCF: return "CF";
    case Kind::kVCF: return "VCF";
    case Kind::kIVCF: return "IVCF_" + std::to_string(variant);
    case Kind::kDVCF: return "DVCF_" + std::to_string(variant);
    case Kind::kKVCF: return std::to_string(variant) + "-VCF";
    case Kind::kDCF: return "DCF(d=" + std::to_string(variant == 0 ? 4 : variant) + ")";
    case Kind::kBF: return "BF";
    case Kind::kCBF: return "CBF";
    case Kind::kQF: return "QF";
    case Kind::kDlCBF: return "dlCBF";
    case Kind::kVF: return "VF";
    case Kind::kSsCF: return "ssCF";
    case Kind::kMF: return "MF";
  }
  return "?";
}

std::unique_ptr<Filter> MakeFilter(const FilterSpec& spec) {
  if (spec.bfs && spec.params.eviction != EvictionMode::kBfs) {
    // `bfs:` selects breadth-first eviction in the shared cuckoo kernel; it
    // rides through the wrappers to every kernel-ported leaf filter.
    FilterSpec with_mode = spec;
    with_mode.params.eviction = EvictionMode::kBfs;
    return MakeFilter(with_mode);
  }
  if (spec.hugepages != 0 && spec.params.pages == PageHint::kNormal) {
    // `hugepage:`/`hugetlb:` select the tables' page backing; like the
    // other mode prefixes it rides through every wrapper to the leaves.
    FilterSpec with_pages = spec;
    with_pages.params.pages = spec.hugepages == 2 ? PageHint::kExplicit
                                                  : PageHint::kTransparent;
    return MakeFilter(with_pages);
  }
  if (spec.aligned && spec.params.layout != TableLayout::kCacheAligned) {
    // `aligned:` selects the cache-aligned bucket layout; it rides through
    // the sharded/resilient wrappers to the table-backed leaf filters.
    FilterSpec with_layout = spec;
    with_layout.params.layout = TableLayout::kCacheAligned;
    return MakeFilter(with_layout);
  }
  if (spec.shards > 0) {
    // Split the slot budget: each shard serves ~1/N of the keys, so its
    // bucket count is the per-shard share rounded up through the shared
    // growth helper (power of two with the geometry's bucket constraints).
    // Seeds are derived per shard so identically-keyed fingerprint
    // collisions do not repeat across shards. The same derivation, keyed by
    // family, feeds the shard builder so a split clone or a ShardedV2
    // restore reproduces the exact construction shard.
    FilterSpec bare = spec;
    bare.shards = 0;
    bare.params.bucket_count = CeilBucketCount(
        (spec.params.bucket_count + spec.shards - 1) / spec.shards);
    const std::uint64_t base_seed = spec.params.seed;
    auto build_shard = [bare, base_seed](std::uint32_t family) {
      FilterSpec shard_spec = bare;
      shard_spec.params.seed = Mix64(base_seed ^ (0x5A8D5EEDULL + family));
      return MakeFilter(shard_spec);
    };
    std::vector<std::unique_ptr<Filter>> inner;
    inner.reserve(spec.shards);
    for (unsigned i = 0; i < spec.shards; ++i) {
      inner.push_back(build_shard(i));
    }
    auto sharded = std::make_unique<ShardedFilter>(std::move(inner));
    sharded->SetShardBuilder(build_shard);
    return sharded;
  }
  if (spec.resilient) {
    FilterSpec bare = spec;
    bare.resilient = false;
    return std::make_unique<ResilientFilter>(MakeFilter(bare));
  }
  if (spec.elastic) {
    switch (spec.kind) {
      case FilterSpec::Kind::kCF:
      case FilterSpec::Kind::kVCF:
      case FilterSpec::Kind::kIVCF:
      case FilterSpec::Kind::kDVCF:
        break;
      default:
        throw std::invalid_argument(
            "MakeFilter: elastic: requires an entity-transport leaf "
            "(cf|vcf|ivcf|dvcf)");
    }
    if (spec.tiered) {
      throw std::invalid_argument(
          "MakeFilter: elastic: and tiered: do not compose (the tier's "
          "segments are immutable; use tiered compaction to grow instead)");
    }
    FilterSpec leaf = spec;
    leaf.elastic = false;
    ElasticOptions options;
    options.grow_watermark = spec.elastic_watermark;
    options.grow_hysteresis = spec.elastic_hysteresis;
    options.migrate_buckets_per_op = spec.elastic_migrate_step;
    options.max_levels = spec.elastic_max_levels;
    return std::make_unique<ElasticFilter>([leaf]() { return MakeFilter(leaf); },
                                           options);
  }
  if (spec.tiered) {
    switch (spec.kind) {
      case FilterSpec::Kind::kCF:
      case FilterSpec::Kind::kVCF:
      case FilterSpec::Kind::kIVCF:
      case FilterSpec::Kind::kDVCF:
      case FilterSpec::Kind::kKVCF:
        break;
      default:
        throw std::invalid_argument(
            "MakeFilter: tiered: requires a canonical-entity leaf "
            "(cf|vcf|ivcf|dvcf|kvcf)");
    }
    // LSM write-buffer provisioning: the front gets 1/8 of the slot budget
    // and the frozen majority lives in segments at ~g bits per entity —
    // that split is where the tier's bits/key advantage comes from.
    FilterSpec leaf = spec;
    leaf.tiered = false;
    leaf.params.bucket_count = std::max<std::size_t>(
        2, NextPowerOfTwo(spec.params.bucket_count / 8));
    TieredOptions options;
    options.segment.kind = spec.tiered_segment == 1 ? SegmentKind::kXor
                                                    : SegmentKind::kBinaryFuse;
    options.segment.fingerprint_bits = SegmentFpBitsFor(leaf);
    options.segment.seed = Mix64(spec.params.seed ^ 0x71E7ED5E6ULL);
    options.segment.pages = spec.params.pages;
    return std::make_unique<TieredFilter>(
        [leaf]() { return MakeFilter(leaf); }, options);
  }
  switch (spec.kind) {
    case FilterSpec::Kind::kCF:
      return std::make_unique<CuckooFilter>(spec.params);
    case FilterSpec::Kind::kVCF:
      return std::make_unique<VerticalCuckooFilter>(spec.params);
    case FilterSpec::Kind::kIVCF:
      return std::make_unique<VerticalCuckooFilter>(spec.params, spec.variant);
    case FilterSpec::Kind::kDVCF:
      return std::make_unique<DifferentiatedVcf>(
          DifferentiatedVcf::ForEighths(spec.params, spec.variant));
    case FilterSpec::Kind::kKVCF:
      return std::make_unique<KVcf>(spec.params, spec.variant);
    case FilterSpec::Kind::kDCF:
      return std::make_unique<DaryCuckooFilter>(
          spec.params, spec.variant == 0 ? 4 : spec.variant);
    case FilterSpec::Kind::kBF:
      return std::make_unique<BloomFilter>(spec.params.slot_count(),
                                           spec.bits_per_item, spec.params.hash,
                                           spec.num_hashes, spec.params.seed);
    case FilterSpec::Kind::kCBF:
      return std::make_unique<CountingBloomFilter>(
          spec.params.slot_count(), spec.bits_per_item, spec.params.hash,
          spec.num_hashes, spec.params.seed);
    case FilterSpec::Kind::kQF: {
      // Same slot budget as a cuckoo table of this geometry: one element
      // per slot, 2^q slots total.
      const unsigned q = FloorLog2(spec.params.slot_count());
      const unsigned r = spec.variant != 0 ? spec.variant
                                           : spec.params.fingerprint_bits;
      return std::make_unique<QuotientFilter>(q, r, spec.params.hash,
                                              spec.params.seed);
    }
    case FilterSpec::Kind::kDlCBF: {
      DleftCountingBloomFilter::Params p;
      p.subtables = spec.variant != 0 ? spec.variant : 4;
      p.cells_per_bucket = 8;
      p.buckets_per_subtable = NextPowerOfTwo(
          spec.params.slot_count() / (p.subtables * p.cells_per_bucket));
      p.fingerprint_bits = spec.params.fingerprint_bits;
      p.hash = spec.params.hash;
      p.seed = spec.params.seed;
      return std::make_unique<DleftCountingBloomFilter>(p);
    }
    case FilterSpec::Kind::kVF: {
      VacuumFilter::Params p;
      p.chunk_buckets = std::size_t{1} << (spec.variant != 0 ? spec.variant : 7);
      p.bucket_count =
          std::max<std::size_t>(p.chunk_buckets,
                                spec.params.bucket_count / p.chunk_buckets *
                                    p.chunk_buckets);
      p.slots_per_bucket = spec.params.slots_per_bucket;
      p.fingerprint_bits = spec.params.fingerprint_bits;
      p.hash = spec.params.hash;
      p.max_kicks = spec.params.max_kicks;
      p.seed = spec.params.seed;
      p.eviction = spec.params.eviction;
      p.pages = spec.params.pages;
      return std::make_unique<VacuumFilter>(p);
    }
    case FilterSpec::Kind::kSsCF: {
      CuckooParams p = spec.params;
      p.slots_per_bucket = 4;
      if (p.fingerprint_bits > 15) p.fingerprint_bits = 15;
      return std::make_unique<SemiSortedCuckooFilter>(p);
    }
    case FilterSpec::Kind::kMF: {
      // Match the spec's PHYSICAL slot budget: an MF block serves 64
      // logical buckets with 46 physical slots.
      MortonFilter::Params p;
      p.bucket_count = std::max<std::size_t>(
          64, NextPowerOfTwo(spec.params.slot_count() * 64 / 46));
      p.hash = spec.params.hash;
      p.max_kicks = spec.params.max_kicks;
      p.seed = spec.params.seed;
      return std::make_unique<MortonFilter>(p);
    }
  }
  throw std::invalid_argument("MakeFilter: unknown filter kind");
}

void ParseFilterKind(const std::string& kind_string, FilterSpec& spec) {
  std::string kind = kind_string;
  constexpr std::string_view kShardedPrefix = "sharded:";
  constexpr std::string_view kResilientPrefix = "resilient:";
  constexpr std::string_view kElasticPrefix = "elastic:";
  constexpr std::string_view kAlignedPrefix = "aligned:";
  constexpr std::string_view kBfsPrefix = "bfs:";
  constexpr std::string_view kTieredPrefix = "tiered:";
  constexpr std::string_view kHugepagePrefix = "hugepage:";
  constexpr std::string_view kHugetlbPrefix = "hugetlb:";
  spec.shards = 0;
  spec.resilient = false;
  spec.elastic = false;
  spec.aligned = false;
  spec.bfs = false;
  spec.tiered = false;
  spec.tiered_segment = 0;
  spec.hugepages = 0;
  if (kind.rfind(kShardedPrefix, 0) == 0) {
    kind.erase(0, kShardedPrefix.size());
    const std::size_t colon = kind.find(':');
    std::size_t parsed = 0;
    unsigned n = 0;
    if (colon != std::string::npos) {
      try {
        n = static_cast<unsigned>(std::stoul(kind.substr(0, colon), &parsed));
      } catch (const std::exception&) {
        parsed = 0;
      }
    }
    if (colon == std::string::npos || parsed != colon || n == 0) {
      throw std::invalid_argument(
          "bad --filter: expected sharded:<n>:<kind> with n >= 1");
    }
    spec.shards = n;
    kind.erase(0, colon + 1);
  }
  // The mode prefixes compose in any order.
  for (bool progress = true; progress;) {
    progress = false;
    if (kind.rfind(kResilientPrefix, 0) == 0) {
      spec.resilient = true;
      kind.erase(0, kResilientPrefix.size());
      progress = true;
    }
    if (kind.rfind(kElasticPrefix, 0) == 0) {
      spec.elastic = true;
      kind.erase(0, kElasticPrefix.size());
      progress = true;
    }
    if (kind.rfind(kAlignedPrefix, 0) == 0) {
      spec.aligned = true;
      kind.erase(0, kAlignedPrefix.size());
      progress = true;
    }
    if (kind.rfind(kBfsPrefix, 0) == 0) {
      spec.bfs = true;
      kind.erase(0, kBfsPrefix.size());
      progress = true;
    }
    if (kind.rfind(kHugepagePrefix, 0) == 0) {
      spec.hugepages = 1;
      kind.erase(0, kHugepagePrefix.size());
      progress = true;
    }
    if (kind.rfind(kHugetlbPrefix, 0) == 0) {
      spec.hugepages = 2;
      kind.erase(0, kHugetlbPrefix.size());
      progress = true;
    }
    if (kind.rfind(kTieredPrefix, 0) == 0) {
      spec.tiered = true;
      kind.erase(0, kTieredPrefix.size());
      if (kind.rfind("xor:", 0) == 0) {
        spec.tiered_segment = 1;
        kind.erase(0, 4);
      } else if (kind.rfind("bfuse:", 0) == 0) {
        spec.tiered_segment = 0;
        kind.erase(0, 6);
      }
      progress = true;
    }
  }
  if (kind == "cf") {
    spec.kind = FilterSpec::Kind::kCF;
  } else if (kind == "vcf") {
    spec.kind = FilterSpec::Kind::kVCF;
  } else if (kind == "ivcf") {
    spec.kind = FilterSpec::Kind::kIVCF;
  } else if (kind == "dvcf") {
    spec.kind = FilterSpec::Kind::kDVCF;
  } else if (kind == "kvcf") {
    spec.kind = FilterSpec::Kind::kKVCF;
  } else if (kind == "dcf") {
    spec.kind = FilterSpec::Kind::kDCF;
  } else if (kind == "bf") {
    spec.kind = FilterSpec::Kind::kBF;
  } else if (kind == "cbf") {
    spec.kind = FilterSpec::Kind::kCBF;
  } else if (kind == "qf") {
    spec.kind = FilterSpec::Kind::kQF;
  } else if (kind == "dlcbf") {
    spec.kind = FilterSpec::Kind::kDlCBF;
  } else if (kind == "vf") {
    spec.kind = FilterSpec::Kind::kVF;
  } else if (kind == "sscf") {
    spec.kind = FilterSpec::Kind::kSsCF;
  } else {
    throw std::invalid_argument(
        "unknown --filter=" + kind +
        " (cf|vcf|ivcf|dvcf|kvcf|dcf|bf|cbf|qf|dlcbf|vf|sscf, optionally "
        "prefixed sharded:<n>:, resilient:, elastic:, aligned:, bfs:, "
        "hugepage:, hugetlb: and/or tiered:[xor:|bfuse:])");
  }
}

FilterSpec SpecFromFlags(const Flags& flags) {
  FilterSpec spec;
  ParseFilterKind(flags.GetString("filter", "vcf"), spec);
  spec.variant = static_cast<unsigned>(flags.GetInt("variant", 4));
  spec.params = CuckooParams::ForSlotsLog2(
      static_cast<unsigned>(flags.GetInt("slots_log2", 16)));
  spec.params.fingerprint_bits = static_cast<unsigned>(flags.GetInt("f", 14));
  spec.params.max_kicks =
      static_cast<unsigned>(flags.GetInt("max_kicks", 500));
  spec.params.hash = ParseHashKind(flags.GetString("hash", "fnv"));
  spec.params.seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 0x5EEDF00D));
  spec.bits_per_item = flags.GetDouble("bits_per_item", 12.0);
  spec.elastic_watermark = flags.GetDouble("grow_watermark", 0.85);
  spec.elastic_hysteresis = flags.GetDouble("grow_hysteresis", 0.05);
  spec.elastic_migrate_step =
      static_cast<unsigned>(flags.GetInt("migrate_step", 2));
  spec.elastic_max_levels =
      static_cast<unsigned>(flags.GetInt("max_levels", 10));
  if (spec.aligned) spec.params.layout = TableLayout::kCacheAligned;
  if (spec.bfs) spec.params.eviction = EvictionMode::kBfs;
  if (flags.GetBool("hugepages") && spec.hugepages == 0) {
    spec.hugepages = 1;  // --hugepages: THP for every table
  }
  if (spec.hugepages != 0) {
    spec.params.pages = spec.hugepages == 2 ? PageHint::kExplicit
                                            : PageHint::kTransparent;
  }
  return spec;
}

const char kFilterFlagsHelp[] =
    "  --filter=cf|vcf|ivcf|dvcf|kvcf|dcf|bf|cbf|qf|dlcbf|vf|sscf\n"
    "      (prefix sharded:<n>: for n locked shards, resilient: for the\n"
    "       stash/recovery wrapper, elastic: for watermark-triggered online\n"
    "       resize with bounded per-insert migration, aligned: for the\n"
    "       cache-aligned bucket layout, bfs: for breadth-first-search\n"
    "       eviction, tiered: for the mutable-front + immutable-segment tier\n"
    "       (tiered:xor: selects xor segments, tiered:bfuse: binary fuse,\n"
    "       the default), hugepage: for THP-backed tables, hugetlb: for\n"
    "       explicit MAP_HUGETLB with silent fallback;\n"
    "       sharded:<n>:resilient:elastic:<kind> composes)\n"
    "  --variant=N --slots_log2=N --f=N --hash=fnv|murmur|djb|splitmix\n"
    "  --seed=N --max_kicks=N --bits_per_item=X\n"
    "  --grow_watermark=X --grow_hysteresis=X --migrate_step=N --max_levels=N\n"
    "      elastic: tuning (watermark load factor, post-resize hysteresis,\n"
    "      buckets migrated per insert, growth-step cap)\n"
    "  --hugepages     THP-backed tables (same as the hugepage: prefix)\n";

double SpecTheoreticalR(const FilterSpec& spec) {
  const unsigned w = spec.params.index_bits();
  const unsigned f = spec.params.fingerprint_bits;
  switch (spec.kind) {
    case FilterSpec::Kind::kCF:
      return 0.0;
    case FilterSpec::Kind::kVCF:
      return VerticalHasher::Balanced(w, f).TheoreticalR();
    case FilterSpec::Kind::kIVCF:
      return VerticalHasher::WithOnes(w, f, spec.variant).TheoreticalR();
    case FilterSpec::Kind::kDVCF:
      return spec.variant / 8.0;
    default:
      return -1.0;
  }
}

std::vector<FilterSpec> IvcfSweep(const CuckooParams& params) {
  std::vector<FilterSpec> specs;
  for (unsigned i = 1; i <= 6; ++i) {
    specs.push_back({FilterSpec::Kind::kIVCF, i, params, 12.0, 0});
  }
  return specs;
}

std::vector<FilterSpec> DvcfSweep(const CuckooParams& params) {
  std::vector<FilterSpec> specs;
  for (unsigned j = 1; j <= 8; ++j) {
    specs.push_back({FilterSpec::Kind::kDVCF, j, params, 12.0, 0});
  }
  return specs;
}

std::vector<FilterSpec> PaperLineup(const CuckooParams& params) {
  std::vector<FilterSpec> specs;
  specs.push_back({FilterSpec::Kind::kCF, 0, params, 12.0, 0});
  specs.push_back({FilterSpec::Kind::kDCF, 4, params, 12.0, 0});
  for (const auto& s : IvcfSweep(params)) specs.push_back(s);
  for (const auto& s : DvcfSweep(params)) specs.push_back(s);
  return specs;
}

}  // namespace vcf
