#include "harness/filter_factory.hpp"

#include <stdexcept>

#include <algorithm>

#include "baselines/bloom_filter.hpp"
#include "baselines/counting_bloom_filter.hpp"
#include "baselines/cuckoo_filter.hpp"
#include "baselines/dary_cuckoo_filter.hpp"
#include "baselines/dleft_cbf.hpp"
#include "baselines/morton_filter.hpp"
#include "baselines/quotient_filter.hpp"
#include "baselines/semisorted_cuckoo_filter.hpp"
#include "baselines/vacuum_filter.hpp"
#include "common/bitops.hpp"
#include "core/dvcf.hpp"
#include "core/kvcf.hpp"
#include "common/random.hpp"
#include "core/resilient_filter.hpp"
#include "core/sharded_filter.hpp"
#include "core/vcf.hpp"
#include "core/vertical_hashing.hpp"

namespace vcf {

std::string FilterSpec::DisplayName() const {
  if (shards > 0) {
    FilterSpec bare = *this;
    bare.shards = 0;
    return "Sharded" + std::to_string(shards) + "(" + bare.DisplayName() + ")";
  }
  if (resilient) {
    FilterSpec bare = *this;
    bare.resilient = false;
    return "Resilient(" + bare.DisplayName() + ")";
  }
  switch (kind) {
    case Kind::kCF: return "CF";
    case Kind::kVCF: return "VCF";
    case Kind::kIVCF: return "IVCF_" + std::to_string(variant);
    case Kind::kDVCF: return "DVCF_" + std::to_string(variant);
    case Kind::kKVCF: return std::to_string(variant) + "-VCF";
    case Kind::kDCF: return "DCF(d=" + std::to_string(variant == 0 ? 4 : variant) + ")";
    case Kind::kBF: return "BF";
    case Kind::kCBF: return "CBF";
    case Kind::kQF: return "QF";
    case Kind::kDlCBF: return "dlCBF";
    case Kind::kVF: return "VF";
    case Kind::kSsCF: return "ssCF";
    case Kind::kMF: return "MF";
  }
  return "?";
}

std::unique_ptr<Filter> MakeFilter(const FilterSpec& spec) {
  if (spec.shards > 0) {
    // Split the slot budget: each shard serves ~1/N of the keys, so its
    // bucket count is the per-shard share rounded up to a power of two
    // (the cuckoo geometry requirement). Seeds are derived per shard so
    // identically-keyed fingerprint collisions do not repeat across shards.
    FilterSpec bare = spec;
    bare.shards = 0;
    bare.params.bucket_count = NextPowerOfTwo(
        (spec.params.bucket_count + spec.shards - 1) / spec.shards);
    std::vector<std::unique_ptr<Filter>> inner;
    inner.reserve(spec.shards);
    for (unsigned i = 0; i < spec.shards; ++i) {
      bare.params.seed = Mix64(spec.params.seed ^ (0x5A8D5EEDULL + i));
      inner.push_back(MakeFilter(bare));
    }
    return std::make_unique<ShardedFilter>(std::move(inner));
  }
  if (spec.resilient) {
    FilterSpec bare = spec;
    bare.resilient = false;
    return std::make_unique<ResilientFilter>(MakeFilter(bare));
  }
  switch (spec.kind) {
    case FilterSpec::Kind::kCF:
      return std::make_unique<CuckooFilter>(spec.params);
    case FilterSpec::Kind::kVCF:
      return std::make_unique<VerticalCuckooFilter>(spec.params);
    case FilterSpec::Kind::kIVCF:
      return std::make_unique<VerticalCuckooFilter>(spec.params, spec.variant);
    case FilterSpec::Kind::kDVCF:
      return std::make_unique<DifferentiatedVcf>(
          DifferentiatedVcf::ForEighths(spec.params, spec.variant));
    case FilterSpec::Kind::kKVCF:
      return std::make_unique<KVcf>(spec.params, spec.variant);
    case FilterSpec::Kind::kDCF:
      return std::make_unique<DaryCuckooFilter>(
          spec.params, spec.variant == 0 ? 4 : spec.variant);
    case FilterSpec::Kind::kBF:
      return std::make_unique<BloomFilter>(spec.params.slot_count(),
                                           spec.bits_per_item, spec.params.hash,
                                           spec.num_hashes, spec.params.seed);
    case FilterSpec::Kind::kCBF:
      return std::make_unique<CountingBloomFilter>(
          spec.params.slot_count(), spec.bits_per_item, spec.params.hash,
          spec.num_hashes, spec.params.seed);
    case FilterSpec::Kind::kQF: {
      // Same slot budget as a cuckoo table of this geometry: one element
      // per slot, 2^q slots total.
      const unsigned q = FloorLog2(spec.params.slot_count());
      const unsigned r = spec.variant != 0 ? spec.variant
                                           : spec.params.fingerprint_bits;
      return std::make_unique<QuotientFilter>(q, r, spec.params.hash,
                                              spec.params.seed);
    }
    case FilterSpec::Kind::kDlCBF: {
      DleftCountingBloomFilter::Params p;
      p.subtables = spec.variant != 0 ? spec.variant : 4;
      p.cells_per_bucket = 8;
      p.buckets_per_subtable = NextPowerOfTwo(
          spec.params.slot_count() / (p.subtables * p.cells_per_bucket));
      p.fingerprint_bits = spec.params.fingerprint_bits;
      p.hash = spec.params.hash;
      p.seed = spec.params.seed;
      return std::make_unique<DleftCountingBloomFilter>(p);
    }
    case FilterSpec::Kind::kVF: {
      VacuumFilter::Params p;
      p.chunk_buckets = std::size_t{1} << (spec.variant != 0 ? spec.variant : 7);
      p.bucket_count =
          std::max<std::size_t>(p.chunk_buckets,
                                spec.params.bucket_count / p.chunk_buckets *
                                    p.chunk_buckets);
      p.slots_per_bucket = spec.params.slots_per_bucket;
      p.fingerprint_bits = spec.params.fingerprint_bits;
      p.hash = spec.params.hash;
      p.max_kicks = spec.params.max_kicks;
      p.seed = spec.params.seed;
      return std::make_unique<VacuumFilter>(p);
    }
    case FilterSpec::Kind::kSsCF: {
      CuckooParams p = spec.params;
      p.slots_per_bucket = 4;
      if (p.fingerprint_bits > 15) p.fingerprint_bits = 15;
      return std::make_unique<SemiSortedCuckooFilter>(p);
    }
    case FilterSpec::Kind::kMF: {
      // Match the spec's PHYSICAL slot budget: an MF block serves 64
      // logical buckets with 46 physical slots.
      MortonFilter::Params p;
      p.bucket_count = std::max<std::size_t>(
          64, NextPowerOfTwo(spec.params.slot_count() * 64 / 46));
      p.hash = spec.params.hash;
      p.max_kicks = spec.params.max_kicks;
      p.seed = spec.params.seed;
      return std::make_unique<MortonFilter>(p);
    }
  }
  throw std::invalid_argument("MakeFilter: unknown filter kind");
}

double SpecTheoreticalR(const FilterSpec& spec) {
  const unsigned w = spec.params.index_bits();
  const unsigned f = spec.params.fingerprint_bits;
  switch (spec.kind) {
    case FilterSpec::Kind::kCF:
      return 0.0;
    case FilterSpec::Kind::kVCF:
      return VerticalHasher::Balanced(w, f).TheoreticalR();
    case FilterSpec::Kind::kIVCF:
      return VerticalHasher::WithOnes(w, f, spec.variant).TheoreticalR();
    case FilterSpec::Kind::kDVCF:
      return spec.variant / 8.0;
    default:
      return -1.0;
  }
}

std::vector<FilterSpec> IvcfSweep(const CuckooParams& params) {
  std::vector<FilterSpec> specs;
  for (unsigned i = 1; i <= 6; ++i) {
    specs.push_back({FilterSpec::Kind::kIVCF, i, params, 12.0, 0});
  }
  return specs;
}

std::vector<FilterSpec> DvcfSweep(const CuckooParams& params) {
  std::vector<FilterSpec> specs;
  for (unsigned j = 1; j <= 8; ++j) {
    specs.push_back({FilterSpec::Kind::kDVCF, j, params, 12.0, 0});
  }
  return specs;
}

std::vector<FilterSpec> PaperLineup(const CuckooParams& params) {
  std::vector<FilterSpec> specs;
  specs.push_back({FilterSpec::Kind::kCF, 0, params, 12.0, 0});
  specs.push_back({FilterSpec::Kind::kDCF, 4, params, 12.0, 0});
  for (const auto& s : IvcfSweep(params)) specs.push_back(s);
  for (const auto& s : DvcfSweep(params)) specs.push_back(s);
  return specs;
}

}  // namespace vcf
