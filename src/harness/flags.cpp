#include "harness/flags.hpp"

#include <cstdlib>

namespace vcf {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;  // ignore non-flag arguments
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v.empty();
}

}  // namespace vcf
