// Minimal command-line flag parsing for the benchmark binaries.
//
// Every bench accepts `--name=value` pairs plus bare boolean switches
// (`--paper`, `--quick`, `--csv=...`). No external dependency: the offline
// build has gtest/benchmark only, and google-benchmark's flag machinery is
// not exposed for custom flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace vcf {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  /// Bare `--name` and `--name=true/1/yes` are true.
  bool GetBool(const std::string& name, bool def = false) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace vcf
