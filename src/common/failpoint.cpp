#include "common/failpoint.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/random.hpp"

namespace vcf {

void Failpoint::ArmProbability(double p, std::uint64_t seed) noexcept {
  if (!(p > 0.0)) {  // NaN or <= 0: never fires, but stays "armed"
    seed_.store(seed, std::memory_order_relaxed);
    Arm(Mode::kProbability, 0);
    return;
  }
  if (p >= 1.0) {
    Arm(Mode::kAlways, 0);
    return;
  }
  // Threshold on a uniform 64-bit draw. p < 1 guarantees the product fits.
  const auto threshold =
      static_cast<std::uint64_t>(std::ldexp(p, 64));
  seed_.store(seed, std::memory_order_relaxed);
  Arm(Mode::kProbability, threshold);
}

bool Failpoint::EvaluateArmed() noexcept {
  const std::uint64_t n =
      evaluations_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fired = false;
  switch (mode()) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
      fired = true;
      break;
    case Mode::kNth: {
      const std::uint64_t period = arg_.load(std::memory_order_relaxed);
      fired = period != 0 && n % period == 0;
      break;
    }
    case Mode::kProbability: {
      // Counter-mode PRNG: the n-th draw is Mix64(seed ^ n), so the fire
      // pattern is reproducible regardless of thread interleaving.
      const std::uint64_t draw =
          Mix64(seed_.load(std::memory_order_relaxed) ^ n);
      fired = draw < arg_.load(std::memory_order_relaxed);
      break;
    }
  }
  if (fired) triggers_.fetch_add(1, std::memory_order_relaxed);
  return fired;
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();  // leaked: process lifetime
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* spec = std::getenv("VCF_FAILPOINTS")) {
    if (!ApplySpec(spec)) {
      // A typo'd clause silently arming nothing would make a fault-injection
      // run look clean; say so, but keep the well-formed clauses applied.
      std::fprintf(stderr,
                   "vcf: warning: malformed clause(s) in VCF_FAILPOINTS "
                   "ignored: \"%s\"\n",
                   spec);
    }
  }
}

Failpoint& FailpointRegistry::Get(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = points_.find(std::string(name));
  if (it == points_.end()) {
    auto point = std::make_unique<Failpoint>(std::string(name));
    it = points_.emplace(point->name(), std::move(point)).first;
  }
  return *it->second;
}

Failpoint* FailpointRegistry::Find(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(std::string(name));
  return it == points_.end() ? nullptr : it->second.get();
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard lock(mutex_);
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<std::string> FailpointRegistry::Names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) names.push_back(name);
  return names;
}

namespace {

bool ParseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(std::string_view text, double* out) {
  if (text.empty()) return false;
  // strtod without locale surprises: accept [0-9.]+ only.
  for (const char c : text) {
    if ((c < '0' || c > '9') && c != '.') return false;
  }
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

}  // namespace

bool FailpointRegistry::ApplySpec(std::string_view spec) {
  bool all_ok = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t sep = spec.find_first_of(",;", pos);
    if (sep == std::string_view::npos) sep = spec.size();
    std::string_view clause = spec.substr(pos, sep - pos);
    pos = sep + 1;

    // Trim surrounding whitespace.
    while (!clause.empty() && (clause.front() == ' ' || clause.front() == '\t'))
      clause.remove_prefix(1);
    while (!clause.empty() && (clause.back() == ' ' || clause.back() == '\t'))
      clause.remove_suffix(1);
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      all_ok = false;
      continue;
    }
    const std::string_view name = clause.substr(0, eq);
    std::string_view mode = clause.substr(eq + 1);

    if (mode == "off") {
      Get(name).Disarm();
    } else if (mode == "always") {
      Get(name).ArmAlways();
    } else if (mode.rfind("nth:", 0) == 0) {
      std::uint64_t n = 0;
      if (ParseU64(mode.substr(4), &n)) {
        Get(name).ArmNth(n);
      } else {
        all_ok = false;
      }
    } else if (mode.rfind("prob:", 0) == 0) {
      std::string_view args = mode.substr(5);
      std::uint64_t seed = 0x5EEDULL;
      const std::size_t colon = args.find(':');
      bool ok = true;
      if (colon != std::string_view::npos) {
        ok = ParseU64(args.substr(colon + 1), &seed);
        args = args.substr(0, colon);
      }
      double p = 0.0;
      if (ok && ParseProbability(args, &p)) {
        Get(name).ArmProbability(p, seed);
      } else {
        all_ok = false;
      }
    } else {
      all_ok = false;
    }
  }
  return all_ok;
}

}  // namespace vcf
