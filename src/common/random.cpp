#include "common/random.hpp"

#include <cmath>

namespace vcf {

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Seed the four state words from SplitMix64 as recommended by the authors;
  // this guarantees a non-zero state for any seed.
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
}

std::uint64_t Xoshiro256::Next() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::Below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless reduction; bias is negligible (< 2^-64 * bound)
  // and irrelevant for eviction-victim choices, so we skip the rejection loop.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::NextDouble() noexcept {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::NextGaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

}  // namespace vcf
