// Bit-level utilities shared by all filter implementations.
//
// Everything here is branch-light and constexpr-friendly: the packed
// fingerprint table and the vertical-hashing candidate derivation sit on the
// hot path of every insert/lookup, so these helpers are the vocabulary the
// rest of the library is written in.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace vcf {

/// True iff `v` is a power of two (zero is not).
constexpr bool IsPowerOfTwo(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v = 0 maps to 1).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  return std::uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// floor(log2(v)); precondition v > 0.
constexpr unsigned FloorLog2(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// ceil(log2(v)); precondition v > 0. CeilLog2(1) == 0.
constexpr unsigned CeilLog2(std::uint64_t v) noexcept {
  return v <= 1 ? 0u : FloorLog2(v - 1) + 1u;
}

/// A mask with the low `bits` bits set; bits may be 0..64.
constexpr std::uint64_t LowMask(unsigned bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Population count.
constexpr unsigned PopCount(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

// --- SWAR lane primitives -------------------------------------------------
//
// A 64-bit word is treated as `lanes` adjacent fields of `lane_bits` each
// (lane 0 in the low bits). These are the building blocks of the
// word-at-a-time bucket probes in PackedTable: broadcast a fingerprint into
// every lane, XOR against the packed bucket, and ask "which lanes are zero?"
// — one load and a handful of ALU ops instead of a per-slot extract loop.

/// The value 1 repeated in every lane: sum of 1 << (i * lane_bits).
/// Preconditions: lane_bits >= 1 and lane_bits * lanes <= 64.
constexpr std::uint64_t SwarOnes(unsigned lane_bits, unsigned lanes) noexcept {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < lanes; ++i) {
    v |= std::uint64_t{1} << (i * lane_bits);
  }
  return v;
}

/// Exact zero-lane detection: returns a word with bit (i*L + L-1) set iff
/// lane i of `x` is zero, for the lanes described by `lows`/`highs`
/// (`highs` = SwarOnes << (L-1), `lows` = highs - SwarOnes). Bits of `x`
/// above the top lane must be zero.
///
/// Unlike the classic `(x - ones) & ~x & highs` has-zero trick, this form
/// has no cross-lane borrows, so EVERY lane's indicator is exact — required
/// because the probes AND these indicators with occupancy masks.
constexpr std::uint64_t SwarZeroLanes(std::uint64_t x, std::uint64_t lows,
                                      std::uint64_t highs) noexcept {
  // (x & lows) + lows: high bit of each lane set iff the low L-1 bits are
  // non-zero; the sum cannot carry across lanes. OR in x itself to catch
  // lanes whose only set bit is the high bit.
  return ~(((x & lows) + lows) | x) & highs;
}

/// Reads `bits` (1..57) bits starting at absolute bit offset `bit_off` from a
/// byte buffer. The buffer must have at least one addressable byte past the
/// last touched bit-range byte-span; PackedTable guarantees 8 bytes of slack.
std::uint64_t ReadBits(const std::uint8_t* base, std::size_t bit_off,
                       unsigned bits) noexcept;

/// Writes the low `bits` (1..57) bits of `value` at absolute bit offset
/// `bit_off`. Untouched neighbouring bits are preserved.
void WriteBits(std::uint8_t* base, std::size_t bit_off, unsigned bits,
               std::uint64_t value) noexcept;

}  // namespace vcf
