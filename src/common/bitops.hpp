// Bit-level utilities shared by all filter implementations.
//
// Everything here is branch-light and constexpr-friendly: the packed
// fingerprint table and the vertical-hashing candidate derivation sit on the
// hot path of every insert/lookup, so these helpers are the vocabulary the
// rest of the library is written in.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

// ThreadSanitizer detection. Under TSan the optimistic read path's word
// loads/stores go through byte-wise relaxed atomics (see LoadWordRelaxed /
// StoreWordRelaxed) so the seqlock-validated races on table bytes are
// modelled as atomics instead of reported as data races.
#if defined(__SANITIZE_THREAD__)
#define VCF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VCF_TSAN 1
#endif
#endif
#ifndef VCF_TSAN
#define VCF_TSAN 0
#endif

namespace vcf {

/// True iff `v` is a power of two (zero is not).
constexpr bool IsPowerOfTwo(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v = 0 maps to 1).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  return std::uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// floor(log2(v)); precondition v > 0.
constexpr unsigned FloorLog2(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// ceil(log2(v)); precondition v > 0. CeilLog2(1) == 0.
constexpr unsigned CeilLog2(std::uint64_t v) noexcept {
  return v <= 1 ? 0u : FloorLog2(v - 1) + 1u;
}

/// A mask with the low `bits` bits set; bits may be 0..64.
constexpr std::uint64_t LowMask(unsigned bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Population count.
constexpr unsigned PopCount(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

// --- SWAR lane primitives -------------------------------------------------
//
// A 64-bit word is treated as `lanes` adjacent fields of `lane_bits` each
// (lane 0 in the low bits). These are the building blocks of the
// word-at-a-time bucket probes in PackedTable: broadcast a fingerprint into
// every lane, XOR against the packed bucket, and ask "which lanes are zero?"
// — one load and a handful of ALU ops instead of a per-slot extract loop.

/// The value 1 repeated in every lane: sum of 1 << (i * lane_bits).
/// Preconditions: lane_bits >= 1 and lane_bits * lanes <= 64.
constexpr std::uint64_t SwarOnes(unsigned lane_bits, unsigned lanes) noexcept {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < lanes; ++i) {
    v |= std::uint64_t{1} << (i * lane_bits);
  }
  return v;
}

/// Exact zero-lane detection: returns a word with bit (i*L + L-1) set iff
/// lane i of `x` is zero, for the lanes described by `lows`/`highs`
/// (`highs` = SwarOnes << (L-1), `lows` = highs - SwarOnes). Bits of `x`
/// above the top lane must be zero.
///
/// Unlike the classic `(x - ones) & ~x & highs` has-zero trick, this form
/// has no cross-lane borrows, so EVERY lane's indicator is exact — required
/// because the probes AND these indicators with occupancy masks.
constexpr std::uint64_t SwarZeroLanes(std::uint64_t x, std::uint64_t lows,
                                      std::uint64_t highs) noexcept {
  // (x & lows) + lows: high bit of each lane set iff the low L-1 bits are
  // non-zero; the sum cannot carry across lanes. OR in x itself to catch
  // lanes whose only set bit is the high bit.
  return ~(((x & lows) + lows) | x) & highs;
}

// --- Relaxed word access --------------------------------------------------
//
// The seqlock read path probes table bytes that a writer may be mutating
// concurrently; the sequence validation discards any torn result, so all
// the C++ memory model requires is that the racing accesses be atomic.
// An unaligned 64-bit load cannot be a single hardware atomic, so:
//
//   * normal builds: plain memcpy — on every supported target this compiles
//     to one unaligned load/store, and torn values are benign by protocol;
//   * TSan builds: byte-wise __atomic relaxed accesses (byte atomics are
//     always lock-free), which makes the race visible to TSan as atomics
//     rather than as a report. ~8x slower, irrelevant off the TSan build.

inline std::uint64_t LoadWordRelaxed(const std::uint8_t* p) noexcept {
#if VCF_TSAN
  std::uint64_t word = 0;
  for (unsigned i = 0; i < 8; ++i) {
    word |= static_cast<std::uint64_t>(__atomic_load_n(p + i, __ATOMIC_RELAXED))
            << (8 * i);
  }
  return word;
#else
  std::uint64_t word;
  std::memcpy(&word, p, sizeof(word));
  return word;
#endif
}

inline void StoreWordRelaxed(std::uint8_t* p, std::uint64_t word) noexcept {
#if VCF_TSAN
  for (unsigned i = 0; i < 8; ++i) {
    __atomic_store_n(p + i, static_cast<std::uint8_t>(word >> (8 * i)),
                     __ATOMIC_RELAXED);
  }
#else
  std::memcpy(p, &word, sizeof(word));
#endif
}

inline std::uint8_t LoadByteRelaxed(const std::uint8_t* p) noexcept {
#if VCF_TSAN
  return __atomic_load_n(p, __ATOMIC_RELAXED);
#else
  return *p;
#endif
}

/// Reads `bits` (1..57) bits starting at absolute bit offset `bit_off` from a
/// byte buffer. The buffer must have at least one addressable byte past the
/// last touched bit-range byte-span; PackedTable guarantees 8 bytes of slack.
std::uint64_t ReadBits(const std::uint8_t* base, std::size_t bit_off,
                       unsigned bits) noexcept;

/// Writes the low `bits` (1..57) bits of `value` at absolute bit offset
/// `bit_off`. Untouched neighbouring bits are preserved.
void WriteBits(std::uint8_t* base, std::size_t bit_off, unsigned bits,
               std::uint64_t value) noexcept;

}  // namespace vcf
