#include "common/bitops.hpp"

#include <cstring>

namespace vcf {

// Both helpers use a single unaligned 64-bit load/store around the target
// range. With bits <= 57 and an intra-byte offset of at most 7, the touched
// range always fits in one 8-byte window, so the fast path has no loop.

std::uint64_t ReadBits(const std::uint8_t* base, std::size_t bit_off,
                       unsigned bits) noexcept {
  const std::size_t byte = bit_off >> 3;
  const unsigned shift = static_cast<unsigned>(bit_off & 7);
  const std::uint64_t word = LoadWordRelaxed(base + byte);
  return (word >> shift) & LowMask(bits);
}

void WriteBits(std::uint8_t* base, std::size_t bit_off, unsigned bits,
               std::uint64_t value) noexcept {
  const std::size_t byte = bit_off >> 3;
  const unsigned shift = static_cast<unsigned>(bit_off & 7);
  const std::uint64_t mask = LowMask(bits) << shift;
  std::uint64_t word = LoadWordRelaxed(base + byte);
  word = (word & ~mask) | ((value << shift) & mask);
  StoreWordRelaxed(base + byte, word);
}

}  // namespace vcf
