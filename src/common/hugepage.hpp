// Hugepage-aware backing storage for large probe arrays.
//
// At 2^26-slot scale a PackedTable spans hundreds of MiB; with 4 KiB pages
// a uniform-random probe stream takes a dTLB miss on nearly every bucket.
// 2 MiB pages cut the page-walk rate by ~512x. PagedBytes is a drop-in
// replacement for the std::vector<uint8_t> those tables used to hold:
//
//   PageHint::kNormal       heap allocation, exactly the old behaviour.
//   PageHint::kTransparent  anonymous mmap, 2 MiB-aligned, with
//                           madvise(MADV_HUGEPAGE) — the kernel upgrades
//                           pages opportunistically (THP). Never fails
//                           for hugepage reasons.
//   PageHint::kExplicit     try MAP_HUGETLB (reserved hugetlbfs pool)
//                           first; silently falls back to the
//                           kTransparent path, then to the heap, when the
//                           pool is empty or unsupported.
//
// The hint changes only where the bytes live; size, contents, and the
// canonical serialization built on data()/size() are identical across
// hints, so checkpoint blobs stay bit-identical with hugepages on or off.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vcf {

enum class PageHint : std::uint8_t {
  kNormal = 0,       ///< Plain heap pages (4 KiB).
  kTransparent = 1,  ///< mmap + madvise(MADV_HUGEPAGE); best-effort THP.
  kExplicit = 2,     ///< MAP_HUGETLB with silent fallback to kTransparent.
};

/// Process-wide allocation accounting, exported through vcfd STATS.
/// Relaxed atomics: these are monotonic gauges, not synchronization.
struct HugepageStats {
  /// Bytes requested with a non-kNormal hint.
  std::uint64_t requested_bytes = 0;
  /// Bytes backed by madvise(MADV_HUGEPAGE) regions.
  std::uint64_t thp_bytes = 0;
  /// Bytes backed by MAP_HUGETLB regions.
  std::uint64_t hugetlb_bytes = 0;
  /// Bytes that asked for kExplicit but fell back (to THP or heap).
  std::uint64_t fallback_bytes = 0;
};

HugepageStats GetHugepageStats() noexcept;
void ResetHugepageStatsForTest() noexcept;

/// Fixed-capacity zero-initialised byte buffer with a page-placement hint.
/// Mirrors the slice of the std::vector<uint8_t> interface PackedTable
/// used: data()/size()/operator[]/Fill/operator==. No incremental growth —
/// tables size their backing once at construction (or once per assign on
/// restore), which is exactly what keeps optimistic readers safe: data()
/// never moves for the lifetime of a given geometry.
class PagedBytes {
 public:
  PagedBytes() noexcept = default;
  PagedBytes(std::size_t size, PageHint hint) { Allocate(size, hint); }
  ~PagedBytes() { Release(); }

  PagedBytes(PagedBytes&& other) noexcept;
  PagedBytes& operator=(PagedBytes&& other) noexcept;
  PagedBytes(const PagedBytes&) = delete;
  PagedBytes& operator=(const PagedBytes&) = delete;

  /// Discards the current buffer and allocates a fresh zeroed one of
  /// `size` bytes under `hint`. Invalidates data() — callers that publish
  /// data() to concurrent readers must not use this while readers run.
  void Reset(std::size_t size, PageHint hint);

  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::uint8_t& operator[](std::size_t i) noexcept { return data_[i]; }
  const std::uint8_t& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// memset the whole buffer (Clear() path).
  void Fill(std::uint8_t value) noexcept;

  PageHint hint() const noexcept { return hint_; }
  /// What actually backs the buffer after fallbacks resolved.
  PageHint effective_hint() const noexcept { return effective_; }

  friend bool operator==(const PagedBytes& a, const PagedBytes& b) noexcept;

 private:
  void Allocate(std::size_t size, PageHint hint);
  void Release() noexcept;

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  /// mmap bookkeeping: base/length of the underlying mapping (may exceed
  /// [data_, data_+size_) because of alignment trimming); null for heap.
  void* map_base_ = nullptr;
  std::size_t map_len_ = 0;
  PageHint hint_ = PageHint::kNormal;
  PageHint effective_ = PageHint::kNormal;
};

}  // namespace vcf
