// Deterministic, fast PRNGs used for eviction choices and workload synthesis.
//
// The filters must not depend on std::mt19937 in their hot loops (its state
// is large and its per-draw cost dwarfs a bucket probe), so eviction paths
// use SplitMix64/xoshiro256**. All generators are seedable for reproducible
// experiments.
#pragma once

#include <array>
#include <cstdint>

namespace vcf {

/// SplitMix64: tiny, statistically solid, ideal for seeding and for hashing
/// integers into well-mixed 64-bit values.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a single 64-bit value (SplitMix64 finalizer). Used to
/// derive independent sub-seeds and as a cheap strong integer hash.
constexpr std::uint64_t Mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: the workhorse generator for eviction decisions and workload
/// generation. Passes BigCrush; 2^256-1 period; 4 words of state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  std::uint64_t Next() noexcept;

  /// Unbiased draw from [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t Below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Standard normal via Box-Muller (used by the synthetic HIGGS generator).
  double NextGaussian() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace vcf
