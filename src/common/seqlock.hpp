// Sequence lock for optimistic, lock-free reads over writer-exclusive data.
//
// The writer side assumes external mutual exclusion (the shard mutex, or
// pinned-mode single-owner discipline): it bumps the counter to an odd
// value before mutating and back to even after, so a reader that observes
// the same even value before and after its probe knows no writer ran in
// between. Readers never block writers and writers never block readers;
// a reader that keeps losing the race falls back to the lock after a
// bounded number of retries (policy lives in the caller, not here).
//
// Memory-ordering argument (the Boehm "Can seqlocks get along with
// programming language memory models?" recipe):
//
//   writer:  seq.store(s + 1, relaxed);          // enter odd
//            atomic_thread_fence(release);        // data writes stay after
//            ... mutate data (relaxed/plain) ...
//            seq.store(s + 2, release);           // exit even
//
//   reader:  s1 = seq.load(acquire);              // data reads stay after
//            ... read data (relaxed) ...
//            atomic_thread_fence(acquire);         // data reads stay before
//            s2 = seq.load(relaxed);
//            valid iff s1 is even and s1 == s2
//
// The release fence in WriteBegin orders the odd store before the data
// writes; the acquire fence in ReadValidate orders the data reads before
// the re-load. If any data write raced the reader's data reads, the
// reader cannot see s1 even and s1 == s2, so torn values are discarded,
// never returned. Data accesses on the read side must themselves be
// atomic (relaxed is enough) for the C++ model — PackedTable's probe
// loads provide that via bitops' relaxed word loads.
#pragma once

#include <atomic>
#include <cstdint>

namespace vcf {

/// Polite spin between optimistic-read retries: tells the pipeline (and a
/// hyperthread sibling) the core is busy-waiting.
inline void CpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Cache-line padded so neighbouring shards' writer bumps don't false-share
/// with this shard's reader validation loads.
class alignas(64) SeqLock {
 public:
  SeqLock() noexcept = default;

  // Movable only in the trivial "no concurrent use" sense: moving copies the
  // current value. Containers resize before threads start; concurrent moves
  // are a caller bug.
  SeqLock(SeqLock&& other) noexcept
      : seq_(other.seq_.load(std::memory_order_relaxed)) {}
  SeqLock& operator=(SeqLock&& other) noexcept {
    seq_.store(other.seq_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  /// Reader: snapshot the sequence before probing. An odd result means a
  /// writer is mid-mutation — callers should retry (or fall back) without
  /// probing.
  std::uint64_t ReadBegin() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }

  /// Reader: validate after probing. True iff the snapshot was even and no
  /// writer entered since ReadBegin.
  bool ReadValidate(std::uint64_t token) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return (token & 1) == 0 &&
           seq_.load(std::memory_order_relaxed) == token;
  }

  /// Writer: enter the critical section (requires external writer mutual
  /// exclusion). Leaves the counter odd.
  void WriteBegin() noexcept {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  /// Writer: leave the critical section. Restores the counter to even and
  /// publishes every mutation made since WriteBegin.
  void WriteEnd() noexcept {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_release);
  }

  /// Current raw value; odd means a writer is inside. Diagnostic only.
  std::uint64_t Value() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
};

/// RAII writer section: bumps to odd on construction, back to even on
/// destruction. The caller must already hold writer exclusion.
class SeqLockWriteGuard {
 public:
  explicit SeqLockWriteGuard(SeqLock& lock) noexcept : lock_(&lock) {
    lock_->WriteBegin();
  }
  ~SeqLockWriteGuard() {
    if (lock_ != nullptr) lock_->WriteEnd();
  }
  SeqLockWriteGuard(const SeqLockWriteGuard&) = delete;
  SeqLockWriteGuard& operator=(const SeqLockWriteGuard&) = delete;

 private:
  SeqLock* lock_;
};

}  // namespace vcf
