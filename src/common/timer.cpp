#include "common/timer.hpp"

// Header-only today; this translation unit anchors the target so the library
// has a stable archive even if the header later grows out-of-line members.
