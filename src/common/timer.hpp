// Wall-clock timing helpers for the experiment harness and benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace vcf {

/// Monotonic stopwatch. Construct (or Reset) to start; Elapsed* reads do not
/// stop it, so one stopwatch can bracket a sequence of measurement points.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Reset() noexcept { start_ = Clock::now(); }

  double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMicros() const noexcept { return ElapsedSeconds() * 1e6; }
  std::uint64_t ElapsedNanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Prevents the optimizer from eliding a computed value (benchmark loops).
template <typename T>
inline void DoNotOptimize(const T& value) noexcept {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace vcf
