// Fault-injection failpoints (MongoDB-style): named hooks compiled into the
// library's failure seams so tests — and operators chasing a production
// incident — can force the rare paths (eviction-chain exhaustion, checkpoint
// stream errors, segment-allocation failure) deterministically instead of
// waiting for saturation to produce them.
//
// Cost model: a disarmed failpoint is one relaxed atomic load at the call
// site (the registry lookup is amortised behind a function-local static), so
// hooks can live on insert/lookup hot paths. Armed evaluation is still
// lock-free: nth/probability modes draw from per-failpoint atomic counters.
//
// Arming:
//   - from code:  FailpointRegistry::Instance().Get(name).ArmAlways();
//   - from the environment, before the first use of the registry:
//       VCF_FAILPOINTS="core/evict_exhausted=prob:0.1:42,state/write=nth:3"
//     (comma- or semicolon-separated `name=mode` clauses; see ApplySpec).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vcf {

class Failpoint {
 public:
  enum class Mode : std::uint8_t {
    kOff,          ///< never fires (the default)
    kAlways,       ///< fires on every evaluation
    kNth,          ///< fires on every n-th evaluation (1st fire at eval n)
    kProbability,  ///< fires with probability p, from a seeded counter PRNG
  };

  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// The hot-path check: true when the failpoint fires for this evaluation.
  /// Disarmed cost is a single relaxed load.
  bool ShouldFail() noexcept {
    if (mode_.load(std::memory_order_relaxed) ==
        static_cast<std::uint8_t>(Mode::kOff)) {
      return false;
    }
    return EvaluateArmed();
  }

  void ArmAlways() noexcept { Arm(Mode::kAlways, 0); }

  /// Fires on evaluations n, 2n, 3n, ... (n == 0 is treated as 1).
  void ArmNth(std::uint64_t n) noexcept { Arm(Mode::kNth, n == 0 ? 1 : n); }

  /// Fires with probability `p` (clamped to [0, 1]). The draw sequence is a
  /// pure function of (seed, evaluation index): deterministic and
  /// thread-safe, so stress tests are replayable.
  void ArmProbability(double p, std::uint64_t seed = 0x5EEDULL) noexcept;

  void Disarm() noexcept {
    mode_.store(static_cast<std::uint8_t>(Mode::kOff),
                std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  Mode mode() const noexcept {
    return static_cast<Mode>(mode_.load(std::memory_order_relaxed));
  }
  /// How many times ShouldFail() ran while armed / returned true.
  std::uint64_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  std::uint64_t triggers() const noexcept {
    return triggers_.load(std::memory_order_relaxed);
  }
  void ResetCounts() noexcept {
    evaluations_.store(0, std::memory_order_relaxed);
    triggers_.store(0, std::memory_order_relaxed);
  }

 private:
  void Arm(Mode mode, std::uint64_t arg) noexcept {
    arg_.store(arg, std::memory_order_relaxed);
    // The mode store is what arms the point; release-pairing is unnecessary
    // because a stale arg only mis-times the first few evaluations of a
    // concurrently armed point, which no caller relies on.
    mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  }

  bool EvaluateArmed() noexcept;

  std::string name_;
  std::atomic<std::uint8_t> mode_{static_cast<std::uint8_t>(Mode::kOff)};
  std::atomic<std::uint64_t> arg_{0};   ///< n (kNth) or p scaled to 2^64 (kProbability)
  std::atomic<std::uint64_t> seed_{0};  ///< kProbability draw seed
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> triggers_{0};
};

/// Process-wide registry. Failpoints are created on first Get() and never
/// destroyed (pointers stay valid for the process lifetime), so call sites
/// may cache the reference behind a function-local static.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Returns the failpoint named `name`, creating it (disarmed) on first use.
  Failpoint& Get(std::string_view name);

  /// Returns the failpoint or nullptr if it was never requested/armed.
  Failpoint* Find(std::string_view name);

  void DisarmAll();

  std::vector<std::string> Names() const;

  /// Applies a spec string: clauses separated by ',' or ';', each
  /// `name=mode` with mode one of
  ///   off | always | nth:<n> | prob:<p>[:<seed>]
  /// Returns false (after applying every well-formed clause) if any clause
  /// was malformed.
  bool ApplySpec(std::string_view spec);

 private:
  FailpointRegistry();  // applies $VCF_FAILPOINTS if set

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Failpoint>> points_;
};

/// Canonical names of the failure seams wired through the library; see
/// docs/robustness.md for the exact semantics of each.
namespace failpoints {
/// Cuckoo-family insert: fires instead of starting the eviction chain, so a
/// triggered insert fails exactly as if MAX kicks were exhausted (checked in
/// VCF, DVCF and k-VCF once the direct candidate probes come up full).
inline constexpr const char kEvictionExhausted[] = "core/evict_exhausted";
/// State-blob header write/read (state_io.cpp): fires as a stream error.
inline constexpr const char kStateWrite[] = "state/write";
inline constexpr const char kStateRead[] = "state/read";
/// PackedTable payload save/load (table/serialization.cpp).
inline constexpr const char kTableSave[] = "table/save";
inline constexpr const char kTableLoad[] = "table/load";
/// DynamicVcf growth: fires instead of allocating a new segment.
inline constexpr const char kSegmentAlloc[] = "dynamic/segment_alloc";
/// Socket read seam (net/socket.cpp ReadSome): fires as an EIO read error,
/// so tests can force mid-stream disconnects on vcfd connections and client
/// sockets without a real network fault.
inline constexpr const char kNetSocketRead[] = "net/socket_read";
/// Socket write seam (net/socket.cpp WriteAll): fires as an EIO write error
/// after roughly half the buffer went out, so torn frames and mid-write
/// disconnects are drillable in the sending direction too.
inline constexpr const char kNetSocketWrite[] = "net/socket_write";
/// Primary-side op-log append (server/replication): fires after the filter
/// op was applied; the server rolls the op back and reports kServerError, so
/// "every ACKed mutation is journaled" stays an invariant under the drill.
inline constexpr const char kReplOplogAppend[] = "repl/oplog_append";
/// Op-log streaming to a replica: fires as a stream error, disconnecting the
/// replica mid-stream so it must reconnect and resync.
inline constexpr const char kReplOplogStream[] = "repl/oplog_stream";
/// Snapshot-bootstrap chunk send: fires as a stream error mid-snapshot,
/// cutting the replica off with a partial blob it must discard.
inline constexpr const char kReplSnapshotChunk[] = "repl/snapshot_chunk";
}  // namespace failpoints

/// Call-site helper: amortises the registry lookup behind a function-local
/// static, leaving one relaxed load per evaluation when disarmed.
#define VCF_FAILPOINT_TRIGGERED(name_constant)                      \
  ([]() noexcept -> bool {                                          \
    static ::vcf::Failpoint& vcf_fp_ =                              \
        ::vcf::FailpointRegistry::Instance().Get(name_constant);    \
    return vcf_fp_.ShouldFail();                                    \
  }())

}  // namespace vcf
