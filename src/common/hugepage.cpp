#include "common/hugepage.hpp"

#include <atomic>
#include <cstring>
#include <new>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace vcf {
namespace {

constexpr std::size_t kHugePageSize = std::size_t{2} << 20;  // 2 MiB

// Small/normal allocations stay on the heap: a dedicated mapping per tiny
// table would waste a page and a VMA each, and sub-page buffers cannot
// benefit from THP anyway.
constexpr std::size_t kMmapThreshold = std::size_t{1} << 20;  // 1 MiB

struct AtomicHugepageStats {
  std::atomic<std::uint64_t> requested{0};
  std::atomic<std::uint64_t> thp{0};
  std::atomic<std::uint64_t> hugetlb{0};
  std::atomic<std::uint64_t> fallback{0};
};

AtomicHugepageStats& Stats() noexcept {
  static AtomicHugepageStats stats;
  return stats;
}

void Add(std::atomic<std::uint64_t>& c, std::uint64_t v) noexcept {
  c.fetch_add(v, std::memory_order_relaxed);
}

}  // namespace

HugepageStats GetHugepageStats() noexcept {
  const AtomicHugepageStats& s = Stats();
  HugepageStats out;
  out.requested_bytes = s.requested.load(std::memory_order_relaxed);
  out.thp_bytes = s.thp.load(std::memory_order_relaxed);
  out.hugetlb_bytes = s.hugetlb.load(std::memory_order_relaxed);
  out.fallback_bytes = s.fallback.load(std::memory_order_relaxed);
  return out;
}

void ResetHugepageStatsForTest() noexcept {
  AtomicHugepageStats& s = Stats();
  s.requested.store(0, std::memory_order_relaxed);
  s.thp.store(0, std::memory_order_relaxed);
  s.hugetlb.store(0, std::memory_order_relaxed);
  s.fallback.store(0, std::memory_order_relaxed);
}

PagedBytes::PagedBytes(PagedBytes&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      hint_(std::exchange(other.hint_, PageHint::kNormal)),
      effective_(std::exchange(other.effective_, PageHint::kNormal)) {}

PagedBytes& PagedBytes::operator=(PagedBytes&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    hint_ = std::exchange(other.hint_, PageHint::kNormal);
    effective_ = std::exchange(other.effective_, PageHint::kNormal);
  }
  return *this;
}

void PagedBytes::Reset(std::size_t size, PageHint hint) {
  Release();
  Allocate(size, hint);
}

void PagedBytes::Fill(std::uint8_t value) noexcept {
  if (size_ != 0) std::memset(data_, value, size_);
}

bool operator==(const PagedBytes& a, const PagedBytes& b) noexcept {
  return a.size_ == b.size_ &&
         (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
}

void PagedBytes::Allocate(std::size_t size, PageHint hint) {
  hint_ = hint;
  effective_ = PageHint::kNormal;
  size_ = size;
  if (size == 0) {
    data_ = nullptr;
    return;
  }

#if defined(__linux__)
  if (hint != PageHint::kNormal && size >= kMmapThreshold) {
    Add(Stats().requested, size);

    if (hint == PageHint::kExplicit) {
#if defined(MAP_HUGETLB)
      // Reserved-pool pages: length must be a hugepage multiple and the
      // pool must hold enough free pages, else mmap fails and we fall
      // through silently.
      const std::size_t len =
          (size + kHugePageSize - 1) & ~(kHugePageSize - 1);
      void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
      if (p != MAP_FAILED) {
        map_base_ = p;
        map_len_ = len;
        data_ = static_cast<std::uint8_t*>(p);
        effective_ = PageHint::kExplicit;
        Add(Stats().hugetlb, size);
        return;
      }
#endif
      Add(Stats().fallback, size);
    }

    // Transparent path (also the kExplicit fallback): over-map by one
    // hugepage so a 2 MiB-aligned window of `size` bytes fits inside, trim
    // the unaligned head and tail, then advise the kernel to back the
    // aligned window with THP. Alignment matters: khugepaged only collapses
    // 2 MiB-aligned extents.
    const std::size_t over = size + kHugePageSize;
    void* raw = ::mmap(nullptr, over, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw != MAP_FAILED) {
      std::uintptr_t base = reinterpret_cast<std::uintptr_t>(raw);
      std::uintptr_t aligned =
          (base + kHugePageSize - 1) & ~(kHugePageSize - 1);
      const std::size_t head = aligned - base;
      if (head != 0) ::munmap(raw, head);
      const std::size_t tail = over - head - size;
      if (tail != 0) {
        ::munmap(reinterpret_cast<void*>(aligned + size), tail);
      }
      map_base_ = reinterpret_cast<void*>(aligned);
      map_len_ = size;
#if defined(MADV_HUGEPAGE)
      ::madvise(map_base_, size, MADV_HUGEPAGE);
#endif
      data_ = static_cast<std::uint8_t*>(map_base_);
      effective_ = PageHint::kTransparent;
      Add(Stats().thp, size);
      return;
    }
    Add(Stats().fallback, size);
  }
#endif  // __linux__

  // Heap path: kNormal hint, sub-threshold sizes, or mmap failure.
  // Anonymous mappings are zero-filled by the kernel; match that here.
  data_ = new std::uint8_t[size]();
}

void PagedBytes::Release() noexcept {
#if defined(__linux__)
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
    map_base_ = nullptr;
    map_len_ = 0;
    data_ = nullptr;
    size_ = 0;
    return;
  }
#endif
  delete[] data_;
  data_ = nullptr;
  size_ = 0;
}

}  // namespace vcf
