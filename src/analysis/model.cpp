#include "analysis/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vcf::model {

namespace {

/// Integrand of Eq. 14.
double KickIntegrand(double x, double exponent) noexcept {
  return 1.0 / (1.0 - std::pow(x, exponent));
}

double Simpson(double a, double b, double exponent) noexcept {
  const double m = 0.5 * (a + b);
  return (b - a) / 6.0 *
         (KickIntegrand(a, exponent) + 4.0 * KickIntegrand(m, exponent) +
          KickIntegrand(b, exponent));
}

double AdaptiveSimpson(double a, double b, double exponent, double whole,
                       double eps, int depth) noexcept {
  const double m = 0.5 * (a + b);
  const double left = Simpson(a, m, exponent);
  const double right = Simpson(m, b, exponent);
  if (depth <= 0 || std::fabs(left + right - whole) < 15.0 * eps) {
    return left + right + (left + right - whole) / 15.0;
  }
  return AdaptiveSimpson(a, m, exponent, left, 0.5 * eps, depth - 1) +
         AdaptiveSimpson(m, b, exponent, right, 0.5 * eps, depth - 1);
}

}  // namespace

double ProbFourCandidatesBalanced(unsigned width) noexcept {
  const double w = static_cast<double>(width);
  return 1.0 + std::exp2(-w) - std::exp2(1.0 - w / 2.0);
}

double ProbFourCandidatesIvcf(unsigned width, unsigned ones) noexcept {
  if (ones == 0 || ones >= width) return 0.0;  // degenerate masks => CF
  const unsigned zeros = width - ones;
  // Distinctness fails when hash & bm1 == 0 (2^zeros values) or
  // hash & bm2 == 0 (2^ones values); both conditions share the all-zero hash.
  const double bad = std::exp2(static_cast<double>(zeros)) +
                     std::exp2(static_cast<double>(ones)) - 1.0;
  return 1.0 - bad / std::exp2(static_cast<double>(width));
}

double ProbFourCandidatesFragments(unsigned o1, unsigned o2) noexcept {
  if (o1 == 0 || o2 == 0) return 0.0;
  const double p1 = std::exp2(-static_cast<double>(o1));
  const double p2 = std::exp2(-static_cast<double>(o2));
  return 1.0 - p1 - p2 + p1 * p2;
}

double DvcfFourCandidateFraction(double delta_t, unsigned f_bits) noexcept {
  const double p = 2.0 * delta_t / std::exp2(static_cast<double>(f_bits));
  return std::clamp(p, 0.0, 1.0);
}

double FalsePositiveUpperBound(unsigned f_bits, double r, unsigned b,
                               double alpha) noexcept {
  const double per_slot = 1.0 / std::exp2(static_cast<double>(f_bits));
  const double comparisons = (2.0 * r + 2.0) * static_cast<double>(b) * alpha;
  return 1.0 - std::pow(1.0 - per_slot, comparisons);
}

unsigned MinFingerprintBits(double r, unsigned b, double alpha,
                            double target_fpr) noexcept {
  const double arg = 2.0 * (r + 1.0) * static_cast<double>(b) * alpha / target_fpr;
  return static_cast<unsigned>(std::ceil(std::log2(arg)));
}

double BitsPerItem(double r, unsigned b, double alpha,
                   double target_fpr) noexcept {
  return static_cast<double>(MinFingerprintBits(r, b, alpha, target_fpr)) / alpha;
}

double ExpectedEvictionsAtLoad(double alpha, double r, unsigned b) noexcept {
  const double exponent = (2.0 * r + 1.0) * static_cast<double>(b);
  const double denom = 1.0 - std::pow(alpha, exponent);
  // At alpha -> 1 the expectation diverges; callers cap via Eq. 15's MAX term.
  return denom <= 0.0 ? std::numeric_limits<double>::infinity() : 1.0 / denom;
}

double AverageInsertionCost(double alpha, double r, unsigned b) noexcept {
  const double exponent = (2.0 * r + 1.0) * static_cast<double>(b);
  const double upper = std::min(alpha, 1.0 - 1e-9);
  if (upper <= 0.0) return 0.0;
  const double whole = Simpson(0.0, upper, exponent);
  // The paper's E is the raw integral (its worked example: r=0, b=4,
  // alpha=0.95 gives E ~= 1.296 and E0 ~= 11.3 with lambda0/lambda = 0.98).
  return AdaptiveSimpson(0.0, upper, exponent, whole, 1e-10, 40);
}

double E0(double lambda0_over_lambda, double avg_insertion_cost) noexcept {
  constexpr double kMaxKicks = 500.0;
  return lambda0_over_lambda * avg_insertion_cost +
         kMaxKicks * (1.0 - lambda0_over_lambda);
}

double BloomFalsePositiveRate(unsigned k, double n, double m) noexcept {
  const double kk = static_cast<double>(k);
  return std::pow(1.0 - std::exp(-kk * n / m), kk);
}

double CuckooFalsePositiveRate(unsigned f_bits, unsigned b) noexcept {
  const double per_slot = 1.0 / std::exp2(static_cast<double>(f_bits));
  return 1.0 - std::pow(1.0 - per_slot, 2.0 * b);
}

}  // namespace vcf::model
