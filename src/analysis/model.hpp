// Closed-form performance model from §V of the paper.
//
// These functions implement Equations 5 and 8-15 exactly as printed, so that
// tests and EXPERIMENTS.md can put measured values side by side with theory.
// Notation follows Table II of the paper: f = fingerprint bits, b = slots per
// bucket, alpha = load factor, r = probability an item gets 4 candidate
// buckets, xi = false positive rate.
#pragma once

namespace vcf::model {

/// Eq. 5 — probability that vertical hashing yields 4 distinct candidate
/// buckets with balanced masks over a `width`-bit index:
/// P = 1 + 2^-w - 2^(1 - w/2). (The paper writes f; the operative width is
/// that of the XOR domain.)
double ProbFourCandidatesBalanced(unsigned width) noexcept;

/// Eq. 8 — probability of 4 candidates for an IVCF whose bm1 has `ones`
/// one-bits within a `width`-bit mask (exact form, not the approximation):
/// P = 1 - (2^l + 2^(w-l) - 1) / 2^w with l = width - ones zero-bits.
double ProbFourCandidatesIvcf(unsigned width, unsigned ones) noexcept;

/// Generalisation of Eq. 8 by inclusion-exclusion, in terms of the two mask
/// fragments' *effective* bit counts (bits surviving reduction modulo the
/// table size): P = 1 - 2^-o1 - 2^-o2 + 2^-(o1+o2). With o1 + o2 = f this
/// is exactly Eq. 8; it is 0 whenever a fragment is empty.
double ProbFourCandidatesFragments(unsigned o1, unsigned o2) noexcept;

/// Eq. 9 — proportion of items given 4 candidates by a DVCF with threshold
/// delta_t over f-bit fingerprints: p = 2*delta_t / 2^f.
double DvcfFourCandidateFraction(double delta_t, unsigned f_bits) noexcept;

/// Eq. 10 — upper bound on the false positive rate:
/// xi = 1 - (1 - 2^-f)^((2r+2) * b * alpha).
double FalsePositiveUpperBound(unsigned f_bits, double r, unsigned b,
                               double alpha) noexcept;

/// Eq. 11 — minimal fingerprint bits for a target false positive rate:
/// f >= ceil(log2(2 (r+1) b alpha / xi)).
unsigned MinFingerprintBits(double r, unsigned b, double alpha,
                            double target_fpr) noexcept;

/// Eq. 12 — average bits per stored item:
/// C = ceil(log2(2 (r+1) b alpha / xi)) / alpha.
double BitsPerItem(double r, unsigned b, double alpha,
                   double target_fpr) noexcept;

/// Eq. 13 — expected evictions for one insertion at load alpha:
/// E(pi_alpha) = 1 / (1 - alpha^((2r+1) b)).
double ExpectedEvictionsAtLoad(double alpha, double r, unsigned b) noexcept;

/// Eq. 14 — the paper's insertion-cost functional for serial insertions
/// filling the table from load 0 to `alpha`:
/// E = integral_0^alpha dx / (1 - x^((2r+1) b)).
/// Evaluated by adaptive Simpson quadrature; the integrand's singularity at
/// x = 1 is handled by capping alpha slightly below 1.
double AverageInsertionCost(double alpha, double r, unsigned b) noexcept;

/// Eq. 15 — E0 combining the fill cost with the failure penalty:
/// E0 = (lambda0/lambda) E + 500 (1 - lambda0/lambda), with MAX = 500.
double E0(double lambda0_over_lambda, double avg_insertion_cost) noexcept;

/// Reference false-positive rates used in Table I context:
/// Bloom filter xi = (1 - e^(-k n / m))^k.
double BloomFalsePositiveRate(unsigned k, double n, double m) noexcept;

/// Standard CF bound: xi ~= 1 - (1 - 2^-f)^(2b) ~= 2b / 2^f.
double CuckooFalsePositiveRate(unsigned f_bits, unsigned b) noexcept;

}  // namespace vcf::model
