// Synchronous client for vcfd, speaking the length-prefixed binary protocol
// in net/proto.hpp over one blocking TCP connection.
//
// Two calling styles share the codec:
//   - one-shot ops (Insert/Lookup/Erase/Ping/GetStats/Snapshot): encode one
//     request, write, block for the matching response;
//   - batch ops (InsertBatch/LookupBatch): one request frame carrying up to
//     net::kMaxBatchKeys keys — the server runs the filter's prefetch-
//     pipelined batch path and replies with a result bitmap. Larger spans
//     are split transparently; this is the throughput path the load
//     generator drives.
//   - PipelineLookups/PipelineInserts: `depth` single-key frames written
//     back-to-back before the first response is read, measuring the
//     server's request pipelining rather than its batch opcode.
//
// The client is not thread-safe: one VcfClient per thread (the load
// generator opens one connection per worker). Every method returns false /
// 0 on transport or protocol errors and records a diagnostic in
// last_error(); the connection is then dead (Connect again to retry) —
// request/response framing cannot be resynced mid-stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/proto.hpp"

namespace vcf::client {

class VcfClient {
 public:
  struct ServerStats {
    std::string name;
    std::uint64_t items = 0;
    std::uint64_t slots = 0;
    std::uint64_t memory_bytes = 0;
    double load_factor = 0.0;
    bool supports_deletion = false;
  };

  VcfClient() = default;
  ~VcfClient();

  VcfClient(const VcfClient&) = delete;
  VcfClient& operator=(const VcfClient&) = delete;

  bool Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Round-trips an 8-byte echo payload. True on success.
  bool Ping();

  /// Single-key ops. `*ok` (when non-null) reports transport success; the
  /// return value is the filter's answer (false on transport failure too).
  bool Insert(std::uint64_t key, bool* ok = nullptr);
  bool Lookup(std::uint64_t key, bool* ok = nullptr);
  bool Erase(std::uint64_t key, bool* ok = nullptr);

  /// Batch ops; results[i] = outcome of keys[i] (may be nullptr for
  /// InsertBatch). Returns accepted count / true, with false/0 + last_error
  /// on failure. Spans longer than net::kMaxBatchKeys are split.
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr, bool* ok = nullptr);
  bool LookupBatch(std::span<const std::uint64_t> keys, bool* results);

  /// Writes `keys.size()` single-key LOOKUP/INSERT frames in windows of
  /// `depth` before draining the matching responses — the request-pipelining
  /// path. results may be nullptr.
  bool PipelineLookups(std::span<const std::uint64_t> keys, bool* results,
                       std::size_t depth = 32);
  bool PipelineInserts(std::span<const std::uint64_t> keys, bool* results,
                       std::size_t depth = 32);

  bool GetStats(ServerStats& out);

  /// Asks the server to checkpoint now. True when the server reports the
  /// checkpoint was written.
  bool Snapshot();

  const std::string& last_error() const noexcept { return error_; }

 private:
  bool SendFrame();  ///< writes send_buf_ and clears it
  bool ReadResponse(net::Opcode expect_op, std::uint32_t expect_id,
                    net::Response& resp);
  bool SimpleKeyOp(net::Opcode op, std::uint64_t key, bool* ok);
  bool Pipeline(net::Opcode op, std::span<const std::uint64_t> keys,
                bool* results, std::size_t depth);
  bool Fail(const std::string& why);

  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  std::vector<std::uint8_t> send_buf_;
  net::FrameBuffer recv_buf_;
  std::string error_;
};

}  // namespace vcf::client
