// Synchronous client for vcfd, speaking the length-prefixed binary protocol
// in net/proto.hpp over blocking TCP connections.
//
// Two calling styles share the codec:
//   - one-shot ops (Insert/Lookup/Erase/Ping/GetStats/Snapshot): encode one
//     request, write, block for the matching response;
//   - batch ops (InsertBatch/LookupBatch): one request frame carrying up to
//     net::kMaxBatchKeys keys — the server runs the filter's prefetch-
//     pipelined batch path and replies with a result bitmap. Larger spans
//     are split transparently; this is the throughput path the load
//     generator drives.
//   - PipelineLookups/PipelineInserts: `depth` single-key frames written
//     back-to-back before the first response is read, measuring the
//     server's request pipelining rather than its batch opcode.
//
// Cluster mode (ConnectCluster): the client holds an ordered endpoint list
// and two logical channels — writes go to whichever endpoint currently
// accepts them, reads can be routed to a designated replica endpoint
// (Options::read_endpoint). On connection loss, a kReadOnly answer (the
// peer is a replica) or kShuttingDown, the channel rotates to the next
// endpoint with exponential backoff and the op is retried up to
// Options::max_attempts times; batch and pipeline ops replay their whole
// in-flight window. Replay gives at-least-once semantics, which is safe for
// membership: re-inserting a key cannot lose it (an insert may land twice,
// occupying an extra slot), and lookups are pure. Configurable connect/read
// timeouts bound every blocking call so a dead peer cannot hang the client.
//
// The legacy single-endpoint Connect(host, port) keeps the original
// behavior exactly: no timeouts, one attempt, any failure kills the
// connection (Connect again to retry) — request/response framing cannot be
// resynced mid-stream.
//
// The client is not thread-safe: one VcfClient per thread (the load
// generator opens one connection per worker). Every method returns false /
// 0 on failure and records a diagnostic in last_error().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/proto.hpp"

namespace vcf::client {

class VcfClient {
 public:
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
  };

  struct Options {
    int connect_timeout_ms = 0;  ///< 0 = blocking connect, no deadline
    int read_timeout_ms = 0;     ///< 0 = block forever awaiting a response
    /// Attempts per op across endpoint rotation; 1 = no retry (legacy).
    int max_attempts = 1;
    int backoff_base_ms = 10;  ///< doubles per failed attempt...
    int backoff_max_ms = 500;  ///< ...up to this cap
    /// Index into the endpoint list that LOOKUP/LOOKUP_BATCH/PipelineLookups
    /// are routed to (a replica); -1 routes reads over the write channel.
    int read_endpoint = -1;
    /// Max batch frames in flight per InsertBatch/LookupBatch call: a span
    /// larger than batch_frame_keys splits into sub-batch frames, and up to
    /// this many are written back-to-back before the first response is
    /// drained. The server's cross-frame coalescer fuses adjacent frames
    /// back into one batch-kernel run, so pipelining costs no server work.
    int batch_pipeline = 4;
    /// Keys per batch frame (clamped to net::kMaxBatchKeys). Lowering it
    /// below the span size turns one InsertBatch call into several pipelined
    /// frames — the shape the coalescing benchmarks drive.
    std::uint32_t batch_frame_keys = net::kMaxBatchKeys;
  };

  struct ServerStats {
    std::string name;
    std::uint64_t items = 0;
    std::uint64_t slots = 0;
    std::uint64_t memory_bytes = 0;
    double load_factor = 0.0;
    bool supports_deletion = false;
    /// Optional trailer (zero against servers that predate it): lock-free
    /// lookup contention totals and hugepage-backed table bytes.
    std::uint64_t seqlock_retries = 0;
    std::uint64_t seqlock_fallbacks = 0;
    std::uint64_t hugepage_bytes = 0;
    /// Elastic-capacity trailer (zero against servers that predate it):
    /// completed growth steps, source buckets still awaiting migration
    /// (0 = no resize in flight), and lookups served from both tables.
    std::uint64_t elastic_resizes = 0;
    std::uint64_t elastic_backlog = 0;
    std::uint64_t elastic_dual_reads = 0;
  };

  /// WORKER_INFO response: which worker this connection landed on, and the
  /// routing parameters a core-affine client needs (docs/server.md).
  struct WorkerInfo {
    std::uint32_t worker_index = 0;
    std::uint32_t worker_count = 1;
    std::uint32_t shard_count = 0;  ///< 0 when the filter is not sharded
    std::uint64_t route_salt = 0;
    bool pinned = false;
  };

  VcfClient() = default;
  ~VcfClient();

  VcfClient(const VcfClient&) = delete;
  VcfClient& operator=(const VcfClient&) = delete;

  bool Connect(const std::string& host, std::uint16_t port);

  /// Failover mode: ordered endpoints (writes start at index 0) plus retry,
  /// timeout and read-routing configuration. Connects the write channel
  /// eagerly (honoring max_attempts); the read channel connects on first
  /// use. False when no endpoint accepted a connection.
  bool ConnectCluster(std::vector<Endpoint> endpoints, const Options& options);

  void Close();
  bool connected() const noexcept { return write_ch_.fd >= 0; }

  /// Round-trips an 8-byte echo payload. True on success.
  bool Ping();

  /// Single-key ops. `*ok` (when non-null) reports transport success; the
  /// return value is the filter's answer (false on transport failure too).
  bool Insert(std::uint64_t key, bool* ok = nullptr);
  bool Lookup(std::uint64_t key, bool* ok = nullptr);
  bool Erase(std::uint64_t key, bool* ok = nullptr);

  /// Batch ops; results[i] = outcome of keys[i] (may be nullptr for
  /// InsertBatch). Returns accepted count / true, with false/0 + last_error
  /// on failure. Spans longer than net::kMaxBatchKeys are split.
  std::size_t InsertBatch(std::span<const std::uint64_t> keys,
                          bool* results = nullptr, bool* ok = nullptr);
  bool LookupBatch(std::span<const std::uint64_t> keys, bool* results);

  /// Writes `keys.size()` single-key LOOKUP/INSERT frames in windows of
  /// `depth` before draining the matching responses — the request-pipelining
  /// path. results may be nullptr.
  bool PipelineLookups(std::span<const std::uint64_t> keys, bool* results,
                       std::size_t depth = 32);
  bool PipelineInserts(std::span<const std::uint64_t> keys, bool* results,
                       std::size_t depth = 32);

  bool GetStats(ServerStats& out);

  /// Asks the worker serving this connection's write channel to identify
  /// itself (WORKER_INFO). The affine load generator dials until it lands
  /// on its target worker using this.
  bool GetWorkerInfo(WorkerInfo& out);

  /// Asks the server to checkpoint now. True when the server reports the
  /// checkpoint was written.
  bool Snapshot();

  /// Asks the server to start one elastic growth step on every elastic
  /// leaf, regardless of the watermark (RESIZE). True when at least one
  /// leaf began (or was already running) a migration; false with
  /// last_error() = "unsupported" when the filter has no elastic layer.
  bool Resize();

  /// Asks the server to split the shard behind directory entry `entry`
  /// (SHARD_SPLIT; see core/sharded_filter.hpp). True on success.
  bool ShardSplit(std::uint32_t entry);

  const std::string& last_error() const noexcept { return error_; }

 private:
  /// One logical connection: reads and writes rotate independently through
  /// the endpoint list on failure.
  struct Channel {
    int fd = -1;
    net::FrameBuffer recv;
    std::size_t endpoint = 0;  ///< current index into endpoints_ (mod size)
  };

  Channel& ReadChannel() noexcept {
    return options_.read_endpoint >= 0 ? read_ch_ : write_ch_;
  }
  int attempts() const noexcept {
    return options_.max_attempts < 1 ? 1 : options_.max_attempts;
  }

  bool EnsureConnected(Channel& ch);
  /// Closes the channel and advances it to the next endpoint, so the next
  /// EnsureConnected tries a different node.
  void RotateChannel(Channel& ch);
  void Backoff(int attempt) const;
  /// True when the status means "wrong node, try the next one".
  static bool Rerouteable(net::Status s) noexcept {
    return s == net::Status::kReadOnly || s == net::Status::kShuttingDown;
  }

  bool SendFrame(Channel& ch);  ///< writes send_buf_ and clears it
  bool ReadResponse(Channel& ch, net::Opcode expect_op,
                    std::uint32_t expect_id, net::Response& resp);
  bool SimpleKeyOp(net::Opcode op, std::uint64_t key, bool* ok);
  bool Pipeline(net::Opcode op, std::span<const std::uint64_t> keys,
                bool* results, std::size_t depth);
  /// Shared batch path: splits `keys` into batch_frame_keys-sized frames,
  /// keeps up to batch_pipeline of them in flight, and scatters per-frame
  /// bitmaps into `results`. `accepted` (InsertBatch) accumulates per-frame
  /// accepted counts. Failed windows replay whole (at-least-once).
  bool BatchOp(net::Opcode op, std::span<const std::uint64_t> keys,
               bool* results, std::size_t* accepted);
  bool FailChannel(Channel& ch, const std::string& why);

  std::vector<Endpoint> endpoints_;
  Options options_;
  Channel write_ch_;
  Channel read_ch_;
  std::uint32_t next_id_ = 1;
  std::vector<std::uint8_t> send_buf_;
  std::string error_;
};

}  // namespace vcf::client
