#include "client/vcf_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/socket.hpp"

namespace vcf::client {

using net::Opcode;
using net::Status;

VcfClient::~VcfClient() { Close(); }

bool VcfClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  endpoints_ = {Endpoint{host, port}};
  options_ = Options{};  // legacy behavior: no timeouts, one attempt
  write_ch_.endpoint = 0;
  read_ch_.endpoint = 0;
  error_.clear();
  return EnsureConnected(write_ch_);
}

bool VcfClient::ConnectCluster(std::vector<Endpoint> endpoints,
                               const Options& options) {
  Close();
  if (endpoints.empty()) {
    error_ = "empty endpoint list";
    return false;
  }
  endpoints_ = std::move(endpoints);
  options_ = options;
  write_ch_.endpoint = 0;
  read_ch_.endpoint =
      options_.read_endpoint >= 0
          ? static_cast<std::size_t>(options_.read_endpoint) % endpoints_.size()
          : 0;
  error_.clear();
  for (int attempt = 0; attempt < attempts(); ++attempt) {
    if (attempt > 0) Backoff(attempt);
    if (EnsureConnected(write_ch_)) return true;
  }
  return false;
}

void VcfClient::Close() {
  net::CloseFd(write_ch_.fd);
  net::CloseFd(read_ch_.fd);
  write_ch_.fd = -1;
  read_ch_.fd = -1;
  send_buf_.clear();
}

bool VcfClient::FailChannel(Channel& ch, const std::string& why) {
  error_ = why;
  RotateChannel(ch);
  return false;
}

void VcfClient::RotateChannel(Channel& ch) {
  net::CloseFd(ch.fd);
  ch.fd = -1;
  if (!endpoints_.empty()) ch.endpoint = (ch.endpoint + 1) % endpoints_.size();
}

void VcfClient::Backoff(int attempt) const {
  if (attempt <= 0 || options_.backoff_base_ms <= 0) return;
  const int shift = std::min(attempt - 1, 16);
  const long long ms =
      std::min<long long>(static_cast<long long>(options_.backoff_base_ms)
                              << shift,
                          options_.backoff_max_ms);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool VcfClient::EnsureConnected(Channel& ch) {
  if (ch.fd >= 0) return true;
  if (endpoints_.empty()) {
    error_ = "not connected";
    return false;
  }
  const Endpoint& ep = endpoints_[ch.endpoint % endpoints_.size()];
  std::string err;
  const int fd = net::ConnectTcpTimeout(ep.host, ep.port,
                                        options_.connect_timeout_ms, &err);
  if (fd < 0) {
    error_ = ep.host + ":" + std::to_string(ep.port) + ": " + err;
    // Advance so the next attempt tries the next endpoint in order.
    ch.endpoint = (ch.endpoint + 1) % endpoints_.size();
    return false;
  }
  net::SetNoDelay(fd);
  ch.fd = fd;
  ch.recv = net::FrameBuffer();
  return true;
}

bool VcfClient::SendFrame(Channel& ch) {
  if (ch.fd < 0) {
    send_buf_.clear();
    error_ = "not connected";
    return false;
  }
  const bool ok = net::WriteAll(ch.fd, send_buf_);
  send_buf_.clear();
  if (!ok) return FailChannel(ch, "write failed");
  return true;
}

bool VcfClient::ReadResponse(Channel& ch, Opcode expect_op,
                             std::uint32_t expect_id, net::Response& resp) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    std::span<const std::uint8_t> payload;
    if (ch.recv.Next(payload)) {
      const net::DecodeResult r =
          net::DecodeResponse(payload, expect_op, resp);
      ch.recv.Pop();
      if (r != net::DecodeResult::kOk) {
        return FailChannel(ch, "malformed response frame");
      }
      if (resp.request_id != expect_id) {
        return FailChannel(ch, "response id mismatch (pipeline desync)");
      }
      return true;
    }
    const std::ptrdiff_t n =
        net::ReadSomeTimeout(ch.fd, buf, options_.read_timeout_ms);
    if (n == -3) return FailChannel(ch, "read timed out");
    if (n == 0) return FailChannel(ch, "server closed connection");
    if (n < 0) return FailChannel(ch, "read failed");
    if (!ch.recv.Append(
            std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)))) {
      return FailChannel(ch, "oversized response frame");
    }
  }
}

bool VcfClient::Ping() {
  const std::uint8_t echo[8] = {'v', 'c', 'f', 'd', 'p', 'i', 'n', 'g'};
  for (int attempt = 0; attempt < attempts(); ++attempt) {
    if (attempt > 0) Backoff(attempt);
    if (!EnsureConnected(write_ch_)) continue;
    const std::uint32_t id = next_id_++;
    net::EncodePingRequest(send_buf_, id, echo);
    if (!SendFrame(write_ch_)) continue;
    net::Response resp;
    if (!ReadResponse(write_ch_, Opcode::kPing, id, resp)) continue;
    if (resp.status != Status::kOk ||
        !std::equal(resp.ping_echo.begin(), resp.ping_echo.end(), echo,
                    echo + sizeof(echo))) {
      return FailChannel(write_ch_, "ping echo mismatch");
    }
    return true;
  }
  return false;
}

bool VcfClient::SimpleKeyOp(Opcode op, std::uint64_t key, bool* ok) {
  if (ok != nullptr) *ok = false;
  Channel& ch = op == Opcode::kLookup ? ReadChannel() : write_ch_;
  for (int attempt = 0; attempt < attempts(); ++attempt) {
    if (attempt > 0) Backoff(attempt);
    if (!EnsureConnected(ch)) continue;
    const std::uint32_t id = next_id_++;
    net::EncodeKeyRequest(send_buf_, op, id, key);
    if (!SendFrame(ch)) continue;
    net::Response resp;
    if (!ReadResponse(ch, op, id, resp)) continue;
    if (Rerouteable(resp.status)) {
      error_ = net::StatusName(resp.status);
      RotateChannel(ch);
      continue;
    }
    if (resp.status != Status::kOk) {
      error_ = net::StatusName(resp.status);
      return false;
    }
    if (ok != nullptr) *ok = true;
    return resp.flag;
  }
  return false;
}

bool VcfClient::Insert(std::uint64_t key, bool* ok) {
  return SimpleKeyOp(Opcode::kInsert, key, ok);
}

bool VcfClient::Lookup(std::uint64_t key, bool* ok) {
  return SimpleKeyOp(Opcode::kLookup, key, ok);
}

bool VcfClient::Erase(std::uint64_t key, bool* ok) {
  return SimpleKeyOp(Opcode::kDelete, key, ok);
}

bool VcfClient::BatchOp(Opcode op, std::span<const std::uint64_t> keys,
                        bool* results, std::size_t* accepted) {
  Channel& ch = op == Opcode::kLookupBatch ? ReadChannel() : write_ch_;
  const std::size_t frame_keys = std::min<std::size_t>(
      options_.batch_frame_keys == 0 ? net::kMaxBatchKeys
                                     : options_.batch_frame_keys,
      net::kMaxBatchKeys);
  const std::size_t depth =
      options_.batch_pipeline < 1
          ? 1
          : static_cast<std::size_t>(options_.batch_pipeline);
  std::size_t done = 0;
  while (done < keys.size()) {
    // One window = up to `depth` sub-batch frames written back-to-back
    // before the first response is read; the server coalesces adjacent
    // frames back into one batch-kernel run.
    struct Sub {
      std::uint32_t id;
      std::size_t off;
      std::size_t n;
    };
    std::vector<Sub> subs;
    {
      std::size_t off = done;
      while (off < keys.size() && subs.size() < depth) {
        const std::size_t n =
            std::min<std::size_t>(keys.size() - off, frame_keys);
        subs.push_back({0, off, n});
        off += n;
      }
    }
    bool window_ok = false;
    std::size_t window_accepted = 0;
    // Replay granularity is the whole window: a retried frame may re-apply
    // keys the lost connection already ACKed, which is membership-safe
    // (inserts can only re-land; lookups are pure).
    for (int attempt = 0; attempt < attempts() && !window_ok; ++attempt) {
      if (attempt > 0) Backoff(attempt);
      if (!EnsureConnected(ch)) continue;
      for (Sub& sub : subs) {
        sub.id = next_id_++;
        net::EncodeBatchRequest(send_buf_, op, sub.id,
                                keys.subspan(sub.off, sub.n));
      }
      if (!SendFrame(ch)) continue;
      window_accepted = 0;
      bool drained = true;
      bool rerouted = false;
      for (const Sub& sub : subs) {
        net::Response resp;
        if (!ReadResponse(ch, op, sub.id, resp)) {
          drained = false;
          break;
        }
        if (Rerouteable(resp.status)) {
          error_ = net::StatusName(resp.status);
          RotateChannel(ch);
          rerouted = true;
          break;
        }
        if (resp.status != Status::kOk || resp.batch_count != sub.n) {
          error_ = resp.status != Status::kOk ? net::StatusName(resp.status)
                                              : "batch count mismatch";
          if (accepted != nullptr) *accepted += window_accepted;
          return false;
        }
        window_accepted += resp.batch_accepted;
        if (results != nullptr) {
          for (std::size_t i = 0; i < sub.n; ++i) {
            results[sub.off + i] =
                resp.BitmapBit(static_cast<std::uint32_t>(i));
          }
        }
      }
      if (drained && !rerouted) window_ok = true;
    }
    if (accepted != nullptr) *accepted += window_accepted;
    if (!window_ok) return false;
    done = subs.back().off + subs.back().n;
  }
  return true;
}

std::size_t VcfClient::InsertBatch(std::span<const std::uint64_t> keys,
                                   bool* results, bool* ok) {
  std::size_t accepted = 0;
  const bool transport_ok =
      BatchOp(Opcode::kInsertBatch, keys, results, &accepted);
  if (ok != nullptr) *ok = transport_ok;
  return accepted;
}

bool VcfClient::LookupBatch(std::span<const std::uint64_t> keys,
                            bool* results) {
  return BatchOp(Opcode::kLookupBatch, keys, results, nullptr);
}

bool VcfClient::Pipeline(Opcode op, std::span<const std::uint64_t> keys,
                         bool* results, std::size_t depth) {
  if (depth == 0) depth = 1;
  Channel& ch = op == Opcode::kLookup ? ReadChannel() : write_ch_;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t window =
        std::min<std::size_t>(keys.size() - done, depth);
    bool window_ok = false;
    // The whole in-flight window replays on failure: some of its frames may
    // already have been applied before the connection died, so replay is
    // at-least-once — safe for inserts (membership can only be preserved)
    // and pure for lookups.
    for (int attempt = 0; attempt < attempts() && !window_ok; ++attempt) {
      if (attempt > 0) Backoff(attempt);
      if (!EnsureConnected(ch)) continue;
      const std::uint32_t first_id = next_id_;
      for (std::size_t i = 0; i < window; ++i) {
        net::EncodeKeyRequest(send_buf_, op, next_id_++, keys[done + i]);
      }
      if (!SendFrame(ch)) continue;
      bool drained = true;
      bool rerouted = false;
      for (std::size_t i = 0; i < window; ++i) {
        net::Response resp;
        if (!ReadResponse(ch, op,
                          first_id + static_cast<std::uint32_t>(i), resp)) {
          drained = false;
          break;
        }
        if (Rerouteable(resp.status)) {
          error_ = net::StatusName(resp.status);
          RotateChannel(ch);
          rerouted = true;
          break;
        }
        if (resp.status != Status::kOk) {
          error_ = net::StatusName(resp.status);
          return false;
        }
        if (results != nullptr) results[done + i] = resp.flag;
      }
      if (drained && !rerouted) window_ok = true;
    }
    if (!window_ok) return false;
    done += window;
  }
  return true;
}

bool VcfClient::PipelineLookups(std::span<const std::uint64_t> keys,
                                bool* results, std::size_t depth) {
  return Pipeline(Opcode::kLookup, keys, results, depth);
}

bool VcfClient::PipelineInserts(std::span<const std::uint64_t> keys,
                                bool* results, std::size_t depth) {
  return Pipeline(Opcode::kInsert, keys, results, depth);
}

bool VcfClient::GetStats(ServerStats& out) {
  for (int attempt = 0; attempt < attempts(); ++attempt) {
    if (attempt > 0) Backoff(attempt);
    if (!EnsureConnected(write_ch_)) continue;
    const std::uint32_t id = next_id_++;
    net::EncodeEmptyRequest(send_buf_, Opcode::kStats, id);
    if (!SendFrame(write_ch_)) continue;
    net::Response resp;
    if (!ReadResponse(write_ch_, Opcode::kStats, id, resp)) continue;
    if (resp.status != Status::kOk) {
      error_ = net::StatusName(resp.status);
      return false;
    }
    out.name = resp.name;
    out.items = resp.items;
    out.slots = resp.slots;
    out.memory_bytes = resp.memory_bytes;
    out.load_factor = resp.load_factor;
    out.supports_deletion = resp.supports_deletion;
    out.seqlock_retries = resp.seqlock_retries;
    out.seqlock_fallbacks = resp.seqlock_fallbacks;
    out.hugepage_bytes = resp.hugepage_bytes;
    out.elastic_resizes = resp.elastic_resizes;
    out.elastic_backlog = resp.elastic_backlog;
    out.elastic_dual_reads = resp.elastic_dual_reads;
    return true;
  }
  return false;
}

bool VcfClient::GetWorkerInfo(WorkerInfo& out) {
  for (int attempt = 0; attempt < attempts(); ++attempt) {
    if (attempt > 0) Backoff(attempt);
    if (!EnsureConnected(write_ch_)) continue;
    const std::uint32_t id = next_id_++;
    net::EncodeEmptyRequest(send_buf_, Opcode::kWorkerInfo, id);
    if (!SendFrame(write_ch_)) continue;
    net::Response resp;
    if (!ReadResponse(write_ch_, Opcode::kWorkerInfo, id, resp)) continue;
    if (resp.status != Status::kOk) {
      error_ = net::StatusName(resp.status);
      return false;
    }
    out.worker_index = resp.worker_index;
    out.worker_count = resp.worker_count;
    out.shard_count = resp.shard_count;
    out.route_salt = resp.route_salt;
    out.pinned = resp.pinned;
    return true;
  }
  return false;
}

bool VcfClient::Snapshot() {
  const std::uint32_t id = next_id_++;
  net::EncodeEmptyRequest(send_buf_, Opcode::kSnapshot, id);
  if (!EnsureConnected(write_ch_) || !SendFrame(write_ch_)) return false;
  net::Response resp;
  if (!ReadResponse(write_ch_, Opcode::kSnapshot, id, resp)) return false;
  if (resp.status != Status::kOk) {
    error_ = net::StatusName(resp.status);
    return false;
  }
  return resp.flag;
}

bool VcfClient::Resize() {
  const std::uint32_t id = next_id_++;
  net::EncodeEmptyRequest(send_buf_, Opcode::kResize, id);
  if (!EnsureConnected(write_ch_) || !SendFrame(write_ch_)) return false;
  net::Response resp;
  if (!ReadResponse(write_ch_, Opcode::kResize, id, resp)) return false;
  if (resp.status != Status::kOk) {
    error_ = net::StatusName(resp.status);
    return false;
  }
  return resp.flag;
}

bool VcfClient::ShardSplit(std::uint32_t entry) {
  const std::uint32_t id = next_id_++;
  net::EncodeShardSplitRequest(send_buf_, id, entry);
  if (!EnsureConnected(write_ch_) || !SendFrame(write_ch_)) return false;
  net::Response resp;
  if (!ReadResponse(write_ch_, Opcode::kShardSplit, id, resp)) return false;
  if (resp.status != Status::kOk) {
    error_ = net::StatusName(resp.status);
    return false;
  }
  return resp.flag;
}

}  // namespace vcf::client
