#include "client/vcf_client.hpp"

#include <algorithm>

#include "net/socket.hpp"

namespace vcf::client {

using net::Opcode;
using net::Status;

VcfClient::~VcfClient() { Close(); }

bool VcfClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  std::string err;
  fd_ = net::ConnectTcp(host, port, &err);
  if (fd_ < 0) return Fail(err);
  net::SetNoDelay(fd_);
  recv_buf_ = net::FrameBuffer();
  error_.clear();
  return true;
}

void VcfClient::Close() {
  net::CloseFd(fd_);
  fd_ = -1;
  send_buf_.clear();
}

bool VcfClient::Fail(const std::string& why) {
  error_ = why;
  Close();
  return false;
}

bool VcfClient::SendFrame() {
  if (fd_ < 0) return Fail("not connected");
  const bool ok = net::WriteAll(fd_, send_buf_);
  send_buf_.clear();
  if (!ok) return Fail("write failed");
  return true;
}

bool VcfClient::ReadResponse(Opcode expect_op, std::uint32_t expect_id,
                             net::Response& resp) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    std::span<const std::uint8_t> payload;
    if (recv_buf_.Next(payload)) {
      const net::DecodeResult r =
          net::DecodeResponse(payload, expect_op, resp);
      recv_buf_.Pop();
      if (r != net::DecodeResult::kOk) {
        return Fail("malformed response frame");
      }
      if (resp.request_id != expect_id) {
        return Fail("response id mismatch (pipeline desync)");
      }
      return true;
    }
    const std::ptrdiff_t n = net::ReadSome(fd_, buf);
    if (n == 0) return Fail("server closed connection");
    if (n < 0) return Fail("read failed");
    if (!recv_buf_.Append(
            std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)))) {
      return Fail("oversized response frame");
    }
  }
}

bool VcfClient::Ping() {
  const std::uint8_t echo[8] = {'v', 'c', 'f', 'd', 'p', 'i', 'n', 'g'};
  const std::uint32_t id = next_id_++;
  net::EncodePingRequest(send_buf_, id, echo);
  if (!SendFrame()) return false;
  net::Response resp;
  if (!ReadResponse(Opcode::kPing, id, resp)) return false;
  if (resp.status != Status::kOk ||
      !std::equal(resp.ping_echo.begin(), resp.ping_echo.end(), echo,
                  echo + sizeof(echo))) {
    return Fail("ping echo mismatch");
  }
  return true;
}

bool VcfClient::SimpleKeyOp(Opcode op, std::uint64_t key, bool* ok) {
  if (ok != nullptr) *ok = false;
  const std::uint32_t id = next_id_++;
  net::EncodeKeyRequest(send_buf_, op, id, key);
  if (!SendFrame()) return false;
  net::Response resp;
  if (!ReadResponse(op, id, resp)) return false;
  if (resp.status != Status::kOk) {
    error_ = net::StatusName(resp.status);
    return false;
  }
  if (ok != nullptr) *ok = true;
  return resp.flag;
}

bool VcfClient::Insert(std::uint64_t key, bool* ok) {
  return SimpleKeyOp(Opcode::kInsert, key, ok);
}

bool VcfClient::Lookup(std::uint64_t key, bool* ok) {
  return SimpleKeyOp(Opcode::kLookup, key, ok);
}

bool VcfClient::Erase(std::uint64_t key, bool* ok) {
  return SimpleKeyOp(Opcode::kDelete, key, ok);
}

std::size_t VcfClient::InsertBatch(std::span<const std::uint64_t> keys,
                                   bool* results, bool* ok) {
  if (ok != nullptr) *ok = false;
  std::size_t accepted = 0;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n =
        std::min<std::size_t>(keys.size() - done, net::kMaxBatchKeys);
    const std::uint32_t id = next_id_++;
    net::EncodeBatchRequest(send_buf_, Opcode::kInsertBatch, id,
                            keys.subspan(done, n));
    if (!SendFrame()) return accepted;
    net::Response resp;
    if (!ReadResponse(Opcode::kInsertBatch, id, resp)) return accepted;
    if (resp.status != Status::kOk || resp.batch_count != n) {
      Fail(resp.status != Status::kOk ? net::StatusName(resp.status)
                                      : "batch count mismatch");
      return accepted;
    }
    accepted += resp.batch_accepted;
    if (results != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        results[done + i] = resp.BitmapBit(static_cast<std::uint32_t>(i));
      }
    }
    done += n;
  }
  if (ok != nullptr) *ok = true;
  return accepted;
}

bool VcfClient::LookupBatch(std::span<const std::uint64_t> keys,
                            bool* results) {
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t n =
        std::min<std::size_t>(keys.size() - done, net::kMaxBatchKeys);
    const std::uint32_t id = next_id_++;
    net::EncodeBatchRequest(send_buf_, Opcode::kLookupBatch, id,
                            keys.subspan(done, n));
    if (!SendFrame()) return false;
    net::Response resp;
    if (!ReadResponse(Opcode::kLookupBatch, id, resp)) return false;
    if (resp.status != Status::kOk || resp.batch_count != n) {
      return Fail(resp.status != Status::kOk ? net::StatusName(resp.status)
                                             : "batch count mismatch");
    }
    if (results != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        results[done + i] = resp.BitmapBit(static_cast<std::uint32_t>(i));
      }
    }
    done += n;
  }
  return true;
}

bool VcfClient::Pipeline(Opcode op, std::span<const std::uint64_t> keys,
                         bool* results, std::size_t depth) {
  if (depth == 0) depth = 1;
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t window =
        std::min<std::size_t>(keys.size() - done, depth);
    const std::uint32_t first_id = next_id_;
    for (std::size_t i = 0; i < window; ++i) {
      net::EncodeKeyRequest(send_buf_, op, next_id_++, keys[done + i]);
    }
    if (!SendFrame()) return false;
    for (std::size_t i = 0; i < window; ++i) {
      net::Response resp;
      if (!ReadResponse(op, first_id + static_cast<std::uint32_t>(i), resp)) {
        return false;
      }
      if (resp.status != Status::kOk) {
        return Fail(net::StatusName(resp.status));
      }
      if (results != nullptr) results[done + i] = resp.flag;
    }
    done += window;
  }
  return true;
}

bool VcfClient::PipelineLookups(std::span<const std::uint64_t> keys,
                                bool* results, std::size_t depth) {
  return Pipeline(Opcode::kLookup, keys, results, depth);
}

bool VcfClient::PipelineInserts(std::span<const std::uint64_t> keys,
                                bool* results, std::size_t depth) {
  return Pipeline(Opcode::kInsert, keys, results, depth);
}

bool VcfClient::GetStats(ServerStats& out) {
  const std::uint32_t id = next_id_++;
  net::EncodeEmptyRequest(send_buf_, Opcode::kStats, id);
  if (!SendFrame()) return false;
  net::Response resp;
  if (!ReadResponse(Opcode::kStats, id, resp)) return false;
  if (resp.status != Status::kOk) return Fail(net::StatusName(resp.status));
  out.name = resp.name;
  out.items = resp.items;
  out.slots = resp.slots;
  out.memory_bytes = resp.memory_bytes;
  out.load_factor = resp.load_factor;
  out.supports_deletion = resp.supports_deletion;
  return true;
}

bool VcfClient::Snapshot() {
  const std::uint32_t id = next_id_++;
  net::EncodeEmptyRequest(send_buf_, Opcode::kSnapshot, id);
  if (!SendFrame()) return false;
  net::Response resp;
  if (!ReadResponse(Opcode::kSnapshot, id, resp)) return false;
  if (resp.status != Status::kOk) {
    error_ = net::StatusName(resp.status);
    return false;
  }
  return resp.flag;
}

}  // namespace vcf::client
